#!/usr/bin/env python
"""Reproduce the paper's Section-3.1 motivation arithmetic on a real
topology -- no simulation needed.

The argument: UGAL routes a fraction f of packets minimally (~3 hops) and
the rest over VLB paths.  Cutting the VLB set's average length directly
cuts the average hops per packet, i.e. per-packet network load and
zero-load latency.

Run:  python examples/motivation_analysis.py
"""

import numpy as np

from repro.routing import (
    AllVlbPolicy,
    StrategicFiveHopPolicy,
    expected_packet_hops,
    mean_min_hops,
    vlb_length_distribution,
)
from repro.topology import Dragonfly
from repro.traffic import Shift


def main() -> None:
    topo = Dragonfly(4, 8, 4, 9)
    demand = Shift(topo, 2, 0).demand_matrix()
    pairs = [tuple(map(int, p)) for p in zip(*np.nonzero(demand))][:12]

    min_hops = mean_min_hops(topo, pairs)
    full = vlb_length_distribution(topo, AllVlbPolicy(), pairs)
    tvlb = vlb_length_distribution(
        topo, StrategicFiveHopPolicy("2+3"), pairs
    )

    print(f"topology: {topo}, adversarial shift pairs\n")
    print(f"mean MIN path length      : {min_hops:.2f} hops")
    print(f"mean VLB length, all VLB  : {full.mean:.2f} hops "
          f"({full.count} paths/sample)")
    print(f"mean VLB length, T-VLB    : {tvlb.mean:.2f} hops "
          f"({tvlb.count} paths/sample)")
    print("\nVLB hop histogram (fraction of paths):")
    for h in range(2, 7):
        print(f"  {h}-hop: all VLB {full.fraction(h):5.1%}   "
              f"T-VLB {tvlb.fraction(h):5.1%}")

    print("\naverage hops per packet at different MIN fractions:")
    print("  f_MIN   UGAL    T-UGAL  reduction")
    for f in (0.3, 0.5, 0.7):
        ugal = expected_packet_hops(f, min_hops, full.mean)
        t = expected_packet_hops(f, min_hops, tvlb.mean)
        print(f"  {f:.1f}    {ugal:.2f}    {t:.2f}    "
              f"{ugal / t - 1:.1%}")

    print(
        "\n(The paper's stylized example -- 3-hop MIN, 6-hop VLB, 70% MIN, "
        "VLB shortened to 4.8 hops -- gives a ~10% reduction; the real "
        "dfly(4,8,4,9) numbers above land in the same range.)"
    )


if __name__ == "__main__":
    main()
