#!/usr/bin/env python
"""Adversarial-traffic study: latency curves and saturation throughput.

Reproduces the shape of the paper's Figure 6 (UGAL-L / T-UGAL-L / PAR /
T-PAR under shift(2,0) on dfly(4,8,4,9)) at reduced simulation windows,
then prints the saturation throughput of each scheme.

Run:  python examples/adversarial_study.py [--topology p,a,h,g]
"""

import argparse

from repro.experiments import render_curves, render_table, tvlb_policy_for
from repro.sim import SimParams, latency_vs_load
from repro.topology import Dragonfly
from repro.traffic import Shift


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--topology", default="4,8,4,9",
        help="comma separated p,a,h,g (default: 4,8,4,9)",
    )
    parser.add_argument("--window", type=int, default=300)
    args = parser.parse_args()
    p, a, h, g = (int(x) for x in args.topology.split(","))

    topo = Dragonfly(p, a, h, g)
    pattern = Shift(topo, 2 % topo.g, 0)
    params = SimParams(window_cycles=args.window)
    policy = tvlb_policy_for(topo)
    loads = [0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4]

    curves = {}
    sat_rows = []
    for variant, pol in [
        ("ugal-l", None),
        ("t-ugal-l", policy),
        ("par", None),
        ("t-par", policy),
    ]:
        sweep = latency_vs_load(
            topo, pattern, loads, routing=variant, policy=pol,
            params=params, seed=1,
        )
        curves[variant.upper()] = [
            (r.offered_load, round(r.avg_latency, 1))
            for r in sweep.results
            if not r.saturated
        ]
        sat_rows.append([variant.upper(), sweep.saturation_throughput()])

    print(f"{pattern.describe()} on {topo}\n")
    print(render_curves("offered load", curves))
    print("\nsaturation throughput (packets/cycle/node):")
    print(render_table(["scheme", "throughput"], sat_rows))


if __name__ == "__main__":
    main()
