#!/usr/bin/env python
"""Compute a custom T-VLB set for your own dragonfly (Algorithm 1).

Runs the full two-step procedure -- LP model sweep over the Table-1
datapoint grid, strategic expansion, load-balance adjustment, and
simulation-based final selection -- and prints the audit trail.

On dense topologies (several links per group pair) a restricted set wins;
on one-link-per-pair topologies the procedure converges to the full VLB
set, i.e. T-UGAL == UGAL, exactly as the paper reports for dfly(4,8,4,33).

Run:  python examples/custom_topology_tvlb.py [--topology 2,4,2,3]
"""

import argparse
import time

from repro.core import compute_tvlb
from repro.sim import SimParams
from repro.topology import Dragonfly


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--topology", default="2,4,2,3",
        help="comma separated p,a,h,g (default: 2,4,2,3 -- small & dense)",
    )
    parser.add_argument("--window", type=int, default=200,
                        help="simulation window for Step-2 ranking")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()
    p, a, h, g = (int(x) for x in args.topology.split(","))
    topo = Dragonfly(p, a, h, g)

    print(f"computing T-VLB for {topo} "
          f"({topo.links_per_group_pair} links per group pair)...")
    start = time.time()
    result = compute_tvlb(
        topo,
        sim_params=SimParams(window_cycles=args.window),
        seed=args.seed,
    )
    print(f"done in {time.time() - start:.0f}s\n")

    print("Step 1 -- modeled throughput over the datapoint grid:")
    for pt in result.sweep:
        bar = "#" * int(40 * pt.mean_throughput)
        print(f"  {pt.label:12s} {pt.mean_throughput:.4f} {bar}")

    print("\nStep 2 -- simulated candidate ranking:")
    for cand in sorted(
        result.candidates, key=lambda c: c.score, reverse=True
    ):
        marker = " <== chosen" if cand.label == result.label else ""
        print(f"  {cand.label:32s} {cand.score:.3f}{marker}")

    print(f"\nfinal T-VLB: {result.label}")
    if result.converged_to_ugal:
        print("T-UGAL converges with conventional UGAL on this topology.")
    else:
        print("use it with routing='t-ugal-l' / 't-ugal-g' / 't-par'.")


if __name__ == "__main__":
    main()
