#!/usr/bin/env python
"""Quickstart: T-UGAL vs conventional UGAL in ~30 seconds.

Builds the paper's dfly(4,8,4,9) topology (288 nodes, 4 global links
between every pair of groups), throws the adversarial shift(2,0) pattern
at it, and compares conventional UGAL-L against T-UGAL-L using the
strategic T-VLB path set.

Run:  python examples/quickstart.py
"""

from repro.experiments import tvlb_policy_for
from repro.sim import SimParams, simulate
from repro.topology import Dragonfly
from repro.traffic import Shift


def main() -> None:
    topo = Dragonfly(p=4, a=8, h=4, g=9)
    print(f"topology: {topo} -> {topo.describe()}")

    pattern = Shift(topo, dg=2, ds=0)  # the paper's ADV pattern
    params = SimParams(window_cycles=300)
    policy = tvlb_policy_for(topo)  # strategic 2+3 five-hop T-VLB
    print(f"traffic:  {pattern.describe()}")
    print(f"T-VLB:    {policy.describe()}\n")

    load = 0.15
    base = simulate(
        topo, pattern, load, routing="ugal-l", params=params, seed=1
    )
    tugal = simulate(
        topo, pattern, load, routing="t-ugal-l", policy=policy,
        params=params, seed=1,
    )

    print(f"offered load {load} packets/cycle/node")
    print(
        f"  UGAL-L   : latency {base.avg_latency:6.1f} cycles, "
        f"avg path {base.avg_hops:.2f} hops, "
        f"VLB share {base.vlb_fraction:.0%}"
    )
    print(
        f"  T-UGAL-L : latency {tugal.avg_latency:6.1f} cycles, "
        f"avg path {tugal.avg_hops:.2f} hops, "
        f"VLB share {tugal.vlb_fraction:.0%}"
    )
    gain = (base.avg_latency - tugal.avg_latency) / base.avg_latency
    print(f"\nT-UGAL-L cuts average latency by {gain:.1%} "
          f"(paper reports ~9% at load 0.1)")


if __name__ == "__main__":
    main()
