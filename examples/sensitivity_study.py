#!/usr/bin/env python
"""Parameter sensitivity mini-study (the paper's Figures 15-18 in spirit).

Varies one network parameter at a time -- buffer size, switch speedup, and
the VC allocation scheme -- and shows that the T-UGAL advantage is robust
to all of them.

Run:  python examples/sensitivity_study.py
"""

import dataclasses

from repro.experiments import render_table, tvlb_policy_for
from repro.sim import SimParams, simulate
from repro.topology import Dragonfly
from repro.traffic import Mixed


def main() -> None:
    topo = Dragonfly(4, 8, 4, 9)
    pattern = Mixed(topo, 50, 50, seed=0)
    policy = tvlb_policy_for(topo)
    base = SimParams(window_cycles=250)
    load = 0.2

    settings = [
        ("default (Table 3)", base),
        ("buffer 8", dataclasses.replace(base, buffer_size=8)),
        ("speedup 1", dataclasses.replace(base, speedup=1)),
        ("routing(6) VCs", dataclasses.replace(base, vc_scheme="perhop")),
        ("slow links 40/60",
         dataclasses.replace(base, local_latency=40, global_latency=60)),
    ]

    rows = []
    for label, params in settings:
        ugal = simulate(
            topo, pattern, load, routing="ugal-l", params=params, seed=2
        )
        tugal = simulate(
            topo, pattern, load, routing="t-ugal-l", policy=policy,
            params=params, seed=2,
        )
        gain = (ugal.avg_latency - tugal.avg_latency) / ugal.avg_latency
        rows.append(
            [label, round(ugal.avg_latency, 1), round(tugal.avg_latency, 1),
             f"{gain:+.1%}"]
        )

    print(f"MIXED(50,50) at load {load} on {topo}\n")
    print(
        render_table(
            ["setting", "UGAL-L latency", "T-UGAL-L latency", "T gain"],
            rows,
        )
    )
    print("\nT-UGAL keeps its advantage under every parameter variation "
          "(cf. paper Figs 15-18).")


if __name__ == "__main__":
    main()
