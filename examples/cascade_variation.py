#!/usr/bin/env python
"""T-UGAL on a Cascade-style dragonfly (2D all-to-all groups).

The paper focuses on fully connected intra-group topologies but notes its
techniques "can be applied to other Dragonfly variations".  This example
builds a Cray-Cascade-like group (a 2D grid with all-to-all rows and
columns), where MIN paths stretch to 5 hops and VLB paths to 10, and shows
that restricting the VLB candidate set to shorter paths still pays off.

Run:  python examples/cascade_variation.py
"""

import numpy as np

from repro.routing import vlb_length_distribution
from repro.routing.pathset import AllVlbPolicy, HopClassPolicy
from repro.sim import SimParams, simulate
from repro.topology import CascadeDragonfly
from repro.traffic import Shift


def main() -> None:
    topo = CascadeDragonfly(p=2, a=6, h=2, g=5, rows=2, cols=3)
    print(f"Cascade-style {topo}: groups are 2x3 grids "
          f"({topo.links_per_group_pair} links per group pair)\n")

    pattern = Shift(topo, 1, 0)
    pairs = [tuple(map(int, p))
             for p in zip(*np.nonzero(pattern.demand_matrix()))][:8]
    full = vlb_length_distribution(topo, AllVlbPolicy(), pairs)
    short = vlb_length_distribution(topo, HopClassPolicy(6), pairs)
    print(f"mean VLB length, all paths   : {full.mean:.2f} hops "
          f"(up to {max(full.histogram)})")
    print(f"mean VLB length, <=6-hop set : {short.mean:.2f} hops\n")

    params = SimParams(window_cycles=250)
    load = 0.3
    base = simulate(topo, pattern, load, routing="ugal-l",
                    params=params, seed=2)
    tugal = simulate(topo, pattern, load, routing="t-ugal-l",
                     policy=HopClassPolicy(6), params=params, seed=2)
    print(f"adversarial {pattern.describe()} at load {load}:")
    print(f"  UGAL-L   : latency {base.avg_latency:6.1f} cycles, "
          f"avg path {base.avg_hops:.2f} hops")
    print(f"  T-UGAL-L : latency {tugal.avg_latency:6.1f} cycles, "
          f"avg path {tugal.avg_hops:.2f} hops")
    gain = (base.avg_latency - tugal.avg_latency) / base.avg_latency
    print(f"\nshorter VLB candidates cut latency by {gain:.1%} on the "
          f"Cascade variation too.")


if __name__ == "__main__":
    main()
