"""Figure 6: latency vs load for UGAL-L/T-UGAL-L/PAR/T-PAR under the
adversarial shift(2,0) pattern on dfly(4,8,4,9).

Paper: T-UGAL-L 9.2% lower latency at 0.1 load, saturation 0.29 vs 0.23;
T-PAR 12.9% lower latency at 0.2, saturation 0.38 vs 0.29.
"""

from conftest import regen


def test_fig06_adv_ugall_par_g9(benchmark):
    result = regen(benchmark, "fig06")
    sat = result.data["saturation"]
    # T- variants keep (or beat) the conventional saturation throughput
    assert sat["T-UGAL-L"] >= 0.9 * sat["UGAL-L"]
    assert sat["T-PAR"] >= 0.9 * sat["PAR"]
    # and reduce latency below saturation
    curves = result.data["curves"]
    base = dict(curves["UGAL-L"])
    tugal = dict(curves["T-UGAL-L"])
    common = sorted(set(base) & set(tugal))
    assert common, "no common non-saturated loads"
    assert sum(tugal[x] < base[x] * 1.02 for x in common) >= len(common) // 2
