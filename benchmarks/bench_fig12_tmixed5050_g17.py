"""Figure 12: TMIXED(50,50) time-domain mixed traffic, UGAL-L & PAR on
dfly(4,8,4,17).

Paper: the T-UGAL advantage also holds when every node mixes UR and
adversarial destinations packet by packet.
"""

from conftest import regen


def test_fig12_tmixed5050_g17(benchmark):
    result = regen(benchmark, "fig12")
    sat = result.data["saturation"]
    assert sat["T-UGAL-L"] >= 0.9 * sat["UGAL-L"]
    assert sat["T-PAR"] >= 0.9 * sat["PAR"]
