"""Table 1: the datapoint grid probed in coarse-grain Step 1."""

from conftest import regen


def test_table1_datapoints(benchmark):
    result = regen(benchmark, "table1")
    assert result.data["count"] == 31
