"""Figure 14: MIXED(50,50) on the large dfly(13,26,13,27), all six schemes.

Paper: T-UGAL variations keep a clear advantage over their conventional
counterparts on the large topology.
"""

from conftest import regen


def test_fig14_mixed_large(benchmark):
    result = regen(benchmark, "fig14")
    curves = result.data["curves"]
    # latency comparison at the common low load (see fig13 note)
    for base in ("UGAL-L", "PAR"):
        b = dict(curves[base])
        t = dict(curves[f"T-{base}"])
        common = sorted(set(b) & set(t))
        assert common, f"no common non-saturated load for {base}"
        x = common[0]
        assert t[x] < b[x] * 1.05, f"T-{base} not faster at load {x}"
