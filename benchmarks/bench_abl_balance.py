"""Ablation: the Step-2 load-balance adjustment (path removal) on/off."""

from repro.experiments.ablations import abl_balance


def test_abl_balance(benchmark):
    result = benchmark.pedantic(abl_balance, rounds=1, iterations=1)
    print()
    print(result)
    # adjustment never cripples the set
    assert result.data["balanced"] >= 0.7 * result.data["unadjusted"]
