"""Table 3: default network parameters used in the simulations."""

from conftest import regen


def test_table3_defaults(benchmark):
    result = regen(benchmark, "table3")
    params = dict(result.data["params"])
    assert params["buffer size"] == 32
    assert params["link latency (local)"] == 10
    assert params["link latency (global)"] == 15
    assert params["switch speed-up"] == 2
