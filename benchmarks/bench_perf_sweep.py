"""Sweep executor benchmark: serial vs process pool vs warm cache.

Wall-clock for an 8-point latency-vs-load ladder through the three
execution paths of :class:`repro.perf.executor.SweepExecutor`.  Pool
speedup is bounded by the host's CPU count (recorded in the result);
the identity assertions hold regardless.
"""

import os

from repro.perf.bench import bench_sweep

WINDOW = int(os.environ.get("REPRO_WINDOW", "300"))
JOBS = int(os.environ.get("REPRO_JOBS", str(os.cpu_count() or 1)))


def test_sweep_bench(benchmark, tmp_path):
    record = benchmark.pedantic(
        bench_sweep,
        kwargs={
            "window_cycles": WINDOW,
            "jobs": JOBS,
            "cache_dir": str(tmp_path / "cache"),
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(
        f"sweep ({len(record['loads'])} pts, jobs={record['jobs']}, "
        f"cpus={record['cpus']}): serial {record['serial_seconds']:.2f}s, "
        f"parallel {record['parallel_seconds']:.2f}s, "
        f"warm cache {record['cached_seconds']:.3f}s"
    )
    assert record["identical_results"], "parallel sweep diverged from serial"
    assert record["cached_speedup"] > 3
