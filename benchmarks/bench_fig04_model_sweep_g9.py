"""Figure 4: Step-1 modeled throughput sweep on dfly(4,8,4,9).

Paper: best 0.58 at "60% 5-hop", 0.56 with all VLB.  Our uniform-selection
LP rises steeply from the diversity-starved 3-hop point toward the
flow-conservation bound (0.5625 for shift patterns) at all-VLB, with local
structure in the partial-5-hop region; the paper's small interior peak
above 0.5625 cannot appear in any capacity-conserving model (see
EXPERIMENTS.md).
"""

from conftest import regen


def test_fig04_model_sweep_g9(benchmark):
    result = regen(benchmark, "fig04")
    points = dict(result.data["points"])
    # diversity starved at 3-hop, near the bound with all VLB
    assert points["3-hop"] < 0.3
    assert points["all VLB"] > 0.5
    # strong rise from the small sets toward the full set
    assert points["4-hop"] < points["all VLB"]
    assert points["all VLB"] <= 0.5625 + 1e-6  # the analytic bound
