"""Figure 13: adversarial shift(1,0) on the large dfly(13,26,13,27)
(9126 nodes), all six schemes.

Paper: same trends as the small topologies -- T- variants win at low and
high load.  This bench runs very short windows (REPRO_WINDOW_LARGE) since
the topology is 32x larger than dfly(4,8,4,9).
"""

from conftest import regen


def test_fig13_adv_large(benchmark):
    result = regen(benchmark, "fig13")
    curves = result.data["curves"]
    # at the common low load, every T- variant cuts latency (the paper's
    # claim at both low and high load; saturation estimates are not
    # meaningful on the reduced REPRO_LARGE_LOADS ladder)
    for base in ("UGAL-L", "PAR", "UGAL-G"):
        b = dict(curves[base])
        t = dict(curves[f"T-{base}"])
        common = sorted(set(b) & set(t))
        assert common, f"no common non-saturated load for {base}"
        x = common[0]
        assert t[x] < b[x] * 1.02, f"T-{base} not faster at load {x}"
