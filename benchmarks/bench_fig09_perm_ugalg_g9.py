"""Figure 9: random permutation traffic, UGAL-G on dfly(4,8,4,9).

Paper: similar low-load latency, saturation 0.66 vs 0.59 (+11.9%) --
shorter paths reduce overall network load even with perfect information.
"""

from conftest import regen


def test_fig09_perm_ugalg_g9(benchmark):
    result = regen(benchmark, "fig09")
    sat = result.data["saturation"]
    assert sat["T-UGAL-G"] >= 0.9 * sat["UGAL-G"]
    assert sat["UGAL-G"] > 0.3
