"""Figure 5: Step-1 modeled throughput sweep on dfly(4,8,4,33).

Paper: best performance needs ALL VLB paths (one link per group pair), so
T-UGAL converges with UGAL on this topology.  Reproduced: restricted sets
model far below the full set.
"""

from conftest import regen


def test_fig05_model_sweep_g33(benchmark):
    result = regen(benchmark, "fig05")
    points = dict(result.data["points"])
    assert points["all VLB"] == max(points.values())
    # restricting to <=4 hops costs real capacity at g=33
    assert points["4-hop"] < 0.9 * points["all VLB"]
