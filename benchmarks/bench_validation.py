"""Simulator validation runs (artifact-appendix style): reproduce the
qualitative MIN/VLB/UGAL behaviour of Kim et al. (ISCA '08) on a
maximum-size balanced dragonfly."""

from repro.experiments.validation import validate_adversarial, validate_uniform


def test_validation_uniform(benchmark):
    result = benchmark.pedantic(validate_uniform, rounds=1, iterations=1)
    print()
    print(result)
    d = result.data
    # MIN wins on UR; VLB pays ~2x path length in latency and capacity
    assert d["min"]["low_load_latency"] < d["vlb"]["low_load_latency"]
    assert d["min"]["saturation"] > d["vlb"]["saturation"]
    # UGAL tracks MIN
    assert d["ugal-l"]["saturation"] > 0.8 * d["min"]["saturation"]


def test_validation_adversarial(benchmark):
    result = benchmark.pedantic(
        validate_adversarial, rounds=1, iterations=1
    )
    print()
    print(result)
    d = result.data
    # MIN collapses to the direct-link bound; VLB and UGAL sustain more
    assert d["min"]["saturation"] <= d["min_bound"] * 1.3
    assert d["vlb"]["saturation"] > 1.5 * d["min"]["saturation"]
    assert d["ugal-l"]["saturation"] > 1.5 * d["min"]["saturation"]
