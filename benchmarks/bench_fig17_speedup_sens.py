"""Figure 17: router internal speedup sensitivity, PAR, MIXED(25,75) on
dfly(4,8,4,17).

Paper: speedup 1 suffers head-of-line blocking; the T-PAR advantage holds
at both speedups.
"""

from conftest import regen


def test_fig17_speedup_sens(benchmark):
    result = regen(benchmark, "fig17")
    sat = result.data["saturation"]
    assert sat["T-PAR(1)"] >= 0.9 * sat["PAR(1)"]
    assert sat["T-PAR(2)"] >= 0.9 * sat["PAR(2)"]
    # more crossbar bandwidth never hurts
    assert sat["PAR(2)"] >= 0.9 * sat["PAR(1)"]
