"""Ablation: the UGAL threshold T (Section 2.2).

The paper sets T = 0 ("so the routing schemes do not bias towards MIN or
VLB paths").  A positive T biases decisions toward MIN, which suppresses
the low-load VLB noise of single-candidate UGAL-L under uniform traffic
but delays the switch to VLB under adversarial traffic.
"""

import dataclasses

from repro.experiments.report import FigureResult, render_table
from repro.sim import SimParams, simulate
from repro.topology import Dragonfly
from repro.traffic import Shift, UniformRandom


def run_threshold_ablation() -> FigureResult:
    topo = Dragonfly(2, 4, 2, 9)
    base = SimParams(window_cycles=250)
    rows = []
    data = {}
    for t_value in (0, 5, 20):
        params = dataclasses.replace(base, ugal_threshold=t_value)
        ur = simulate(topo, UniformRandom(topo), 0.2, routing="ugal-l",
                      params=params, seed=4)
        adv = simulate(topo, Shift(topo, 2, 0), 0.3, routing="ugal-l",
                       params=params, seed=4)
        rows.append(
            [t_value, ur.vlb_fraction, ur.avg_latency,
             adv.vlb_fraction, adv.accepted_rate]
        )
        data[t_value] = {
            "ur_vlb_fraction": ur.vlb_fraction,
            "adv_accepted": adv.accepted_rate,
        }
    return FigureResult(
        "abl_threshold",
        "UGAL threshold T ablation (UGAL-L, dfly(2,4,2,9))",
        render_table(
            ["T", "UR VLB share", "UR latency", "ADV VLB share",
             "ADV accepted"],
            rows,
        ),
        data=data,
    )


def test_abl_threshold(benchmark):
    result = benchmark.pedantic(
        run_threshold_ablation, rounds=1, iterations=1
    )
    print()
    print(result)
    d = result.data
    # larger T biases toward MIN: less VLB under uniform traffic
    assert d[20]["ur_vlb_fraction"] <= d[0]["ur_vlb_fraction"] + 0.02
    # adversarial throughput should not collapse at moderate T
    assert d[20]["adv_accepted"] > 0.5 * d[0]["adv_accepted"]
