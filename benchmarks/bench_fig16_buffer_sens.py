"""Figure 16: buffer-size sensitivity, UGAL-L, MIXED(50,50) on
dfly(4,8,4,17).

Paper: small buffers (8 flits) cannot cover the credit round trip and
lower throughput, but T-UGAL-L keeps its edge at both sizes.
"""

from conftest import regen


def test_fig16_buffer_sens(benchmark):
    result = regen(benchmark, "fig16")
    sat = result.data["saturation"]
    assert sat["T-UGAL-L(8)"] >= 0.9 * sat["UGAL-L(8)"]
    assert sat["T-UGAL-L(32)"] >= 0.9 * sat["UGAL-L(32)"]
    # buffers below the credit round-trip cost throughput
    assert sat["UGAL-L(8)"] <= sat["UGAL-L(32)"] * 1.05
