"""Cycle-engine microbenchmark: optimized vs seed-faithful legacy engine.

Times ``Network.step()`` only (deliver / crossbar / transmit), MIN
routing at saturating load, interleaved optimized/legacy runs with
best-of-N per engine -- the same protocol ``python -m repro bench`` uses
for ``BENCH_sim.json``.  Asserts the two engines agree bit for bit and
that the optimized engine is faster.
"""

import os

from repro.perf.bench import bench_engine

WINDOW = int(os.environ.get("REPRO_WINDOW", "600"))


def test_engine_microbench(benchmark):
    record = benchmark.pedantic(
        bench_engine,
        kwargs={"window_cycles": WINDOW, "repeats": 3},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        f"engine: {record['baseline_cycles_per_sec']:.0f} -> "
        f"{record['optimized_cycles_per_sec']:.0f} cycles/s "
        f"({record['speedup']:.2f}x)"
    )
    assert record["identical_results"], "engines diverged"
    assert record["speedup"] > 1.0
