"""LP model fast-path benchmark: legacy assembly vs factored pipeline.

Wall-clock for a Step-1 sweep (Table-1 datapoints x adversarial
patterns) through the legacy per-solve assembly and the factored fast
path, cold and warm.  The speedup assertion is intentionally loose
(cold >= 3x on the paper topology); the parity assertion is not.
"""

import os

from repro.perf.bench import bench_model

DATAPOINTS = int(os.environ.get("REPRO_MODEL_DATAPOINTS", "6"))
PATTERNS = int(os.environ.get("REPRO_MODEL_PATTERNS", "10"))


def test_model_bench(benchmark, tmp_path):
    record = benchmark.pedantic(
        bench_model,
        kwargs={
            "num_datapoints": DATAPOINTS,
            "num_patterns": PATTERNS,
            "cache_dir": str(tmp_path / "cache"),
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(
        f"model ({record['num_datapoints']} datapoints x "
        f"{record['num_patterns']} patterns): "
        f"legacy {record['legacy_seconds']:.2f}s, "
        f"fast {record['fast_cold_seconds']:.2f}s cold / "
        f"{record['fast_warm_seconds']:.2f}s warm, "
        f"warm cache {record['cached_seconds']:.3f}s"
    )
    assert record["identical_results"], "fast path diverged from legacy"
    assert record["speedup"] > 3
