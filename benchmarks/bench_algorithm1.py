"""The full Algorithm-1 pipeline (Step 1 model sweep + Step 2 balance and
simulation ranking) on a small dense dragonfly.

On ``dfly(2,4,2,3)`` (4 links per group pair) the restricted candidate
sets carry the same simulated throughput as the full VLB set -- the
paper's core claim that short-path subsets provide sufficient diversity
on dense topologies.  Which specific candidate wins is within noise at
bench-scale windows (the margins are <2% on this 12-switch network), so
the assertion checks competitiveness rather than the exact winner; see
``examples/custom_topology_tvlb.py`` for a longer, more decisive run.
"""

from repro.experiments.ablations import algorithm1


def test_algorithm1_end_to_end(benchmark):
    result = benchmark.pedantic(algorithm1, rounds=1, iterations=1)
    print()
    print(result)
    assert result.data["num_candidates"] >= 2
    # restricted sets must be competitive with the full VLB set: the
    # best candidate within 10% of every other (sufficient diversity)
    assert result.data["chosen"]
    assert result.data["scores_within"] <= 1.10