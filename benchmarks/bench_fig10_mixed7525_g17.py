"""Figure 10: MIXED(75,25) space-domain mixed traffic, UGAL-L & PAR on
dfly(4,8,4,17).

Paper: T-PAR saturation 0.46 vs PAR 0.40 (+15%).
"""

from conftest import regen


def test_fig10_mixed7525_g17(benchmark):
    result = regen(benchmark, "fig10")
    sat = result.data["saturation"]
    assert sat["T-PAR"] >= 0.9 * sat["PAR"]
    assert sat["T-UGAL-L"] >= 0.9 * sat["UGAL-L"]
