"""Table 2: parameters of the four evaluated dragonfly topologies."""

from conftest import regen


def test_table2_topologies(benchmark):
    result = regen(benchmark, "table2")
    rows = result.data["rows"]
    assert [r[1] for r in rows] == [1056, 544, 288, 9126]  # PEs
    assert [r[4] for r in rows] == [1, 2, 4, 13]  # links per group pair
