"""Ablation: strategic deterministic 5-hop selection vs a random 50%
subset (Section 3.3.3 motivates the strategic choices)."""

from repro.experiments.ablations import abl_strategic


def test_abl_strategic(benchmark):
    result = benchmark.pedantic(abl_strategic, rounds=1, iterations=1)
    print()
    print(result)
    # all three are competitive restricted sets
    assert all(v > 0.1 for v in result.data.values())
