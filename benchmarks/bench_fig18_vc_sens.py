"""Figure 18: VC allocation scheme sensitivity, UGAL-G, shift(1,0) on
dfly(4,8,4,9): routing(4) = Won et al. allocation vs routing(6) = one VC
per hop.

Paper: the schemes trade buffer count against head-of-line blocking, and
the T- variant consistently out-performs its counterpart under both.
"""

from conftest import regen


def test_fig18_vc_sens(benchmark):
    result = regen(benchmark, "fig18")
    sat = result.data["saturation"]
    assert sat["T-UGAL-G(4)"] >= 0.9 * sat["UGAL-G(4)"]
    assert sat["T-UGAL-G(6)"] >= 0.9 * sat["UGAL-G(6)"]
