"""Figure 15: link-latency sensitivity, UGAL-G, random permutation on
dfly(4,8,4,17).

Paper: larger link latencies change absolute numbers but the T-UGAL-G
advantage over UGAL-G persists in both settings.
"""

from conftest import regen


def test_fig15_linklat_sens(benchmark):
    result = regen(benchmark, "fig15")
    sat = result.data["saturation"]
    assert sat["T-UGAL-G(10,15)"] >= 0.9 * sat["UGAL-G(10,15)"]
    assert sat["T-UGAL-G(40,60)"] >= 0.9 * sat["UGAL-G(40,60)"]
