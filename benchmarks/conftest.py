"""Shared helpers for the benchmark harness.

Every bench regenerates one table/figure of the paper via
``repro.experiments.run_figure`` and prints the paper-style rows.
``pytest-benchmark`` times the run (rounds=1: these are experiment
regenerations, not micro-benchmarks).

Scaling: set ``REPRO_WINDOW`` (default 300) / ``REPRO_SEEDS`` (default 1)
to trade time for fidelity; the paper's scale is ``REPRO_WINDOW=10000
REPRO_SEEDS=8``.
"""

import pytest

from repro.experiments import run_figure


def regen(benchmark, figure: str):
    """Run one figure under pytest-benchmark and print its text."""
    result = benchmark.pedantic(
        run_figure, args=(figure,), rounds=1, iterations=1
    )
    print()
    print(result)
    return result
