"""Figure 8: random permutation traffic, UGAL-L & PAR on dfly(4,8,4,9).

Paper: smaller improvements than the adversarial case (fewer packets are
VLB-routed): T-UGAL-L saturation 0.68 vs 0.63.
"""

from conftest import regen


def test_fig08_perm_ugall_par_g9(benchmark):
    result = regen(benchmark, "fig08")
    sat = result.data["saturation"]
    assert sat["T-UGAL-L"] >= 0.9 * sat["UGAL-L"]
    # permutation saturates much higher than adversarial traffic
    assert sat["UGAL-L"] > 0.3
