"""Figure 11: MIXED(25,75) -- mostly adversarial mixed traffic on
dfly(4,8,4,17).

Paper: as traffic becomes more adversarial the T- advantage grows:
T-PAR saturation 0.30 vs PAR 0.25 (+20%).
"""

from conftest import regen


def test_fig11_mixed2575_g17(benchmark):
    result = regen(benchmark, "fig11")
    sat = result.data["saturation"]
    assert sat["T-PAR"] >= 0.9 * sat["PAR"]
    # more adversarial -> lower absolute saturation than MIXED(75,25)
    assert sat["PAR"] < 0.6
