"""Ablation: the paper's LP monotonicity fix.

The paper reports that the unmodified Model 3 over-estimates throughput
when only a small share of 5/6-hop paths is present; the fix caps the
rate of longer paths by that of shorter ones.
"""

from repro.experiments.ablations import abl_monotonic


def test_abl_monotonic(benchmark):
    result = benchmark.pedantic(abl_monotonic, rounds=1, iterations=1)
    print()
    print(result)
    d = result.data
    # the fix reduces the estimate for partial long-path sets
    assert d["30% 5-hop"]["monotonic"] <= d["30% 5-hop"]["free"]
    # and changes nothing for the full set (constraint satisfiable freely)
    assert abs(d["all VLB"]["monotonic"] - d["all VLB"]["free"]) < 1e-6
    # uniform split is the most conservative model
    for row in d.values():
        assert row["uniform"] <= row["monotonic"] + 1e-9
