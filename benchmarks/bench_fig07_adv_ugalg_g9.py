"""Figure 7: latency vs load for UGAL-G/T-UGAL-G under adversarial
shift(2,0) on dfly(4,8,4,9).

Paper: 12.9% lower latency at 0.1 load; saturation 0.30 vs 0.23 (+30%).
"""

from conftest import regen


def test_fig07_adv_ugalg_g9(benchmark):
    result = regen(benchmark, "fig07")
    sat = result.data["saturation"]
    assert sat["T-UGAL-G"] >= 0.95 * sat["UGAL-G"]
    curves = result.data["curves"]
    base = dict(curves["UGAL-G"])
    t = dict(curves["T-UGAL-G"])
    common = sorted(set(base) & set(t))
    assert common
    # latency reduction at low load (the paper's headline)
    assert t[common[0]] < base[common[0]]
