"""Built-in registrations: every shipped pattern, policy, variant, topology.

Importing this module (which ``repro.spec``'s package init does eagerly)
fills :data:`~repro.spec.registry.TRAFFIC_REGISTRY`,
:data:`~repro.spec.registry.POLICY_REGISTRY`,
:data:`~repro.spec.registry.ROUTING_REGISTRY`, and
:data:`~repro.spec.registry.TOPOLOGY_REGISTRY` with the package's own
kinds.  Third-party code registers additional kinds the same way -- see
``docs/architecture.md`` for a walkthrough.

Also home of :func:`resolve_routing`, the single place that validates
routing-variant names (including ``t-`` prefixes), so the CLI, the spec
layer, and ``make_routing`` all reject bad variants with the same words.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.routing.pathset import (
    AllVlbPolicy,
    ExcludingPolicy,
    ExplicitPathSet,
    HopClassPolicy,
    OrderedVlbPolicy,
    StrategicFiveHopPolicy,
)
from repro.routing.serialization import policy_from_dict, policy_to_dict
from repro.sim.strategies import (
    MinimalStrategy,
    ParStrategy,
    RoutingStrategy,
    UgalGlobalStrategy,
    UgalLocalStrategy,
    ValiantStrategy,
)
from repro.spec.registry import (
    POLICY_REGISTRY,
    ROUTING_REGISTRY,
    RegistryEntry,
    SpecError,
    TOPOLOGY_REGISTRY,
    TRAFFIC_REGISTRY,
)
from repro.topology.cascade import CascadeDragonfly
from repro.topology.dragonfly import Dragonfly
from repro.topology.fullmesh import FullMesh
from repro.traffic.mixed import Mixed, TimeMixed
from repro.traffic.patterns import (
    DiscoveredPermutation,
    GroupSwitchPermutation,
    RandomPermutation,
    Shift,
    UniformRandom,
)

__all__ = ["resolve_routing", "strategy_for"]


# ---------------------------------------------------------------------------
# Traffic patterns
# ---------------------------------------------------------------------------
def _no_args(what: str):
    def parse(args: str, spec: str) -> Dict[str, Any]:
        if args:
            raise SpecError(f"{what} takes no arguments, got {spec!r}")
        return {}

    return parse


def _parse_shift(args: str, spec: str) -> Dict[str, Any]:
    try:
        parts = [int(x) for x in args.split(",")] if args else [1]
    except ValueError:
        raise SpecError(
            f"bad pattern spec {spec!r}: shift needs DG[,DS]"
        ) from None
    if len(parts) > 2:
        raise SpecError(f"bad pattern spec {spec!r}: shift needs DG[,DS]")
    return {"dg": parts[0], "ds": parts[1] if len(parts) > 1 else 0}


def _parse_seed_only(what: str):
    def parse(args: str, spec: str) -> Dict[str, Any]:
        try:
            return {"seed": int(args) if args else 0}
        except ValueError:
            raise SpecError(
                f"bad pattern spec {spec!r}: {what} takes an integer SEED"
            ) from None

    return parse


def _parse_mix(args: str, spec: str) -> Dict[str, Any]:
    parts = args.split(",") if args else []
    try:
        if len(parts) not in (2, 3):
            raise ValueError
        ur, adv = float(parts[0]), float(parts[1])
        seed = int(parts[2]) if len(parts) > 2 else 0
    except ValueError:
        raise SpecError(
            f"bad pattern spec {spec!r}: need UR,ADV[,SEED]"
        ) from None
    return {
        "ur_percent": ur,
        "adv_percent": adv,
        "seed": seed,
        # the mini-language always uses the paper's default adversary
        "adv": {"kind": "shift", "args": {"dg": 1, "ds": 0}},
    }


def _build_mix(cls):
    def build(args: Dict[str, Any], topo: Dragonfly) -> Any:
        adv = args.get("adv")
        adv_pattern = (
            TRAFFIC_REGISTRY.build(adv["kind"], adv.get("args", {}), topo)
            if adv
            else None
        )
        return cls(
            topo,
            args["ur_percent"],
            args["adv_percent"],
            adv=adv_pattern,
            seed=args.get("seed", 0),
        )

    return build


def _mix_to_dict(pattern: Any) -> Dict[str, Any]:
    adv_kind, adv_args = TRAFFIC_REGISTRY.spec_of(pattern.adv)
    return {
        "ur_percent": float(pattern.ur_percent),
        "adv_percent": float(pattern.adv_percent),
        "seed": pattern.seed,
        "adv": {"kind": adv_kind, "args": adv_args},
    }


TRAFFIC_REGISTRY.register(RegistryEntry(
    kind="ur",
    build=lambda args, topo: UniformRandom(topo),
    to_dict=lambda p: {},
    parse=_no_args("ur"),
    cls=UniformRandom,
    help="ur",
    example="ur",
))
TRAFFIC_REGISTRY.register(RegistryEntry(
    kind="shift",
    build=lambda args, topo: Shift(topo, args["dg"], args.get("ds", 0)),
    to_dict=lambda p: {"dg": p.dg, "ds": p.ds},
    parse=_parse_shift,
    cls=Shift,
    help="shift:DG[,DS]",
    example="shift:2,0",
))
TRAFFIC_REGISTRY.register(RegistryEntry(
    kind="perm",
    build=lambda args, topo: RandomPermutation(
        topo, seed=args.get("seed", 0)
    ),
    to_dict=lambda p: {"seed": p.seed},
    parse=_parse_seed_only("perm"),
    cls=RandomPermutation,
    help="perm[:SEED]",
    example="perm:7",
))
TRAFFIC_REGISTRY.register(RegistryEntry(
    kind="type2",
    build=lambda args, topo: GroupSwitchPermutation(
        topo, seed=args.get("seed", 0)
    ),
    to_dict=lambda p: {"seed": p.seed},
    parse=_parse_seed_only("type2"),
    cls=GroupSwitchPermutation,
    help="type2[:SEED]",
    example="type2:3",
))
TRAFFIC_REGISTRY.register(RegistryEntry(
    # dict-only kind (like the "excluding"/"explicit" policies): found
    # adversaries are saved as JSON specs by `repro adversary --out` and
    # loaded back with `--pattern @file.json`; identity is the dest map
    kind="discovered",
    build=lambda args, topo: DiscoveredPermutation(topo, args["dest"]),
    to_dict=lambda p: {"dest": [int(d) for d in p.dest_map]},
    cls=DiscoveredPermutation,
    help="@file.json (a pattern saved by 'adversary --out')",
))
TRAFFIC_REGISTRY.register(RegistryEntry(
    kind="mixed",
    build=_build_mix(Mixed),
    to_dict=_mix_to_dict,
    parse=_parse_mix,
    cls=Mixed,
    help="mixed:UR,ADV[,SEED]",
    example="mixed:75,25",
))
TRAFFIC_REGISTRY.register(RegistryEntry(
    kind="tmixed",
    build=_build_mix(TimeMixed),
    to_dict=_mix_to_dict,
    parse=_parse_mix,
    cls=TimeMixed,
    help="tmixed:UR,ADV[,SEED]",
    example="tmixed:50,50",
))


# ---------------------------------------------------------------------------
# Path policies
# ---------------------------------------------------------------------------
def _parse_hopclass(args: str, spec: str) -> Dict[str, Any]:
    parts = args.split(",") if args else []
    if not parts:
        raise SpecError("hopclass needs L[,FRAC], e.g. hopclass:4,0.6")
    try:
        full = int(parts[0])
        frac = float(parts[1]) if len(parts) > 1 else 0.0
        seed = int(parts[2]) if len(parts) > 2 else 0
        if len(parts) > 3:
            raise ValueError
    except ValueError:
        raise SpecError(
            f"bad policy spec {spec!r}: hopclass needs L[,FRAC[,SEED]]"
        ) from None
    return {"full_hops": full, "extra_fraction": frac, "seed": seed}


def _dict_only_policy(kind: str):
    """Entry codecs for policies with no mini-language (dict/JSON only)."""
    def build(args: Dict[str, Any]) -> Any:
        return policy_from_dict({"kind": kind, **args})

    def to_dict(policy: Any) -> Dict[str, Any]:
        data = policy_to_dict(policy)
        data.pop("kind")
        return data

    return build, to_dict


_build_excluding, _excluding_to_dict = _dict_only_policy("excluding")
_build_explicit, _explicit_to_dict = _dict_only_policy("explicit")

POLICY_REGISTRY.register(RegistryEntry(
    kind="all",
    build=lambda args: AllVlbPolicy(),
    to_dict=lambda p: {},
    parse=_no_args("policy 'all'"),
    cls=AllVlbPolicy,
    help="all",
    example="all",
))
POLICY_REGISTRY.register(RegistryEntry(
    kind="hopclass",
    build=lambda args: HopClassPolicy(
        args["full_hops"],
        args.get("extra_fraction", 0.0),
        seed=args.get("seed", 0),
    ),
    to_dict=lambda p: {
        "full_hops": p.full_hops,
        "extra_fraction": float(p.extra_fraction),
        "seed": p.seed,
    },
    parse=_parse_hopclass,
    cls=HopClassPolicy,
    help="hopclass:L[,FRAC]",
    example="hopclass:4,0.6",
))
POLICY_REGISTRY.register(RegistryEntry(
    kind="strategic",
    build=lambda args: StrategicFiveHopPolicy(args.get("order", "2+3")),
    to_dict=lambda p: {"order": p.order},
    parse=lambda args, spec: {"order": args or "2+3"},
    cls=StrategicFiveHopPolicy,
    help="strategic:2+3|3+2",
    example="strategic:2+3",
))
def _parse_ordered(args: str, spec: str) -> Dict[str, Any]:
    parts = args.split(",") if args else []
    try:
        frac = float(parts[0]) if parts else 1.0
        seed = int(parts[1]) if len(parts) > 1 else 0
        if len(parts) > 2:
            raise ValueError
    except ValueError:
        raise SpecError(
            f"bad policy spec {spec!r}: ordered needs [FRAC[,SEED]]"
        ) from None
    return {"fraction": frac, "seed": seed}


POLICY_REGISTRY.register(RegistryEntry(
    kind="ordered",
    build=lambda args: OrderedVlbPolicy(
        fraction=args.get("fraction", 1.0), seed=args.get("seed", 0)
    ),
    to_dict=lambda p: {"fraction": float(p.fraction), "seed": p.seed},
    parse=_parse_ordered,
    cls=OrderedVlbPolicy,
    help="ordered[:FRAC]",
    example="ordered:0.5",
))
POLICY_REGISTRY.register(RegistryEntry(
    kind="excluding",
    build=_build_excluding,
    to_dict=_excluding_to_dict,
    cls=ExcludingPolicy,
))
POLICY_REGISTRY.register(RegistryEntry(
    kind="explicit",
    build=_build_explicit,
    to_dict=_explicit_to_dict,
    cls=ExplicitPathSet,
))


# ---------------------------------------------------------------------------
# Topologies
# ---------------------------------------------------------------------------
def _parse_dfly(args: str, spec: str) -> Dict[str, Any]:
    try:
        p, a, h, g = (int(x) for x in args.split(","))
    except ValueError:
        raise SpecError(
            f"bad topology spec {spec!r}: dfly needs P,A,H,G"
        ) from None
    return {"p": p, "a": a, "h": h, "g": g, "arrangement": "absolute"}


def _parse_cascade(args: str, spec: str) -> Dict[str, Any]:
    try:
        p, a, h, g, rows, cols = (int(x) for x in args.split(","))
    except ValueError:
        raise SpecError(
            f"bad topology spec {spec!r}: cascade needs P,A,H,G,ROWS,COLS"
        ) from None
    return {
        "p": p, "a": a, "h": h, "g": g,
        "arrangement": "absolute", "rows": rows, "cols": cols,
    }


def _parse_fullmesh(args: str, spec: str) -> Dict[str, Any]:
    try:
        parts = [int(x) for x in args.split(",")] if args else []
        if not 1 <= len(parts) <= 2:
            raise ValueError
    except ValueError:
        raise SpecError(
            f"bad topology spec {spec!r}: full-mesh needs N[,P]"
        ) from None
    return {"n": parts[0], "p": parts[1] if len(parts) > 1 else 1}


TOPOLOGY_REGISTRY.register(RegistryEntry(
    kind="dfly",
    build=lambda args: Dragonfly(
        args["p"], args["a"], args["h"], args["g"],
        arrangement=args.get("arrangement", "absolute"),
    ),
    to_dict=lambda t: {
        "p": t.p, "a": t.a, "h": t.h, "g": t.g,
        "arrangement": t.arrangement,
    },
    parse=_parse_dfly,
    cls=Dragonfly,
    help="dfly:P,A,H,G (or bare P,A,H,G)",
    example="dfly:4,8,4,9",
))
TOPOLOGY_REGISTRY.register(RegistryEntry(
    kind="cascade",
    build=lambda args: CascadeDragonfly(
        args["p"], args["a"], args["h"], args["g"],
        arrangement=args.get("arrangement", "absolute"),
        rows=args["rows"], cols=args["cols"],
    ),
    to_dict=lambda t: {
        "p": t.p, "a": t.a, "h": t.h, "g": t.g,
        "arrangement": t.arrangement, "rows": t.rows, "cols": t.cols,
    },
    parse=_parse_cascade,
    cls=CascadeDragonfly,
    help="cascade:P,A,H,G,ROWS,COLS",
    example="cascade:2,4,2,5,2,2",
))
TOPOLOGY_REGISTRY.register(RegistryEntry(
    kind="full-mesh",
    build=lambda args: FullMesh(args["n"], p=args.get("p", 1)),
    to_dict=lambda t: {"n": t.n, "p": t.p},
    parse=_parse_fullmesh,
    cls=FullMesh,
    help="full-mesh:N[,P]",
    example="full-mesh:16,4",
))


# ---------------------------------------------------------------------------
# Routing variants
# ---------------------------------------------------------------------------
def _routing_entry(
    kind: str, strategy_cls: type, accepts_policy: bool
) -> RegistryEntry:
    return RegistryEntry(
        kind=kind,
        build=lambda args: strategy_cls(),
        to_dict=lambda s: {},
        parse=_no_args(f"routing variant {kind!r}"),
        cls=strategy_cls,
        help=kind,
        example=kind,
        accepts_policy=accepts_policy,
    )


ROUTING_REGISTRY.register(_routing_entry("min", MinimalStrategy, False))
ROUTING_REGISTRY.register(_routing_entry("vlb", ValiantStrategy, False))
ROUTING_REGISTRY.register(_routing_entry("ugal-l", UgalLocalStrategy, True))
ROUTING_REGISTRY.register(_routing_entry("ugal-g", UgalGlobalStrategy, True))
ROUTING_REGISTRY.register(_routing_entry("par", ParStrategy, True))


def resolve_routing(
    variant: str, *, has_policy: Optional[bool] = None
) -> Tuple[str, bool]:
    """Validate a routing-variant name; return ``(base, is_t_variant)``.

    The one shared gate for ``t-`` prefixes: only variants registered with
    ``accepts_policy`` have a T- form (``t-min``/``t-vlb`` are rejected,
    they have no custom-policy semantics), and a T- variant given
    ``has_policy=False`` is an error.  Pass ``has_policy=None`` to skip
    the policy-presence check.
    """
    name = variant.lower()
    custom = name.startswith("t-")
    base = name[2:] if custom else name
    if base not in ROUTING_REGISTRY:
        plain = list(ROUTING_REGISTRY.kinds())
        t_forms = [
            f"t-{e.kind}" for e in ROUTING_REGISTRY if e.accepts_policy
        ]
        raise SpecError(
            f"unknown routing variant {variant!r}: choose from "
            f"{', '.join(plain + t_forms)}"
        )
    if custom and not ROUTING_REGISTRY.get(base).accepts_policy:
        t_forms = [
            f"t-{e.kind}" for e in ROUTING_REGISTRY if e.accepts_policy
        ]
        raise SpecError(
            f"unknown routing variant {variant!r}: only variants with "
            f"custom-policy support have a T- form "
            f"({', '.join(t_forms)})"
        )
    if custom and has_policy is False:
        raise SpecError(
            f"{variant} is a T-UGAL variant and needs a custom policy"
        )
    return base, custom


def strategy_for(variant: str) -> RoutingStrategy:
    """The registered strategy object for a *plain* variant name."""
    entry = ROUTING_REGISTRY.get(variant)
    strategy = entry.build({})
    if not isinstance(strategy, RoutingStrategy):
        raise SpecError(
            f"routing variant {variant!r} built a "
            f"{type(strategy).__name__}, not a RoutingStrategy"
        )
    return strategy
