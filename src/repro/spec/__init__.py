"""Declarative run specifications and the pattern/policy/routing registries.

The layer sits *above* the simulator: ``repro.sim`` never imports it at
module scope (the spec layer imports sim modules, so the reverse edge
must stay lazy).  Importing this package registers every built-in kind.

Typical use::

    from repro.spec import RunSpec, PatternSpec, TopologySpec

    spec = RunSpec(
        topology=TopologySpec.parse("4,8,4,9"),
        pattern=PatternSpec.parse("shift:2,0"),
        load=0.1,
        routing="ugal-l",
    )
    result = spec.run()                 # == simulate(spec)
    key = spec.fingerprint()            # SimCache content address
    again = RunSpec.from_dict(spec.to_dict())   # round-trips exactly
"""

from repro.spec.registry import (
    POLICY_REGISTRY,
    ROUTING_REGISTRY,
    Registry,
    RegistryEntry,
    SpecError,
    TOPOLOGY_REGISTRY,
    TRAFFIC_REGISTRY,
)
from repro.spec.builtins import resolve_routing, strategy_for
from repro.spec.specs import (
    ModelSpec,
    PatternSpec,
    PolicySpec,
    RunSpec,
    SPEC_VERSION,
    SuiteSpec,
    SweepSpec,
    TopologySpec,
    canonical_json,
)

__all__ = [
    "ModelSpec",
    "PatternSpec",
    "PolicySpec",
    "POLICY_REGISTRY",
    "Registry",
    "RegistryEntry",
    "ROUTING_REGISTRY",
    "RunSpec",
    "SPEC_VERSION",
    "SpecError",
    "SuiteSpec",
    "SweepSpec",
    "TOPOLOGY_REGISTRY",
    "TopologySpec",
    "TRAFFIC_REGISTRY",
    "canonical_json",
    "resolve_routing",
    "strategy_for",
]
