"""Frozen, canonically-serializable run specifications.

A :class:`RunSpec` is the declarative identity of one ``simulate()``
point: topology, traffic pattern, offered load, routing variant, VLB
policy, :class:`~repro.sim.params.SimParams`, and seed.  It can be

* built from live objects (:meth:`RunSpec.from_objects`),
* parsed from the CLI mini-languages (:meth:`PatternSpec.parse`, ...),
* round-tripped through plain JSON dicts (``to_dict``/``from_dict``), and
* content-addressed (:meth:`RunSpec.fingerprint`, a SHA-256 over the
  canonical JSON form) -- the key of the on-disk result cache and the
  payload shipped to sweep worker processes.

Pattern/policy arguments are stored as canonical JSON *strings*
(``args_json``) so every spec is hashable and usable as a dict key; the
``args`` property decodes them on demand.  ``SweepSpec`` adds a load
ladder, ``SuiteSpec`` names a list of sweeps (the experiments layer
declares each figure as one).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.sim.params import SimParams
from repro.spec.builtins import resolve_routing
from repro.spec.registry import (
    POLICY_REGISTRY,
    SpecError,
    TOPOLOGY_REGISTRY,
    TRAFFIC_REGISTRY,
)
from repro.topology.dragonfly import Dragonfly

__all__ = [
    "ModelSpec",
    "PatternSpec",
    "PolicySpec",
    "RunSpec",
    "SPEC_VERSION",
    "SuiteSpec",
    "SweepSpec",
    "TopologySpec",
    "canonical_json",
]

# Part of every fingerprint.  Bump when the *meaning* of a spec changes
# (field semantics, canonicalization rules), so stale fingerprints can
# never collide with new ones.
SPEC_VERSION = 1


def canonical_json(data: Any) -> str:
    """The canonical JSON form: sorted keys, no whitespace."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _digest(data: Any) -> str:
    return hashlib.sha256(canonical_json(data).encode()).hexdigest()


# ---------------------------------------------------------------------------
# Pattern / policy specs (registry-backed)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PatternSpec:
    """Declarative identity of a traffic pattern: kind + canonical args."""

    kind: str
    args_json: str = "{}"  # repro: identity-key[args]

    @classmethod
    def make(cls, kind: str, **args: Any) -> "PatternSpec":
        TRAFFIC_REGISTRY.get(kind)  # unknown kind -> SpecError
        return cls(kind, canonical_json(args))

    @classmethod
    def parse(cls, spec: str) -> "PatternSpec":
        """From a mini-language string (``shift:2,0``) or ``@file.json``.

        ``@file.json`` (e.g. a pattern saved by ``adversary --out``) is
        read immediately and its *content* embedded in the spec, so the
        spec stays self-contained (and cacheable) even if the file
        changes.  The file carries ``kind`` plus either an ``args`` dict
        or the argument fields inline; extra top-level keys (report,
        manifest) are ignored when ``args`` is present.
        """
        if spec.startswith("@"):
            try:
                with open(spec[1:]) as fh:
                    data = json.load(fh)
            except (OSError, ValueError) as exc:
                raise SpecError(
                    f"cannot read pattern file {spec[1:]!r}: {exc}"
                ) from exc
            if not isinstance(data, dict) or "kind" not in data:
                raise SpecError(
                    f"pattern file {spec[1:]!r} has no 'kind' field"
                )
            args = data.get("args")
            if not isinstance(args, dict):
                args = {k: v for k, v in data.items() if k != "kind"}
            return cls.from_dict({"kind": data["kind"], "args": args})
        kind, args = TRAFFIC_REGISTRY.parse(spec)
        return cls(kind, canonical_json(args))

    @classmethod
    def of(cls, pattern: Any) -> "PatternSpec":
        """From a live pattern object (exact registered types only)."""
        kind, args = TRAFFIC_REGISTRY.spec_of(pattern)
        return cls(kind, canonical_json(args))

    @property
    def args(self) -> Dict[str, Any]:
        return json.loads(self.args_json)

    def build(self, topo: Dragonfly) -> Any:
        """The live pattern bound to ``topo``."""
        return TRAFFIC_REGISTRY.build(self.kind, self.args, topo)

    def with_seed(self, seed: int) -> "PatternSpec":
        """The same spec re-seeded (unchanged for seedless kinds)."""
        args = self.args
        if "seed" not in args:
            return self
        args["seed"] = int(seed)
        return PatternSpec(self.kind, canonical_json(args))

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "args": self.args}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PatternSpec":
        return cls.make(data["kind"], **data.get("args", {}))

    def fingerprint(self) -> str:
        return _digest({"version": SPEC_VERSION, **self.to_dict()})


@dataclass(frozen=True)
class PolicySpec:
    """Declarative identity of a VLB path policy."""

    kind: str
    args_json: str = "{}"  # repro: identity-key[args]

    @classmethod
    def make(cls, kind: str, **args: Any) -> "PolicySpec":
        POLICY_REGISTRY.get(kind)
        return cls(kind, canonical_json(args))

    @classmethod
    def parse(cls, spec: str) -> "PolicySpec":
        """From a mini-language string or ``@file.json``.

        ``@file.json`` (a policy saved by ``tvlb --save``) is read
        immediately and its *content* embedded in the spec, so the spec
        stays self-contained (and cacheable) even if the file changes.
        """
        if spec.startswith("@"):
            try:
                with open(spec[1:]) as fh:
                    data = json.load(fh)
            except (OSError, ValueError) as exc:
                raise SpecError(
                    f"cannot read policy file {spec[1:]!r}: {exc}"
                ) from exc
            if not isinstance(data, dict) or "kind" not in data:
                raise SpecError(
                    f"policy file {spec[1:]!r} has no 'kind' field"
                )
            return cls.from_dict({"kind": data["kind"], "args": {
                k: v for k, v in data.items() if k != "kind"
            }})
        kind, args = POLICY_REGISTRY.parse(spec)
        return cls(kind, canonical_json(args))

    @classmethod
    def of(cls, policy: Any) -> "PolicySpec":
        kind, args = POLICY_REGISTRY.spec_of(policy)
        return cls(kind, canonical_json(args))

    @property
    def args(self) -> Dict[str, Any]:
        return json.loads(self.args_json)

    def build(self) -> Any:
        return POLICY_REGISTRY.build(self.kind, self.args)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "args": self.args}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PolicySpec":
        return cls.make(data["kind"], **data.get("args", {}))

    def fingerprint(self) -> str:
        return _digest({"version": SPEC_VERSION, **self.to_dict()})


# ---------------------------------------------------------------------------
# Topology spec
# ---------------------------------------------------------------------------
# The dragonfly family predates the TOPOLOGY registry; its specs keep the
# original kindless field/dict layout so every existing fingerprint and
# cache key stays byte-identical.  Newer kinds carry their canonical args
# in ``args_json`` and serialize with an explicit ``kind`` key.
_DFLY_FAMILY_KINDS = ("dfly", "cascade")


@dataclass(frozen=True)
class TopologySpec:
    """Declarative identity of a registered topology.

    The ``dfly`` family (plain + Cascade) is stored in the historical
    ``p/a/h/g/arrangement[/rows/cols]`` fields; other registered kinds
    keep those fields as their structural dragonfly-equivalent parameters
    and carry the registry's canonical args in ``args_json``.
    """

    p: int
    a: int
    h: int
    g: int
    arrangement: str = "absolute"
    rows: int = 0
    cols: int = 0
    kind: str = "dfly"
    args_json: str = ""  # repro: identity-key[args]

    @property
    def effective_kind(self) -> str:
        """The registry kind, resolving the historical rows/cols
        convention (nonzero rows/cols on a ``dfly`` spec = Cascade)."""
        if self.kind == "dfly" and (self.rows or self.cols):
            return "cascade"
        return self.kind

    @property
    def args(self) -> Dict[str, Any]:
        """The registry's canonical argument dict for this spec."""
        if self.args_json:
            return json.loads(self.args_json)
        data: Dict[str, Any] = {
            "p": self.p, "a": self.a, "h": self.h, "g": self.g,
            "arrangement": self.arrangement,
        }
        if self.effective_kind == "cascade":
            data["rows"] = self.rows
            data["cols"] = self.cols
        return data

    @classmethod
    def parse(
        cls, spec: str, arrangement: str = "absolute"
    ) -> "TopologySpec":
        """From the CLI forms ``P,A,H,G`` (bare dragonfly, e.g.
        ``4,8,4,9``) or ``KIND:ARGS`` (e.g. ``full-mesh:16,4``)."""
        head = spec.split(":", 1)[0].strip().lower()
        if head not in TOPOLOGY_REGISTRY:
            try:
                p, a, h, g = (int(x) for x in spec.split(","))
            except ValueError:
                raise SpecError(
                    f"bad topology spec {spec!r}: expected P,A,H,G "
                    f"(e.g. 4,8,4,9) or KIND:ARGS "
                    f"({TOPOLOGY_REGISTRY.help_text()})"
                ) from None
            return cls(p, a, h, g, arrangement)
        kind, args = TOPOLOGY_REGISTRY.parse(spec)
        if "arrangement" in args:
            args["arrangement"] = arrangement
        return cls.of(TOPOLOGY_REGISTRY.build(kind, args))

    @classmethod
    def of(cls, topo: Dragonfly) -> "TopologySpec":
        """From a live topology (exactly registered types only)."""
        kind, args = TOPOLOGY_REGISTRY.spec_of(topo)
        if kind in _DFLY_FAMILY_KINDS:
            return cls(
                args["p"], args["a"], args["h"], args["g"],
                args.get("arrangement", "absolute"),
                rows=args.get("rows", 0), cols=args.get("cols", 0),
            )
        return cls(
            topo.p, topo.a, topo.h, topo.g, topo.arrangement,
            kind=kind, args_json=canonical_json(args),
        )

    def build(self) -> Dragonfly:
        return TOPOLOGY_REGISTRY.build(self.effective_kind, self.args)

    def to_dict(self) -> Dict[str, Any]:
        if self.effective_kind in _DFLY_FAMILY_KINDS:
            # historical kindless layout (fingerprint/cache compatible)
            data: Dict[str, Any] = {
                "p": self.p, "a": self.a, "h": self.h, "g": self.g,
                "arrangement": self.arrangement,
            }
            if self.rows or self.cols:
                data["rows"] = self.rows
                data["cols"] = self.cols
            return data
        return {"kind": self.kind, "args": self.args}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TopologySpec":
        if "kind" in data:
            kind = data["kind"]
            args = data.get("args", {})
            return cls.of(TOPOLOGY_REGISTRY.build(kind, args))
        return cls(
            data["p"], data["a"], data["h"], data["g"],
            data.get("arrangement", "absolute"),
            rows=data.get("rows", 0), cols=data.get("cols", 0),
        )

    def fingerprint(self) -> str:
        return _digest({"version": SPEC_VERSION, **self.to_dict()})


# ---------------------------------------------------------------------------
# Run / sweep / suite specs
# ---------------------------------------------------------------------------
def _params_from_dict(data: Dict[str, Any]) -> SimParams:
    # "obs" and "engine" are identity-neutral (never serialized into a
    # spec dict, see SimParams.identity_dict), so they are not accepted
    # back either
    known = {f.name for f in dataclasses.fields(SimParams)} - {"obs", "engine"}
    extra = set(data) - known
    if extra:
        raise SpecError(
            f"unknown SimParams fields {sorted(extra)}"
        )
    return SimParams(**data)


@dataclass(frozen=True)
class RunSpec:
    """One ``simulate()`` point, fully declaratively."""

    topology: TopologySpec
    pattern: PatternSpec
    load: float
    routing: str = "ugal-l"
    policy: Optional[PolicySpec] = None
    params: SimParams = field(default_factory=SimParams)
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "routing", self.routing.lower())
        object.__setattr__(self, "load", float(self.load))
        object.__setattr__(self, "seed", int(self.seed))
        # shared CLI/API validation: unknown variants and bad T- prefixes
        # fail here with the registry's error message
        resolve_routing(self.routing, has_policy=self.policy is not None)

    @classmethod
    def from_objects(
        cls,
        topo: Dragonfly,
        pattern: Any,
        load: float,
        *,
        routing: str = "ugal-l",
        policy: Any = None,
        params: Optional[SimParams] = None,
        seed: int = 0,
    ) -> "RunSpec":
        """From the live objects of a legacy ``simulate(...)`` call.

        Raises :class:`SpecError` when any component is not an exactly
        registered type (ad-hoc pattern/policy subclasses have no
        trustworthy declarative identity).
        """
        return cls(
            topology=TopologySpec.of(topo),
            pattern=PatternSpec.of(pattern),
            load=load,
            routing=routing,
            policy=PolicySpec.of(policy) if policy is not None else None,
            params=params if params is not None else SimParams(),
            seed=seed,
        )

    def replace(self, **changes: Any) -> "RunSpec":
        return dataclasses.replace(self, **changes)

    def run(self) -> Any:
        """Execute this point: equivalent to ``simulate(self)``."""
        from repro.sim.engine import simulate

        return simulate(self)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": SPEC_VERSION,
            "topology": self.topology.to_dict(),
            "pattern": self.pattern.to_dict(),
            "load": self.load,
            "routing": self.routing,
            "policy": self.policy.to_dict() if self.policy else None,
            "params": self.params.identity_dict(),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunSpec":
        policy = data.get("policy")
        return cls(
            topology=TopologySpec.from_dict(data["topology"]),
            pattern=PatternSpec.from_dict(data["pattern"]),
            load=data["load"],
            routing=data.get("routing", "ugal-l"),
            policy=PolicySpec.from_dict(policy) if policy else None,
            params=_params_from_dict(data.get("params", {})),
            seed=data.get("seed", 0),
        )

    def fingerprint(self) -> str:
        """Stable content address (the result-cache key material)."""
        return _digest(self.to_dict())


@dataclass(frozen=True)
class ModelSpec:
    """One LP throughput-model solve, fully declaratively.

    The model analogue of :class:`RunSpec`: topology + pattern (whose
    demand matrix is the LP's right-hand structure) + policy (translated
    to leg-split class weights) + solver options.  ``engine`` is part of
    the identity on purpose -- fast-path and legacy results agree only to
    numerical tolerance, so they must never share a cache entry.
    """

    topology: TopologySpec
    pattern: PatternSpec
    policy: PolicySpec
    mode: str = "uniform"
    monotonic: bool = True
    max_descriptors: Optional[int] = None
    seed: int = 0
    engine: str = "fast"

    def __post_init__(self) -> None:
        if self.mode not in ("uniform", "free"):
            raise SpecError(f"unknown model mode {self.mode!r}")
        if self.engine not in ("fast", "legacy"):
            raise SpecError(f"unknown model engine {self.engine!r}")
        object.__setattr__(self, "seed", int(self.seed))

    @classmethod
    def from_objects(
        cls,
        topo: Dragonfly,
        pattern: Any,
        policy: Any,
        *,
        mode: str = "uniform",
        monotonic: bool = True,
        max_descriptors: Optional[int] = None,
        seed: int = 0,
        engine: str = "fast",
    ) -> "ModelSpec":
        """From live objects; :class:`SpecError` on unregistered types."""
        return cls(
            topology=TopologySpec.of(topo),
            pattern=PatternSpec.of(pattern),
            policy=PolicySpec.of(policy),
            mode=mode,
            monotonic=monotonic,
            max_descriptors=max_descriptors,
            seed=seed,
            engine=engine,
        )

    def solve(self) -> Any:
        """Execute this solve from scratch (the worker entry point).

        Builds every component fresh; callers that amortize structural
        state across solves should go through
        :class:`repro.perf.executor.SweepExecutor` instead, whose worker
        memoizes per-topology solver state.
        """
        from repro.model.fastpath import FastModel
        from repro.model.lp_model import model_throughput

        topo = self.topology.build()
        demand = self.pattern.build(topo).demand_matrix()
        policy = self.policy.build()
        if self.engine == "fast":
            return FastModel(
                topo, max_descriptors=self.max_descriptors, seed=self.seed
            ).solve(
                demand,
                policy=policy,
                mode=self.mode,
                monotonic=self.monotonic,
            )
        from repro.model.pathstats import PathStatsCache

        return model_throughput(
            topo,
            demand,
            policy=policy,
            cache=PathStatsCache(
                topo, max_descriptors=self.max_descriptors, seed=self.seed
            ),
            mode=self.mode,
            monotonic=self.monotonic,
        )

    def replace(self, **changes: Any) -> "ModelSpec":
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": SPEC_VERSION,
            "topology": self.topology.to_dict(),
            "pattern": self.pattern.to_dict(),
            "policy": self.policy.to_dict(),
            "mode": self.mode,
            "monotonic": self.monotonic,
            "max_descriptors": self.max_descriptors,
            "seed": self.seed,
            "engine": self.engine,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModelSpec":
        return cls(
            topology=TopologySpec.from_dict(data["topology"]),
            pattern=PatternSpec.from_dict(data["pattern"]),
            policy=PolicySpec.from_dict(data["policy"]),
            mode=data.get("mode", "uniform"),
            monotonic=data.get("monotonic", True),
            max_descriptors=data.get("max_descriptors"),
            seed=data.get("seed", 0),
            engine=data.get("engine", "fast"),
        )

    def fingerprint(self) -> str:
        """Stable content address (the model-cache key material)."""
        return _digest(self.to_dict())


@dataclass(frozen=True)
class SweepSpec:
    """A load ladder over one (topology, pattern, routing, ...) point."""

    topology: TopologySpec
    pattern: PatternSpec
    loads: Tuple[float, ...]
    routing: str = "ugal-l"
    policy: Optional[PolicySpec] = None
    params: SimParams = field(default_factory=SimParams)
    seed: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "routing", self.routing.lower())
        object.__setattr__(
            self, "loads", tuple(float(x) for x in self.loads)
        )
        resolve_routing(self.routing, has_policy=self.policy is not None)

    def run_specs(self) -> Tuple[RunSpec, ...]:
        """One :class:`RunSpec` per load of the ladder."""
        return tuple(
            RunSpec(
                topology=self.topology,
                pattern=self.pattern,
                load=load,
                routing=self.routing,
                policy=self.policy,
                params=self.params,
                seed=self.seed,
            )
            for load in self.loads
        )

    def replace(self, **changes: Any) -> "SweepSpec":
        return dataclasses.replace(self, **changes)

    def sweep(self, **kwargs: Any) -> Any:
        """Execute the ladder: ``latency_vs_load(self, **kwargs)``."""
        from repro.sim.sweep import latency_vs_load

        return latency_vs_load(self, **kwargs)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": SPEC_VERSION,
            "topology": self.topology.to_dict(),
            "pattern": self.pattern.to_dict(),
            "loads": list(self.loads),
            "routing": self.routing,
            "policy": self.policy.to_dict() if self.policy else None,
            "params": self.params.identity_dict(),
            "seed": self.seed,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepSpec":
        policy = data.get("policy")
        return cls(
            topology=TopologySpec.from_dict(data["topology"]),
            pattern=PatternSpec.from_dict(data["pattern"]),
            loads=tuple(data["loads"]),
            routing=data.get("routing", "ugal-l"),
            policy=PolicySpec.from_dict(policy) if policy else None,
            params=_params_from_dict(data.get("params", {})),
            seed=data.get("seed", 0),
            label=data.get("label", ""),
        )

    def fingerprint(self) -> str:
        return _digest(self.to_dict())


@dataclass(frozen=True)
class SuiteSpec:
    """A named collection of sweeps (e.g. one paper figure)."""

    name: str
    sweeps: Tuple[SweepSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "sweeps", tuple(self.sweeps))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": SPEC_VERSION,
            "name": self.name,
            "sweeps": [s.to_dict() for s in self.sweeps],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SuiteSpec":
        return cls(
            name=data["name"],
            sweeps=tuple(
                SweepSpec.from_dict(s) for s in data.get("sweeps", [])
            ),
        )

    def fingerprint(self) -> str:
        return _digest(self.to_dict())
