"""Pluggable registries for traffic patterns, path policies, and routing.

Every "kind" of pattern/policy/routing variant registers one
:class:`RegistryEntry` carrying its constructor, its spec-string parser
(the CLI mini-language), and its canonical-dict codec (the stable
fingerprint basis).  Consumers -- the CLI, the declarative specs of
:mod:`repro.spec.specs`, the result cache, the experiments layer -- all
look kinds up here, so adding a new workload or routing variant is a
registration, not new wiring code.

This module is deliberately dependency-free (stdlib only): it can be
imported from anywhere in the package without creating import cycles.
The built-in entries are registered by :mod:`repro.spec.builtins`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Tuple

__all__ = [
    "POLICY_REGISTRY",
    "Registry",
    "RegistryEntry",
    "ROUTING_REGISTRY",
    "SpecError",
    "TOPOLOGY_REGISTRY",
    "TRAFFIC_REGISTRY",
]


class SpecError(ValueError):
    """A spec string, spec dict, or live object could not be interpreted.

    Subclasses :class:`ValueError` so legacy ``except ValueError`` sites
    (and tests) keep working; the CLI converts it into a clean
    ``SystemExit`` with the identical message, so the Python API and the
    command line report errors with the same words.
    """


# A parser receives (args, full_spec): the text after the first ":" and
# the full spec string (for error messages).  It returns the canonical
# argument dict.
SpecParser = Callable[[str, str], Dict[str, Any]]


@dataclass(frozen=True)
class RegistryEntry:
    """One registered kind: constructor + parser + canonical-dict codec."""

    kind: str
    # (canonical args dict, *context) -> live object.  Patterns receive
    # the topology as context; policies and routing strategies take none.
    build: Callable[..., Any]
    # live object -> canonical args dict (inverse of build); None when the
    # kind has no live-object representation to recover a spec from.
    to_dict: Optional[Callable[[Any], Dict[str, Any]]] = None
    # mini-language parser; None for dict-only kinds (no spec string).
    parse: Optional[SpecParser] = None
    # exact type used for reverse lookup (spec_of); subclasses do NOT
    # match -- an ad-hoc subclass may change behaviour the spec cannot see.
    cls: Optional[type] = None
    # mini-language synopsis, e.g. "shift:DG[,DS]"
    help: str = ""
    # a parseable example spec string (registry self-check material)
    example: str = ""
    # routing-only: may this variant take a custom VLB path policy
    # (i.e. does it have a T- form)?
    accepts_policy: bool = False


class Registry:
    """An ordered mapping of kind name -> :class:`RegistryEntry`."""

    def __init__(self, name: str, what: str) -> None:
        self.name = name  # e.g. "TRAFFIC_REGISTRY" (for error messages)
        self.what = what  # e.g. "pattern"
        self._entries: Dict[str, RegistryEntry] = {}
        self._by_cls: Dict[type, RegistryEntry] = {}

    # ------------------------------------------------------------------
    def register(self, entry: RegistryEntry) -> RegistryEntry:
        """Add an entry; kind names and classes must be unique."""
        if entry.kind in self._entries:
            raise ValueError(
                f"{self.name}: kind {entry.kind!r} is already registered"
            )
        if entry.cls is not None and entry.cls in self._by_cls:
            raise ValueError(
                f"{self.name}: class {entry.cls.__name__} is already "
                f"registered (as {self._by_cls[entry.cls].kind!r})"
            )
        self._entries[entry.kind] = entry
        if entry.cls is not None:
            self._by_cls[entry.cls] = entry
        return entry

    # ------------------------------------------------------------------
    def kinds(self) -> Tuple[str, ...]:
        """Registered kind names in registration order."""
        return tuple(self._entries)

    def get(self, kind: str) -> RegistryEntry:
        """The entry for a kind, or :class:`SpecError` when unknown."""
        entry = self._entries.get(kind)
        if entry is None:
            raise SpecError(
                f"unknown {self.what} {kind!r}: choose from "
                f"{', '.join(self.kinds())}"
            )
        return entry

    def help_text(self) -> str:
        """The mini-language synopsis of every parseable kind."""
        return " | ".join(
            e.help or e.kind for e in self._entries.values() if e.parse
        )

    # ------------------------------------------------------------------
    def parse(self, spec: str) -> Tuple[str, Dict[str, Any]]:
        """Parse a mini-language spec string into (kind, canonical args)."""
        name, _, args = spec.partition(":")
        name = name.strip().lower()
        entry = self._entries.get(name)
        if entry is None or entry.parse is None:
            raise SpecError(
                f"unknown {self.what} {spec!r}: use {self.help_text()}"
            )
        return name, entry.parse(args, spec)

    def spec_of(self, obj: Any) -> Tuple[str, Dict[str, Any]]:
        """Recover (kind, canonical args) from a live object.

        Dispatch is on the *exact* type: instances of unregistered
        subclasses raise :class:`SpecError` rather than risking a spec
        that does not describe their actual behaviour.
        """
        entry = self._by_cls.get(type(obj))
        if entry is None or entry.to_dict is None:
            raise SpecError(
                f"no registered spec for {self.what} type "
                f"{type(obj).__name__}"
            )
        return entry.kind, entry.to_dict(obj)

    def build(self, kind: str, args: Mapping[str, Any], *context: Any) -> Any:
        """Construct the live object for a kind from its canonical args."""
        entry = self.get(kind)
        try:
            return entry.build(dict(args), *context)
        except SpecError:
            raise
        except (TypeError, ValueError, KeyError) as exc:
            raise SpecError(
                f"invalid {self.what} {kind!r} arguments "
                f"{dict(args)!r}: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    def __contains__(self, kind: object) -> bool:
        return kind in self._entries

    def __iter__(self) -> Iterator[RegistryEntry]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}({', '.join(self.kinds())})"


TRAFFIC_REGISTRY = Registry("TRAFFIC_REGISTRY", "pattern")
POLICY_REGISTRY = Registry("POLICY_REGISTRY", "policy")
ROUTING_REGISTRY = Registry("ROUTING_REGISTRY", "routing variant")
TOPOLOGY_REGISTRY = Registry("TOPOLOGY_REGISTRY", "topology")
