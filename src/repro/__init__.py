"""repro -- reproduction of "Topology-Custom UGAL Routing on Dragonfly" (SC '19).

Public API re-exports the main entry points of each subsystem:

* :class:`repro.topology.Dragonfly` -- the ``dfly(p,a,h,g)`` topology.
* :mod:`repro.routing` -- MIN/VLB path computation and path policies.
* :mod:`repro.traffic` -- synthetic traffic patterns.
* :mod:`repro.model` -- the LP throughput model (Step-1 coarse grain).
* :func:`repro.core.compute_tvlb` -- Algorithm 1, the paper's contribution.
* :mod:`repro.sim` -- the cycle-level network simulator.
"""

from repro.topology import Dragonfly

__version__ = "1.0.0"

__all__ = ["Dragonfly", "__version__"]
