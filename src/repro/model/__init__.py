"""LP throughput model (Step 1 of Algorithm 1).

A reconstruction of the modified "Model No. 3" of Mollah et al. (PMBS '17)
that the paper uses for coarse-grain T-VLB estimation, with the paper's
added monotonicity fix taken to its limiting form: within the candidate VLB
set of a switch pair, every path carries the *same* rate -- exactly what
UGAL's uniform random candidate selection produces at adversarial
saturation, and the strictest version of "a longer VLB path never gets a
larger rate than a shorter one".

The model maximizes the per-node injection rate ``lambda`` subject to unit
channel capacities, with each demand pair free to split between its MIN
paths (equal split) and its candidate VLB set (equal split).
"""

from repro.model.pathstats import PairPathStats, PathStatsCache
from repro.model.lp_model import ModelResult, model_throughput
from repro.model.fastpath import (
    BlockCache,
    FastModel,
    PairBlock,
    fast_model_throughput,
)
from repro.model.symmetry import RotationSymmetry
from repro.model.sweep import SweepPoint, step1_sweep

__all__ = [
    "BlockCache",
    "FastModel",
    "PairBlock",
    "PairPathStats",
    "PathStatsCache",
    "ModelResult",
    "RotationSymmetry",
    "fast_model_throughput",
    "model_throughput",
    "SweepPoint",
    "step1_sweep",
]
