"""Closed-form capacity bounds for dragonfly routing.

These bounds follow from flow conservation alone and hold for *any*
routing scheme whose minimal paths cross one global link and whose
non-minimal paths cross two (i.e. MIN and VLB on dragonfly):

For a group-level shift/derangement pattern (every group sends all its
``a*p*r`` packets/cycle to one other group), with ``m`` global links per
group pair and a fraction ``f`` routed minimally:

* direct-link constraint: ``r * f <= m / (a*p)``
  (only MIN traffic can use the ``m`` direct channels);
* global-channel budget: ``r * (f + 2*(1-f)) <= (a*h) / (a*p)``
  (MIN consumes one global traversal, VLB two; each group contributes
  ``a*h`` directed global channels in the sending direction).

Maximizing ``r`` gives the optimum at ``f* = 2m / (a*h + m)`` and

    r_max = (a*h + m) / (2 * a * p).

For ``dfly(4,8,4,9)`` this is 36/64 = 0.5625 -- the value both our LP and
the paper's "all VLB" Figure-4 datapoint (0.56) sit at.  Notably the
paper's best datapoint (0.58 at "60% 5-hop") *exceeds* this bound, which
is why our capacity model reproduces Figure 4's rise and plateau but not
its small interior peak (see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.topology.dragonfly import Dragonfly

__all__ = [
    "shift_saturation_bound",
    "min_only_shift_bound",
    "optimal_min_fraction",
    "uniform_random_bound",
]


def min_only_shift_bound(topo: Dragonfly) -> float:
    """Saturation rate of pure MIN routing under a group-level shift.

    All ``a*p`` nodes of a group share the ``m`` direct channels toward
    the destination group: ``r <= m / (a*p)``.
    """
    m = topo.links_per_group_pair
    return m / (topo.a * topo.p)


def optimal_min_fraction(topo: Dragonfly) -> float:
    """MIN fraction ``f*`` at the shift capacity optimum: ``2m/(a*h + m)``."""
    m = topo.links_per_group_pair
    return 2 * m / (topo.a * topo.h + m)


def shift_saturation_bound(topo: Dragonfly) -> float:
    """Upper bound on per-node throughput under a group-level shift for
    any MIN/VLB mix: ``(a*h + m) / (2*a*p)`` (capped by injection at 1).
    """
    m = topo.links_per_group_pair
    return min(1.0, (topo.a * topo.h + m) / (2 * topo.a * topo.p))


def uniform_random_bound(topo: Dragonfly) -> float:
    """Upper bound on per-node throughput under uniform random traffic
    with minimal routing.

    A fraction ``(g-1)*a*p / (g*a*p - 1)`` of a node's packets leave the
    group and cross exactly one of its ``a*h`` (per-group, per-direction)
    global channels; intra-group and ejection constraints are weaker for
    balanced dragonflies.
    """
    n = topo.num_nodes
    if n <= 1 or topo.g == 1:
        return 1.0
    inter_group = (topo.g - 1) * topo.a * topo.p / (n - 1)
    if inter_group == 0.0:
        return 1.0
    global_budget = topo.h / topo.p  # channels per node in each direction
    return min(1.0, global_budget / inter_group)
