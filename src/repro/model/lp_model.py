"""The LP throughput model.

Maximizes the per-node injection rate ``lambda`` (packets/cycle/node) that
the network can carry for a given switch-level demand matrix, when every
demand pair splits its traffic between

* its MIN paths (uniform split -- UGAL draws its single MIN candidate
  uniformly), and
* its candidate VLB set.

Two treatments of the VLB set are provided:

* ``mode="uniform"`` (default): one aggregate VLB rate per pair, spread
  uniformly over the candidate set -- UGAL's random candidate selection at
  adversarial saturation, and the limiting form of the paper's added
  constraint that a longer VLB path never out-rates a shorter one.
* ``mode="free"``: one rate per leg-split class, freely allocated by the LP
  (the original Model-3 behaviour); ``monotonic=True`` adds the paper's
  fix as explicit per-path-rate constraints between consecutive hop
  levels.  ``mode="free", monotonic=False`` reproduces the over-estimation
  the paper reports for sets with few long paths (see the ablation bench).

Channel capacities are 1 packet/cycle; terminal injection/ejection capacity
is ``p`` packets/cycle per switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import coo_matrix

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.manifest import RunManifest

from repro.model.pathstats import PathStatsCache
from repro.routing.pathset import PathPolicy
from repro.topology.dragonfly import Dragonfly

__all__ = ["ModelResult", "model_throughput", "weights_for_policy"]

WeightFn = Callable[[int, int], float]


@dataclass
class ModelResult:
    """Outcome of one LP solve."""

    throughput: float  # saturation injection rate, packets/cycle/node
    min_fraction: float  # share of served traffic routed MIN
    status: str
    num_pairs: int
    # provenance record (repro.obs), excluded from equality: environment
    # fields vary run to run while the solve itself is deterministic
    manifest: Optional["RunManifest"] = field(
        default=None, compare=False, repr=False
    )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ModelResult(throughput={self.throughput:.4f}, "
            f"min_fraction={self.min_fraction:.3f}, pairs={self.num_pairs})"
        )


def weights_for_policy(policy: "PathPolicy") -> WeightFn:
    """Translate a supported PathPolicy into leg-split class weights.

    Supported: AllVlbPolicy, HopClassPolicy, StrategicFiveHopPolicy.  The
    q%-subset of a HopClassPolicy is represented by its expectation
    (fraction q of the class's paths and usage), which is exact in
    expectation over the deterministic hash.

    Policies whose selection is *finer* than leg-split classes --
    ``ExcludingPolicy`` (drops individual channels/descriptors) and
    ``ExplicitPathSet`` (an arbitrary path list) -- cannot be expressed
    as class weights at all; they raise ``ValueError`` so callers never
    silently model the wrong candidate set.  Unknown policy types raise
    ``TypeError`` as before.
    """
    from repro.routing.pathset import (
        AllVlbPolicy,
        ExcludingPolicy,
        ExplicitPathSet,
        HopClassPolicy,
        StrategicFiveHopPolicy,
    )

    if isinstance(policy, (ExcludingPolicy, ExplicitPathSet)):
        raise ValueError(
            f"{type(policy).__name__} selects paths below the leg-split "
            f"class granularity and has no class-weight representation; "
            f"evaluate it with the simulator instead"
        )

    if isinstance(policy, AllVlbPolicy):
        return lambda l1, l2: 1.0
    if isinstance(policy, HopClassPolicy):
        full, frac = policy.full_hops, policy.extra_fraction

        def weight(l1: int, l2: int) -> float:
            hops = l1 + l2
            if hops <= full:
                return 1.0
            if hops == full + 1:
                return frac
            return 0.0

        return weight
    if isinstance(policy, StrategicFiveHopPolicy):
        keep = (2, 3) if policy.order == "2+3" else (3, 2)

        def weight(l1: int, l2: int) -> float:
            if l1 + l2 <= 4:
                return 1.0
            return 1.0 if (l1, l2) == keep else 0.0

        return weight
    raise TypeError(
        f"no class-weight translation for {type(policy).__name__}; "
        f"pass weight_fn explicitly"
    )


def model_throughput(
    topo: Dragonfly,
    demand: np.ndarray,
    weight_fn: Optional[WeightFn] = None,
    *,
    policy: Optional[PathPolicy] = None,
    cache: Optional[PathStatsCache] = None,
    mode: str = "uniform",
    monotonic: bool = True,
    max_descriptors: Optional[int] = None,
) -> ModelResult:
    """Solve the throughput LP for one demand matrix and VLB candidate set.

    ``demand`` is a switch-level matrix (packets/cycle at unit node rate,
    e.g. from ``TrafficPattern.demand_matrix``).  The candidate set is given
    either as ``weight_fn(l1, l2)`` over leg-split classes or as a
    ``policy`` translatable by :func:`weights_for_policy`.
    """
    if mode not in ("uniform", "free"):
        raise ValueError(f"unknown mode {mode!r}")
    exact_policy: Optional[PathPolicy] = None
    if weight_fn is None:
        if policy is None:
            weight_fn = lambda l1, l2: 1.0  # noqa: E731 - all VLB
        else:
            try:
                weight_fn = weights_for_policy(policy)
            except TypeError:
                # no class-weight translation (e.g. OrderedVlbPolicy):
                # enumerate the policy's own per-pair candidate set, so
                # the class table *is* the set and all-ones weights are
                # exact.  ValueError (sub-class-granularity policies)
                # still propagates: those are not modelable at all.
                exact_policy = policy
                weight_fn = lambda l1, l2: 1.0  # noqa: E731
    if cache is None:
        cache = PathStatsCache(topo, max_descriptors=max_descriptors)
    chidx = cache.chidx

    def pair_stats(s: int, d: int):
        if exact_policy is not None:
            return cache.policy_pair_stats(exact_policy, s, d)
        return cache.get(s, d)

    pairs: List[Tuple[int, int, float]] = [
        (s, d, float(demand[s, d]))
        for s, d in zip(*np.nonzero(demand))
        if s != d
    ]
    if not pairs:
        return ModelResult(1.0, 1.0, "trivial", 0)

    # Variable layout: [lambda, x_0..x_{K-1}, then VLB vars per pair]
    num_pairs = len(pairs)
    var_lambda = 0
    var_x = lambda k: 1 + k  # noqa: E731
    next_var = 1 + num_pairs
    # per pair: list of (var index, class count, usage dict) for VLB vars
    vlb_vars: List[List[Tuple[int, float, Dict[int, float]]]] = []
    hop_level: Dict[int, int] = {}  # var -> total hops (for monotonic rows)
    class_size: Dict[int, float] = {}  # var -> effective path count

    for k, (s, d, _w) in enumerate(pairs):
        stats = pair_stats(s, d)
        entries: List[Tuple[int, float, Dict[int, float]]] = []
        if mode == "uniform":
            total, usage = stats.weighted_vlb_usage(weight_fn)
            if total > 0:
                entries.append((next_var, total, usage))
                next_var += 1
        else:  # free: one var per included leg-split class
            for split, cs in sorted(stats.classes.items()):
                w = weight_fn(*split)
                if w <= 1e-9 or cs.count == 0:
                    continue  # sub-epsilon weights = excluded (LP scaling)
                eff_count = w * cs.count
                usage = {
                    idx: uses * w / eff_count
                    for idx, uses in cs.usage.items()
                }
                var = next_var
                next_var += 1
                entries.append((var, eff_count, usage))
                hop_level[var] = split[0] + split[1]
                class_size[var] = eff_count
        vlb_vars.append(entries)

    num_vars = next_var

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    b_ub: List[float] = []
    row = 0

    def add(r: int, c: int, v: float) -> None:
        rows.append(r)
        cols.append(c)
        vals.append(v)

    # Channel capacity rows (lazily created: only channels actually used).
    channel_row: Dict[int, int] = {}

    def channel_row_of(idx: int) -> int:
        nonlocal row
        r = channel_row.get(idx)
        if r is None:
            r = row
            row += 1
            channel_row[idx] = r
            b_ub.append(1.0)
        return r

    for k, (s, d, _w) in enumerate(pairs):
        stats = pair_stats(s, d)
        for idx, uses in stats.min_usage.items():
            add(channel_row_of(idx), var_x(k), uses)
        for var, _count, usage in vlb_vars[k]:
            for idx, uses in usage.items():
                add(channel_row_of(idx), var, uses)

    # Injection / ejection capacity: lambda * demand_row_sum <= p.
    inj = demand.sum(axis=1)
    ej = demand.sum(axis=0)
    for s in range(topo.num_switches):
        if inj[s] > 0:
            add(row, var_lambda, float(inj[s]))
            b_ub.append(float(topo.p))
            row += 1
        if ej[s] > 0:
            add(row, var_lambda, float(ej[s]))
            b_ub.append(float(topo.p))
            row += 1

    # Monotonicity rows (free mode): per-path rate of a longer class never
    # exceeds that of a shorter class of the same pair.
    if mode == "free" and monotonic:
        for entries in vlb_vars:
            levels = sorted({hop_level[v] for v, _, _ in entries})
            by_level: Dict[int, List[int]] = {}
            for v, _, _ in entries:
                by_level.setdefault(hop_level[v], []).append(v)
            for lo, hi in zip(levels, levels[1:]):
                for v_long in by_level[hi]:
                    for v_short in by_level[lo]:
                        # y_long/N_long - y_short/N_short <= 0
                        add(row, v_long, 1.0 / class_size[v_long])
                        add(row, v_short, -1.0 / class_size[v_short])
                        b_ub.append(0.0)
                        row += 1

    a_ub = coo_matrix((vals, (rows, cols)), shape=(row, num_vars))

    # Equality: x_k + sum(vlb vars) - w_k * lambda = 0.
    e_rows: List[int] = []
    e_cols: List[int] = []
    e_vals: List[float] = []
    for k, (s, d, w) in enumerate(pairs):
        e_rows.append(k)
        e_cols.append(var_x(k))
        e_vals.append(1.0)
        for var, _count, _usage in vlb_vars[k]:
            e_rows.append(k)
            e_cols.append(var)
            e_vals.append(1.0)
        e_rows.append(k)
        e_cols.append(var_lambda)
        e_vals.append(-w)
    a_eq = coo_matrix((e_vals, (e_rows, e_cols)), shape=(num_pairs, num_vars))
    b_eq = np.zeros(num_pairs)

    c = np.zeros(num_vars)
    c[var_lambda] = -1.0
    bounds = [(0.0, 1.0)] + [(0.0, None)] * (num_vars - 1)

    res = linprog(
        c,
        A_ub=a_ub.tocsr(),
        b_ub=np.asarray(b_ub),
        A_eq=a_eq.tocsr(),
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if not res.success:  # pragma: no cover - defensive
        return ModelResult(0.0, 0.0, res.message, num_pairs)

    lam = float(res.x[var_lambda])
    x_total = float(sum(res.x[var_x(k)] for k in range(num_pairs)))
    served = float(sum(lam * w for _s, _d, w in pairs))
    min_frac = x_total / served if served > 0 else 1.0
    return ModelResult(lam, min_frac, "optimal", num_pairs)
