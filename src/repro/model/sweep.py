"""Step-1 coarse-grain sweep: modeled throughput over the Table-1 grid.

For every datapoint the LP model is solved for every pattern in the
adversarial suite and the mean (with standard error) is recorded -- the
data behind Figures 4 and 5 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.model.lp_model import model_throughput
from repro.model.pathstats import PathStatsCache
from repro.routing.pathset import HopClassPolicy
from repro.topology.dragonfly import Dragonfly
from repro.traffic.patterns import TrafficPattern

__all__ = ["SweepPoint", "step1_sweep", "best_point", "candidate_vicinity"]


@dataclass
class SweepPoint:
    """Mean modeled throughput of one datapoint over the pattern suite."""

    policy: HopClassPolicy
    label: str
    mean_throughput: float
    sem: float
    per_pattern: List[float]


def step1_sweep(
    topo: Dragonfly,
    patterns: Sequence[TrafficPattern],
    datapoints: Sequence[HopClassPolicy],
    *,
    cache: Optional[PathStatsCache] = None,
    max_descriptors: Optional[int] = None,
    mode: str = "uniform",
) -> List[SweepPoint]:
    """Model every (datapoint, pattern) combination; one row per datapoint."""
    if cache is None:
        cache = PathStatsCache(topo, max_descriptors=max_descriptors)
    demands = [pat.demand_matrix() for pat in patterns]
    points: List[SweepPoint] = []
    for policy in datapoints:
        values = [
            model_throughput(
                topo, demand, policy=policy, cache=cache, mode=mode
            ).throughput
            for demand in demands
        ]
        arr = np.asarray(values)
        sem = (
            float(arr.std(ddof=1) / np.sqrt(len(arr)))
            if len(arr) > 1
            else 0.0
        )
        points.append(
            SweepPoint(
                policy=policy,
                label=policy.describe(),
                mean_throughput=float(arr.mean()),
                sem=sem,
                per_pattern=values,
            )
        )
    return points


def best_point(points: Sequence[SweepPoint]) -> SweepPoint:
    """The datapoint with the highest mean modeled throughput."""
    return max(points, key=lambda pt: pt.mean_throughput)


def candidate_vicinity(
    points: Sequence[SweepPoint], rel_tol: float = 0.02
) -> List[SweepPoint]:
    """Datapoints within ``rel_tol`` of the best mean -- Step 2's candidates."""
    best = best_point(points)
    floor = best.mean_throughput * (1.0 - rel_tol)
    return [pt for pt in points if pt.mean_throughput >= floor]
