"""Step-1 coarse-grain sweep: modeled throughput over the Table-1 grid.

For every datapoint the LP model is solved for every pattern in the
adversarial suite and the mean (with standard error) is recorded -- the
data behind Figures 4 and 5 of the paper.

Two solver engines are available: ``engine="fast"`` (default) routes
every ``(datapoint, pattern)`` combination through
:class:`~repro.perf.executor.SweepExecutor` as spec-fingerprinted
:class:`~repro.perf.executor.ModelTask` batches -- structural work is
factored and amortized by :class:`~repro.model.fastpath.FastModel`, and
an executor-attached :class:`~repro.perf.cache.SimCache` serves repeated
points from disk.  ``engine="legacy"`` is the original per-solve
assembly loop, kept as the numerical parity baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from repro.model.lp_model import model_throughput
from repro.model.pathstats import PathStatsCache
from repro.obs.log import get_logger
from repro.routing.pathset import HopClassPolicy
from repro.topology.dragonfly import Dragonfly
from repro.traffic.patterns import TrafficPattern

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.perf.executor import SweepExecutor

__all__ = ["SweepPoint", "step1_sweep", "best_point", "candidate_vicinity"]

_log = get_logger("model.sweep")


@dataclass
class SweepPoint:
    """Mean modeled throughput of one datapoint over the pattern suite."""

    policy: HopClassPolicy
    label: str
    mean_throughput: float
    sem: float
    per_pattern: List[float]


def step1_sweep(
    topo: Dragonfly,
    patterns: Sequence[TrafficPattern],
    datapoints: Sequence[HopClassPolicy],
    *,
    cache: Optional[PathStatsCache] = None,
    max_descriptors: Optional[int] = None,
    mode: str = "uniform",
    engine: str = "fast",
    executor: Optional["SweepExecutor"] = None,
    seed: int = 0,
) -> List[SweepPoint]:
    """Model every (datapoint, pattern) combination; one row per datapoint.

    ``executor`` (optional) fans the solves out across worker processes
    and consults its attached result cache; without one, solves run
    serially in-process but still share per-topology structural state.
    ``cache`` is only consulted by the legacy engine (it predates the
    factored fast path, whose structural state lives in the executor's
    per-process solver memo); ``seed`` steers descriptor subsampling
    when ``max_descriptors`` caps enumeration.
    """
    if engine not in ("fast", "legacy"):
        raise ValueError(f"unknown sweep engine {engine!r}")
    if engine == "legacy" and executor is None:
        return _legacy_sweep(
            topo,
            patterns,
            datapoints,
            cache=cache,
            max_descriptors=max_descriptors,
            mode=mode,
            seed=seed,
        )

    from repro.perf.executor import ModelTask, run_model_task

    _log.info(
        "step1_sweep: %d datapoints x %d patterns (%s engine, %s)",
        len(datapoints),
        len(patterns),
        engine,
        "executor" if executor is not None else "in-process",
    )
    tasks = [
        ModelTask(
            topo=topo,
            pattern=pattern,
            policy=policy,
            mode=mode,
            max_descriptors=max_descriptors,
            seed=seed,
            engine=engine,
        )
        for policy in datapoints
        for pattern in patterns
    ]
    if executor is not None:
        results = executor.run_models(tasks)
    else:
        results = [run_model_task(t) for t in tasks]

    points: List[SweepPoint] = []
    num_patterns = len(patterns)
    for i, policy in enumerate(datapoints):
        values = [
            r.throughput
            for r in results[i * num_patterns : (i + 1) * num_patterns]
        ]
        points.append(_make_point(policy, values))
    _log.info("step1_sweep: %d points done", len(points))
    return points


def _legacy_sweep(
    topo: Dragonfly,
    patterns: Sequence[TrafficPattern],
    datapoints: Sequence[HopClassPolicy],
    *,
    cache: Optional[PathStatsCache],
    max_descriptors: Optional[int],
    mode: str,
    seed: int = 0,
) -> List[SweepPoint]:
    """The original per-solve loop (parity baseline for the fast path)."""
    if cache is None:
        cache = PathStatsCache(
            topo, max_descriptors=max_descriptors, seed=seed
        )
    demands = [pat.demand_matrix() for pat in patterns]
    return [
        _make_point(
            policy,
            [
                model_throughput(
                    topo, demand, policy=policy, cache=cache, mode=mode
                ).throughput
                for demand in demands
            ],
        )
        for policy in datapoints
    ]


def _make_point(
    policy: HopClassPolicy, values: List[float]
) -> SweepPoint:
    arr = np.asarray(values)
    sem = (
        float(arr.std(ddof=1) / np.sqrt(len(arr))) if len(arr) > 1 else 0.0
    )
    return SweepPoint(
        policy=policy,
        label=policy.describe(),
        mean_throughput=float(arr.mean()),
        sem=sem,
        per_pattern=values,
    )


def best_point(points: Sequence[SweepPoint]) -> SweepPoint:
    """The datapoint with the highest mean modeled throughput."""
    return max(points, key=lambda pt: pt.mean_throughput)


def candidate_vicinity(
    points: Sequence[SweepPoint], rel_tol: float = 0.02
) -> List[SweepPoint]:
    """Datapoints within ``rel_tol`` of the best mean -- Step 2's candidates."""
    best = best_point(points)
    floor = best.mean_throughput * (1.0 - rel_tol)
    return [pt for pt in points if pt.mean_throughput >= floor]
