"""Per-switch-pair path statistics for the LP model.

For an ordered switch pair we record, for the MIN paths and for every VLB
*leg-split subclass* ``(l1, l2)`` (hop counts of the two MIN legs, each
1..3), the number of paths and the total channel-usage counts.  Any
Table-1 datapoint or strategic policy is then a set of subclass weights,
and its expected channel usage is a weighted recombination -- no
re-enumeration per datapoint.

Enumerating all VLB paths of a pair is ``(g-2)*a*m^2`` path builds; for
large topologies a deterministic subsample bounds the work
(``max_descriptors``), which only affects the usage *estimate*, not
correctness of the LP structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.routing.channels import ChannelIndex
from repro.routing.minimal import min_paths
from repro.routing.paths import Path
from repro.routing.pathset import PathPolicy
from repro.routing.vlb import (
    count_vlb_paths,
    enumerate_vlb_descriptors,
    vlb_path,
)
from repro.topology.dragonfly import Dragonfly

__all__ = [
    "ClassStats",
    "PairPathStats",
    "PathStatsCache",
    "compute_policy_pair_stats",
]

LegSplit = Tuple[int, int]


@dataclass
class ClassStats:
    """Path count and aggregate channel usage of one VLB leg-split class."""

    count: int = 0
    usage: Dict[int, float] = field(default_factory=dict)  # channel idx -> uses

    def add_path(self, chidx: ChannelIndex, path: Path) -> None:
        self.count += 1
        for ch in path.channels():
            idx = chidx.index(ch)
            self.usage[idx] = self.usage.get(idx, 0.0) + 1.0


@dataclass
class PairPathStats:
    """MIN and per-class VLB usage statistics of one ordered switch pair.

    ``scale`` corrects for subsampling: when only ``1/scale`` of the
    descriptors were enumerated, counts and usages are multiplied back up
    so that downstream weighting sees full-set magnitudes in expectation.
    """

    src: int
    dst: int
    min_count: int
    min_usage: Dict[int, float]  # per packet routed MIN (already normalized)
    classes: Dict[LegSplit, ClassStats]

    def class_sizes(self) -> Dict[LegSplit, int]:
        return {split: cs.count for split, cs in self.classes.items()}

    def weighted_vlb_usage(
        self, weight_fn: Callable[[int, int], float]
    ) -> Tuple[float, Dict[int, float]]:
        """Expected per-packet channel usage of a weighted VLB candidate set.

        ``weight_fn(l1, l2) -> [0, 1]`` gives the inclusion fraction of each
        leg-split class.  Returns ``(total_paths, usage_per_packet)`` where
        usage is normalized per VLB-routed packet (uniform selection over
        the weighted set).  ``total_paths == 0`` means the set is empty.
        """
        total = 0.0
        usage: Dict[int, float] = {}
        for split, cs in self.classes.items():
            w = weight_fn(*split)
            # sub-epsilon weights are treated as excluded: they would add
            # denormal path counts that break the LP scaling
            if w <= 1e-9 or cs.count == 0:
                continue
            total += w * cs.count
            for idx, uses in cs.usage.items():
                usage[idx] = usage.get(idx, 0.0) + w * uses
        if total <= 1e-9:
            return 0.0, {}
        return total, {idx: u / total for idx, u in usage.items()}


def compute_pair_stats(
    topo: Dragonfly,
    chidx: ChannelIndex,
    src: int,
    dst: int,
    max_descriptors: Optional[int] = None,
    seed: int = 0,
) -> PairPathStats:
    """Enumerate (or subsample) the pair's paths and aggregate usage."""
    min_count, min_usage = _min_stats(topo, chidx, src, dst)

    classes: Dict[LegSplit, ClassStats] = {}
    total = count_vlb_paths(topo, src, dst)
    stride = 1
    if max_descriptors is not None and total > max_descriptors:
        stride = -(-total // max_descriptors)  # ceil division
    offset = 0
    if stride > 1:
        offset = int(
            np.random.default_rng((seed, src, dst)).integers(stride)
        )
    from repro.routing.vlb import vlb_leg_hops

    for i, desc in enumerate(enumerate_vlb_descriptors(topo, src, dst)):
        if stride > 1 and (i - offset) % stride != 0:
            continue
        split = vlb_leg_hops(topo, src, dst, desc)
        cs = classes.setdefault(split, ClassStats())
        cs.add_path(chidx, vlb_path(topo, src, dst, desc))
    if stride > 1:
        # repro: allow[DET102]: per-value scaling of independent entries;
        # no cross-element accumulation, so order cannot matter
        for cs in classes.values():
            cs.count *= stride
            cs.usage = {k: v * stride for k, v in cs.usage.items()}
    return PairPathStats(src, dst, min_count, min_usage, classes)


def _min_stats(
    topo: Dragonfly, chidx: ChannelIndex, src: int, dst: int
) -> Tuple[int, Dict[int, float]]:
    mins = min_paths(topo, src, dst)
    min_usage: Dict[int, float] = {}
    for p in mins:
        for ch in p.channels():
            idx = chidx.index(ch)
            min_usage[idx] = min_usage.get(idx, 0.0) + 1.0 / len(mins)
    return len(mins), min_usage


def compute_policy_pair_stats(
    topo: Dragonfly,
    chidx: ChannelIndex,
    policy: PathPolicy,
    src: int,
    dst: int,
    max_descriptors: Optional[int] = None,
    seed: int = 0,
) -> PairPathStats:
    """Pair stats over exactly the paths a policy admits.

    The exact-enumeration sibling of :func:`compute_pair_stats` for
    policies that have no leg-split class-weight translation (e.g. the
    ordered-intermediate family): the policy's own ``iter_descriptors``
    drives enumeration, so the class table *is* the candidate set and
    downstream weighting with the all-ones weight function is exact.
    """
    min_count, min_usage = _min_stats(topo, chidx, src, dst)
    descs = list(policy.iter_descriptors(topo, src, dst))
    stride = 1
    if max_descriptors is not None and len(descs) > max_descriptors:
        stride = -(-len(descs) // max_descriptors)  # ceil division
    offset = 0
    if stride > 1:
        offset = int(
            np.random.default_rng((seed, src, dst)).integers(stride)
        )
    from repro.routing.vlb import vlb_leg_hops

    classes: Dict[LegSplit, ClassStats] = {}
    for i, desc in enumerate(descs):
        if stride > 1 and (i - offset) % stride != 0:
            continue
        split = vlb_leg_hops(topo, src, dst, desc)
        cs = classes.setdefault(split, ClassStats())
        cs.add_path(chidx, vlb_path(topo, src, dst, desc))
    if stride > 1:
        # repro: allow[DET102]: per-value scaling of independent entries;
        # no cross-element accumulation, so order cannot matter
        for cs in classes.values():
            cs.count *= stride
            cs.usage = {k: v * stride for k, v in cs.usage.items()}
    return PairPathStats(src, dst, min_count, min_usage, classes)


class PathStatsCache:
    """Memoized :func:`compute_pair_stats` across patterns and datapoints."""

    def __init__(
        self,
        topo: Dragonfly,
        chidx: Optional[ChannelIndex] = None,
        max_descriptors: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        self.topo = topo
        self.chidx = chidx if chidx is not None else ChannelIndex(topo)
        self.max_descriptors = max_descriptors
        self.seed = seed
        self._cache: Dict[Tuple[int, int], PairPathStats] = {}
        self._policy_cache: Dict[
            Tuple[PathPolicy, int, int], PairPathStats
        ] = {}

    def get(self, src: int, dst: int) -> PairPathStats:
        key = (src, dst)
        stats = self._cache.get(key)
        if stats is None:
            stats = compute_pair_stats(
                self.topo,
                self.chidx,
                src,
                dst,
                max_descriptors=self.max_descriptors,
                seed=self.seed,
            )
            self._cache[key] = stats
        return stats

    def policy_pair_stats(
        self, policy: PathPolicy, src: int, dst: int
    ) -> PairPathStats:
        """Memoized :func:`compute_policy_pair_stats` (policies are
        frozen/hashable, so equal policies share entries)."""
        key = (policy, src, dst)
        stats = self._policy_cache.get(key)
        if stats is None:
            stats = compute_policy_pair_stats(
                self.topo,
                self.chidx,
                policy,
                src,
                dst,
                max_descriptors=self.max_descriptors,
                seed=self.seed,
            )
            self._policy_cache[key] = stats
        return stats

    def __len__(self) -> int:
        return len(self._cache)
