"""Verified rotation symmetry of dragonfly topologies.

Path statistics of an ordered switch pair are equivariant under any
topology automorphism: if ``sigma`` maps switches to switches and (global)
links to links, then the VLB descriptor set of ``(s, d)`` maps bijectively
onto that of ``(sigma(s), sigma(d))``, leg-split classes are preserved
(``sigma`` preserves intra-group distances), and per-channel usage counts
transfer through the induced channel permutation.  Pair stats therefore
only need to be *computed* once per orbit and can be *relabeled* onto
every other pair of the orbit -- the symmetry fold used by
:class:`repro.model.fastpath.FastModel` and, optionally, by
:class:`repro.model.pathstats.PathStatsCache`.

This module handles the cheap-to-verify family of candidate
automorphisms: **group rotations** ``sigma_t``, which add ``t`` to the
group id (mod ``g``) while keeping the local switch index.  A rotation is
accepted only after an explicit O(links) check that every global link
maps onto an existing global link; arrangements built by absolute group
id (the paper's ``absolute``) typically reject every nontrivial rotation,
while offset-based arrangements (``relative``, ``circulant``) accept all
of them.  Rejected rotations simply mean no folding -- results are never
affected, only the amount of shared work.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.routing.channels import ChannelIndex
from repro.routing.paths import Channel
from repro.topology.dragonfly import Dragonfly

__all__ = ["RotationSymmetry"]


class RotationSymmetry:
    """The verified group-rotation subgroup of a topology's automorphisms.

    ``rotations`` lists the accepted offsets ``t`` (``0`` is always
    present); ``channel_perm(t)`` gives the induced permutation of
    :class:`ChannelIndex` indices as an int array ``perm`` with
    ``perm[idx_of(ch)] == idx_of(sigma_t(ch))``.
    """

    def __init__(self, topo: Dragonfly, chidx: ChannelIndex) -> None:
        self.topo = topo
        self.chidx = chidx
        self._perms: Dict[int, np.ndarray] = {}
        self.rotations: List[int] = [0]
        for t in range(1, topo.g):
            perm = self._try_rotation(t)
            if perm is not None:
                self.rotations.append(t)
                self._perms[t] = perm

    # ------------------------------------------------------------------
    def rotate_switch(self, switch: int, t: int) -> int:
        """``sigma_t``: same local index, group shifted by ``t`` (mod g)."""
        topo = self.topo
        group = (topo.group_of(switch) + t) % topo.g
        return topo.switch_id(group, topo.local_index(switch))

    def _try_rotation(self, t: int) -> Optional[np.ndarray]:
        """The channel permutation of ``sigma_t``, or ``None`` (rejected).

        A rotation is an automorphism iff every global link maps onto a
        global link between the rotated groups with the rotated endpoint
        switches.  Parallel links sharing both endpoints are matched in
        slot order (any endpoint-preserving matching induces the same
        path statistics, since descriptors enumerate all slots).
        """
        topo, chidx = self.topo, self.chidx
        # match links by (rotated endpoint set) -> target links in slot order
        link_map: Dict[Tuple[int, int, int], Tuple[int, int, int]] = {}
        by_endpoints: Dict[Tuple[int, int], List] = {}
        for link in topo.global_links:
            lo, hi = sorted((link.switch_a, link.switch_b))
            by_endpoints.setdefault((lo, hi), []).append(link)
        for (lo, hi), links in by_endpoints.items():
            rlo, rhi = sorted(
                (self.rotate_switch(lo, t), self.rotate_switch(hi, t))
            )
            ga, gb = topo.group_of(rlo), topo.group_of(rhi)
            if ga == gb:
                return None
            targets = [
                ln
                for ln in topo.links_between_groups(ga, gb)
                if sorted((ln.switch_a, ln.switch_b)) == [rlo, rhi]
            ]
            if len(targets) != len(links):
                return None
            for link, target in zip(links, targets):
                # record both directions of the channel mapping
                link_map[(link.switch_a, link.switch_b, link.slot)] = (
                    self.rotate_switch(link.switch_a, t),
                    self.rotate_switch(link.switch_b, t),
                    target.slot,
                )
                link_map[(link.switch_b, link.switch_a, link.slot)] = (
                    self.rotate_switch(link.switch_b, t),
                    self.rotate_switch(link.switch_a, t),
                    target.slot,
                )

        perm = np.empty(len(chidx), dtype=np.int64)
        for idx in range(len(chidx)):
            ch = chidx.channel(idx)
            if ch.is_global:
                src, dst, slot = link_map[(ch.src, ch.dst, ch.slot)]
                mapped = Channel(src, dst, slot)
            else:
                mapped = Channel(
                    self.rotate_switch(ch.src, t),
                    self.rotate_switch(ch.dst, t),
                )
            perm[idx] = chidx.index(mapped)
        return perm

    # ------------------------------------------------------------------
    @property
    def fold_factor(self) -> int:
        """How many ordered pairs share one representative (>= 1)."""
        return len(self.rotations)

    def channel_perm(self, t: int) -> np.ndarray:
        """Channel-index permutation of the accepted rotation ``t``."""
        if t == 0:
            return np.arange(len(self.chidx), dtype=np.int64)
        return self._perms[t]

    def canonical_pair(self, src: int, dst: int) -> Tuple[int, int, int]:
        """``(rep_src, rep_dst, t)`` with ``sigma_t(rep) == (src, dst)``.

        The representative is the lexicographically smallest rotation of
        the pair over the verified subgroup; pairs sharing a
        representative share (relabeled) path statistics.
        """
        best = (src, dst)
        best_t = 0
        for t in self.rotations:
            if t == 0:
                continue
            back = self.topo.g - t  # sigma_t inverse = sigma_{g-t}
            cand = (
                self.rotate_switch(src, back),
                self.rotate_switch(dst, back),
            )
            if cand < best:
                best = cand
                best_t = t
        return best[0], best[1], best_t
