"""Factored fast path for the LP throughput model.

:func:`repro.model.lp_model.model_throughput` rebuilds everything per
call: it re-enumerates every VLB path of every demand pair and re-creates
the sparse constraint matrix entry by entry.  Profiling a Step-1 sweep on
``dfly(4,8,4,9)`` shows ~85% of wall time in that per-pair path
enumeration (~17 ms/pair) and most of the rest in Python-loop assembly.

This module splits the solve into three layers, each cached at its own
lifetime:

* **Per topology** -- :class:`PairBlock` path statistics (MIN usage plus
  per leg-split class VLB channel-usage vectors), built by a closed-form
  vectorized enumerator (:func:`build_pair_block`) instead of
  materializing paths one by one, memoized in :class:`BlockCache` and
  folded over verified rotation symmetry
  (:class:`~repro.model.symmetry.RotationSymmetry`): one orbit
  representative is computed, every other ordered pair of the orbit is a
  channel-relabeling of it.
* **Per pattern** -- a stacked COO skeleton of the channel-capacity block
  (channel / class / pair / value streams in the legacy first-touch
  order) plus injection/ejection rows, derived once per demand matrix.
* **Per solve** -- a cheap patch: leg-split class weights from the
  policy, the first-touch row map for the induced class mask (memoized
  per mask), scaled values, equality rows, and the ``linprog`` call.

Results match the legacy solver to tight numerical tolerance (see the
parity suite in ``tests/test_model_fastpath.py``); the legacy path stays
untouched as the baseline.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import coo_matrix

from repro.model.lp_model import (
    ModelResult,
    model_throughput,
    weights_for_policy,
)
from repro.model.pathstats import (
    ClassStats,
    PairPathStats,
    PathStatsCache,
    compute_pair_stats,
)
from repro.model.symmetry import RotationSymmetry
from repro.routing.channels import ChannelIndex
from repro.routing.minimal import min_paths
from repro.routing.paths import Channel
from repro.routing.pathset import PathPolicy
from repro.routing.vlb import count_vlb_paths
from repro.topology.dragonfly import Dragonfly

__all__ = [
    "PairBlock",
    "BlockCache",
    "FastModel",
    "build_pair_block",
    "fast_model_throughput",
]

WeightFn = Callable[[int, int], float]

NUM_CLASSES = 9  # leg splits (l1, l2), l1, l2 in 1..3
# class id c <-> split (c // 3 + 1, c % 3 + 1); total hops per class:
CLASS_HOPS = np.array([2, 3, 4, 3, 4, 5, 4, 5, 6], dtype=np.int64)


def _class_split(cls: int) -> Tuple[int, int]:
    return cls // 3 + 1, cls % 3 + 1


def _split_class(l1: int, l2: int) -> int:
    return (l1 - 1) * 3 + (l2 - 1)


@dataclass
class PairBlock:
    """Array-form path statistics of one ordered switch pair.

    The flat-array equivalent of
    :class:`~repro.model.pathstats.PairPathStats`: ``min_idx/min_val``
    hold the per-packet MIN channel usage, and the VLB side is grouped by
    leg-split class id (``cls_id`` ascending): ``counts[c]`` paths in
    class ``c``, with aggregate channel-usage entries
    ``(cls_idx[i], cls_val[i])`` for every ``i`` with ``cls_id[i] == c``.
    Counts and usages are whole path counts (integer-exact in float64),
    scaled back up when the legacy enumerator subsampled.
    """

    src: int
    dst: int
    min_count: int
    min_idx: np.ndarray
    min_val: np.ndarray
    counts: np.ndarray  # (NUM_CLASSES,) effective path count per class
    cls_id: np.ndarray  # (nnz,) int8, ascending
    cls_idx: np.ndarray  # (nnz,) channel indices
    cls_val: np.ndarray  # (nnz,) aggregate uses

    @staticmethod
    def from_stats(stats: PairPathStats) -> "PairBlock":
        """Convert legacy per-pair stats (the fallback enumerator)."""
        counts = np.zeros(NUM_CLASSES, dtype=np.float64)
        ids: List[int] = []
        idxs: List[int] = []
        vals: List[float] = []
        for split, cs in sorted(stats.classes.items()):
            c = _split_class(*split)
            counts[c] = float(cs.count)
            for idx in sorted(cs.usage):
                ids.append(c)
                idxs.append(idx)
                vals.append(cs.usage[idx])
        return PairBlock(
            src=stats.src,
            dst=stats.dst,
            min_count=stats.min_count,
            # repro: allow[DET102]: min_usage insertion order is the
            # deterministic path-enumeration order of pathstats
            min_idx=np.fromiter(
                stats.min_usage.keys(), dtype=np.int64, count=len(stats.min_usage)
            ),
            # repro: allow[DET102]: values() drawn from the same dict as
            # keys() above; pairs stay aligned, order deterministic
            min_val=np.fromiter(
                stats.min_usage.values(),
                dtype=np.float64,
                count=len(stats.min_usage),
            ),
            counts=counts,
            cls_id=np.asarray(ids, dtype=np.int8),
            cls_idx=np.asarray(idxs, dtype=np.int64),
            cls_val=np.asarray(vals, dtype=np.float64),
        )

    def to_stats(self) -> PairPathStats:
        """Back to the dict form consumed by the legacy solver."""
        classes: Dict[Tuple[int, int], ClassStats] = {}
        for c in range(NUM_CLASSES):
            if self.counts[c] <= 0:
                continue
            sel = self.cls_id == c
            usage = {
                int(i): float(v)
                for i, v in zip(self.cls_idx[sel], self.cls_val[sel])
            }
            cs = ClassStats(count=int(round(self.counts[c])), usage=usage)
            classes[_class_split(c)] = cs
        min_usage = {
            int(i): float(v) for i, v in zip(self.min_idx, self.min_val)
        }
        return PairPathStats(
            self.src, self.dst, self.min_count, min_usage, classes
        )

    def permuted(
        self, perm: np.ndarray, src: int, dst: int
    ) -> "PairBlock":
        """Relabel channel indices through an automorphism's permutation.

        Counts and values are untouched -- only channel identities move --
        so the result is the exact statistics of the rotated pair.  VLB
        entries are re-sorted to restore the ascending-per-class channel
        order every direct build produces (``min_idx`` keeps its stream
        order: rotations preserve global-link slot order, so the mapped
        MIN entries already arrive in the rotated pair's own order).
        """
        cls_idx = perm[self.cls_idx]
        order = np.lexsort((cls_idx, self.cls_id))
        return PairBlock(
            src=src,
            dst=dst,
            min_count=self.min_count,
            min_idx=perm[self.min_idx],
            min_val=self.min_val,
            counts=self.counts,
            cls_id=self.cls_id[order],
            cls_idx=cls_idx[order],
            cls_val=self.cls_val[order],
        )


class _TopoTables:
    """Per-topology lookup tables shared by all vectorized pair builds."""

    def __init__(self, topo: Dragonfly, chidx: ChannelIndex) -> None:
        self.topo = topo
        self.chidx = chidx
        n, a = topo.num_switches, topo.a
        local_idx = np.full((n, a), -1, dtype=np.int64)
        for u in range(n):
            for v in topo.local_neighbors(u):
                local_idx[u, topo.local_index(v)] = chidx.index(Channel(u, v))
        self.local_idx = local_idx
        self._legs: Dict[
            Tuple[int, int], Tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = {}

    def legs(
        self, gfrom: int, gto: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-slot arrays ``(x, y, chan)`` of the directed group hop.

        ``x[r]``/``y[r]`` are the endpoint switches of slot ``r`` on the
        from/to side; ``chan[r]`` the directed channel index.
        """
        key = (gfrom, gto)
        out = self._legs.get(key)
        if out is None:
            links = self.topo.links_between_groups(gfrom, gto)
            x = np.asarray(
                [ln.endpoint_in(gfrom) for ln in links], dtype=np.int64
            )
            y = np.asarray(
                [ln.endpoint_in(gto) for ln in links], dtype=np.int64
            )
            chan = np.asarray(
                [
                    self.chidx.index(
                        Channel(ln.endpoint_in(gfrom), ln.endpoint_in(gto), ln.slot)
                    )
                    for ln in links
                ],
                dtype=np.int64,
            )
            out = (x, y, chan)
            self._legs[key] = out
        return out


def build_pair_block(
    topo: Dragonfly,
    chidx: ChannelIndex,
    src: int,
    dst: int,
    tables: Optional[_TopoTables] = None,
) -> PairBlock:
    """Closed-form vectorized pair statistics (full enumeration).

    Equivalent to :func:`~repro.model.pathstats.compute_pair_stats` with
    ``max_descriptors=None`` on topologies with fully connected groups,
    but never materializes a path: for each intermediate group it
    broadcasts the six channel families of the canonical VLB path
    (``src->x1`` local, ``x1->y1`` global, ``y1->mid`` local,
    ``mid->x2`` local, ``x2->y2`` global, ``y2->dst`` local) over the
    ``(mid, slot1, slot2)`` descriptor grid and aggregates with one
    ``bincount`` keyed by ``class * n_channels + channel``.  All counts
    are integer-exact in float64.
    """
    if topo.max_local_hops != 1:
        raise ValueError(
            "vectorized pair builder requires fully connected groups "
            "(max_local_hops == 1); use compute_pair_stats"
        )
    if tables is None:
        tables = _TopoTables(topo, chidx)
    num_chan = len(chidx)

    mins = min_paths(topo, src, dst)
    min_usage: Dict[int, float] = {}
    for p in mins:
        for ch in p.channels():
            idx = chidx.index(ch)
            min_usage[idx] = min_usage.get(idx, 0.0) + 1.0 / len(mins)

    gs, gd = topo.group_of(src), topo.group_of(dst)
    a = topo.a
    counts = np.zeros(NUM_CLASSES, dtype=np.float64)
    usage = np.zeros(NUM_CLASSES * num_chan, dtype=np.float64)
    local_idx = tables.local_idx
    ldst = topo.local_index(dst)

    for gm in range(topo.g):
        if gm == gs or gm == gd:
            continue
        x1, y1, gc1 = tables.legs(gs, gm)
        x2, y2, gc2 = tables.legs(gm, gd)
        m1, m2 = len(x1), len(x2)
        if m1 == 0 or m2 == 0:
            continue
        mid = np.arange(gm * a, (gm + 1) * a, dtype=np.int64)
        lmid = np.arange(a, dtype=np.int64)
        shape = (a, m1, m2)

        cond1 = x1 != src  # (m1,) src -> x1 local hop exists
        condy1 = y1[None, :] != mid[:, None]  # (a, m1) y1 -> mid
        condx2 = mid[:, None] != x2[None, :]  # (a, m2) mid -> x2
        cond2 = y2 != dst  # (m2,) y2 -> dst

        l1 = cond1[None, :].astype(np.int64) + 1 + condy1  # (a, m1)
        l2 = condx2.astype(np.int64) + 1 + cond2[None, :]  # (a, m2)
        cls = (l1[:, :, None] - 1) * 3 + (l2[:, None, :] - 1)  # (a, m1, m2)
        counts += np.bincount(cls.ravel(), minlength=NUM_CLASSES)

        base = cls * num_chan
        keys: List[np.ndarray] = []

        def fam(chan: np.ndarray, mask: Optional[np.ndarray]) -> None:
            k = base + np.broadcast_to(chan, shape)
            if mask is None:
                keys.append(k.ravel())
            else:
                keys.append(k[np.broadcast_to(mask, shape)])

        loc_sx1 = local_idx[src, x1 % a]  # (m1,) valid where cond1
        loc_y1m = local_idx[y1[None, :], lmid[:, None]]  # (a, m1)
        loc_mx2 = local_idx[mid[:, None], x2[None, :] % a]  # (a, m2)
        loc_y2d = local_idx[y2, ldst]  # (m2,) valid where cond2

        fam(loc_sx1[None, :, None], cond1[None, :, None])
        fam(gc1[None, :, None], None)
        fam(loc_y1m[:, :, None], condy1[:, :, None])
        fam(loc_mx2[:, None, :], condx2[:, None, :])
        fam(gc2[None, None, :], None)
        fam(loc_y2d[None, None, :], cond2[None, None, :])

        usage += np.bincount(
            np.concatenate(keys), minlength=NUM_CLASSES * num_chan
        )

    ids: List[np.ndarray] = []
    idxs: List[np.ndarray] = []
    vals: List[np.ndarray] = []
    for c in range(NUM_CLASSES):
        if counts[c] <= 0:
            continue
        seg = usage[c * num_chan : (c + 1) * num_chan]
        nz = np.nonzero(seg)[0]
        ids.append(np.full(len(nz), c, dtype=np.int8))
        idxs.append(nz)
        vals.append(seg[nz])

    empty_i = np.empty(0, dtype=np.int64)
    return PairBlock(
        src=src,
        dst=dst,
        min_count=len(mins),
        # repro: allow[DET102]: min_usage insertion order is the
        # deterministic path-enumeration order of this builder
        min_idx=np.fromiter(
            min_usage.keys(), dtype=np.int64, count=len(min_usage)
        ),
        # repro: allow[DET102]: values() drawn from the same dict as
        # keys() above; pairs stay aligned, order deterministic
        min_val=np.fromiter(
            min_usage.values(), dtype=np.float64, count=len(min_usage)
        ),
        counts=counts,
        cls_id=(
            np.concatenate(ids) if ids else np.empty(0, dtype=np.int8)
        ),
        cls_idx=np.concatenate(idxs) if idxs else empty_i,
        cls_val=(
            np.concatenate(vals) if vals else np.empty(0, dtype=np.float64)
        ),
    )


class BlockCache:
    """Memoized :class:`PairBlock` store with symmetry folding.

    ``symmetry="auto"`` verifies the topology's group rotations once and
    computes path statistics only for one representative per rotation
    orbit, relabeling channels for the other members; ``"off"`` computes
    every ordered pair independently.  Folding and the vectorized builder
    both require full enumeration, so any pair the legacy enumerator
    would subsample (``count > max_descriptors``) falls back to
    :func:`compute_pair_stats` with identical stride/offset semantics.
    """

    def __init__(
        self,
        topo: Dragonfly,
        chidx: Optional[ChannelIndex] = None,
        max_descriptors: Optional[int] = None,
        seed: int = 0,
        symmetry: str = "auto",
    ) -> None:
        if symmetry not in ("auto", "off"):
            raise ValueError(f"unknown symmetry mode {symmetry!r}")
        self.topo = topo
        self.chidx = chidx if chidx is not None else ChannelIndex(topo)
        self.max_descriptors = max_descriptors
        self.seed = seed
        self.symmetry = symmetry
        self._blocks: Dict[Tuple[int, int], PairBlock] = {}
        self._tables: Optional[_TopoTables] = None
        self._rotsym: Optional[RotationSymmetry] = None
        self._vectorized_ok = topo.max_local_hops == 1
        # instrumentation for benchmarks and tests
        self.built = 0
        self.folded = 0

    def _rotation(self) -> RotationSymmetry:
        if self._rotsym is None:
            self._rotsym = RotationSymmetry(self.topo, self.chidx)
        return self._rotsym

    def _full_enumeration(self, src: int, dst: int) -> bool:
        if self.max_descriptors is None:
            return True
        return count_vlb_paths(self.topo, src, dst) <= self.max_descriptors

    def _build(self, src: int, dst: int) -> PairBlock:
        self.built += 1
        if self._vectorized_ok and self._full_enumeration(src, dst):
            if self._tables is None:
                self._tables = _TopoTables(self.topo, self.chidx)
            return build_pair_block(
                self.topo, self.chidx, src, dst, self._tables
            )
        return PairBlock.from_stats(
            compute_pair_stats(
                self.topo,
                self.chidx,
                src,
                dst,
                max_descriptors=self.max_descriptors,
                seed=self.seed,
            )
        )

    def get(self, src: int, dst: int) -> PairBlock:
        key = (src, dst)
        block = self._blocks.get(key)
        if block is not None:
            return block
        # Folding requires full enumeration: the legacy subsample offset
        # is seeded per (seed, src, dst), so subsampled pairs are not
        # rotation-equivariant and must be built directly.
        if self.symmetry == "auto" and self._full_enumeration(src, dst):
            sym = self._rotation()
            if sym.fold_factor > 1:
                rs, rd, t = sym.canonical_pair(src, dst)
                if (rs, rd) != (src, dst):
                    rep = self.get(rs, rd)
                    block = rep.permuted(sym.channel_perm(t), src, dst)
                    self.folded += 1
                    self._blocks[key] = block
                    return block
        block = self._build(src, dst)
        self._blocks[key] = block
        return block

    def __len__(self) -> int:
        return len(self._blocks)


class _PatternStruct:
    """Pattern-lifetime skeleton of the LP: everything except weights.

    Streams are pair-major in the legacy solver's touch order (MIN
    entries of a pair, then its VLB entries by ascending class), so the
    first-touch channel-row numbering reproduces the legacy row order.
    """

    def __init__(
        self, topo: Dragonfly, demand: np.ndarray, blocks: BlockCache
    ) -> None:
        self.pairs: List[Tuple[int, int, float]] = [
            (int(s), int(d), float(demand[s, d]))
            for s, d in zip(*np.nonzero(demand))
            if s != d
        ]
        num_pairs = len(self.pairs)
        self.num_pairs = num_pairs
        self.counts = np.zeros((num_pairs, NUM_CLASSES), dtype=np.float64)

        chan_parts: List[np.ndarray] = []
        cls_parts: List[np.ndarray] = []
        pair_parts: List[np.ndarray] = []
        val_parts: List[np.ndarray] = []
        for k, (s, d, _w) in enumerate(self.pairs):
            blk = blocks.get(s, d)
            self.counts[k] = blk.counts
            chan_parts.append(blk.min_idx)
            cls_parts.append(np.full(len(blk.min_idx), -1, dtype=np.int8))
            pair_parts.append(np.full(len(blk.min_idx), k, dtype=np.int64))
            val_parts.append(blk.min_val)
            chan_parts.append(blk.cls_idx)
            cls_parts.append(blk.cls_id)
            pair_parts.append(np.full(len(blk.cls_idx), k, dtype=np.int64))
            val_parts.append(blk.cls_val)

        self.chan = (
            np.concatenate(chan_parts)
            if chan_parts
            else np.empty(0, dtype=np.int64)
        )
        self.cls = (
            np.concatenate(cls_parts)
            if cls_parts
            else np.empty(0, dtype=np.int8)
        )
        self.pair = (
            np.concatenate(pair_parts)
            if pair_parts
            else np.empty(0, dtype=np.int64)
        )
        self.val = (
            np.concatenate(val_parts)
            if val_parts
            else np.empty(0, dtype=np.float64)
        )
        self.is_min = self.cls < 0
        # free-mode per-path coefficients are weight-independent
        self.val_norm = self.val.copy()
        vlb = ~self.is_min
        self.val_norm[vlb] = self.val[vlb] / self.counts[
            self.pair[vlb], self.cls[vlb].astype(np.int64)
        ]

        # injection/ejection rows: lambda * row_sum <= p, interleaved
        # inj-then-ej per switch like the legacy loop
        inj = demand.sum(axis=1)
        ej = demand.sum(axis=0)
        ie: List[float] = []
        for s in range(topo.num_switches):
            if inj[s] > 0:
                ie.append(float(inj[s]))
            if ej[s] > 0:
                ie.append(float(ej[s]))
        self.ie_vals = np.asarray(ie, dtype=np.float64)

        self.num_channels = len(blocks.chidx)
        self._rowmaps: Dict[
            Tuple[bool, ...], Tuple[np.ndarray, np.ndarray, int]
        ] = {}

    def rowmap(
        self, ok9: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """``(entry_mask, channel_rows, n_rows)`` for a class mask.

        ``entry_mask`` selects the stream entries alive under the mask
        (MIN always; VLB iff its class is included); ``channel_rows``
        aligns with the selected entries and numbers channels in
        first-touch order, exactly like the legacy lazy row assignment.
        """
        key = tuple(bool(b) for b in ok9)
        cached = self._rowmaps.get(key)
        if cached is not None:
            return cached
        incl = self.is_min.copy()
        vlb = ~self.is_min
        incl[vlb] = ok9[self.cls[vlb].astype(np.int64)]
        chan_sel = self.chan[incl]
        uniq, first = np.unique(chan_sel, return_index=True)
        order = np.argsort(first, kind="stable")
        row_of = np.full(self.num_channels, -1, dtype=np.int64)
        row_of[uniq[order]] = np.arange(len(uniq), dtype=np.int64)
        out = (incl, row_of[chan_sel], len(uniq))
        self._rowmaps[key] = out
        return out


class FastModel:
    """Reusable factored solver: one instance amortizes a whole sweep.

    Construct once per topology; call :meth:`solve` per
    ``(demand, policy)`` point.  Structural state (pair blocks, pattern
    skeletons, row maps) accumulates across calls and is shared by every
    subsequent solve.
    """

    def __init__(
        self,
        topo: Dragonfly,
        chidx: Optional[ChannelIndex] = None,
        max_descriptors: Optional[int] = None,
        seed: int = 0,
        symmetry: str = "auto",
    ) -> None:
        self.topo = topo
        # The factored layout assumes the 3x3 dragonfly leg-split space
        # (fully connected groups, one local hop per leg).  Topologies
        # with longer local transit (e.g. CascadeDragonfly) have classes
        # outside that space; for them every solve delegates to the
        # legacy assembly over a shared PathStatsCache, so the instance
        # still amortizes path enumeration across a sweep.
        self._fallback: Optional[PathStatsCache] = None
        if getattr(topo, "max_local_hops", 1) != 1:
            self._fallback = PathStatsCache(
                topo,
                chidx=chidx,
                max_descriptors=max_descriptors,
                seed=seed,
            )
        else:
            self.blocks = BlockCache(
                topo,
                chidx=chidx,
                max_descriptors=max_descriptors,
                seed=seed,
                symmetry=symmetry,
            )
        self._patterns: Dict[bytes, _PatternStruct] = {}

    @property
    def chidx(self) -> ChannelIndex:
        if self._fallback is not None:
            return self._fallback.chidx
        return self.blocks.chidx

    def _pattern(self, demand: np.ndarray) -> _PatternStruct:
        demand = np.asarray(demand, dtype=np.float64)
        key = hashlib.blake2b(demand.tobytes(), digest_size=16).digest()
        struct = self._patterns.get(key)
        if struct is None:
            struct = _PatternStruct(self.topo, demand, self.blocks)
            self._patterns[key] = struct
        return struct

    def solve(
        self,
        demand: np.ndarray,
        weight_fn: Optional[WeightFn] = None,
        *,
        policy: Optional[PathPolicy] = None,
        mode: str = "uniform",
        monotonic: bool = True,
    ) -> ModelResult:
        """Drop-in equivalent of :func:`model_throughput`."""
        if mode not in ("uniform", "free"):
            raise ValueError(f"unknown mode {mode!r}")
        if self._fallback is not None:
            return model_throughput(
                self.topo,
                demand,
                weight_fn,
                policy=policy,
                cache=self._fallback,
                mode=mode,
                monotonic=monotonic,
            )
        if weight_fn is None:
            if policy is None:
                weight_fn = lambda l1, l2: 1.0  # noqa: E731 - all VLB
            else:
                try:
                    weight_fn = weights_for_policy(policy)
                except TypeError:
                    # the factored pipeline only models class-weight
                    # policies; unlike the legacy assembly it has no
                    # exact per-pair enumeration fallback
                    raise TypeError(
                        f"policy {policy.describe()!r} has no class-weight "
                        f"translation and is not supported by the fast "
                        f"model engine; use engine='legacy' "
                        f"(model_throughput), which enumerates the "
                        f"policy's candidate set exactly"
                    ) from None

        struct = self._pattern(demand)
        num_pairs = struct.num_pairs
        if num_pairs == 0:
            return ModelResult(1.0, 1.0, "trivial", 0)

        w9 = np.asarray(
            [weight_fn(*_class_split(c)) for c in range(NUM_CLASSES)],
            dtype=np.float64,
        )
        ok9 = w9 > 1e-9
        w9_eff = np.where(ok9, w9, 0.0)
        incl, ch_rows, n_ch_rows = struct.rowmap(ok9)

        pair_sel = struct.pair[incl]
        cls_sel = struct.cls[incl].astype(np.int64)
        is_min_sel = struct.is_min[incl]

        if mode == "uniform":
            out = self._assemble_uniform(
                struct, w9_eff, incl, pair_sel, cls_sel, is_min_sel
            )
        else:
            out = self._assemble_free(
                struct, w9_eff, ok9, incl, pair_sel, cls_sel, is_min_sel,
                monotonic,
            )
        cols, vals, num_vars, mono_rows, mono_cols, mono_vals = out

        # rows: channel-capacity block, then inj/ej, then monotonic
        num_ie = len(struct.ie_vals)
        r0 = n_ch_rows
        rows = np.concatenate(
            [
                ch_rows,
                np.arange(r0, r0 + num_ie, dtype=np.int64),
                mono_rows + r0 + num_ie,
            ]
        )
        cols = np.concatenate(
            [cols, np.zeros(num_ie, dtype=np.int64), mono_cols]
        )
        vals = np.concatenate([vals, struct.ie_vals, mono_vals])
        num_rows = r0 + num_ie + (
            int(mono_rows.max()) + 1 if len(mono_rows) else 0
        )
        b_ub = np.concatenate(
            [
                np.ones(n_ch_rows),
                np.full(num_ie, float(self.topo.p)),
                np.zeros(num_rows - n_ch_rows - num_ie),
            ]
        )
        a_ub = coo_matrix((vals, (rows, cols)), shape=(num_rows, num_vars))

        # equality rows: x_k + sum(vlb vars of pair k) - w_k * lambda = 0
        pair_w = np.asarray([w for _s, _d, w in struct.pairs])
        nvars_pair = self._nvars_pair
        e_rows = np.concatenate(
            [
                np.arange(num_pairs),
                np.repeat(np.arange(num_pairs), nvars_pair),
                np.arange(num_pairs),
            ]
        )
        e_cols = np.concatenate(
            [
                1 + np.arange(num_pairs),
                np.arange(1 + num_pairs, num_vars),
                np.zeros(num_pairs, dtype=np.int64),
            ]
        )
        e_vals = np.concatenate(
            [
                np.ones(num_pairs),
                np.ones(num_vars - 1 - num_pairs),
                -pair_w,
            ]
        )
        a_eq = coo_matrix(
            (e_vals, (e_rows, e_cols)), shape=(num_pairs, num_vars)
        )

        c = np.zeros(num_vars)
        c[0] = -1.0
        bounds = [(0.0, 1.0)] + [(0.0, None)] * (num_vars - 1)
        res = linprog(
            c,
            A_ub=a_ub.tocsr(),
            b_ub=b_ub,
            A_eq=a_eq.tocsr(),
            b_eq=np.zeros(num_pairs),
            bounds=bounds,
            method="highs",
        )
        if not res.success:  # pragma: no cover - defensive
            return ModelResult(0.0, 0.0, res.message, num_pairs)
        lam = float(res.x[0])
        x_total = float(res.x[1 : 1 + num_pairs].sum())
        served = float(lam * pair_w.sum())
        min_frac = x_total / served if served > 0 else 1.0
        return ModelResult(lam, min_frac, "optimal", num_pairs)

    # ------------------------------------------------------------------
    def _assemble_uniform(
        self,
        struct: _PatternStruct,
        w9_eff: np.ndarray,
        incl: np.ndarray,
        pair_sel: np.ndarray,
        cls_sel: np.ndarray,
        is_min_sel: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, int, np.ndarray, np.ndarray, np.ndarray]:
        """One aggregate VLB variable per pair with nonempty weighted set."""
        num_pairs = struct.num_pairs
        wtotal = struct.counts @ w9_eff  # (K,)
        has_vlb = wtotal > 1e-9
        vlb_var = 1 + num_pairs + np.cumsum(has_vlb) - 1  # valid where has_vlb
        num_vars = 1 + num_pairs + int(has_vlb.sum())
        self._nvars_pair = has_vlb.astype(np.int64)

        cols = np.where(
            is_min_sel, 1 + pair_sel, vlb_var[pair_sel]
        )
        safe_total = np.where(has_vlb, wtotal, 1.0)
        vals = np.where(
            is_min_sel,
            struct.val[incl],
            w9_eff[cls_sel] * struct.val[incl] / safe_total[pair_sel],
        )
        empty_i = np.empty(0, dtype=np.int64)
        return cols, vals, num_vars, empty_i, empty_i, np.empty(0)

    def _assemble_free(
        self,
        struct: _PatternStruct,
        w9_eff: np.ndarray,
        ok9: np.ndarray,
        incl: np.ndarray,
        pair_sel: np.ndarray,
        cls_sel: np.ndarray,
        is_min_sel: np.ndarray,
        monotonic: bool,
    ) -> Tuple[np.ndarray, np.ndarray, int, np.ndarray, np.ndarray, np.ndarray]:
        """One variable per (pair, included leg-split class)."""
        num_pairs = struct.num_pairs
        incl_mat = ok9[None, :] & (struct.counts > 0)  # (K, 9)
        nvars_pair = incl_mat.sum(axis=1).astype(np.int64)
        var_base = 1 + num_pairs + np.concatenate(
            [[0], np.cumsum(nvars_pair)[:-1]]
        ).astype(np.int64)
        rank = np.cumsum(incl_mat, axis=1) - 1
        var_of = var_base[:, None] + rank  # valid where incl_mat
        num_vars = 1 + num_pairs + int(nvars_pair.sum())
        self._nvars_pair = nvars_pair

        cols = np.where(
            is_min_sel, 1 + pair_sel, var_of[pair_sel, cls_sel]
        )
        vals = np.where(is_min_sel, struct.val[incl], struct.val_norm[incl])

        mono_rows: List[int] = []
        mono_cols: List[int] = []
        mono_vals: List[float] = []
        if monotonic:
            class_size = w9_eff[None, :] * struct.counts  # (K, 9)
            row = 0
            for k in range(num_pairs):
                classes = np.nonzero(incl_mat[k])[0]
                if len(classes) < 2:
                    continue
                hops = CLASS_HOPS[classes]
                levels = np.unique(hops)
                for lo, hi in zip(levels, levels[1:]):
                    for c_long in classes[hops == hi]:
                        for c_short in classes[hops == lo]:
                            mono_rows.extend((row, row))
                            mono_cols.append(int(var_of[k, c_long]))
                            mono_cols.append(int(var_of[k, c_short]))
                            mono_vals.append(
                                1.0 / float(class_size[k, c_long])
                            )
                            mono_vals.append(
                                -1.0 / float(class_size[k, c_short])
                            )
                            row += 1
        return (
            cols,
            vals,
            num_vars,
            np.asarray(mono_rows, dtype=np.int64),
            np.asarray(mono_cols, dtype=np.int64),
            np.asarray(mono_vals, dtype=np.float64),
        )


def fast_model_throughput(
    topo: Dragonfly,
    demand: np.ndarray,
    weight_fn: Optional[WeightFn] = None,
    *,
    policy: Optional[PathPolicy] = None,
    model: Optional[FastModel] = None,
    mode: str = "uniform",
    monotonic: bool = True,
    max_descriptors: Optional[int] = None,
) -> ModelResult:
    """One-shot convenience mirroring :func:`model_throughput`.

    Pass (and reuse) a :class:`FastModel` to amortize structural work
    across calls; without one, a fresh model is built per call and only
    the vectorized enumeration is faster than legacy.
    """
    if model is None:
        model = FastModel(topo, max_descriptors=max_descriptors)
    return model.solve(
        demand, weight_fn, policy=policy, mode=mode, monotonic=monotonic
    )
