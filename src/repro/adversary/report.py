"""The :class:`AdversaryReport`: one search run, fully reproducible.

The report separates two identities on purpose:

* the **pattern** is content-addressed -- its spec is the destination
  map alone (:class:`~repro.traffic.patterns.DiscoveredPermutation`),
  so equal maps share one fingerprint and one cache entry no matter
  which search found them;
* the **provenance** (strategy, budget, seed, suite comparison, the
  improvement trace, a :class:`~repro.obs.manifest.RunManifest`) lives
  here, in the report, and never leaks into pattern identity.

``to_dict`` output is what ``repro adversary --out`` writes; the
``kind``/``args`` top level makes the file directly loadable as a
pattern spec (``--pattern @file.json``) while the extra keys are
ignored by the spec parser.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.obs.manifest import RunManifest

__all__ = ["AdversaryReport"]


@dataclass
class AdversaryReport:
    """Everything one :func:`repro.adversary.run_search` call produced."""

    topology: str  # display label, e.g. "dfly(p=4, a=8, h=4, g=9)"
    topology_spec: Dict[str, Any]  # TopologySpec.to_dict()
    strategy: str  # registry kind, e.g. "hillclimb"
    strategy_args: Dict[str, Any]  # its canonical args
    budget: int
    seed: int
    candidates_scored: int  # search candidates (suite pre-scoring excluded)
    best_score: float  # MIN-only modeled throughput (lower = stronger)
    kind: str  # pattern spec kind ("discovered")
    args: Dict[str, Any]  # pattern spec args ({"dest": [...]})
    pattern_label: str  # e.g. "discovered(1a2b3c4d)"
    pattern_fingerprint: str  # PatternSpec fingerprint of the winner
    # the topology's own adversary_suite, scored with the same objective:
    # [{"label", "score", "family": "type1"|"type2"}], suite order
    suite: List[Dict[str, Any]] = field(default_factory=list)
    # winner + suite merged, ascending score (strongest adversary first)
    ranked: List[Dict[str, Any]] = field(default_factory=list)
    # improvement events: [{"scored": n, "score": s}]
    trace: List[Dict[str, float]] = field(default_factory=list)
    cache_hits: int = 0  # executor cache hits during this search
    manifest: RunManifest = field(default_factory=RunManifest)

    # ------------------------------------------------------------------
    def gap_vs_suite(self) -> float:
        """Best suite score minus the winner's score (>= 0 means the
        search matched or beat the paper's strongest adversary)."""
        if not self.suite:
            return 0.0
        return min(row["score"] for row in self.suite) - self.best_score

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "kind": self.kind,
            "args": self.args,
            "topology": self.topology,
            "topology_spec": self.topology_spec,
            "strategy": self.strategy,
            "strategy_args": self.strategy_args,
            "budget": self.budget,
            "seed": self.seed,
            "candidates_scored": self.candidates_scored,
            "best_score": self.best_score,
            "pattern_label": self.pattern_label,
            "pattern_fingerprint": self.pattern_fingerprint,
            "suite": self.suite,
            "ranked": self.ranked,
            "trace": self.trace,
            "cache_hits": self.cache_hits,
            "manifest": self.manifest.to_dict(),
        }
        return data

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AdversaryReport":
        return cls(
            topology=data["topology"],
            topology_spec=dict(data["topology_spec"]),
            strategy=data["strategy"],
            strategy_args=dict(data["strategy_args"]),
            budget=int(data["budget"]),
            seed=int(data["seed"]),
            candidates_scored=int(data["candidates_scored"]),
            best_score=float(data["best_score"]),
            kind=data["kind"],
            args=dict(data["args"]),
            pattern_label=data["pattern_label"],
            pattern_fingerprint=data["pattern_fingerprint"],
            suite=list(data.get("suite", [])),
            ranked=list(data.get("ranked", [])),
            trace=list(data.get("trace", [])),
            cache_hits=int(data.get("cache_hits", 0)),
            manifest=RunManifest.from_dict(data.get("manifest", {})),
        )

    def to_text(self) -> str:
        """The CLI's ranked-comparison rendering."""
        lines = [
            f"{self.topology} adversary search "
            f"[{self.strategy}, budget={self.budget}, seed={self.seed}]",
            f"  candidates scored : {self.candidates_scored} "
            f"({self.cache_hits} cache hits)",
            f"  best pattern      : {self.pattern_label} "
            f"(MIN-only throughput {self.best_score:.4f})",
            f"  gap vs suite best : {self.gap_vs_suite():+.4f}",
            "  ranked (strongest adversary first):",
        ]
        for row in self.ranked:
            marker = "*" if row.get("family") == "discovered" else " "
            lines.append(
                f"  {marker} {row['label']:28s} "
                f"[{row['family']:10s}] score={row['score']:.4f}"
            )
        return "\n".join(lines)
