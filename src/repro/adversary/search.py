"""Search core: strategies that hunt for worst-case traffic patterns.

A candidate is a node-level destination map (a partial permutation, the
same shape :class:`~repro.traffic.patterns.DiscoveredPermutation`
accepts).  Its score is the MIN-only LP throughput -- the
``hopclass:0,0.0`` policy admits no VLB path, so the model routes every
flow over its minimal paths and the score is exactly the saturation
throughput conventional minimal routing would reach.  *Lower is more
adversarial*: the paper's ADV shift scores ``links_per_group_pair *
h_links / p`` while uniform random sits near 1.0, and a good search
drives the score to (or below) the worst suite pattern.

Scoring runs through :meth:`repro.perf.executor.SweepExecutor.run_models`
so candidate batches fan out across worker processes and repeated maps
(restarts, plateau revisits) come from the
:class:`~repro.perf.cache.SimCache` result cache.

Strategies register in :data:`SEARCH_REGISTRY` (the same
:class:`~repro.spec.registry.RegistryEntry` idiom as patterns and
policies) and implement a single method::

    search(topo, budget=..., seed=..., score_batch=..., pool=...)
        -> SearchOutcome

``pool`` carries the pre-scored suite patterns, so every strategy
starts from -- and can only improve on -- the paper's own adversaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.adversary.report import AdversaryReport
from repro.obs.manifest import RunManifest
from repro.spec import PatternSpec, PolicySpec, TopologySpec
from repro.spec.registry import Registry, RegistryEntry, SpecError
from repro.topology.base import Topology
from repro.traffic.patterns import NO_TRAFFIC, DiscoveredPermutation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.perf.executor import SweepExecutor

__all__ = [
    "SEARCH_REGISTRY",
    "GreedyMatching",
    "HillClimb",
    "SearchOutcome",
    "greedy_dest_map",
    "run_search",
    "score_dest_maps",
]

# score_batch callback: a batch of destination maps -> one score each
# (MIN-only modeled throughput; lower = more adversarial).
ScoreBatch = Callable[[Sequence[np.ndarray]], List[float]]

# (destination map, score) -- the currency strategies trade in.
Candidate = Tuple[np.ndarray, float]


@dataclass
class SearchOutcome:
    """What one strategy run produced.

    ``trace`` records every improvement as ``{"scored": n, "score": s}``
    -- the running best after ``n`` scored candidates -- so reports can
    show convergence without any wall-clock bookkeeping.
    """

    dest: np.ndarray  # best destination map found (incl. the pool)
    score: float  # its MIN-only modeled throughput
    scored: int  # candidates this strategy scored (pool excluded)
    trace: List[Dict[str, float]] = field(default_factory=list)


def min_only_policy() -> "PolicySpec":
    """The scoring objective's policy spec (``hopclass:0,0.0``)."""
    return PolicySpec.make("hopclass", full_hops=0, extra_fraction=0.0)


def score_dest_maps(
    topo: Topology,
    dest_maps: Sequence[np.ndarray],
    executor: "SweepExecutor",
    *,
    max_descriptors: Optional[int] = 2000,
    seed: int = 0,
) -> List[float]:
    """MIN-only modeled throughput of each destination map (one batch).

    Maps are wrapped in :class:`DiscoveredPermutation` (registered, so
    the solves are spec-addressable and cacheable) and submitted as one
    ``run_models`` batch -- the executor dedups repeats, consults its
    cache, and fans misses across its worker pool.
    """
    from repro.perf.executor import ModelTask

    policy = min_only_policy().build()
    engine = getattr(topo, "default_model_engine", "fast")
    tasks = [
        ModelTask(
            topo,
            DiscoveredPermutation(topo, dest),
            policy,
            mode="free",
            max_descriptors=max_descriptors,
            seed=seed,
            engine=engine,
        )
        for dest in dest_maps
    ]
    results = executor.run_models(tasks)
    return [float(r.throughput) for r in results]


# ---------------------------------------------------------------------------
# Greedy maximal-matching constructor
# ---------------------------------------------------------------------------
def greedy_dest_map(topo: Topology, seed: int = 0) -> np.ndarray:
    """A switch-level permutation built to concentrate global-link load.

    The Jyothi-style greedy matching: visit source switches in a seeded
    random order; each picks the still-unclaimed destination switch
    whose group pair would carry the highest per-link load after adding
    this switch's ``p`` nodes (ties broken toward the smallest switch
    id, so the map is a pure function of ``(topo, seed)``).  Switches
    that can only reach their own group (or nothing) stay silent --
    intra-group traffic never loads a global link.

    Node level, the map preserves the within-switch index: node
    ``(sw, k)`` sends to ``(match(sw), k)``.
    """
    rng = np.random.default_rng(seed)
    n_sw = topo.num_switches
    order = rng.permutation(n_sw)
    taken = np.zeros(n_sw, dtype=bool)
    match = np.full(n_sw, -1, dtype=np.int64)
    pair_load: Dict[Tuple[int, int], float] = {}
    for src in order:
        src = int(src)
        g_src = topo.group_of(src)
        best_dst = -1
        best_score = -1.0
        for dst in range(n_sw):
            if taken[dst] or dst == src:
                continue
            g_dst = topo.group_of(dst)
            if g_dst == g_src:
                continue
            links = topo.links_between_groups(g_src, g_dst)
            if not links:
                continue
            key = (min(g_src, g_dst), max(g_src, g_dst))
            score = (pair_load.get(key, 0.0) + topo.p) / len(links)
            if score > best_score:  # strict: ties keep the smallest dst
                best_score = score
                best_dst = dst
        if best_dst >= 0:
            match[src] = best_dst
            taken[best_dst] = True
            g_dst = topo.group_of(best_dst)
            key = (min(g_src, g_dst), max(g_src, g_dst))
            pair_load[key] = pair_load.get(key, 0.0) + topo.p
    dest = np.full(topo.num_nodes, NO_TRAFFIC, dtype=np.int64)
    for sw in range(n_sw):
        if match[sw] >= 0:
            for k in range(topo.p):
                dest[topo.node_id(sw, k)] = topo.node_id(int(match[sw]), k)
    return dest


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class GreedyMatching:
    """``greedy``: seeded restarts of the greedy matching constructor.

    Each of the ``budget`` candidates is :func:`greedy_dest_map` under a
    different visit order (``seed``, ``seed+1``, ...), all scored as one
    executor batch.  No refinement -- this is the constructive baseline
    the hill climb improves on.
    """

    def search(
        self,
        topo: Topology,
        *,
        budget: int,
        seed: int,
        score_batch: ScoreBatch,
        pool: Sequence[Candidate],
    ) -> SearchOutcome:
        best_dest, best_score = _pool_best(pool)
        trace: List[Dict[str, float]] = []
        maps = [greedy_dest_map(topo, seed=seed + i) for i in range(budget)]
        scores = score_batch(maps)
        scored = 0
        for dest, score in zip(maps, scores):
            scored += 1
            if best_dest is None or score < best_score:
                best_dest, best_score = dest, score
                trace.append({"scored": float(scored), "score": score})
        assert best_dest is not None
        return SearchOutcome(best_dest, best_score, scored, trace)


@dataclass(frozen=True)
class HillClimb:
    """``hillclimb``: seeded swap-mutation refinement of the best map.

    Starts from the strongest pool entry plus one greedy construction,
    then repeatedly scores a batch of ``batch`` mutants of the current
    best -- each mutant swaps the destinations of two seeded-random
    nodes (swaps preserve the partial-permutation invariant) -- keeping
    any strict improvement.  Batching keeps the executor's worker pool
    and cache busy; the climb is a pure function of ``(topo, budget,
    seed, pool)``.
    """

    batch: int = 8

    def search(
        self,
        topo: Topology,
        *,
        budget: int,
        seed: int,
        score_batch: ScoreBatch,
        pool: Sequence[Candidate],
    ) -> SearchOutcome:
        if self.batch < 1:
            raise SpecError("hillclimb batch must be >= 1")
        rng = np.random.default_rng(seed)
        trace: List[Dict[str, float]] = []
        best_dest, best_score = _pool_best(pool)
        scored = 0

        # seed the climb with one greedy construction (scored against
        # the budget: it is a candidate like any other)
        start = greedy_dest_map(topo, seed=seed)
        batch_maps = [start]
        while scored < budget:
            take = min(len(batch_maps), budget - scored)
            scores = score_batch(batch_maps[:take])
            for dest, score in zip(batch_maps[:take], scores):
                scored += 1
                if best_dest is None or score < best_score:
                    best_dest, best_score = dest, score
                    trace.append(
                        {"scored": float(scored), "score": score}
                    )
            if scored >= budget:
                break
            assert best_dest is not None
            batch_maps = [
                _swap_mutation(best_dest, rng)
                for _ in range(min(self.batch, budget - scored))
            ]
        assert best_dest is not None
        return SearchOutcome(best_dest, best_score, scored, trace)


def _pool_best(
    pool: Sequence[Candidate],
) -> Tuple[Optional[np.ndarray], float]:
    best_dest: Optional[np.ndarray] = None
    best_score = float("inf")
    for dest, score in pool:
        if score < best_score:
            best_dest, best_score = dest, score
    return best_dest, best_score


def _swap_mutation(
    dest: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Swap the destinations of two distinct nodes (seeded draw)."""
    out = dest.copy()
    i, j = rng.choice(len(out), size=2, replace=False)
    out[i], out[j] = out[j], out[i]
    return out


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
SEARCH_REGISTRY = Registry("SEARCH_REGISTRY", "search strategy")


def _parse_greedy(args: str, spec: str) -> Dict[str, int]:
    if args:
        raise SpecError(f"greedy takes no arguments (got {spec!r})")
    return {}


def _parse_hillclimb(args: str, spec: str) -> Dict[str, int]:
    if not args:
        return {}
    try:
        return {"batch": int(args)}
    except ValueError:
        raise SpecError(
            f"bad hillclimb spec {spec!r}: use hillclimb[:BATCH]"
        ) from None


SEARCH_REGISTRY.register(
    RegistryEntry(
        kind="greedy",
        build=lambda args: GreedyMatching(**args),
        to_dict=lambda s: {},
        parse=_parse_greedy,
        cls=GreedyMatching,
        help="greedy",
        example="greedy",
    )
)

SEARCH_REGISTRY.register(
    RegistryEntry(
        kind="hillclimb",
        build=lambda args: HillClimb(**args),
        to_dict=lambda s: {"batch": s.batch},
        parse=_parse_hillclimb,
        cls=HillClimb,
        help="hillclimb[:BATCH]",
        example="hillclimb:8",
    )
)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------
def run_search(
    topo: Topology,
    *,
    strategy: str = "hillclimb",
    budget: int = 32,
    seed: int = 0,
    executor: Optional["SweepExecutor"] = None,
    num_type1: Optional[int] = 6,
    num_type2: int = 4,
    max_descriptors: Optional[int] = 2000,
) -> AdversaryReport:
    """The whole pipeline: score the suite, search past it, report.

    The topology's own ``adversary_suite`` (TYPE_1 subsampled to
    ``num_type1`` patterns under the run seed, ``num_type2`` TYPE_2
    seeds) is scored first with the same MIN-only objective and handed
    to the strategy as its starting pool -- so the returned pattern is
    *never weaker* than the strongest scored suite member, and the
    report's ranking compares like with like.  ``strategy`` is a
    :data:`SEARCH_REGISTRY` mini-language string (``greedy``,
    ``hillclimb[:BATCH]``).

    Deterministic by construction: no wall clock, every random draw
    seeded from ``seed``.  Pass a cache-backed executor to make repeat
    searches (and re-scored suite members) near-free.
    """
    kind, strategy_args = SEARCH_REGISTRY.parse(strategy)
    strat = SEARCH_REGISTRY.build(kind, strategy_args)
    if budget < 1:
        raise SpecError("search budget must be >= 1")

    own_executor = executor is None
    if executor is None:
        from repro.perf.executor import SweepExecutor

        executor = SweepExecutor(jobs=1)
    hits_before = executor.cache_hits
    try:
        # ---- suite baseline (same subsampling draw as compute_tvlb) ----
        rng = np.random.default_rng(seed)
        t1, t2 = topo.adversary_suite(num_type2=num_type2, seed=seed)
        if num_type1 is not None and num_type1 < len(t1):
            idx = rng.choice(len(t1), size=num_type1, replace=False)
            t1 = [t1[i] for i in sorted(idx)]
        suite_patterns = list(t1) + list(t2)
        suite_maps = [
            np.asarray(p.dest_map, dtype=np.int64) for p in suite_patterns
        ]
        suite_scores = score_dest_maps(
            topo,
            suite_maps,
            executor,
            max_descriptors=max_descriptors,
            seed=seed,
        )
        suite_rows: List[Dict[str, Any]] = [
            {
                "label": p.describe(),
                "score": score,
                "family": "type1" if i < len(t1) else "type2",
            }
            for i, (p, score) in enumerate(
                zip(suite_patterns, suite_scores)
            )
        ]

        # ---- search ----
        def score_batch(maps: Sequence[np.ndarray]) -> List[float]:
            return score_dest_maps(
                topo,
                maps,
                executor,
                max_descriptors=max_descriptors,
                seed=seed,
            )

        outcome = strat.search(
            topo,
            budget=budget,
            seed=seed,
            score_batch=score_batch,
            pool=list(zip(suite_maps, suite_scores)),
        )
    finally:
        if own_executor:
            executor.close()

    # ---- report ----
    pattern = DiscoveredPermutation(topo, outcome.dest)
    spec = PatternSpec.of(pattern)
    ranked = sorted(
        suite_rows
        + [
            {
                "label": pattern.describe(),
                "score": outcome.score,
                "family": "discovered",
            }
        ],
        key=lambda row: (row["score"], str(row["label"])),
    )
    topo_spec = TopologySpec.of(topo)
    manifest = RunManifest(
        kind="adversary",
        fingerprint=spec.fingerprint(),
        spec_fingerprint=spec.fingerprint(),
        topology=str(topo),
        routing="min",  # the scoring objective models MIN-only routing
        seed=seed,
        metrics={
            "best_score": outcome.score,
            "candidates_scored": outcome.scored,
            "suite_size": len(suite_patterns),
        },
    )
    return AdversaryReport(
        topology=str(topo),
        topology_spec=topo_spec.to_dict(),
        strategy=kind,
        strategy_args=strategy_args,
        budget=budget,
        seed=seed,
        candidates_scored=outcome.scored,
        best_score=outcome.score,
        kind=spec.kind,
        args=spec.args,
        pattern_label=pattern.describe(),
        pattern_fingerprint=spec.fingerprint(),
        suite=suite_rows,
        ranked=ranked,
        trace=outcome.trace,
        cache_hits=executor.cache_hits - hits_before,
        manifest=manifest,
    )
