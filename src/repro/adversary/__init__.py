"""Adversarial traffic-pattern discovery (``repro adversary``).

The paper trains Algorithm 1 against two hand-constructed suites
(Section 3.3.1: TYPE_1 shifts and TYPE_2 group/switch permutations).
This package *searches* for stronger adversaries instead of assuming
them: pluggable strategies (:data:`SEARCH_REGISTRY`) propose candidate
destination maps, a MIN-only LP scores each candidate's modeled
throughput (lower = more adversarial) through the shared
:class:`~repro.perf.executor.SweepExecutor` batch/cache machinery, and
the winner ships as a first-class
:class:`~repro.traffic.patterns.DiscoveredPermutation` spec -- usable
anywhere a ``--pattern`` is, and feedable back into Algorithm 1 via
``compute_tvlb(extra_adversaries=...)``.

Entry points:

* :func:`run_search` -- the whole pipeline; returns an
  :class:`AdversaryReport` with provenance and the ranked comparison
  against the topology's own ``adversary_suite``.
* :data:`SEARCH_REGISTRY` -- strategy registration (``greedy``,
  ``hillclimb``); new strategies register a
  :class:`~repro.spec.registry.RegistryEntry` here.

Everything is seed-deterministic: same topology, strategy, budget and
seed give bit-identical reports across processes and
``PYTHONHASHSEED`` values.
"""

from repro.adversary.report import AdversaryReport
from repro.adversary.search import (
    SEARCH_REGISTRY,
    GreedyMatching,
    HillClimb,
    SearchOutcome,
    greedy_dest_map,
    run_search,
    score_dest_maps,
)

__all__ = [
    "SEARCH_REGISTRY",
    "AdversaryReport",
    "GreedyMatching",
    "HillClimb",
    "SearchOutcome",
    "greedy_dest_map",
    "run_search",
    "score_dest_maps",
]
