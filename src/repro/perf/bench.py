"""Performance benchmark harness -- the source of ``BENCH_sim.json``.

The benchmark families:

* **Engine microbenchmark** -- cycles/second of the per-cycle engine
  (deliver / crossbar / transmit) under MIN routing, where routing-side
  work is negligible and the measurement isolates the network hot path.
  The baseline is :class:`LegacyNetwork`, a faithful reimplementation of
  the seed engine's data structures (per-cycle ``sorted`` round-robin,
  dict port budgets, dict-of-lists event buckets) layered on the current
  :class:`~repro.sim.network.Network`; it produces bit-identical results,
  so the speedup ratio measures exactly the data-structure work.
* **Array-engine microbenchmark** -- the same step-only methodology,
  comparing the default timing-wheel engine against the struct-of-arrays
  batched engine (``repro.sim.array.ArrayNetwork``, native C kernel when
  a compiler is available).  The record names the backend that actually
  ran (``native`` vs ``fallback``) because the fallback is the wheel
  path itself and its "speedup" is meaningless.
* **Sweep wall-clock** -- an N-point latency-vs-load ladder executed
  serially, through a process pool (``--jobs``), and through a warm
  on-disk cache, asserting that all three return identical results.
* **Model microbenchmark** -- a Step-1 LP sweep (Table-1 datapoints x
  the adversarial pattern suite) solved by the legacy per-solve
  assembly and by the factored fast path
  (:class:`~repro.model.fastpath.FastModel`), cold and warm, asserting
  per-datapoint throughputs agree to 1e-9.
* **Adversary microbenchmark** -- a budget-8 ``repro.adversary`` search
  run cold and warm through one on-disk cache: candidates/second, the
  warm-cache hit rate, and the ``within_type1`` usefulness gate (the
  discovered pattern must score at or below the best TYPE_1 shift).

``python -m repro bench`` (or ``python -m repro.perf.bench``) writes the
JSON trajectory record; see ``docs/performance.md`` for how to read it.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import ObsConfig
from repro.perf.cache import SimCache
from repro.perf.executor import SweepExecutor
from repro.sim.network import Network, Router, SimChannel
from repro.sim.packet import Packet
from repro.sim.params import SimParams
from repro.sim.sweep import latency_vs_load
from repro.topology import default_dragonfly
from repro.topology.dragonfly import Dragonfly
from repro.traffic.patterns import UniformRandom

__all__ = [
    "LegacyNetwork",
    "LegacyRouter",
    "LegacySimChannel",
    "bench_adversary",
    "bench_array",
    "bench_batch",
    "bench_engine",
    "bench_model",
    "bench_obs",
    "bench_sweep",
    "legacy_engine",
    "main",
    "run_benchmarks",
]


class LegacySimChannel(SimChannel):
    """Seed-faithful channel: ``load_metric`` re-sums credits per call."""

    __slots__ = ()

    def load_metric(self) -> int:
        committed = self.buffer_size * len(self.credits) - sum(self.credits)
        return len(self.out_queue) + committed


class LegacyRouter(Router):
    """Seed-faithful router: occupied input slots tracked in a ``set``."""

    __slots__ = ()

    def __init__(self, idx: int, num_ports: int, num_vcs: int) -> None:
        super().__init__(idx, num_ports, num_vcs)
        self.active = set()  # type: ignore[assignment]

    def activate(self, slot: int) -> None:
        self.active.add(slot)

    def deactivate(self, slot: int) -> None:
        self.active.discard(slot)


class LegacyNetwork(Network):
    """The seed engine's hot-path data structures, for baseline timing.

    Reimplements the pre-optimization per-cycle phases: future events in
    ``dict`` buckets keyed by cycle, round-robin order via a per-cycle
    ``sorted(...)`` with a modular key, crossbar budgets in dicts keyed by
    port / ``id(channel)``, occupied input slots in per-router ``set``s,
    and an O(num_vcs) ``load_metric`` that re-sums credit counters on
    every query.  Credit totals are still maintained (a few integer adds)
    so the optimized :meth:`SimChannel.load_metric` invariants stay
    consistent; work lists stay insertion-ordered dicts so both engines
    see identical event orderings and produce bit-identical results.
    """

    channel_cls = LegacySimChannel
    router_cls = LegacyRouter

    def __init__(self, topo, params, num_vcs) -> None:
        super().__init__(topo, params, num_vcs)
        self._deliveries: Dict[int, List[Tuple[SimChannel, Packet]]] = {}
        self._credit_returns: Dict[
            int, List[Tuple[SimChannel, int, int]]
        ] = {}
        # seed work list: channels with queued output flits, scanned every
        # cycle (insertion-ordered for run-to-run determinism)
        self._busy_channels: Dict[SimChannel, None] = {}

    def inject(self, packet: Packet) -> None:
        channel = self.inject_channels[packet.src_node]
        channel.out_queue.append(packet)
        self._busy_channels[channel] = None

    def _deliver(self) -> None:
        returns = self._credit_returns.pop(self.cycle, None)
        if returns:
            for channel, vc, count in returns:
                channel.credits[vc] += count
                channel.credit_total += count
        items = self._deliveries.pop(self.cycle, None)
        if not items:
            return
        for channel, packet in items:
            if channel.is_ejection:
                self.on_eject(packet, self.cycle)
                continue
            router = self.routers[channel.dst_router]
            if packet.hop == 1 and packet.revisable and self.on_arrival:
                self.on_arrival(packet, router.idx)
            slot = router.slot(channel.dst_port, packet.current_vc)
            router.queues[slot].append(packet)
            router.active.add(slot)
            self._active_routers[router.idx] = None
            packet.arrived_channel = channel

    def _crossbar(self) -> None:
        speedup = self.params.speedup
        num_vcs = self.num_vcs
        psize = self.params.packet_size
        for ridx in list(self._active_routers):
            router = self.routers[ridx]
            if not router.active:
                del self._active_routers[ridx]
                continue
            if len(router.active) == 1:
                order = list(router.active)
            else:
                total = router.num_ports * num_vcs
                rr = router.rr
                order = sorted(router.active, key=lambda s: (s - rr) % total)
            router.rr = (router.rr + 1) % (router.num_ports * num_vcs)
            in_budget: Dict[int, int] = {}
            out_budget: Dict[int, int] = {}
            for slot in order:
                queue = router.queues[slot]
                if not queue:
                    router.active.discard(slot)
                    continue
                port = slot // num_vcs
                if in_budget.get(port, 0) >= speedup:
                    continue
                packet = queue[0]
                ejecting = packet.hop >= packet.path_hops
                if ejecting:
                    out_channel = self.eject_channels[packet.dst_node]
                    next_vc = 0
                else:
                    out_channel = packet.route[packet.hop]
                    next_vc = packet.next_vc
                out_key = id(out_channel)
                if out_budget.get(out_key, 0) >= speedup:
                    continue
                if len(out_channel.out_queue) >= out_channel.out_capacity:
                    continue
                if not ejecting and out_channel.credits[next_vc] < psize:
                    continue
                queue.popleft()
                if not queue:
                    router.active.discard(slot)
                in_budget[port] = in_budget.get(port, 0) + 1
                out_budget[out_key] = out_budget.get(out_key, 0) + 1
                arrived = packet.arrived_channel
                if arrived is not None:
                    when = self.cycle + arrived.latency
                    self._credit_returns.setdefault(when, []).append(
                        (arrived, packet.current_vc, psize)
                    )
                if not ejecting:
                    out_channel.credits[next_vc] -= psize
                    out_channel.credit_total -= psize
                    packet.current_vc = next_vc
                    packet.hop += 1
                out_channel.out_queue.append(packet)
                self._busy_channels[out_channel] = None
            if not router.active:
                self._active_routers.pop(ridx, None)

    def _transmit(self) -> None:
        psize = self.params.packet_size
        tail_delay = psize - 1
        done = []
        for channel in self._busy_channels:
            if not channel.out_queue:
                done.append(channel)
                continue
            if self.cycle < channel.busy_until:
                continue
            if channel.src_router is None and not channel.is_ejection:
                packet = channel.out_queue[0]
                vc = packet.next_vc if packet.path_hops else 0
                if channel.credits[vc] < psize:
                    continue
                channel.credits[vc] -= psize
                channel.credit_total -= psize
                packet.current_vc = vc
                channel.out_queue.popleft()
                when = self.cycle + channel.latency + tail_delay
            else:
                packet = channel.out_queue.popleft()
                when = self.cycle + channel.latency + tail_delay
                if not channel.is_ejection:
                    when += self.params.router_latency
            channel.busy_until = self.cycle + psize
            channel.flits_sent += psize
            self._deliveries.setdefault(when, []).append((channel, packet))
            if not channel.out_queue:
                done.append(channel)
        for channel in done:
            self._busy_channels.pop(channel, None)

    def quiescent(self) -> bool:
        return (
            not self._busy_channels
            and not self._deliveries
            and not self._credit_returns
            and self.in_flight() == 0
        )

    def in_flight(self) -> int:
        total = sum(len(items) for items in self._deliveries.values())
        for router in self.routers:
            for q in router.queues:
                total += len(q)
        # repro: allow[DET102]: integer occupancy total; addition order
        # cannot change the sum
        for channel in self.channels.values():
            total += len(channel.out_queue)
        for channel in self.eject_channels:
            total += len(channel.out_queue)
        return total


@contextmanager
def legacy_engine():
    """Run ``simulate()`` on :class:`LegacyNetwork` inside this context."""
    import repro.sim.engine as engine_module

    original = engine_module.Network
    engine_module.Network = LegacyNetwork
    try:
        yield
    finally:
        engine_module.Network = original


# ---------------------------------------------------------------------------
# Benchmarks
# ---------------------------------------------------------------------------
def _time_steps(topo, pattern, load, routing, params, seed, cls=None) -> Tuple:
    """Run one ``simulate()`` and time only the engine's ``step`` calls.

    The accumulator wraps ``cls.step`` (default :class:`Network`, which
    :class:`LegacyNetwork` inherits; pass ``ArrayNetwork`` explicitly
    because it *overrides* ``step`` and patching the base class would
    silently time nothing) and sums a ``perf_counter`` interval around
    each cycle.  Injection, routing decisions, and warmup/drain
    bookkeeping in ``simulate()`` are identical code in all engines and
    are excluded, so the ratio measures the deliver/crossbar/transmit
    phases the engine work touched.
    """
    from repro.sim.engine import simulate

    if cls is None:
        cls = Network
    acc = [0.0, 0]
    original = cls.step

    def step(self):
        start = time.perf_counter()
        original(self)
        acc[0] += time.perf_counter() - start
        acc[1] += 1

    cls.step = step
    try:
        result = simulate(
            topo, pattern, load, routing=routing, params=params, seed=seed
        )
    finally:
        cls.step = original
    return acc[0], acc[1], result


def bench_engine(
    topo: Optional[Dragonfly] = None,
    *,
    window_cycles: int = 600,
    load: float = 1.0,
    routing: str = "min",
    seed: int = 1,
    repeats: int = 5,
) -> Dict:
    """Engine cycles/second, optimized vs the legacy reference baseline.

    MIN routing keeps the routing layer trivial (cached single-path
    decisions) and the saturating default load keeps buffers deep, so the
    per-cycle deliver/crossbar/transmit phases dominate ``step()`` time;
    a long window lets queue occupancy build up, which is exactly the
    regime the engine refactor targets (the legacy per-cycle ``sorted``
    cost grows with the occupied-slot count).
    Timing is step-only (see :func:`_time_steps`); the two engines run in
    interleaved optimized/legacy pairs so slow drift in background load
    hits both equally, and the record reports best-of-``repeats`` per
    engine -- the minimum is the standard noise-robust estimator, since
    scheduler interference only ever adds time.  Both engines must
    produce bit-identical results (asserted in the record).
    """
    topo = topo if topo is not None else default_dragonfly()
    params = SimParams(window_cycles=window_cycles)
    pattern = UniformRandom(topo)

    best_opt, best_leg = float("inf"), float("inf")
    cycles_opt = cycles_leg = 0
    result_opt = result_leg = None
    for _ in range(repeats):
        elapsed, cycles_opt, result_opt = _time_steps(
            topo, pattern, load, routing, params, seed
        )
        best_opt = min(best_opt, elapsed)
        with legacy_engine():
            elapsed, cycles_leg, result_leg = _time_steps(
                topo, pattern, load, routing, params, seed
            )
        best_leg = min(best_leg, elapsed)

    identical = (
        result_opt.avg_latency == result_leg.avg_latency
        and result_opt.accepted_rate == result_leg.accepted_rate
        and result_opt.packets_measured == result_leg.packets_measured
    )
    return {
        "topology": str(topo),
        "routing": routing,
        "load": load,
        "window_cycles": window_cycles,
        "engine_cycles": cycles_opt,
        "baseline_engine": "legacy",
        "optimized_engine": "wheel",
        "baseline_cycles_per_sec": cycles_leg / best_leg,
        "optimized_cycles_per_sec": cycles_opt / best_opt,
        "speedup": (cycles_opt / best_opt) / (cycles_leg / best_leg),
        "identical_results": identical,
    }


def bench_array(
    topo: Optional[Dragonfly] = None,
    *,
    window_cycles: int = 600,
    load: float = 1.0,
    routing: str = "min",
    seed: int = 1,
    repeats: int = 5,
) -> Dict:
    """Array-engine cycles/second vs the timing-wheel default.

    Same step-only, interleaved, best-of-``repeats`` methodology as
    :func:`bench_engine` (see there for why MIN at saturating load is
    the right regime), but the baseline arm is the *wheel* engine -- the
    repo default that ``bench_engine`` reports as "optimized" -- so the
    two records compose: legacy -> wheel -> array.

    ``identical_results`` uses full :class:`SimResult` equality (every
    measured field; the manifest is excluded by construction), which is
    the engine-parity contract the array engine must uphold.  ``backend``
    records whether the native C kernel actually ran: without a compiler
    the array engine falls back to the inherited wheel path and the
    speedup would be a meaningless ~1.0x.
    """
    from repro.sim.array import ArrayNetwork
    from repro.sim.array.native import native_available

    topo = topo if topo is not None else default_dragonfly()
    pattern = UniformRandom(topo)
    wheel_params = SimParams(window_cycles=window_cycles)
    array_params = SimParams(window_cycles=window_cycles, engine="array")

    best_wheel, best_arr = float("inf"), float("inf")
    cycles_wheel = cycles_arr = 0
    result_wheel = result_arr = None
    for _ in range(repeats):
        elapsed, cycles_wheel, result_wheel = _time_steps(
            topo, pattern, load, routing, wheel_params, seed
        )
        best_wheel = min(best_wheel, elapsed)
        elapsed, cycles_arr, result_arr = _time_steps(
            topo, pattern, load, routing, array_params, seed,
            cls=ArrayNetwork,
        )
        best_arr = min(best_arr, elapsed)

    return {
        "topology": str(topo),
        "routing": routing,
        "load": load,
        "window_cycles": window_cycles,
        "engine_cycles": cycles_arr,
        "baseline_engine": "wheel",
        "optimized_engine": "array",
        "backend": "native" if native_available() else "fallback",
        "baseline_cycles_per_sec": cycles_wheel / best_wheel,
        "optimized_cycles_per_sec": cycles_arr / best_arr,
        "speedup": (cycles_arr / best_arr) / (cycles_wheel / best_wheel),
        "identical_results": result_arr == result_wheel,
    }


def bench_batch(
    topo: Optional[Dragonfly] = None,
    *,
    window_cycles: int = 600,
    load: float = 1.0,
    routing: str = "min",
    batch_sizes: Sequence[int] = (1, 4, 8, 16),
) -> Dict:
    """Batched multi-run throughput vs sequential single-run array runs.

    Unlike the step-only microbenchmarks, this arm times **whole runs**:
    at saturating load the kernel is only a few percent of a full
    ``simulate()`` (per-packet routing and injection dominate), so the
    batched driver's win comes from amortizing that per-cycle Python
    work across runs -- shared MIN candidate tables, vectorized
    injection, one ``repro_step_batch`` call per cycle.  End-to-end
    aggregate cycles/second is therefore the honest metric, and it is
    the quantity sweeps actually experience.

    Each batch size ``B`` runs seeds ``0..B-1`` once through
    :func:`repro.sim.batch.simulate_batch` and once sequentially through
    ``simulate()`` on the array engine; ``identical_results`` demands
    full :class:`SimResult` equality for every run -- the bit-parity
    contract that makes batching identity-neutral.  The shared candidate
    table is prewarmed outside the timed regions (it is process-memoized
    and amortized across every batch on one topology).
    """
    from repro.sim.array.native import native_available
    from repro.sim.batch import simulate_batch
    from repro.sim.engine import simulate
    from repro.spec import RunSpec

    topo = topo if topo is not None else default_dragonfly()
    pattern = UniformRandom(topo)
    params = SimParams(window_cycles=window_cycles, engine="array")
    record: Dict = {
        "topology": str(topo),
        "routing": routing,
        "load": load,
        "window_cycles": window_cycles,
        "backend": "native" if native_available() else "fallback",
        "batch_sizes": list(batch_sizes),
        "arms": [],
        "identical_results": True,
    }
    if record["backend"] != "native":
        # the batched driver refuses the scalar fallback (no shared
        # kernel call to amortize); report the skip instead of a fake 1x
        record["skipped"] = "native kernel unavailable"
        return record

    def spec_for(seed: int) -> RunSpec:
        return RunSpec.from_objects(
            topo, pattern, load, routing=routing, policy=None,
            params=params, seed=seed,
        )

    # prewarm: builds the process-memoized MIN candidate table and the
    # kernel .so so arm timings compare steady-state costs
    simulate_batch(
        [RunSpec.from_objects(
            topo, pattern, load, routing=routing, policy=None,
            params=SimParams(window_cycles=1, engine="array"), seed=0,
        )]
    )
    for size in batch_sizes:
        specs = [spec_for(seed) for seed in range(size)]
        total_cycles = sum(s.params.total_cycles for s in specs)
        start = time.perf_counter()
        batched = simulate_batch(specs)
        batched_s = time.perf_counter() - start
        start = time.perf_counter()
        singles = [simulate(spec) for spec in specs]
        single_s = time.perf_counter() - start
        identical = all(b == s for b, s in zip(batched, singles))
        record["identical_results"] = (
            record["identical_results"] and identical
        )
        record["arms"].append({
            "batch": size,
            "engine_cycles": total_cycles,
            "batched_seconds": batched_s,
            "single_seconds": single_s,
            "batched_cycles_per_sec": total_cycles / batched_s,
            "single_cycles_per_sec": total_cycles / single_s,
            "speedup": single_s / batched_s,
            "identical_results": identical,
        })
    return record


def bench_obs(
    topo: Optional[Dragonfly] = None,
    *,
    window_cycles: int = 600,
    load: float = 1.0,
    routing: str = "min",
    seed: int = 1,
    repeats: int = 5,
) -> Dict:
    """Disabled-observability overhead of ``simulate()``.

    Times whole runs (not just ``step()``) because the obs hooks live in
    the injection loop and the per-cycle sampler check, outside the
    network.  Compares ``obs=None`` (fully uninstrumented) against
    ``ObsConfig()`` with every switch off -- the no-op registry path that
    every instrumented call still traverses.  ``noop_overhead`` is the
    wall-clock ratio (best-of-``repeats``, interleaved so background
    drift hits both arms equally); the CI bench smoke asserts it stays
    under the 1.02 budget.  Both arms must produce equal results
    (``SimResult`` equality ignores the manifest by construction).
    """
    from repro.sim.engine import simulate

    topo = topo if topo is not None else default_dragonfly()
    pattern = UniformRandom(topo)
    base_params = SimParams(window_cycles=window_cycles)
    noop_params = base_params.with_obs(ObsConfig())

    best_off = best_noop = float("inf")
    result_off = result_noop = None
    for _ in range(repeats):
        start = time.perf_counter()
        result_off = simulate(
            topo, pattern, load, routing=routing,
            params=base_params, seed=seed,
        )
        best_off = min(best_off, time.perf_counter() - start)
        start = time.perf_counter()
        result_noop = simulate(
            topo, pattern, load, routing=routing,
            params=noop_params, seed=seed,
        )
        best_noop = min(best_noop, time.perf_counter() - start)

    return {
        "topology": str(topo),
        "routing": routing,
        "load": load,
        "window_cycles": window_cycles,
        "disabled_seconds": best_off,
        "noop_seconds": best_noop,
        "noop_overhead": best_noop / best_off if best_off else None,
        "identical_results": result_off == result_noop,
    }


def bench_sweep(
    topo: Optional[Dragonfly] = None,
    *,
    loads: Optional[Sequence[float]] = None,
    window_cycles: int = 300,
    routing: str = "ugal-l",
    seed: int = 0,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> Dict:
    """Wall-clock of an N-point load ladder: serial vs pool vs warm cache.

    All executions must return identical result lists; the record
    includes the host's CPU count since pool speedup is bounded by it.
    When ``jobs`` exceeds the CPU count the pooled run is *skipped*
    rather than reported: an oversubscribed CPU-bound pool measures
    scheduler thrash, and publishing that as "parallel speedup" (the old
    jobs=8 default produced 0.72x on a 1-CPU host) misleads anyone
    reading the trajectory record.  The skip is annotated in
    ``parallel_skipped`` and the speedup fields are ``None``.
    """
    topo = topo if topo is not None else default_dragonfly()
    params = SimParams(window_cycles=window_cycles)
    pattern = UniformRandom(topo)
    if jobs is None:
        # oversubscribing a CPU-bound pool slows the sweep down (the old
        # jobs=8 default measured parallel_speedup 0.72 on a 1-CPU host)
        jobs = os.cpu_count() or 1
    if loads is None:
        loads = [0.05 + 0.05 * i for i in range(8)]
    kwargs = dict(
        routing=routing,
        params=params,
        seed=seed,
        stop_after_saturation=False,
    )

    start = time.perf_counter()
    serial = latency_vs_load(topo, pattern, loads, **kwargs)
    serial_s = time.perf_counter() - start

    cpus = os.cpu_count() or 1
    parallel_s = None
    parallel_skipped = None
    pooled = None
    if jobs > cpus:
        parallel_skipped = (
            f"jobs ({jobs}) > cpus ({cpus}): an oversubscribed pool "
            "measures scheduler contention, not parallel speedup"
        )
    else:
        with SweepExecutor(jobs=jobs) as executor:
            start = time.perf_counter()
            pooled = latency_vs_load(
                topo, pattern, loads, executor=executor, **kwargs
            )
            parallel_s = time.perf_counter() - start

    cached_s = None
    if cache_dir is not None:
        cache = SimCache(cache_dir)
        with SweepExecutor(jobs=1, cache=cache) as executor:
            # first pass fills the cache, second pass times the hits
            latency_vs_load(topo, pattern, loads, executor=executor, **kwargs)
            start = time.perf_counter()
            cached = latency_vs_load(
                topo, pattern, loads, executor=executor, **kwargs
            )
            cached_s = time.perf_counter() - start
        assert cached.rows() == serial.rows(), "cache changed sweep results"

    identical = pooled is None or pooled.rows() == serial.rows()
    return {
        "topology": str(topo),
        "routing": routing,
        # report-layer rounding only: float grids built by repeated
        # addition accumulate drift (0.15000000000000002), which is
        # noise in a human-facing record; fingerprints and cache keys
        # keep the exact floats the runs actually used
        "loads": [float(f"{x:.10g}") for x in loads],
        "window_cycles": window_cycles,
        "jobs": jobs,
        "cpus": cpus,
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "parallel_speedup": serial_s / parallel_s if parallel_s else None,
        "parallel_skipped": parallel_skipped,
        "cached_seconds": cached_s,
        "cached_speedup": (serial_s / cached_s) if cached_s else None,
        "identical_results": identical,
    }


def bench_model(
    topo: Optional[Dragonfly] = None,
    *,
    num_datapoints: int = 6,
    num_patterns: int = 10,
    mode: str = "free",
    seed: int = 0,
    cache_dir: Optional[str] = None,
) -> Dict:
    """Step-1 LP sweep wall-clock: legacy assembly vs the fast path.

    The workload is ``num_datapoints`` Table-1 policies x
    ``num_patterns`` adversarial patterns (a TYPE_1 subsample plus
    TYPE_2 permutations), solved in ``mode`` -- ``"free"`` is what
    Algorithm 1's Step 1 uses and is the more expensive assembly.

    Three timed executions:

    * ``legacy`` -- the original per-solve constraint assembly
      (``engine="legacy"``), one full enumeration + COO build per
      ``(policy, pattern)``.
    * ``fast cold`` -- the factored pipeline from an empty process
      (structural factorization built once, then patched per solve).
    * ``fast warm`` -- same workload again with the per-process solver
      memo already populated, isolating the per-solve patch cost.

    With ``cache_dir`` a fourth execution times the sweep served
    entirely from the on-disk ``ModelResult`` cache.  All executions
    must agree per ``(datapoint, pattern)`` throughput to 1e-9
    (``identical_results``); the record carries the observed worst
    delta.
    """
    import numpy as np

    from repro.core.datapoints import table1_datapoints
    from repro.model.sweep import step1_sweep
    from repro.perf import executor as executor_module
    from repro.traffic.adversarial import type_1_set, type_2_set

    topo = topo if topo is not None else default_dragonfly()

    grid = table1_datapoints(step=0.25, seed=seed)[:num_datapoints]
    num_t2 = min(3, num_patterns)
    t1 = type_1_set(topo)
    rng = np.random.default_rng(seed)
    idx = rng.choice(
        len(t1), size=min(num_patterns - num_t2, len(t1)), replace=False
    )
    patterns = [t1[i] for i in sorted(idx)] + type_2_set(
        topo, count=num_t2, seed=seed
    )

    start = time.perf_counter()
    legacy = step1_sweep(
        topo, patterns, grid, mode=mode, engine="legacy", seed=seed
    )
    legacy_s = time.perf_counter() - start

    executor_module._SOLVER_MEMO.clear()  # a truly cold fast-path run
    start = time.perf_counter()
    fast = step1_sweep(
        topo, patterns, grid, mode=mode, engine="fast", seed=seed
    )
    fast_cold_s = time.perf_counter() - start

    start = time.perf_counter()  # memo now holds the factorization
    warm = step1_sweep(
        topo, patterns, grid, mode=mode, engine="fast", seed=seed
    )
    fast_warm_s = time.perf_counter() - start

    cached_s = None
    if cache_dir is not None:
        cache = SimCache(cache_dir)
        with SweepExecutor(jobs=1, cache=cache) as executor:
            # first pass fills the cache, second pass times the hits
            step1_sweep(
                topo, patterns, grid, mode=mode, engine="fast",
                executor=executor, seed=seed,
            )
            start = time.perf_counter()
            cached = step1_sweep(
                topo, patterns, grid, mode=mode, engine="fast",
                executor=executor, seed=seed,
            )
            cached_s = time.perf_counter() - start
        for pt, ref in zip(cached, legacy):
            assert np.allclose(
                pt.per_pattern, ref.per_pattern, rtol=0, atol=1e-9
            ), "cache changed sweep results"

    max_delta = max(
        abs(a - b)
        for f, l in zip(fast, legacy)
        for a, b in zip(f.per_pattern, l.per_pattern)
    )
    warm_delta = max(
        abs(a - b)
        for w, l in zip(warm, legacy)
        for a, b in zip(w.per_pattern, l.per_pattern)
    )
    return {
        "topology": str(topo),
        "mode": mode,
        "num_datapoints": len(grid),
        "num_patterns": len(patterns),
        "solves": len(grid) * len(patterns),
        "legacy_seconds": legacy_s,
        "fast_cold_seconds": fast_cold_s,
        "fast_warm_seconds": fast_warm_s,
        "speedup": legacy_s / fast_cold_s if fast_cold_s else None,
        "warm_speedup": legacy_s / fast_warm_s if fast_warm_s else None,
        "cached_seconds": cached_s,
        "cached_speedup": (legacy_s / cached_s) if cached_s else None,
        "max_abs_delta": max(max_delta, warm_delta),
        "identical_results": bool(
            max_delta <= 1e-9 and warm_delta <= 1e-9
        ),
    }


def bench_adversary(
    topo: Optional[Dragonfly] = None,
    *,
    strategy: str = "hillclimb",
    budget: int = 8,
    num_type1: int = 6,
    num_type2: int = 4,
    seed: int = 0,
    cache_dir: Optional[str] = None,
) -> Dict:
    """Adversary-search throughput: candidates/second, cold vs warm cache.

    Runs the identical budget-``budget`` :func:`repro.adversary.run_search`
    twice through one on-disk :class:`SimCache` (a temp dir unless
    ``cache_dir`` is given): the cold pass computes every MIN-only LP
    solve, the warm pass must serve them from cache.  The record gates
    two contracts the CI bench smoke asserts:

    * ``identical_results`` -- the warm search finds the same pattern
      with the same score and ranking (the cache is identity-neutral to
      the search);
    * ``within_type1`` -- the discovered pattern's modeled throughput is
      at or below the best scored TYPE_1 shift (the subsystem's basic
      usefulness contract: searching never does worse than the paper's
      hand-built adversaries).
    """
    import tempfile

    from repro.adversary import run_search

    topo = topo if topo is not None else default_dragonfly()
    tmp = None
    if cache_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-bench-adv-")
        cache_dir = tmp.name
    try:
        reports = []
        timings = []
        for _ in range(2):
            cache = SimCache(cache_dir)
            with SweepExecutor(jobs=1, cache=cache) as executor:
                start = time.perf_counter()
                report = run_search(
                    topo,
                    strategy=strategy,
                    budget=budget,
                    seed=seed,
                    executor=executor,
                    num_type1=num_type1,
                    num_type2=num_type2,
                )
                timings.append(time.perf_counter() - start)
            reports.append(report)
    finally:
        if tmp is not None:
            tmp.cleanup()
    cold, warm = reports
    cold_s, warm_s = timings

    # everything scored, suite pre-pass included: what the wall clock saw
    total = cold.candidates_scored + len(cold.suite)
    best_t1 = min(
        row["score"] for row in cold.suite if row["family"] == "type1"
    )
    identical = (
        cold.pattern_fingerprint == warm.pattern_fingerprint
        and cold.best_score == warm.best_score
        and cold.ranked == warm.ranked
    )
    return {
        "topology": str(topo),
        "strategy": strategy,
        "budget": budget,
        "suite_size": len(cold.suite),
        "candidates_total": total,
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "cold_candidates_per_sec": total / cold_s,
        "warm_candidates_per_sec": total / warm_s,
        "warm_speedup": cold_s / warm_s,
        # duplicate maps dedup inside a batch, so hits can undershoot
        # total; a healthy warm pass still sits near 1.0
        "warm_hit_rate": warm.cache_hits / total,
        "best_score": cold.best_score,
        "best_type1_score": best_t1,
        "within_type1": bool(cold.best_score <= best_t1 + 1e-9),
        "identical_results": identical,
    }


def run_benchmarks(
    *,
    topology: str = "4,8,4,9",
    window_cycles: int = 300,
    engine_window: int = 600,
    jobs: Optional[int] = None,
    sweep_points: int = 8,
    model_datapoints: int = 6,
    model_patterns: int = 10,
    cache_dir: Optional[str] = None,
    quick: bool = False,
) -> Dict:
    """Run all three benchmark families and return the trajectory record."""
    p, a, h, g = (int(x) for x in topology.split(","))
    topo = Dragonfly(p, a, h, g)
    if quick:
        window_cycles = min(window_cycles, 150)
        engine_window = min(engine_window, 150)
        sweep_points = min(sweep_points, 4)
        model_datapoints = min(model_datapoints, 3)
        model_patterns = min(model_patterns, 4)
    loads = [0.05 + 0.05 * i for i in range(sweep_points)]
    record = {
        "bench": "repro.perf",
        "version": 4,
        "python": platform.python_version(),
        "cpus": os.cpu_count() or 1,
        "engine_microbench": bench_engine(
            topo,
            window_cycles=engine_window,
            repeats=1 if quick else 5,
        ),
        "array_microbench": bench_array(
            topo,
            window_cycles=engine_window,
            repeats=1 if quick else 5,
        ),
        "batch_microbench": bench_batch(
            topo,
            window_cycles=engine_window,
            # quick mode keeps the 1x anchor and the batch-8 CI gate
            batch_sizes=(1, 8) if quick else (1, 4, 8, 16),
        ),
        "obs_microbench": bench_obs(
            topo,
            window_cycles=engine_window,
            repeats=3 if quick else 5,
        ),
        "sweep": bench_sweep(
            topo,
            loads=loads,
            window_cycles=window_cycles,
            jobs=jobs,
            cache_dir=cache_dir,
        ),
        "model_microbench": bench_model(
            topo,
            num_datapoints=model_datapoints,
            num_patterns=model_patterns,
            cache_dir=cache_dir,
        ),
        "adversary_microbench": bench_adversary(
            topo,
            budget=8,
            num_type1=3 if quick else 6,
            num_type2=2 if quick else 4,
        ),
    }
    return record


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="engine + sweep performance benchmarks (BENCH_sim.json)",
    )
    parser.add_argument("--out", default="BENCH_sim.json",
                        help="output JSON path (default BENCH_sim.json)")
    parser.add_argument("--topology", "-t", default="4,8,4,9")
    parser.add_argument("--window", type=int, default=300,
                        help="sweep measurement window cycles (default 300)")
    parser.add_argument("--engine-window", type=int, default=600,
                        help="engine microbench window cycles (default 600)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the sweep bench "
                             "(default: the host's CPU count)")
    parser.add_argument("--points", type=int, default=8,
                        help="loads in the sweep ladder (default 8)")
    parser.add_argument("--cache-dir", default=None,
                        help="also time a warm-cache sweep using this dir")
    parser.add_argument("--quick", action="store_true",
                        help="reduced windows/points for CI smoke runs")
    args = parser.parse_args(argv)

    record = run_benchmarks(
        topology=args.topology,
        window_cycles=args.window,
        engine_window=args.engine_window,
        jobs=args.jobs,
        sweep_points=args.points,
        cache_dir=args.cache_dir,
        quick=args.quick,
    )
    with open(args.out, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")

    eng = record["engine_microbench"]
    swp = record["sweep"]
    print(f"engine: {eng['baseline_cycles_per_sec']:.0f} -> "
          f"{eng['optimized_cycles_per_sec']:.0f} cycles/s "
          f"({eng['speedup']:.2f}x, identical={eng['identical_results']})")
    arr = record["array_microbench"]
    print(f"array ({arr['backend']}): "
          f"{arr['baseline_cycles_per_sec']:.0f} -> "
          f"{arr['optimized_cycles_per_sec']:.0f} cycles/s "
          f"({arr['speedup']:.2f}x, identical={arr['identical_results']})")
    bat = record["batch_microbench"]
    if bat.get("skipped"):
        print(f"batch: skipped ({bat['skipped']})")
    else:
        ladder = ", ".join(
            f"B={arm['batch']}: {arm['speedup']:.2f}x"
            for arm in bat["arms"]
        )
        print(f"batch ({bat['backend']}, end-to-end): {ladder} "
              f"(identical={bat['identical_results']})")
    obs = record["obs_microbench"]
    print(f"obs disabled-overhead: {obs['noop_overhead']:.3f}x "
          f"(identical={obs['identical_results']})")
    if swp["parallel_seconds"] is None:
        print(f"sweep ({len(swp['loads'])} points, jobs={swp['jobs']}, "
              f"cpus={swp['cpus']}): serial {swp['serial_seconds']:.2f}s, "
              f"parallel skipped ({swp['parallel_skipped']})")
    else:
        print(f"sweep ({len(swp['loads'])} points, jobs={swp['jobs']}, "
              f"cpus={swp['cpus']}): serial {swp['serial_seconds']:.2f}s, "
              f"parallel {swp['parallel_seconds']:.2f}s "
              f"({swp['parallel_speedup']:.2f}x, "
              f"identical={swp['identical_results']})")
    if swp["cached_seconds"] is not None:
        print(f"  warm cache: {swp['cached_seconds']:.3f}s "
              f"({swp['cached_speedup']:.0f}x)")
    mdl = record["model_microbench"]
    print(f"model ({mdl['num_datapoints']} datapoints x "
          f"{mdl['num_patterns']} patterns, mode={mdl['mode']}): "
          f"legacy {mdl['legacy_seconds']:.2f}s, "
          f"fast {mdl['fast_cold_seconds']:.2f}s cold / "
          f"{mdl['fast_warm_seconds']:.2f}s warm "
          f"({mdl['speedup']:.1f}x / {mdl['warm_speedup']:.1f}x, "
          f"identical={mdl['identical_results']})")
    if mdl["cached_seconds"] is not None:
        print(f"  warm cache: {mdl['cached_seconds']:.3f}s "
              f"({mdl['cached_speedup']:.0f}x)")
    adv = record["adversary_microbench"]
    print(f"adversary ({adv['strategy']}, budget={adv['budget']}): "
          f"{adv['cold_candidates_per_sec']:.1f} cand/s cold, "
          f"{adv['warm_candidates_per_sec']:.1f} warm "
          f"(hit rate {adv['warm_hit_rate']:.2f}, "
          f"within_type1={adv['within_type1']}, "
          f"identical={adv['identical_results']})")
    print(f"[saved {args.out}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
