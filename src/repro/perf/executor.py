"""Process-pool execution of independent ``simulate()`` points.

Every experiment in the paper -- a latency-vs-load ladder, a saturation
bisection frontier, a multi-seed replication, Algorithm 1 Step 2's
5-pattern evaluation -- reduces to a batch of *independent* simulation
points.  :class:`SweepExecutor` fans such a batch out across worker
processes and returns results in task order, optionally short-circuiting
each point through the on-disk :class:`~repro.perf.cache.SimCache`.

Guarantees:

* **Determinism.**  A task is fully described by picklable inputs and
  ``simulate()`` is a pure function of them, so the parallel path returns
  bit-identical results to the serial path and result order never depends
  on completion order.  Tasks whose components are registered spec types
  ship their compact :class:`~repro.spec.RunSpec` to workers (the worker
  rebuilds topology and pattern from the declarative form); only tasks
  the spec layer cannot describe ship live objects.
* **Graceful degradation.**  ``jobs=1``, a single-task batch, or a host
  where process pools cannot be created (sandboxes without fork/semaphore
  support) all run serially in-process -- same results, no crash.

The worker entry points are module-level (:func:`run_task`,
:func:`_run_payload`), so both the ``fork`` and ``spawn`` multiprocessing
start methods work.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.perf.cache import SimCache, fingerprint
from repro.routing.pathset import PathPolicy
from repro.sim.engine import simulate
from repro.sim.params import SimParams
from repro.sim.stats import SimResult
from repro.spec import RunSpec, SpecError
from repro.topology.dragonfly import Dragonfly
from repro.traffic.patterns import TrafficPattern

__all__ = ["SimTask", "SweepExecutor", "default_jobs", "run_task"]


def default_jobs() -> int:
    """``$REPRO_JOBS`` if set, else 1 (opt-in parallelism)."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1


@dataclass
class SimTask:
    """One independent ``simulate()`` invocation (picklable).

    On construction the task derives its declarative :class:`RunSpec`
    (``None`` when a component is not a registered spec type); the spec,
    when present, is what crosses the process boundary and what keys the
    result cache.
    """

    topo: Dragonfly
    pattern: TrafficPattern
    load: float
    routing: str = "ugal-l"
    policy: Optional[PathPolicy] = None
    params: Optional[SimParams] = None
    seed: int = 0
    spec: Optional[RunSpec] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.spec is None:
            try:
                self.spec = RunSpec.from_objects(
                    self.topo,
                    self.pattern,
                    self.load,
                    routing=self.routing,
                    policy=self.policy,
                    params=self.params,
                    seed=self.seed,
                )
            except SpecError:
                self.spec = None  # ad-hoc components: ship live objects

    def key(self) -> Optional[str]:
        """Content-address of this task (``None`` = uncacheable)."""
        return fingerprint(
            self.topo,
            self.pattern,
            self.load,
            routing=self.routing,
            policy=self.policy,
            params=self.params,
            seed=self.seed,
        )

    def payload(self) -> Union[RunSpec, "SimTask"]:
        """What to ship to a worker: the spec when one exists."""
        return self.spec if self.spec is not None else self


def run_task(task: SimTask) -> SimResult:
    """Execute one task (also the serial path)."""
    return simulate(
        task.topo,
        task.pattern,
        task.load,
        routing=task.routing,
        policy=task.policy,
        params=task.params,
        seed=task.seed,
    )


def _run_payload(payload: Union[RunSpec, SimTask]) -> SimResult:
    """Worker entry point: a declarative spec or a live-object task."""
    if isinstance(payload, RunSpec):
        return payload.run()
    return run_task(payload)


class SweepExecutor:
    """Runs batches of :class:`SimTask` with optional pool and cache.

    ``jobs`` is the worker-process count (default: ``$REPRO_JOBS`` or 1);
    ``cache`` an optional :class:`SimCache` consulted before simulating
    and filled afterwards.  The executor is reusable across batches (the
    pool persists until :meth:`close`) and usable as a context manager.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[SimCache] = None,
    ) -> None:
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        self.cache = cache
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_broken = False
        # batch statistics (cumulative)
        self.cache_hits = 0
        self.computed_parallel = 0
        self.computed_serial = 0

    # ------------------------------------------------------------------
    @property
    def parallel(self) -> bool:
        return self.jobs > 1 and not self._pool_broken

    def _ensure_pool(self) -> Optional[ProcessPoolExecutor]:
        if self._pool_broken:
            return None
        if self._pool is None:
            try:
                try:
                    ctx = multiprocessing.get_context("fork")
                except ValueError:  # pragma: no cover - non-POSIX hosts
                    ctx = multiprocessing.get_context()
                self._pool = ProcessPoolExecutor(
                    max_workers=self.jobs, mp_context=ctx
                )
            except (OSError, ValueError):  # pragma: no cover - no mp support
                self._pool_broken = True
                return None
        return self._pool

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[SimTask]) -> List[SimResult]:
        """Execute a batch; results align index-for-index with ``tasks``."""
        tasks = list(tasks)
        results: List[Optional[SimResult]] = [None] * len(tasks)
        pending: List[tuple] = []  # (index, cache key, task)
        for i, task in enumerate(tasks):
            key = task.key() if self.cache is not None else None
            if key is not None:
                hit = self.cache.get(key)
                if hit is not None:
                    results[i] = hit
                    self.cache_hits += 1
                    continue
            pending.append((i, key, task))

        if pending:
            pool = (
                self._ensure_pool()
                if self.jobs > 1 and len(pending) > 1
                else None
            )
            payloads = [t.payload() for _i, _k, t in pending]
            if pool is not None:
                computed = list(pool.map(_run_payload, payloads))
                self.computed_parallel += len(pending)
            else:
                computed = [_run_payload(p) for p in payloads]
                self.computed_serial += len(pending)
            for (i, key, _task), result in zip(pending, computed):
                results[i] = result
                if self.cache is not None and key is not None:
                    self.cache.put(key, result)
        return results  # type: ignore[return-value]

    def run_one(self, task: SimTask) -> SimResult:
        """Convenience wrapper: a single point through cache + stats."""
        return self.run([task])[0]

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def describe(self) -> str:
        mode = f"jobs={self.jobs}" if self.parallel else "serial"
        cache = "no cache" if self.cache is None else self.cache.describe()
        return (
            f"SweepExecutor({mode}, {cache}, hits={self.cache_hits}, "
            f"parallel={self.computed_parallel}, "
            f"serial={self.computed_serial})"
        )
