"""Process-pool execution of independent ``simulate()`` points.

Every experiment in the paper -- a latency-vs-load ladder, a saturation
bisection frontier, a multi-seed replication, Algorithm 1 Step 2's
5-pattern evaluation -- reduces to a batch of *independent* simulation
points.  :class:`SweepExecutor` fans such a batch out across worker
processes and returns results in task order, optionally short-circuiting
each point through the on-disk :class:`~repro.perf.cache.SimCache`.

Guarantees:

* **Determinism.**  A task is fully described by picklable inputs and
  ``simulate()`` is a pure function of them, so the parallel path returns
  bit-identical results to the serial path and result order never depends
  on completion order.  Tasks whose components are registered spec types
  ship their compact :class:`~repro.spec.RunSpec` to workers (the worker
  rebuilds topology and pattern from the declarative form); only tasks
  the spec layer cannot describe ship live objects.
* **Graceful degradation.**  ``jobs=1``, a single-task batch, or a host
  where process pools cannot be created (sandboxes without fork/semaphore
  support) all run serially in-process -- same results, no crash.

The worker entry points are module-level (:func:`run_task`,
:func:`_run_payload`), so both the ``fork`` and ``spawn`` multiprocessing
start methods work.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.model.lp_model import ModelResult
from repro.perf.cache import SimCache, fingerprint, model_fingerprint
from repro.routing.pathset import PathPolicy
from repro.sim.engine import simulate
from repro.sim.params import SimParams
from repro.sim.stats import SimResult
from repro.spec import ModelSpec, RunSpec, SpecError
from repro.topology.dragonfly import Dragonfly
from repro.traffic.patterns import TrafficPattern

__all__ = [
    "ModelTask",
    "SimTask",
    "SweepExecutor",
    "default_jobs",
    "run_model_task",
    "run_task",
]


def default_jobs() -> int:
    """``$REPRO_JOBS`` if set (clamped to the CPU count), else 1.

    Oversubscribing a small host is strictly counterproductive for these
    CPU-bound workers (BENCH_sim.json once recorded a 0.72x "speedup"
    from jobs=8 on a 1-CPU host), so the environment default can never
    exceed ``os.cpu_count()``.  An explicit ``jobs=`` argument may still
    force a larger pool, with a warning.
    """
    cap = os.cpu_count() or 1
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return min(cap, max(1, int(env)))
        except ValueError:
            pass
    return 1


@dataclass
class SimTask:
    """One independent ``simulate()`` invocation (picklable).

    On construction the task derives its declarative :class:`RunSpec`
    (``None`` when a component is not a registered spec type); the spec,
    when present, is what crosses the process boundary and what keys the
    result cache.
    """

    topo: Dragonfly
    pattern: TrafficPattern
    load: float
    routing: str = "ugal-l"
    policy: Optional[PathPolicy] = None
    params: Optional[SimParams] = None
    seed: int = 0
    spec: Optional[RunSpec] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.spec is None:
            try:
                self.spec = RunSpec.from_objects(
                    self.topo,
                    self.pattern,
                    self.load,
                    routing=self.routing,
                    policy=self.policy,
                    params=self.params,
                    seed=self.seed,
                )
            except SpecError:
                self.spec = None  # ad-hoc components: ship live objects

    def key(self) -> Optional[str]:
        """Content-address of this task (``None`` = uncacheable)."""
        return fingerprint(
            self.topo,
            self.pattern,
            self.load,
            routing=self.routing,
            policy=self.policy,
            params=self.params,
            seed=self.seed,
        )

    def payload(self) -> Union[RunSpec, "SimTask"]:
        """What to ship to a worker: the spec when one exists."""
        return self.spec if self.spec is not None else self


def run_task(task: SimTask) -> SimResult:
    """Execute one task (also the serial path)."""
    return simulate(
        task.topo,
        task.pattern,
        task.load,
        routing=task.routing,
        policy=task.policy,
        params=task.params,
        seed=task.seed,
    )


def _run_payload(payload: Union[RunSpec, SimTask]) -> SimResult:
    """Worker entry point: a declarative spec or a live-object task."""
    if isinstance(payload, RunSpec):
        return payload.run()
    return run_task(payload)


@dataclass
class ModelTask:
    """One independent LP-model solve (picklable).

    The model analogue of :class:`SimTask`: on construction the task
    derives its :class:`ModelSpec` (``None`` when a component is not a
    registered spec type); the spec is the cross-process payload and the
    model-cache key material.
    """

    topo: Dragonfly
    pattern: TrafficPattern
    policy: PathPolicy
    mode: str = "uniform"
    monotonic: bool = True
    max_descriptors: Optional[int] = None
    seed: int = 0
    engine: str = "fast"
    spec: Optional[ModelSpec] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.engine not in ("fast", "legacy"):
            raise ValueError(f"unknown model engine {self.engine!r}")
        if self.spec is None:
            try:
                self.spec = ModelSpec.from_objects(
                    self.topo,
                    self.pattern,
                    self.policy,
                    mode=self.mode,
                    monotonic=self.monotonic,
                    max_descriptors=self.max_descriptors,
                    seed=self.seed,
                    engine=self.engine,
                )
            except SpecError:
                self.spec = None  # ad-hoc components: ship live objects

    def key(self) -> Optional[str]:
        """Content-address of this solve (``None`` = uncacheable)."""
        if self.spec is None:
            return None
        return model_fingerprint(self.spec)

    def payload(self) -> Union[ModelSpec, "ModelTask"]:
        """What to ship to a worker: the spec when one exists."""
        return self.spec if self.spec is not None else self


# Per-process solver memo: a worker (or the serial path) reuses one
# FastModel / PathStatsCache per (topology, enumeration options), so the
# expensive structural factorization is paid once per process per
# topology, not once per task.  Bounded to a handful of topologies.
_SOLVER_MEMO: Dict[Tuple, object] = {}
_SOLVER_MEMO_MAX = 4


def _solver_for(
    topo: Dragonfly,
    engine: str,
    max_descriptors: Optional[int],
    seed: int,
) -> object:
    from repro.model.fastpath import FastModel
    from repro.model.pathstats import PathStatsCache
    from repro.perf.cache import topology_fingerprint

    key = (
        tuple(sorted(topology_fingerprint(topo).items())),
        engine,
        max_descriptors,
        seed,
    )
    solver = _SOLVER_MEMO.get(key)
    if solver is None:
        if len(_SOLVER_MEMO) >= _SOLVER_MEMO_MAX:
            _SOLVER_MEMO.pop(next(iter(_SOLVER_MEMO)))
        if engine == "fast":
            solver = FastModel(
                topo, max_descriptors=max_descriptors, seed=seed
            )
        else:
            solver = PathStatsCache(
                topo, max_descriptors=max_descriptors, seed=seed
            )
        _SOLVER_MEMO[key] = solver
    return solver


def run_model_task(task: ModelTask) -> ModelResult:
    """Execute one model solve (also the serial path), memoizing the
    per-topology structural state across calls in this process."""
    from repro.model.fastpath import FastModel
    from repro.model.lp_model import model_throughput
    from repro.model.pathstats import PathStatsCache

    solver = _solver_for(
        task.topo, task.engine, task.max_descriptors, task.seed
    )
    demand = task.pattern.demand_matrix()
    if task.engine == "fast":
        assert isinstance(solver, FastModel)
        return solver.solve(
            demand,
            policy=task.policy,
            mode=task.mode,
            monotonic=task.monotonic,
        )
    assert isinstance(solver, PathStatsCache)
    return model_throughput(
        task.topo,
        demand,
        policy=task.policy,
        cache=solver,
        mode=task.mode,
        monotonic=task.monotonic,
    )


def _run_model_payload(payload: Union[ModelSpec, ModelTask]) -> ModelResult:
    """Worker entry point for model solves."""
    if isinstance(payload, ModelSpec):
        topo = payload.topology.build()
        return run_model_task(
            ModelTask(
                topo=topo,
                pattern=payload.pattern.build(topo),
                policy=payload.policy.build(),
                mode=payload.mode,
                monotonic=payload.monotonic,
                max_descriptors=payload.max_descriptors,
                seed=payload.seed,
                engine=payload.engine,
                spec=payload,
            )
        )
    return run_model_task(payload)


class SweepExecutor:
    """Runs batches of :class:`SimTask` with optional pool and cache.

    ``jobs`` is the worker-process count (default: ``$REPRO_JOBS`` or 1);
    ``cache`` an optional :class:`SimCache` consulted before simulating
    and filled afterwards.  The executor is reusable across batches (the
    pool persists until :meth:`close`) and usable as a context manager.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[SimCache] = None,
    ) -> None:
        if jobs is None:
            self.jobs = default_jobs()
        else:
            self.jobs = max(1, int(jobs))
            cap = os.cpu_count() or 1
            if self.jobs > cap:
                warnings.warn(
                    f"SweepExecutor(jobs={self.jobs}) oversubscribes this "
                    f"host ({cap} CPU{'s' if cap != 1 else ''}); CPU-bound "
                    f"workers will contend and can run slower than serial",
                    RuntimeWarning,
                    stacklevel=2,
                )
        self.cache = cache
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_broken = False
        # batch statistics (cumulative)
        self.cache_hits = 0
        self.computed_parallel = 0
        self.computed_serial = 0

    # ------------------------------------------------------------------
    @property
    def parallel(self) -> bool:
        return self.jobs > 1 and not self._pool_broken

    def _ensure_pool(self) -> Optional[ProcessPoolExecutor]:
        if self._pool_broken:
            return None
        if self._pool is None:
            try:
                try:
                    ctx = multiprocessing.get_context("fork")
                except ValueError:  # pragma: no cover - non-POSIX hosts
                    ctx = multiprocessing.get_context()
                self._pool = ProcessPoolExecutor(
                    max_workers=self.jobs, mp_context=ctx
                )
            except (OSError, ValueError):  # pragma: no cover - no mp support
                self._pool_broken = True
                return None
        return self._pool

    # ------------------------------------------------------------------
    def _execute(
        self,
        tasks: Sequence,
        worker: Callable,
        cache_get: Optional[Callable],
        cache_put: Optional[Callable],
    ) -> List:
        """Shared batch machinery: cache consult -> pool/serial -> fill."""
        tasks = list(tasks)
        results: List = [None] * len(tasks)
        pending: List[tuple] = []  # (index, cache key, task)
        for i, task in enumerate(tasks):
            key = task.key() if cache_get is not None else None
            if key is not None:
                hit = cache_get(key)
                if hit is not None:
                    results[i] = hit
                    self.cache_hits += 1
                    continue
            pending.append((i, key, task))

        if pending:
            pool = (
                self._ensure_pool()
                if self.jobs > 1 and len(pending) > 1
                else None
            )
            payloads = [t.payload() for _i, _k, t in pending]
            if pool is not None:
                computed = list(pool.map(worker, payloads))
                self.computed_parallel += len(pending)
            else:
                computed = [worker(p) for p in payloads]
                self.computed_serial += len(pending)
            for (i, key, _task), result in zip(pending, computed):
                results[i] = result
                if cache_put is not None and key is not None:
                    cache_put(key, result)
        return results

    def run(self, tasks: Sequence[SimTask]) -> List[SimResult]:
        """Execute a sim batch; results align index-for-index with
        ``tasks``."""
        cache = self.cache
        return self._execute(
            tasks,
            _run_payload,
            cache.get if cache is not None else None,
            cache.put if cache is not None else None,
        )

    def run_models(self, tasks: Sequence[ModelTask]) -> List[ModelResult]:
        """Execute a batch of LP-model solves, with the same cache
        consult / pool fan-out / deterministic ordering as :meth:`run`
        (model results live in the same :class:`SimCache` under their
        own record kind)."""
        cache = self.cache
        return self._execute(
            tasks,
            _run_model_payload,
            cache.get_model if cache is not None else None,
            cache.put_model if cache is not None else None,
        )

    def run_one(self, task: SimTask) -> SimResult:
        """Convenience wrapper: a single point through cache + stats."""
        return self.run([task])[0]

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def describe(self) -> str:
        mode = f"jobs={self.jobs}" if self.parallel else "serial"
        cache = "no cache" if self.cache is None else self.cache.describe()
        return (
            f"SweepExecutor({mode}, {cache}, hits={self.cache_hits}, "
            f"parallel={self.computed_parallel}, "
            f"serial={self.computed_serial})"
        )
