"""Process-pool execution of independent ``simulate()`` points.

Every experiment in the paper -- a latency-vs-load ladder, a saturation
bisection frontier, a multi-seed replication, Algorithm 1 Step 2's
5-pattern evaluation -- reduces to a batch of *independent* simulation
points.  :class:`SweepExecutor` fans such a batch out across worker
processes and returns results in task order, optionally short-circuiting
each point through the on-disk :class:`~repro.perf.cache.SimCache`.

Guarantees:

* **Determinism.**  A task is fully described by picklable inputs and
  ``simulate()`` is a pure function of them, so the parallel path returns
  bit-identical results to the serial path and result order never depends
  on completion order.  Tasks whose components are registered spec types
  ship their compact :class:`~repro.spec.RunSpec` to workers (the worker
  rebuilds topology and pattern from the declarative form); only tasks
  the spec layer cannot describe ship live objects.
* **Graceful degradation.**  ``jobs=1``, a single-task batch, or a host
  where process pools cannot be created (sandboxes without fork/semaphore
  support) all run serially in-process -- same results, no crash.

The worker entry points are module-level (:func:`run_task`,
:func:`_run_payload`), so both the ``fork`` and ``spawn`` multiprocessing
start methods work.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.model.lp_model import ModelResult
from repro.obs import ProgressReporter, Tracer, active_capture
from repro.obs.log import get_logger
from repro.obs.manifest import RunManifest
from repro.perf.cache import SimCache, fingerprint, model_fingerprint
from repro.routing.pathset import PathPolicy
from repro.sim.engine import simulate
from repro.sim.params import SimParams
from repro.sim.stats import SimResult
from repro.spec import ModelSpec, RunSpec, SpecError
from repro.topology.dragonfly import Dragonfly
from repro.traffic.patterns import TrafficPattern

_log = get_logger("perf.executor")

__all__ = [
    "ModelTask",
    "SimTask",
    "SweepExecutor",
    "default_jobs",
    "run_model_task",
    "run_task",
]


def default_jobs() -> int:
    """``$REPRO_JOBS`` if set (clamped to the CPU count), else 1.

    Oversubscribing a small host is strictly counterproductive for these
    CPU-bound workers (BENCH_sim.json once recorded a 0.72x "speedup"
    from jobs=8 on a 1-CPU host), so the environment default can never
    exceed ``os.cpu_count()``.  An explicit ``jobs=`` argument may still
    force a larger pool, with a warning.
    """
    cap = os.cpu_count() or 1
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return min(cap, max(1, int(env)))
        except ValueError:
            pass
    return 1


@dataclass
class SimTask:
    """One independent ``simulate()`` invocation (picklable).

    On construction the task derives its declarative :class:`RunSpec`
    (``None`` when a component is not a registered spec type); the spec,
    when present, is what crosses the process boundary and what keys the
    result cache.
    """

    topo: Dragonfly
    pattern: TrafficPattern
    load: float
    routing: str = "ugal-l"
    policy: Optional[PathPolicy] = None
    params: Optional[SimParams] = None
    seed: int = 0
    spec: Optional[RunSpec] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.spec is None:
            try:
                self.spec = RunSpec.from_objects(
                    self.topo,
                    self.pattern,
                    self.load,
                    routing=self.routing,
                    policy=self.policy,
                    params=self.params,
                    seed=self.seed,
                )
            except SpecError:
                self.spec = None  # ad-hoc components: ship live objects

    def key(self) -> Optional[str]:
        """Content-address of this task (``None`` = uncacheable)."""
        return fingerprint(
            self.topo,
            self.pattern,
            self.load,
            routing=self.routing,
            policy=self.policy,
            params=self.params,
            seed=self.seed,
        )

    def payload(self) -> Union[RunSpec, "SimTask"]:
        """What to ship to a worker: the spec when one exists."""
        return self.spec if self.spec is not None else self


def run_task(task: SimTask) -> SimResult:
    """Execute one task (also the serial path)."""
    return simulate(
        task.topo,
        task.pattern,
        task.load,
        routing=task.routing,
        policy=task.policy,
        params=task.params,
        seed=task.seed,
    )


def _run_payload(payload: Union[RunSpec, SimTask]) -> SimResult:
    """Worker entry point: a declarative spec or a live-object task."""
    if isinstance(payload, RunSpec):
        return payload.run()
    return run_task(payload)


def _run_payload_timed(
    payload: Union[RunSpec, SimTask],
) -> Tuple[SimResult, int, float, float]:
    """Worker entry point with lifecycle telemetry.

    Returns ``(result, worker_pid, started_epoch, duration_seconds)`` so
    the parent can emit ``task_started``/``task_finished`` trace events
    laid out per worker process without any cross-process tracer.
    """
    started = time.time()
    result = _run_payload(payload)
    return result, os.getpid(), started, time.time() - started


def _run_unit_timed(
    payloads: Sequence[Union[RunSpec, SimTask]],
) -> List[Tuple[SimResult, int, float, float]]:
    """Worker entry point for one planner unit (one or many payloads).

    Multi-payload units run through :func:`repro.sim.batch.
    simulate_batch` -- one batched engine advancing every run, each
    result bit-identical to its single-run form.  A batch the host
    cannot execute (no native kernel, incompatible members the planner
    could not see) degrades to per-payload execution *inside the
    worker*, so the parent never needs a second round trip.  Per-run
    completion times come from the batch's ``on_result`` callback
    (ragged batches finish runs at different cycles).
    """
    payloads = list(payloads)
    started = time.time()
    pid = os.getpid()
    if len(payloads) > 1:
        from repro.sim.batch import BatchUnsupported, simulate_batch

        finished_at: Dict[int, float] = {}
        try:
            results = simulate_batch(
                payloads,
                on_result=lambda slot, _r: finished_at.__setitem__(
                    slot, time.time()
                ),
            )
        except BatchUnsupported:
            _log.debug(
                "batched unit of %d runs unsupported here; falling back "
                "to per-run execution",
                len(payloads),
            )
        else:
            return [
                (result, pid, started, finished_at.get(slot, time.time()) - started)
                for slot, result in enumerate(results)
            ]
    return [_run_payload_timed(payload) for payload in payloads]


@dataclass
class ModelTask:
    """One independent LP-model solve (picklable).

    The model analogue of :class:`SimTask`: on construction the task
    derives its :class:`ModelSpec` (``None`` when a component is not a
    registered spec type); the spec is the cross-process payload and the
    model-cache key material.
    """

    topo: Dragonfly
    pattern: TrafficPattern
    policy: PathPolicy
    mode: str = "uniform"
    monotonic: bool = True
    max_descriptors: Optional[int] = None
    seed: int = 0
    engine: str = "fast"
    spec: Optional[ModelSpec] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.engine not in ("fast", "legacy"):
            raise ValueError(f"unknown model engine {self.engine!r}")
        if self.spec is None:
            try:
                self.spec = ModelSpec.from_objects(
                    self.topo,
                    self.pattern,
                    self.policy,
                    mode=self.mode,
                    monotonic=self.monotonic,
                    max_descriptors=self.max_descriptors,
                    seed=self.seed,
                    engine=self.engine,
                )
            except SpecError:
                self.spec = None  # ad-hoc components: ship live objects

    def key(self) -> Optional[str]:
        """Content-address of this solve (``None`` = uncacheable)."""
        if self.spec is None:
            return None
        return model_fingerprint(self.spec)

    def payload(self) -> Union[ModelSpec, "ModelTask"]:
        """What to ship to a worker: the spec when one exists."""
        return self.spec if self.spec is not None else self


# Per-process solver memo: a worker (or the serial path) reuses one
# FastModel / PathStatsCache per (topology, enumeration options), so the
# expensive structural factorization is paid once per process per
# topology, not once per task.  Bounded to a handful of topologies.
_SOLVER_MEMO: Dict[Tuple, object] = {}
_SOLVER_MEMO_MAX = 4


def _solver_for(
    topo: Dragonfly,
    engine: str,
    max_descriptors: Optional[int],
    seed: int,
) -> object:
    from repro.model.fastpath import FastModel
    from repro.model.pathstats import PathStatsCache
    from repro.perf.cache import topology_fingerprint

    key = (
        tuple(sorted(topology_fingerprint(topo).items())),
        engine,
        max_descriptors,
        seed,
    )
    solver = _SOLVER_MEMO.get(key)
    if solver is None:
        if len(_SOLVER_MEMO) >= _SOLVER_MEMO_MAX:
            _SOLVER_MEMO.pop(next(iter(_SOLVER_MEMO)))
        if engine == "fast":
            solver = FastModel(
                topo, max_descriptors=max_descriptors, seed=seed
            )
        else:
            solver = PathStatsCache(
                topo, max_descriptors=max_descriptors, seed=seed
            )
        _SOLVER_MEMO[key] = solver
    return solver


def run_model_task(task: ModelTask) -> ModelResult:
    """Execute one model solve (also the serial path), memoizing the
    per-topology structural state across calls in this process."""
    from repro.model.fastpath import FastModel
    from repro.model.lp_model import model_throughput
    from repro.model.pathstats import PathStatsCache

    solver = _solver_for(
        task.topo, task.engine, task.max_descriptors, task.seed
    )
    demand = task.pattern.demand_matrix()
    wall_start = time.perf_counter()
    if task.engine == "fast":
        assert isinstance(solver, FastModel)
        result = solver.solve(
            demand,
            policy=task.policy,
            mode=task.mode,
            monotonic=task.monotonic,
        )
    else:
        assert isinstance(solver, PathStatsCache)
        result = model_throughput(
            task.topo,
            demand,
            policy=task.policy,
            cache=solver,
            mode=task.mode,
            monotonic=task.monotonic,
        )
    result.manifest = RunManifest(
        kind="model",
        fingerprint=task.key(),
        spec_fingerprint=(
            task.spec.fingerprint() if task.spec is not None else None
        ),
        topology=str(task.topo),
        routing=task.engine,  # the model's engine plays the variant role
        load=None,
        seed=int(task.seed),
        wall_seconds=time.perf_counter() - wall_start,
    )
    return result


def _run_model_payload(payload: Union[ModelSpec, ModelTask]) -> ModelResult:
    """Worker entry point for model solves."""
    if isinstance(payload, ModelSpec):
        topo = payload.topology.build()
        return run_model_task(
            ModelTask(
                topo=topo,
                pattern=payload.pattern.build(topo),
                policy=payload.policy.build(),
                mode=payload.mode,
                monotonic=payload.monotonic,
                max_descriptors=payload.max_descriptors,
                seed=payload.seed,
                engine=payload.engine,
                spec=payload,
            )
        )
    return run_model_task(payload)


def _run_model_payload_timed(
    payload: Union[ModelSpec, ModelTask],
) -> Tuple[ModelResult, int, float, float]:
    """Model analogue of :func:`_run_payload_timed`."""
    started = time.time()
    result = _run_model_payload(payload)
    return result, os.getpid(), started, time.time() - started


def _run_model_unit_timed(
    payloads: Sequence[Union[ModelSpec, ModelTask]],
) -> List[Tuple[ModelResult, int, float, float]]:
    """Model unit worker: solves are never batched, just mapped."""
    return [_run_model_payload_timed(payload) for payload in payloads]


class SweepExecutor:
    """Runs batches of :class:`SimTask` with optional pool and cache.

    ``jobs`` is the worker-process count (default: ``$REPRO_JOBS`` or 1);
    ``cache`` an optional :class:`SimCache` consulted before simulating
    and filled afterwards.  The executor is reusable across batches (the
    pool persists until :meth:`close`) and usable as a context manager.

    ``batch`` controls the :class:`~repro.perf.planner.BatchPlanner`
    grouping of cache-miss sim payloads into multi-run
    ``simulate_batch`` units (default: ``$REPRO_BATCH`` or the planner
    default of 16): ``1`` disables batching, ``N > 1`` caps batch size
    at ``N``.  Purely a scheduling knob -- batched results are
    bit-identical to single-run results and cache/trace/progress stay
    per-task -- so the serial ``jobs=1`` path batches too.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[SimCache] = None,
        tracer: Optional[Tracer] = None,
        progress: Optional[ProgressReporter] = None,
        batch: Optional[int] = None,
    ) -> None:
        if jobs is None:
            self.jobs = default_jobs()
        else:
            self.jobs = max(1, int(jobs))
            cap = os.cpu_count() or 1
            if self.jobs > cap:
                _log.warning(
                    "SweepExecutor(jobs=%d) oversubscribes this host "
                    "(%d CPU%s); CPU-bound workers will contend and can "
                    "run slower than serial",
                    self.jobs,
                    cap,
                    "s" if cap != 1 else "",
                )
        if batch is None:
            env = os.environ.get("REPRO_BATCH", "").strip()
            try:
                batch = int(env) if env else 0
            except ValueError:
                batch = 0
        self.batch = max(0, int(batch))  # 0 = planner default
        self.cache = cache
        # explicit tracer wins; otherwise each batch picks up the
        # innermost capture() tracer active at call time (if any)
        self.tracer = tracer
        self.progress = progress
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_broken = False
        # batch statistics (cumulative)
        self.cache_hits = 0
        self.computed_parallel = 0
        self.computed_serial = 0

    # ------------------------------------------------------------------
    @property
    def parallel(self) -> bool:
        return self.jobs > 1 and not self._pool_broken

    def _ensure_pool(self) -> Optional[ProcessPoolExecutor]:
        if self._pool_broken:
            return None
        if self._pool is None:
            try:
                try:
                    ctx = multiprocessing.get_context("fork")
                except ValueError:  # pragma: no cover - non-POSIX hosts
                    ctx = multiprocessing.get_context()
                self._pool = ProcessPoolExecutor(
                    max_workers=self.jobs, mp_context=ctx
                )
            except (OSError, ValueError):  # pragma: no cover - no mp support
                self._pool_broken = True
                return None
        return self._pool

    # ------------------------------------------------------------------
    @staticmethod
    def _task_label(task: object) -> str:
        """Compact display label of a task (trace/progress cosmetics)."""
        load = getattr(task, "load", None)
        if load is not None:
            return f"{getattr(task, 'routing', '?')}@{load:g}"
        return (
            f"{getattr(task, 'engine', 'model')}:"
            f"{getattr(task, 'mode', '?')}"
        )

    def _execute(
        self,
        tasks: Sequence,
        worker: Callable,
        cache_get: Optional[Callable],
        cache_put: Optional[Callable],
        kind: str = "sim",
        plan: bool = False,
    ) -> List:
        """Shared batch machinery: cache consult -> pool/serial -> fill.

        ``worker`` is a *timed unit* entry point taking a list of
        payloads and returning one ``(result, pid, started, duration)``
        per payload; results stream back in unit order (both
        ``pool.map`` and the serial ``map`` are order-preserving and
        lazy), so progress heartbeats and trace events fire as each
        unit lands, not at batch end.  With ``plan=True`` the pending
        cache misses are grouped into multi-run units by the
        :class:`~repro.perf.planner.BatchPlanner` (see the ``batch``
        constructor knob); otherwise every payload is its own unit and
        the stream degenerates to the historical one-task-at-a-time
        behavior.
        """
        tasks = list(tasks)
        tracer = self.tracer if self.tracer is not None else active_capture()
        progress = self.progress
        results: List = [None] * len(tasks)
        pending: List[tuple] = []  # (index, cache key, task)
        batch_hits = 0
        wall_start = time.time()
        if progress is not None:
            progress.start(len(tasks))
        if tracer is not None:
            tracer.record("batch_start", kind=kind, tasks=len(tasks))
        for i, task in enumerate(tasks):
            key = task.key() if cache_get is not None else None
            if key is not None:
                hit = cache_get(key)
                if hit is not None:
                    results[i] = hit
                    self.cache_hits += 1
                    batch_hits += 1
                    if tracer is not None:
                        tracer.record(
                            "cache_hit",
                            kind=kind,
                            index=i,
                            label=self._task_label(task),
                        )
                    if progress is not None:
                        progress.advance(cache_hit=True)
                    continue
            pending.append((i, key, task))

        if pending:
            payloads = [t.payload() for _i, _k, t in pending]
            if plan and self.batch != 1 and len(pending) > 1:
                from repro.perf.planner import (
                    DEFAULT_MAX_BATCH,
                    BatchPlanner,
                )

                planner = BatchPlanner(
                    max_batch=(
                        self.batch if self.batch > 1 else DEFAULT_MAX_BATCH
                    ),
                    jobs=self.jobs,
                )
                units = [u.indices for u in planner.plan(payloads)]
            else:
                units = [[j] for j in range(len(payloads))]
            unit_payloads = [[payloads[j] for j in unit] for unit in units]
            pool = (
                self._ensure_pool()
                if self.jobs > 1 and len(units) > 1
                else None
            )
            if pool is not None:
                stream = pool.map(worker, unit_payloads)
                mode = "parallel"
                self.computed_parallel += len(pending)
            else:
                stream = map(worker, unit_payloads)
                mode = "serial"
                self.computed_serial += len(pending)
            for unit, computed_unit in zip(units, stream):
                batched = len(unit) > 1
                for j, computed in zip(unit, computed_unit):
                    i, key, task = pending[j]
                    result, worker_pid, started, duration = computed
                    results[i] = result
                    if tracer is not None:
                        label = self._task_label(task)
                        tracer.extend(
                            [
                                {
                                    "type": "task_submitted",
                                    "t": wall_start,
                                    "kind": kind,
                                    "index": i,
                                    "label": label,
                                },
                                {
                                    "type": "task_started",
                                    "t": started,
                                    "kind": kind,
                                    "index": i,
                                    "label": label,
                                    "worker": worker_pid,
                                },
                            ]
                        )
                        tracer.record(
                            "task_finished",
                            kind=kind,
                            index=i,
                            label=label,
                            worker=worker_pid,
                            started=started,
                            duration=duration,
                            mode=mode,
                            batched=batched,
                        )
                    if progress is not None:
                        progress.advance()
                    manifest = getattr(result, "manifest", None)
                    if cache_put is not None and key is not None:
                        if manifest is not None:
                            manifest.cache = "stored"
                        cache_put(key, result)
                    elif cache_get is not None and manifest is not None:
                        # a cache was consulted but this point has no key
                        manifest.cache = "uncacheable"
        if tracer is not None:
            tracer.record(
                "batch_end",
                kind=kind,
                cache_hits=batch_hits,
                computed=len(pending),
                wall_seconds=time.time() - wall_start,
            )
        if progress is not None:
            progress.finish()
        return results

    def run(self, tasks: Sequence[SimTask]) -> List[SimResult]:
        """Execute a sim batch; results align index-for-index with
        ``tasks``."""
        cache = self.cache
        return self._execute(
            tasks,
            _run_unit_timed,
            cache.get if cache is not None else None,
            cache.put if cache is not None else None,
            kind="sim",
            plan=True,
        )

    def run_models(self, tasks: Sequence[ModelTask]) -> List[ModelResult]:
        """Execute a batch of LP-model solves, with the same cache
        consult / pool fan-out / deterministic ordering as :meth:`run`
        (model results live in the same :class:`SimCache` under their
        own record kind)."""
        cache = self.cache
        return self._execute(
            tasks,
            _run_model_unit_timed,
            cache.get_model if cache is not None else None,
            cache.put_model if cache is not None else None,
            kind="model",
        )

    def run_one(self, task: SimTask) -> SimResult:
        """Convenience wrapper: a single point through cache + stats."""
        return self.run([task])[0]

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def describe(self) -> str:
        mode = f"jobs={self.jobs}" if self.parallel else "serial"
        cache = "no cache" if self.cache is None else self.cache.describe()
        return (
            f"SweepExecutor({mode}, {cache}, hits={self.cache_hits}, "
            f"parallel={self.computed_parallel}, "
            f"serial={self.computed_serial})"
        )
