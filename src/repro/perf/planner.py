"""Batch planning: group compatible sweep payloads into batched units.

:class:`BatchPlanner` sits between :class:`~repro.perf.executor.
SweepExecutor`'s cache-miss list and its worker fan-out.  It partitions
the pending payloads into *units* -- either a single payload executed by
the ordinary single-run path, or a group of compatible
:class:`~repro.spec.RunSpec` payloads executed by one
:func:`~repro.sim.batch.simulate_batch` call, which advances all of them
through shared kernel invocations.

Batching is a pure scheduling decision: every run in a batched unit is
bit-identical to its single-run result (the batch parity suite pins
this), keeps its own RunSpec fingerprint and cache entry, and emits its
own trace/progress events.  The planner therefore only has to decide
where batching is *profitable*:

* eligible payloads are declarative ``RunSpec``s (live-object tasks
  cannot cross ``simulate_batch``'s validation), uninstrumented
  (``params.obs is None``), not explicit legacy-oracle requests, not
  opted out via ``params.batch == 1``, and MIN-routed -- MIN is the
  variant with a fully vectorized injection fast path (measured ~2.4x
  end-to-end per run at batch 8).  The adaptive variants spend their
  time in per-packet routing decisions that batching cannot amortize
  (measured 0.87-1.03x, i.e. neutral to slightly negative from cache
  interleaving), so they keep the single-run path;
* eligible payloads group by (topology, routing, policy) -- the
  compatibility contract of ``simulate_batch``; seed, load, pattern and
  measurement windows may differ within a group (ragged completion);
* groups chunk to ``max_batch`` (default 16), lowered by any member's
  ``params.batch`` hint, and -- when the executor runs a process pool --
  spread so every worker gets work instead of one worker hoarding a
  giant batch.

The native-kernel check lives in ``simulate_batch`` itself (workers may
see a different toolchain than the parent); a unit that raises
:class:`~repro.sim.batch.BatchUnsupported` falls back to per-run
execution inside the worker, so planning is always safe.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.spec import RunSpec

__all__ = ["BatchPlanner", "BatchUnit"]

DEFAULT_MAX_BATCH = 16


@dataclass
class BatchUnit:
    """One executor work item: indices into the planned payload list."""

    indices: List[int]
    batched: bool


class BatchPlanner:
    """Partition pending payloads into single-run and batched units."""

    def __init__(self, max_batch: int = DEFAULT_MAX_BATCH,
                 jobs: int = 1) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.max_batch = max_batch
        self.jobs = max(1, jobs)

    # ------------------------------------------------------------------
    @staticmethod
    def eligible(payload: object) -> bool:
        """Can (and should) this payload join a batched unit?"""
        if not isinstance(payload, RunSpec):
            return False
        params = payload.params
        if params.obs is not None or params.engine == "legacy":
            return False
        if params.batch == 1:
            return False
        base = payload.routing.lower()
        base = base[2:] if base.startswith("t-") else base
        return base == "min"

    @staticmethod
    def _group_key(payload: RunSpec) -> Tuple:
        from repro.spec import canonical_json

        return (
            canonical_json(payload.topology.to_dict()),
            payload.routing.lower(),
            canonical_json(payload.policy.to_dict())
            if payload.policy is not None
            else None,
        )

    def plan(self, payloads: Sequence) -> List[BatchUnit]:
        """Partition ``payloads`` into units covering each index once.

        Unit order follows first appearance, so with batching disabled
        (``max_batch=1``) the plan degenerates to the historical
        one-payload-per-unit stream in original order.
        """
        groups: Dict[Tuple, List[int]] = {}
        order: List[Tuple[int, BatchUnit]] = []
        for i, payload in enumerate(payloads):
            if self.max_batch > 1 and self.eligible(payload):
                groups.setdefault(self._group_key(payload), []).append(i)
            else:
                order.append((i, BatchUnit([i], batched=False)))
        # repro: allow[DET102]: groups is keyed in first-payload order
        # (deterministic), and the final sort below orders units by
        # first index regardless of grouping order
        for indices in groups.values():
            cap = self.max_batch
            for i in indices:
                hint = payloads[i].params.batch
                if hint > 1:
                    cap = min(cap, hint)
            if self.jobs > 1:
                # spread the group across the pool: a single giant unit
                # would serialize on one worker while the rest idle
                cap = min(cap, max(1, math.ceil(len(indices) / self.jobs)))
            for start in range(0, len(indices), cap):
                chunk = indices[start:start + cap]
                order.append(
                    (chunk[0], BatchUnit(chunk, batched=len(chunk) > 1))
                )
        order.sort(key=lambda item: item[0])
        return [unit for _first, unit in order]
