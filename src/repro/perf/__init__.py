"""Execution-performance layer: parallel sweeps, result cache, benchmarks.

* :mod:`repro.perf.executor` -- :class:`SweepExecutor`, a process-pool
  fan-out for batches of independent ``simulate()`` points with a serial
  fallback and deterministic result ordering;
* :mod:`repro.perf.planner` -- :class:`BatchPlanner`, which groups
  compatible cache-miss payloads into multi-run ``simulate_batch``
  units (bit-identical per run; purely a scheduling decision);
* :mod:`repro.perf.cache` -- :class:`SimCache`, the content-addressed
  on-disk ``SimResult`` store with versioned invalidation;
* :mod:`repro.perf.bench` -- the benchmark harness behind
  ``python -m repro bench`` and ``BENCH_sim.json``.
"""

from repro.perf.cache import (
    CACHE_VERSION,
    SimCache,
    default_cache_dir,
    model_fingerprint,
)
from repro.perf.executor import (
    ModelTask,
    SimTask,
    SweepExecutor,
    default_jobs,
    run_model_task,
    run_task,
)
from repro.perf.planner import BatchPlanner, BatchUnit

__all__ = [
    "BatchPlanner",
    "BatchUnit",
    "CACHE_VERSION",
    "ModelTask",
    "SimCache",
    "SimTask",
    "SweepExecutor",
    "default_cache_dir",
    "default_jobs",
    "model_fingerprint",
    "run_model_task",
    "run_task",
]
