"""Content-addressed on-disk cache of :class:`SimResult` records.

Every paper figure re-runs dozens of ``simulate()`` points, and many of
them -- the same (topology, pattern, routing, policy, params, seed, load)
tuple -- recur across figures, Algorithm 1 invocations, and replication
sweeps.  This module gives each such point a stable content hash and
stores its result as one small JSON file, so a repeated point costs a
file read instead of a cycle-accurate simulation.

Key design points:

* **Content addressing.**  The primary key is
  ``RunSpec.fingerprint()`` -- a SHA-256 over the canonical JSON form of
  the declarative run spec (``repro.spec``), covering the topology,
  pattern (kind + args, seeds included), routing variant, policy, every
  ``SimParams`` field, the seed, and the offered load.  Any run whose
  components are exactly registered types -- including ``perm``,
  ``mixed``/``tmixed``, and ``@file.json`` policies -- is cacheable.
* **Legacy fallback.**  Runs the spec layer cannot describe (ad-hoc
  ``_FixedPattern`` subclasses, pattern compositions with unregistered
  parts) fall back to the pre-spec structural fingerprint: any fixed
  pattern is exactly its destination map.  Only what neither path can
  identify is uncacheable (``None`` key) -- never a false hit.
* **Versioned invalidation.**  ``CACHE_VERSION`` is part of both the hash
  input and the on-disk directory layout (``<root>/v<N>/``); bump it
  whenever the simulator's observable behaviour changes and every stale
  entry is orphaned at once.

Layout: ``<root>/v<N>/<hash[:2]>/<hash>.json`` -- two-level sharding keeps
directories small.  Writes are atomic (temp file + ``os.replace``), so a
cache shared by parallel sweep workers never exposes torn entries.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import shutil
import tempfile
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.model.lp_model import ModelResult
    from repro.spec.specs import ModelSpec

from repro.obs.log import get_logger
from repro.obs.manifest import RunManifest
from repro.routing.pathset import PathPolicy
from repro.routing.serialization import policy_to_dict
from repro.sim.params import SimParams
from repro.sim.stats import SimResult
from repro.topology.dragonfly import Dragonfly
from repro.traffic.mixed import Mixed, TimeMixed
from repro.traffic.patterns import (
    GroupSwitchPermutation,
    RandomPermutation,
    Shift,
    TrafficPattern,
    UniformRandom,
    _FixedPattern,
)

__all__ = [
    "CACHE_VERSION",
    "SimCache",
    "default_cache_dir",
    "fingerprint",
    "model_fingerprint",
    "model_result_from_dict",
    "model_result_to_dict",
    "pattern_fingerprint",
    "policy_fingerprint",
    "result_from_dict",
    "result_to_dict",
    "topology_fingerprint",
]

# Bump when simulate()'s observable behaviour changes (engine semantics,
# SimResult fields, default parameter meanings) or when the key scheme
# changes: old entries are then ignored wholesale because they live under
# a different v<N>/ directory.  v2: keys are RunSpec fingerprints.
# v3: records carry a "kind" discriminator (sim | model) and the cache
# also stores LP ModelResults keyed by ModelSpec fingerprints.
CACHE_VERSION = 3

# Records may also carry a sibling "manifest" key (repro.obs provenance)
# next to "result".  It is additive -- pre-manifest v3 entries still load
# -- so it does not bump CACHE_VERSION.
_log = get_logger("perf.cache")


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` or the platform user-cache fallback."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro-sim")


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------
def topology_fingerprint(topo: Dragonfly) -> Dict:
    """Identity of a topology: class, (p, a, h, g), arrangement."""
    return {
        "cls": type(topo).__name__,
        "p": topo.p,
        "a": topo.a,
        "h": topo.h,
        "g": topo.g,
        "arrangement": topo.arrangement,
    }


def pattern_fingerprint(pattern: TrafficPattern) -> Optional[Dict]:
    """Structural identity of a pattern, or ``None`` (not fingerprintable).

    This is the *fallback* identity used when ``repro.spec`` has no
    registered spec for the pattern's exact type: seed-bearing patterns
    are identified by their frozen random state (the dest map / node-role
    assignment), so two instances built with the same seed share a
    fingerprint while different seeds never collide.
    """
    if isinstance(pattern, UniformRandom):
        return {"kind": "ur"}
    if isinstance(pattern, Shift):
        return {"kind": "shift", "dg": pattern.dg, "ds": pattern.ds}
    if isinstance(pattern, RandomPermutation):
        return {"kind": "perm", "seed": pattern.seed}
    if isinstance(pattern, GroupSwitchPermutation):
        return {"kind": "type2", "seed": pattern.seed}
    if isinstance(pattern, (Mixed, TimeMixed)):
        adv = pattern_fingerprint(pattern.adv)
        if adv is None:
            return None
        fp: Dict = {
            "kind": "mixed" if isinstance(pattern, Mixed) else "tmixed",
            "ur": pattern.ur_percent,
            "adv_pct": pattern.adv_percent,
            "adv": adv,
        }
        if isinstance(pattern, Mixed):
            # the fixed node-role assignment (captures the seed)
            fp["roles"] = hashlib.sha256(
                pattern.is_ur.tobytes()
            ).hexdigest()[:16]
        return fp
    if isinstance(pattern, _FixedPattern):
        # any fixed pattern is exactly its destination map
        return {
            "kind": "fixed",
            "cls": type(pattern).__name__,
            "dest": hashlib.sha256(pattern.dest_map.tobytes()).hexdigest(),
        }
    return None  # scheduled traces, ad-hoc subclasses: do not cache


def policy_fingerprint(policy: Optional[PathPolicy]) -> Optional[Dict]:
    """Identity of a path policy (``{}`` for no policy), or ``None``."""
    if policy is None:
        return {}
    try:
        return policy_to_dict(policy)
    except TypeError:
        return None  # unknown policy type: do not cache


def fingerprint(
    topo: Dragonfly,
    pattern: TrafficPattern,
    load: float,
    *,
    routing: str,
    policy: Optional[PathPolicy],
    params: Optional[SimParams],
    seed: int,
) -> Optional[str]:
    """SHA-256 key of one ``simulate()`` point, or ``None`` (uncacheable).

    Prefers the declarative identity -- ``RunSpec.fingerprint()`` keyed
    under ``CACHE_VERSION`` -- and falls back to the structural
    fingerprint for components the spec registries do not cover.
    """
    from repro.spec import RunSpec, SpecError

    try:
        spec = RunSpec.from_objects(
            topo,
            pattern,
            load,
            routing=routing,
            policy=policy,
            params=params,
            seed=seed,
        )
    except SpecError:
        pass  # unregistered component: try the structural fallback
    else:
        blob = json.dumps(
            {"version": CACHE_VERSION, "spec": spec.fingerprint()},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    pat_fp = pattern_fingerprint(pattern)
    if pat_fp is None:
        return None
    pol_fp = policy_fingerprint(policy)
    if pol_fp is None:
        return None
    record = {
        "version": CACHE_VERSION,
        "topology": topology_fingerprint(topo),
        "pattern": pat_fp,
        "load": float(load),
        "routing": routing.lower(),
        "policy": pol_fp,
        "params": (
            params if params is not None else SimParams()
        ).identity_dict(),
        "seed": int(seed),
    }
    blob = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def model_fingerprint(spec: "ModelSpec") -> str:
    """SHA-256 key of one LP-model solve, from its declarative spec.

    Model keys are versioned like sim keys but carry the ``model`` kind
    in the hash input, so a model key can never collide with a sim key
    even for pathologically similar specs.
    """
    blob = json.dumps(
        {
            "version": CACHE_VERSION,
            "kind": "model",
            "spec": spec.fingerprint(),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()


# ---------------------------------------------------------------------------
# SimResult / ModelResult (de)serialization
# ---------------------------------------------------------------------------
def result_to_dict(result: SimResult) -> Dict:
    """JSON form of a result, *without* its manifest.

    The manifest is provenance, not measurement: it is persisted as a
    sibling ``"manifest"`` key of the cache record (see
    :meth:`SimCache.put`) so the result payload stays exactly what the
    engine measured -- traced and untraced runs store identical payloads.
    """
    data = dataclasses.asdict(result)
    data.pop("manifest", None)
    return data


def result_from_dict(data: Dict) -> SimResult:
    return SimResult(**data)


def model_result_to_dict(result: "ModelResult") -> Dict:
    data = dataclasses.asdict(result)
    data.pop("manifest", None)
    return data


def model_result_from_dict(data: Dict) -> "ModelResult":
    from repro.model.lp_model import ModelResult

    return ModelResult(**data)


# ---------------------------------------------------------------------------
# The cache
# ---------------------------------------------------------------------------
class SimCache:
    """On-disk result store addressed by :func:`fingerprint` keys.

    Stores two record kinds under one versioned root: simulation results
    (:meth:`get`/:meth:`put`) and LP-model results
    (:meth:`get_model`/:meth:`put_model`, keyed by
    :func:`model_fingerprint`).  A record's ``kind`` field is checked on
    read, so a key collision across kinds -- already excluded by the
    hash inputs -- could never deserialize the wrong type.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root if root is not None else default_cache_dir()
        self.dir = os.path.join(self.root, f"v{CACHE_VERSION}")
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> str:
        return os.path.join(self.dir, key[:2], f"{key}.json")

    def _load(self, key: str, kind: str) -> Optional[Dict]:
        path = self.path_for(key)
        try:
            with open(path) as fh:
                data = json.load(fh)
        except OSError:
            return None  # plain miss: no entry on disk
        except ValueError:
            # torn/corrupt entry: fall back to recomputation, but say so
            # (repro.obs.log; silent by default, visible with -v)
            _log.warning("discarding corrupt cache entry %s", path)
            return None
        if data.get("version") != CACHE_VERSION:
            return None
        if data.get("kind", "sim") != kind:
            _log.warning(
                "cache entry %s has kind %r, expected %r; ignoring",
                path,
                data.get("kind", "sim"),
                kind,
            )
            return None
        return data

    def _store(
        self,
        key: str,
        kind: str,
        result_data: Dict,
        manifest: Optional["RunManifest"] = None,
    ) -> None:
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {
            "version": CACHE_VERSION,
            "kind": kind,
            "result": result_data,
        }
        if manifest is not None:
            payload["manifest"] = manifest.to_dict()
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def get(self, key: str) -> Optional[SimResult]:
        """The cached sim result for ``key``, or ``None`` on a miss.

        A hit reattaches the persisted :class:`RunManifest` (if the
        record carries one) with ``cache="hit"``, so provenance survives
        the round trip and records how the result was obtained *now*.
        """
        data = self._load(key, "sim")
        if data is None:
            self.misses += 1
            return None
        try:
            result = result_from_dict(data["result"])
        except (KeyError, TypeError):
            _log.warning(
                "cache entry %s does not deserialize as a SimResult; "
                "recomputing",
                self.path_for(key),
            )
            self.misses += 1
            return None
        result.manifest = self._manifest_of(data)
        self.hits += 1
        return result

    def put(self, key: str, result: SimResult) -> None:
        """Atomically store a sim result (concurrent writers are safe)."""
        self._store(
            key, "sim", result_to_dict(result), manifest=result.manifest
        )

    def get_model(self, key: str) -> Optional["ModelResult"]:
        """The cached model result for ``key``, or ``None`` on a miss."""
        data = self._load(key, "model")
        if data is None:
            self.misses += 1
            return None
        try:
            result = model_result_from_dict(data["result"])
        except (KeyError, TypeError):
            _log.warning(
                "cache entry %s does not deserialize as a ModelResult; "
                "recomputing",
                self.path_for(key),
            )
            self.misses += 1
            return None
        result.manifest = self._manifest_of(data)
        self.hits += 1
        return result

    def put_model(self, key: str, result: "ModelResult") -> None:
        """Atomically store an LP model result."""
        self._store(
            key,
            "model",
            model_result_to_dict(result),
            manifest=result.manifest,
        )

    @staticmethod
    def _manifest_of(data: Dict) -> Optional["RunManifest"]:
        """The record's persisted manifest, marked as a cache hit."""
        raw = data.get("manifest")
        if not isinstance(raw, dict):
            return None  # pre-manifest v3 entry: still a valid result
        manifest = RunManifest.from_dict(raw)
        manifest.cache = "hit"
        return manifest

    def __len__(self) -> int:
        count = 0
        if not os.path.isdir(self.dir):
            return 0
        for _root, _dirs, files in os.walk(self.dir):
            count += sum(1 for f in files if f.endswith(".json"))
        return count

    def clear(self) -> None:
        """Remove every entry of the *current* cache version."""
        shutil.rmtree(self.dir, ignore_errors=True)

    def describe(self) -> str:
        return (
            f"SimCache({self.dir}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
