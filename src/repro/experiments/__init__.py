"""Experiment runners: one function per table/figure of the paper.

Each runner returns a :class:`FigureResult` whose ``text`` renders the
paper-style rows/series; the benchmark harness under ``benchmarks/`` calls
these and ``EXPERIMENTS.md`` records paper-vs-measured values.

Scaling knobs (environment variables, read at call time):

* ``REPRO_WINDOW``  -- simulation window cycles (default 300; paper 10000)
* ``REPRO_SEEDS``   -- seeds averaged per point (default 1; paper 8-20)
* ``REPRO_WINDOW_LARGE`` -- window for the 9126-node topology (default 120)
"""

from repro.experiments.report import FigureResult, render_curves, render_table
from repro.experiments.figures import FIGURES, run_figure, tvlb_policy_for

__all__ = [
    "FigureResult",
    "render_table",
    "render_curves",
    "FIGURES",
    "run_figure",
    "tvlb_policy_for",
]
