"""Simulator validation against the seminal dragonfly results.

The paper's artifact appendix describes validating their BookSim setup by
reproducing results from Kim et al., "Technology-Driven, Highly-Scalable
Dragonfly Topology" (ISCA '08).  We do the same for our simulator on a
maximum-size balanced dragonfly (one global link per group pair, a=2p=2h):

* **uniform random traffic**: MIN has the lowest latency and saturates
  near the injection limit; VLB pays double the path length (about half
  the throughput, roughly twice the zero-load latency); UGAL tracks MIN.
* **adversarial shift traffic**: MIN collapses to ``m/(a*p)`` (all traffic
  of a group squeezed through the direct links); VLB spreads the load and
  sustains several times more; UGAL tracks VLB.
"""

from __future__ import annotations

import os
from typing import Dict

from repro.experiments.report import FigureResult, render_table
from repro.model.bounds import min_only_shift_bound
from repro.sim import SimParams, latency_vs_load
from repro.topology import Dragonfly
from repro.traffic import Shift, UniformRandom

__all__ = ["validate_uniform", "validate_adversarial"]


def _params() -> SimParams:
    return SimParams(
        window_cycles=int(os.environ.get("REPRO_WINDOW", "300"))
    )


def _run(topo, pattern, loads, routing) -> Dict:
    sweep = latency_vs_load(
        topo, pattern, loads, routing=routing, params=_params(), seed=3
    )
    first = sweep.results[0]
    return {
        "low_load_latency": first.avg_latency,
        "saturation": sweep.saturation_throughput(),
    }


def validate_uniform(topo: Dragonfly = None) -> FigureResult:
    """MIN / VLB / UGAL-L under uniform random traffic (Kim et al. Fig 7)."""
    topo = topo or Dragonfly(2, 4, 2, 9)
    pattern = UniformRandom(topo)
    loads = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)
    rows = []
    data = {}
    for routing in ("min", "ugal-l", "vlb"):
        res = _run(topo, pattern, loads, routing)
        rows.append([routing.upper(), res["low_load_latency"],
                     res["saturation"]])
        data[routing] = res
    return FigureResult(
        "validation_ur",
        f"uniform random validation on {topo}",
        render_table(["scheme", "latency@0.1", "saturation"], rows),
        data=data,
    )


def validate_adversarial(topo: Dragonfly = None) -> FigureResult:
    """MIN / VLB / UGAL-L under adversarial shift (Kim et al. Fig 8)."""
    topo = topo or Dragonfly(2, 4, 2, 9)
    pattern = Shift(topo, 1, 0)
    loads = (0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5)
    rows = []
    data = {"min_bound": min_only_shift_bound(topo)}
    for routing in ("min", "ugal-l", "vlb"):
        res = _run(topo, pattern, loads, routing)
        rows.append([routing.upper(), res["low_load_latency"],
                     res["saturation"]])
        data[routing] = res
    text = render_table(["scheme", "latency@0.05", "saturation"], rows)
    text += (
        f"\n\nanalytic MIN bound: {data['min_bound']:.4f} "
        f"(direct links / group demand)"
    )
    return FigureResult(
        "validation_adv",
        f"adversarial shift validation on {topo}",
        text,
        data=data,
    )
