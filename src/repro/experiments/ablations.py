"""Ablation studies for the design choices called out in DESIGN.md.

Not figures from the paper, but experiments that justify pieces of the
reproduction:

* ``abl_strategic``  -- does the deterministic strategic 2+3 5-hop choice
  differ from a random 50% 5-hop subset (and from the 3+2 order)?
* ``abl_balance``    -- does the Step-2 load-balance adjustment change the
  candidate set / help the simulated performance?
* ``abl_monotonic``  -- how much does the paper's LP monotonicity fix
  reduce the over-estimation for sets with few long paths?
* ``algorithm1``     -- the full Algorithm-1 pipeline on a small dense
  topology, with its audit trail.
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from repro.core import balance_adjust, compute_tvlb
from repro.experiments.figures import run_suite
from repro.experiments.report import FigureResult, render_table
from repro.model import PathStatsCache, model_throughput
from repro.routing.pathset import (
    AllVlbPolicy,
    HopClassPolicy,
    StrategicFiveHopPolicy,
)
from repro.sim import SimParams
from repro.spec import PatternSpec, PolicySpec, SuiteSpec, SweepSpec, TopologySpec
from repro.topology import Dragonfly, default_dragonfly
from repro.traffic import Shift

__all__ = ["abl_strategic", "abl_balance", "abl_monotonic", "algorithm1"]


def _window() -> int:
    return int(os.environ.get("REPRO_WINDOW", "300"))


def abl_strategic() -> FigureResult:
    """Strategic 2+3 vs 3+2 vs random 50% 5-hop on dfly(4,8,4,9)."""
    topo = default_dragonfly()
    params = SimParams(window_cycles=_window())
    pattern = Shift(topo, 2, 0)
    loads = (0.1, 0.2, 0.3, 0.4)
    policies = [
        ("strategic 2+3", StrategicFiveHopPolicy("2+3")),
        ("strategic 3+2", StrategicFiveHopPolicy("3+2")),
        ("random 50% 5-hop", HopClassPolicy(4, 0.5)),
    ]
    suite = SuiteSpec("abl_strategic", tuple(
        SweepSpec(
            topology=TopologySpec.of(topo),
            pattern=PatternSpec.of(pattern),
            loads=loads,
            routing="t-ugal-l",
            policy=PolicySpec.of(pol),
            params=params,
            seed=0,
            label=label,
        )
        for label, pol in policies
    ))
    rows = []
    data: Dict[str, float] = {}
    for label, sweeps in run_suite(suite).items():
        sweep = sweeps[0]
        sat = sweep.saturation_throughput()
        low = sweep.results[0].avg_latency
        rows.append([label, low, sat])
        data[label] = sat
    return FigureResult(
        "abl_strategic",
        "strategic vs random 5-hop selection (T-UGAL-L, shift(2,0), g=9)",
        render_table(["policy", "latency@0.1", "saturation"], rows),
        data=data,
    )


def abl_balance() -> FigureResult:
    """Effect of the Step-2 load-balance adjustment on dfly(4,8,4,9)."""
    topo = default_dragonfly()
    params = SimParams(window_cycles=_window())
    pattern = Shift(topo, 1, 0)
    loads = (0.1, 0.25, 0.4)
    base = StrategicFiveHopPolicy("2+3")
    pairs = [
        (s, d) for s, d in zip(*np.nonzero(pattern.demand_matrix()))
    ][: topo.a * 2]
    adjusted, report = balance_adjust(topo, base, pairs)
    rows = []
    data: Dict[str, float] = {
        "removed_descriptors": float(report.removed_descriptors),
        "global_hot_channels": float(len(report.global_hot_channels)),
        "max_over_mean_local": report.max_over_mean_local,
    }
    suite = SuiteSpec("abl_balance", tuple(
        SweepSpec(
            topology=TopologySpec.of(topo),
            pattern=PatternSpec.of(pattern),
            loads=loads,
            routing="t-ugal-l",
            policy=PolicySpec.of(pol),
            params=params,
            seed=0,
            label=label,
        )
        for label, pol in (("unadjusted", base), ("balanced", adjusted))
    ))
    for label, sweeps in run_suite(suite).items():
        sweep = sweeps[0]
        sat = sweep.saturation_throughput()
        rows.append([label, sweep.results[0].avg_latency, sat])
        data[label] = sat
    text = render_table(["policy", "latency@0.1", "saturation"], rows)
    text += (
        f"\n\nbalance report: {report.removed_descriptors} descriptors "
        f"removed, {len(report.global_hot_channels)} hot channels, "
        f"local max/mean {report.max_over_mean_local:.2f}"
    )
    return FigureResult(
        "abl_balance",
        "load-balance adjustment on/off (T-UGAL-L, shift(1,0), g=9)",
        text,
        data=data,
    )


def abl_monotonic() -> FigureResult:
    """LP model: monotonicity fix vs unconstrained vs uniform split."""
    topo = default_dragonfly()
    cache = PathStatsCache(topo)
    demand = Shift(topo, 2, 0).demand_matrix()
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for pol in (
        HopClassPolicy(4, 0.3),
        HopClassPolicy(4, 0.6),
        HopClassPolicy(5),
        AllVlbPolicy(),
    ):
        free = model_throughput(
            topo, demand, policy=pol, cache=cache, mode="free",
            monotonic=False,
        ).throughput
        mono = model_throughput(
            topo, demand, policy=pol, cache=cache, mode="free",
        ).throughput
        uniform = model_throughput(
            topo, demand, policy=pol, cache=cache, mode="uniform"
        ).throughput
        rows.append([pol.describe(), free, mono, uniform])
        data[pol.describe()] = {
            "free": free, "monotonic": mono, "uniform": uniform
        }
    return FigureResult(
        "abl_monotonic",
        "LP model variants on shift(2,0), dfly(4,8,4,9)",
        render_table(
            ["candidate set", "free (Model 3)", "+monotonic fix",
             "uniform split"],
            rows,
        ),
        data=data,
    )


def algorithm1() -> FigureResult:
    """Full Algorithm-1 pipeline on dfly(2,4,2,3) with audit trail."""
    topo = Dragonfly(2, 4, 2, 3)
    res = compute_tvlb(
        topo,
        sim_params=SimParams(window_cycles=max(150, _window() // 2)),
        seed=1,
    )
    sweep_rows = [
        [pt.label, pt.mean_throughput, pt.sem] for pt in res.sweep
    ]
    cand_rows = [[c.label, c.score] for c in res.candidates]
    text = (
        "Step 1 modeled sweep:\n"
        + render_table(["data point", "mean thr", "sem"], sweep_rows)
        + "\n\nStep 2 simulated candidates:\n"
        + render_table(["candidate", "sim throughput"], cand_rows)
        + f"\n\nchosen T-VLB: {res.label}"
        + f"\nconverged to conventional UGAL: {res.converged_to_ugal}"
    )
    scores = [c.score for c in res.candidates if c.score > 0]
    spread = max(scores) / min(scores) if scores else float("inf")
    return FigureResult(
        "algorithm1",
        f"Algorithm 1 on {topo}",
        text,
        data={
            "chosen": res.label,
            "converged": res.converged_to_ugal,
            "num_candidates": len(res.candidates),
            # best/worst candidate score ratio: ~1.0 means the restricted
            # sets match the full VLB set (sufficient path diversity)
            "scores_within": spread,
        },
    )
