"""Plain-text rendering of experiment results (tables and curve series)."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = ["FigureResult", "render_table", "render_curves"]


def _jsonable(obj):
    """Best-effort conversion of result data to JSON-clean types."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if hasattr(obj, "item"):  # numpy scalar
        return obj.item()
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return str(obj)


@dataclass
class FigureResult:
    """One reproduced table/figure: an id, a caption, text, and raw data."""

    figure: str  # e.g. "fig06"
    title: str
    text: str
    data: Dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"== {self.figure}: {self.title} ==\n{self.text}"

    def to_json(self) -> str:
        """Serialized figure/title/data (text omitted; it is derived)."""
        return json.dumps(
            {
                "figure": self.figure,
                "title": self.title,
                "data": _jsonable(self.data),
            },
            indent=2,
        )

    def save(self, path: str) -> None:
        """Write the JSON record to ``path``."""
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence], floatfmt: str = ".4g"
) -> str:
    """Fixed-width text table."""

    def fmt(cell) -> str:
        if isinstance(cell, float):
            return format(cell, floatfmt)
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in text_rows))
        if text_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_curves(
    xlabel: str,
    curves: Dict[str, List[Tuple[float, float]]],
    ylabel: str = "latency (cycles)",
) -> str:
    """Render several (x, y) series as one aligned table.

    Missing x-values in a series (e.g. past its saturation point) render
    as ``-``.
    """
    xs = sorted({x for series in curves.values() for x, _ in series})
    headers = [xlabel] + list(curves)
    rows = []
    lookup = {
        label: {x: y for x, y in series} for label, series in curves.items()
    }
    for x in xs:
        row = [x]
        for label in curves:
            y = lookup[label].get(x)
            row.append("-" if y is None else y)
        rows.append(row)
    table = render_table(headers, rows)
    return f"{ylabel} vs {xlabel}\n{table}"
