"""Runners reproducing every table and figure of the paper's evaluation.

Figure-to-configuration mapping (Section 4):

========  =====================================================================
Table 1   the Step-1 datapoint grid
Table 2   topology parameters of the four evaluated dragonflies
Table 3   default simulator parameters
Fig 4/5   Step-1 modeled throughput sweep, dfly(4,8,4,9) / dfly(4,8,4,33)
Fig 6/7   shift(2,0) latency curves on dfly(4,8,4,9), UGAL-L+PAR / UGAL-G
Fig 8/9   random permutation on dfly(4,8,4,9), UGAL-L+PAR / UGAL-G
Fig 10-12 MIXED(75,25), MIXED(25,75), TMIXED(50,50) on dfly(4,8,4,17)
Fig 13/14 shift(1,0) and MIXED(50,50) on dfly(13,26,13,27), all six schemes
Fig 15-18 sensitivity: link latency, buffer size, speedup, VC scheme
========  =====================================================================

All simulation figures run at scaled-down windows controlled by
``REPRO_WINDOW`` (vs the paper's 10000-cycle windows) -- trends, not
absolute numbers, are the reproduction target.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.datapoints import table1_datapoints
from repro.experiments.report import FigureResult, render_curves, render_table
from repro.model.pathstats import PathStatsCache
from repro.model.sweep import step1_sweep
from repro.routing.pathset import (
    AllVlbPolicy,
    PathPolicy,
    StrategicFiveHopPolicy,
)
from repro.sim import SimParams, latency_vs_load
from repro.spec import (
    PatternSpec,
    PolicySpec,
    SuiteSpec,
    SweepSpec,
    TopologySpec,
)
from repro.topology import Dragonfly, default_dragonfly
from repro.traffic import Shift, type_1_set, type_2_set

__all__ = [
    "FIGURES",
    "curve_suite",
    "run_figure",
    "run_suite",
    "tvlb_policy_for",
]


# ---------------------------------------------------------------------------
# Scaling knobs
# ---------------------------------------------------------------------------
def _window() -> int:
    return int(os.environ.get("REPRO_WINDOW", "300"))


def _window_large() -> int:
    return int(os.environ.get("REPRO_WINDOW_LARGE", "120"))


def _seeds() -> int:
    return int(os.environ.get("REPRO_SEEDS", "1"))


def _params(**overrides) -> SimParams:
    return dataclasses.replace(
        SimParams(window_cycles=_window()), **overrides
    )


def _perm_factory(offset: int) -> Callable[[Dragonfly, int], object]:
    """Registry-built random permutation; the seed stays spec-visible."""
    def factory(topo: Dragonfly, seed: int) -> object:
        return PatternSpec.make("perm", seed=seed + offset).build(topo)

    return factory


def _mix_factory(
    kind: str, ur: int, adv: int
) -> Callable[[Dragonfly, int], object]:
    """Registry-built MIXED/TMIXED pattern; the seed stays spec-visible."""
    def factory(topo: Dragonfly, seed: int) -> object:
        return PatternSpec.make(
            kind, ur_percent=ur, adv_percent=adv, seed=seed
        ).build(topo)

    return factory


def tvlb_policy_for(topo: Dragonfly) -> PathPolicy:
    """The T-VLB set for a paper topology.

    For the dense topologies (more than one link per group pair) the paper's
    Algorithm 1 selects the strategic "all 2-hop MIN legs followed by 3-hop
    MIN legs" choice (Section 4.2); for single-link-per-pair topologies it
    converges to the full VLB set.  This helper returns that published
    outcome so figure benches do not re-run the (slow) algorithm; the
    algorithm itself is exercised by ``benchmarks/bench_algorithm1.py`` and
    ``examples/custom_topology_tvlb.py``.
    """
    if topo.links_per_group_pair <= 1:
        return AllVlbPolicy()
    return StrategicFiveHopPolicy("2+3")


# ---------------------------------------------------------------------------
# Generic latency-curve figure (declared as SuiteSpec data, then run)
# ---------------------------------------------------------------------------
def curve_suite(
    name: str,
    topo: Dragonfly,
    pattern_factory: Callable[[Dragonfly, int], object],
    loads: Sequence[float],
    schemes: Sequence[str],
    *,
    params: SimParams,
    policy: PathPolicy,
    seeds: Sequence[int],
) -> SuiteSpec:
    """The declarative scenario suite of one latency-curve figure.

    One :class:`SweepSpec` per (variant, seed); the sweep ``label`` is the
    curve key.  Each base scheme is paired with its T- variant carrying
    the topology's T-VLB policy, except when that policy is the full VLB
    set (T-UGAL == UGAL there, so the T- curve would duplicate the base).
    """
    topo_spec = TopologySpec.of(topo)
    pol_spec = PolicySpec.of(policy)
    sweeps: List[SweepSpec] = []
    for base in schemes:
        for variant, pol in ((base, None), (f"t-{base}", pol_spec)):
            if pol is not None and pol.kind == "all":
                continue  # T-UGAL == UGAL on this topology
            for seed in seeds:
                sweeps.append(SweepSpec(
                    topology=topo_spec,
                    pattern=PatternSpec.of(pattern_factory(topo, seed)),
                    loads=tuple(loads),
                    routing=variant,
                    policy=pol,
                    params=params,
                    seed=seed,
                    label=variant.upper(),
                ))
    return SuiteSpec(name, tuple(sweeps))


def run_suite(suite: SuiteSpec) -> Dict[str, List]:
    """Execute every sweep of a suite, grouped by label (in suite order)."""
    by_label: Dict[str, List] = {}
    for sweep_spec in suite.sweeps:
        by_label.setdefault(sweep_spec.label, []).append(
            latency_vs_load(sweep_spec)
        )
    return by_label


def _curve_figure(
    figure: str,
    title: str,
    topo: Dragonfly,
    pattern_factory: Callable[[Dragonfly, int], object],
    loads: Sequence[float],
    schemes: Sequence[str],
    params: Optional[SimParams] = None,
    policy: Optional[PathPolicy] = None,
) -> FigureResult:
    """Latency-vs-load curves for base and T- routing variants.

    ``schemes`` lists base variants (e.g. ``["ugal-l", "par"]``); each is
    run both conventionally and as its T- variant with the topology's
    T-VLB policy.  Results are averaged over ``REPRO_SEEDS`` seeds.
    """
    params = params if params is not None else _params()
    policy = policy if policy is not None else tvlb_policy_for(topo)
    suite = curve_suite(
        figure, topo, pattern_factory, loads, schemes,
        params=params, policy=policy, seeds=range(_seeds()),
    )
    curves: Dict[str, List[Tuple[float, float]]] = {}
    sat_rows = []
    for label, per_seed in run_suite(suite).items():
        series: List[Tuple[float, float]] = []
        for i, load in enumerate(loads):
            lats = [
                s.results[i].avg_latency
                for s in per_seed
                if i < len(s.results) and not s.results[i].saturated
            ]
            if lats:
                series.append((load, float(np.mean(lats))))
        curves[label] = series
        sat = float(
            np.mean([s.saturation_throughput() for s in per_seed])
        )
        sat_rows.append([label, sat])
    text = render_curves("offered load", curves)
    text += "\n\nsaturation throughput (packets/cycle/node):\n"
    text += render_table(["scheme", "throughput"], sat_rows)
    return FigureResult(
        figure=figure,
        title=title,
        text=text,
        data={"curves": curves, "saturation": dict(map(tuple, sat_rows))},
    )


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------
def table1() -> FigureResult:
    rows = [[p.describe()] for p in table1_datapoints(step=0.1)]
    return FigureResult(
        "table1",
        "datapoints probed in coarse-grain Step 1",
        render_table(["data point"], rows),
        data={"count": len(rows)},
    )


def table2() -> FigureResult:
    topologies = [
        Dragonfly(4, 8, 4, 33),
        Dragonfly(4, 8, 4, 17),
        default_dragonfly(),
        Dragonfly(13, 26, 13, 27),
    ]
    rows = []
    for t in topologies:
        d = t.describe()
        rows.append(
            [str(t), d["PEs"], d["switches"], d["groups"],
             d["links_per_group_pair"]]
        )
    return FigureResult(
        "table2",
        "topologies used in the experiments",
        render_table(
            ["topology", "PEs", "switches", "groups", "links/pair"], rows
        ),
        data={"rows": rows},
    )


def table3() -> FigureResult:
    p = SimParams.paper()
    rows = [
        ["# virtual channels", "4 UGAL-L/UGAL-G, 5 PAR (auto)"],
        ["buffer size", p.buffer_size],
        ["link latency (local)", p.local_latency],
        ["link latency (global)", p.global_latency],
        ["switch speed-up", p.speedup],
        ["window cycles (paper)", p.window_cycles],
        ["window cycles (bench)", _window()],
    ]
    return FigureResult(
        "table3",
        "default network parameters",
        render_table(["parameter", "value"], rows),
        data={"params": rows},
    )


# ---------------------------------------------------------------------------
# Figures 4 & 5: Step-1 model sweeps
# ---------------------------------------------------------------------------
def _model_sweep_figure(figure: str, topo: Dragonfly) -> FigureResult:
    step = float(os.environ.get("REPRO_MODEL_STEP", "0.25"))
    n_t1 = int(os.environ.get("REPRO_MODEL_T1", "5"))
    n_t2 = int(os.environ.get("REPRO_MODEL_T2", "3"))
    # "uniform" models UGAL's uniform random candidate selection -- the
    # treatment whose sweep shape is closest to the paper's Figures 4/5
    # ("free" is the optimistic Model-3-style allocation; see
    # bench_abl_monotonic for the comparison)
    mode = os.environ.get("REPRO_MODEL_MODE", "uniform")
    rng = np.random.default_rng(0)
    t1 = type_1_set(topo)
    if n_t1 < len(t1):
        t1 = [t1[i] for i in sorted(rng.choice(len(t1), n_t1, replace=False))]
    patterns = t1 + type_2_set(topo, count=n_t2)
    cache = PathStatsCache(topo, max_descriptors=2000)
    points = step1_sweep(
        topo, patterns, table1_datapoints(step=step), cache=cache, mode=mode
    )
    rows = [
        [pt.label, pt.mean_throughput, pt.sem] for pt in points
    ]
    return FigureResult(
        figure,
        f"average modeled throughput, Step-1 sweep on {topo}",
        render_table(["data point", "mean throughput", "sem"], rows),
        data={"points": [(pt.label, pt.mean_throughput) for pt in points]},
    )


def fig04() -> FigureResult:
    return _model_sweep_figure("fig04", default_dragonfly())


def fig05() -> FigureResult:
    return _model_sweep_figure("fig05", Dragonfly(4, 8, 4, 33))


# ---------------------------------------------------------------------------
# Figures 6-9: dfly(4,8,4,9) adversarial and permutation
# ---------------------------------------------------------------------------
ADV_LOADS = (0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4)
PERM_LOADS = (0.1, 0.3, 0.5, 0.6, 0.7, 0.8)


def fig06() -> FigureResult:
    return _curve_figure(
        "fig06",
        "adversarial shift(2,0), UGAL-L & PAR on dfly(4,8,4,9)",
        default_dragonfly(),
        lambda t, seed: Shift(t, 2, 0),
        ADV_LOADS,
        ["ugal-l", "par"],
    )


def fig07() -> FigureResult:
    return _curve_figure(
        "fig07",
        "adversarial shift(2,0), UGAL-G on dfly(4,8,4,9)",
        default_dragonfly(),
        lambda t, seed: Shift(t, 2, 0),
        ADV_LOADS,
        ["ugal-g"],
    )


def fig08() -> FigureResult:
    return _curve_figure(
        "fig08",
        "random permutation, UGAL-L & PAR on dfly(4,8,4,9)",
        default_dragonfly(),
        _perm_factory(11),
        PERM_LOADS,
        ["ugal-l", "par"],
    )


def fig09() -> FigureResult:
    return _curve_figure(
        "fig09",
        "random permutation, UGAL-G on dfly(4,8,4,9)",
        default_dragonfly(),
        _perm_factory(11),
        PERM_LOADS,
        ["ugal-g"],
    )


# ---------------------------------------------------------------------------
# Figures 10-12: mixed traffic on dfly(4,8,4,17)
# ---------------------------------------------------------------------------
MIX_LOADS = (0.05, 0.15, 0.25, 0.35, 0.45, 0.55)


def fig10() -> FigureResult:
    return _curve_figure(
        "fig10",
        "MIXED(75,25), UGAL-L & PAR on dfly(4,8,4,17)",
        Dragonfly(4, 8, 4, 17),
        _mix_factory("mixed", 75, 25),
        MIX_LOADS,
        ["ugal-l", "par"],
    )


def fig11() -> FigureResult:
    return _curve_figure(
        "fig11",
        "MIXED(25,75), UGAL-L & PAR on dfly(4,8,4,17)",
        Dragonfly(4, 8, 4, 17),
        _mix_factory("mixed", 25, 75),
        MIX_LOADS,
        ["ugal-l", "par"],
    )


def fig12() -> FigureResult:
    return _curve_figure(
        "fig12",
        "TMIXED(50,50), UGAL-L & PAR on dfly(4,8,4,17)",
        Dragonfly(4, 8, 4, 17),
        _mix_factory("tmixed", 50, 50),
        MIX_LOADS,
        ["ugal-l", "par"],
    )


# ---------------------------------------------------------------------------
# Figures 13-14: the large topology
# ---------------------------------------------------------------------------
def _large_loads() -> Tuple[float, ...]:
    """Load ladder for the 9126-node topology.

    Saturated points on the large network are very slow in pure Python
    (per-cycle cost scales with flits in flight), so the ladder is
    env-tunable: ``REPRO_LARGE_LOADS=0.05,0.15,0.3`` restores the full
    ladder used for trend checks.
    """
    spec = os.environ.get("REPRO_LARGE_LOADS", "0.05,0.15,0.3")
    return tuple(float(x) for x in spec.split(","))


def fig13() -> FigureResult:
    return _curve_figure(
        "fig13",
        "adversarial shift(1,0) on dfly(13,26,13,27)",
        Dragonfly(13, 26, 13, 27),
        lambda t, seed: Shift(t, 1, 0),
        _large_loads(),
        ["ugal-l", "par", "ugal-g"],
        params=_params(window_cycles=_window_large()),
    )


def fig14() -> FigureResult:
    return _curve_figure(
        "fig14",
        "MIXED(50,50) on dfly(13,26,13,27)",
        Dragonfly(13, 26, 13, 27),
        _mix_factory("mixed", 50, 50),
        _large_loads(),
        ["ugal-l", "par", "ugal-g"],
        params=_params(window_cycles=_window_large()),
    )


# ---------------------------------------------------------------------------
# Figures 15-18: sensitivity studies on dfly(4,8,4,17) / dfly(4,8,4,9)
# ---------------------------------------------------------------------------
def _sensitivity_figure(
    figure: str,
    title: str,
    topo: Dragonfly,
    pattern_factory,
    loads: Sequence[float],
    scheme: str,
    settings: Sequence[Tuple[str, SimParams]],
) -> FigureResult:
    topo_spec = TopologySpec.of(topo)
    pol_spec = PolicySpec.of(tvlb_policy_for(topo))
    pattern_spec = PatternSpec.of(pattern_factory(topo, 0))
    suite = SuiteSpec(figure, tuple(
        SweepSpec(
            topology=topo_spec,
            pattern=pattern_spec,
            loads=tuple(loads),
            routing=variant,
            policy=pol,
            params=params,
            seed=0,
            label=f"{variant.upper()}({setting_label})",
        )
        for setting_label, params in settings
        for variant, pol in ((scheme, None), (f"t-{scheme}", pol_spec))
    ))
    curves: Dict[str, List[Tuple[float, float]]] = {}
    sat_rows = []
    for label, sweeps in run_suite(suite).items():
        sweep = sweeps[0]
        curves[label] = [
            (r.offered_load, r.avg_latency)
            for r in sweep.results
            if not r.saturated
        ]
        sat_rows.append([label, sweep.saturation_throughput()])
    text = render_curves("offered load", curves)
    text += "\n\nsaturation throughput:\n"
    text += render_table(["scheme", "throughput"], sat_rows)
    return FigureResult(
        figure, title, text,
        data={"curves": curves, "saturation": dict(map(tuple, sat_rows))},
    )


def fig15() -> FigureResult:
    return _sensitivity_figure(
        "fig15",
        "link-latency sensitivity, UGAL-G, permutation on dfly(4,8,4,17)",
        Dragonfly(4, 8, 4, 17),
        _perm_factory(21),
        PERM_LOADS,
        "ugal-g",
        [
            ("10,15", _params(local_latency=10, global_latency=15)),
            ("40,60", _params(local_latency=40, global_latency=60)),
        ],
    )


def fig16() -> FigureResult:
    return _sensitivity_figure(
        "fig16",
        "buffer-size sensitivity, UGAL-L, MIXED(50,50) on dfly(4,8,4,17)",
        Dragonfly(4, 8, 4, 17),
        _mix_factory("mixed", 50, 50),
        MIX_LOADS,
        "ugal-l",
        [
            ("8", _params(buffer_size=8)),
            ("32", _params(buffer_size=32)),
        ],
    )


def fig17() -> FigureResult:
    return _sensitivity_figure(
        "fig17",
        "switch-speedup sensitivity, PAR, MIXED(25,75) on dfly(4,8,4,17)",
        Dragonfly(4, 8, 4, 17),
        _mix_factory("mixed", 25, 75),
        MIX_LOADS,
        "par",
        [
            ("1", _params(speedup=1)),
            ("2", _params(speedup=2)),
        ],
    )


def fig18() -> FigureResult:
    return _sensitivity_figure(
        "fig18",
        "VC-scheme sensitivity, UGAL-G, shift(1,0) on dfly(4,8,4,9)",
        default_dragonfly(),
        lambda t, seed: Shift(t, 1, 0),
        ADV_LOADS,
        "ugal-g",
        [
            ("4", _params(vc_scheme="won")),
            ("6", _params(vc_scheme="perhop")),
        ],
    )


def adv_discovered() -> FigureResult:
    """Beyond-the-paper arm: a *searched* adversary on dfly(4,8,4,9).

    Runs a small ``repro.adversary`` hill climb per seed (seeded by the
    figure seed, so the curve set is deterministic), rebuilds the winner
    through the registry (``discovered`` spec -- cache identity intact),
    and plots the same UGAL-L/PAR conventional-vs-T comparison as the
    paper's fig06 shift.  The interesting read is the gap between this
    curve and fig06: how much worse than the hand-built shift a
    machine-found pattern can be.
    """
    from repro.adversary import run_search

    found: Dict[int, object] = {}

    def factory(topo: Dragonfly, seed: int) -> object:
        if seed not in found:
            report = run_search(
                topo,
                strategy="hillclimb",
                budget=8,
                seed=seed,
                num_type1=4,
                num_type2=2,
            )
            found[seed] = PatternSpec.make(
                "discovered", dest=report.args["dest"]
            ).build(topo)
        return found[seed]

    return _curve_figure(
        "adv_discovered",
        "discovered adversary, UGAL-L & PAR on dfly(4,8,4,9)",
        default_dragonfly(),
        factory,
        ADV_LOADS,
        ["ugal-l", "par"],
    )


FIGURES: Dict[str, Callable[[], FigureResult]] = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "fig04": fig04,
    "fig05": fig05,
    "fig06": fig06,
    "fig07": fig07,
    "fig08": fig08,
    "fig09": fig09,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
    "fig17": fig17,
    "fig18": fig18,
    "adv_discovered": adv_discovered,
}


def run_figure(name: str) -> FigureResult:
    """Run one experiment by id (e.g. ``fig06`` or ``table2``)."""
    try:
        runner = FIGURES[name]
    except KeyError:
        raise ValueError(
            f"unknown figure {name!r}; choose from {sorted(FIGURES)}"
        ) from None
    return runner()
