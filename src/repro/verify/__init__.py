"""Static deadlock-freedom and path-set invariant analysis.

Validates a ``(topology, path set, VC scheme, VC count)`` configuration
without running a simulation:

* :mod:`repro.verify.cdg` builds the channel dependency graph over
  virtual channels and certifies deadlock freedom (Dally's criterion),
  reporting a concrete dependency cycle as a counterexample on failure;
* :mod:`repro.verify.lint` checks structural invariants of the path set
  (hop validity, slot ranges, MIN minimality, the VLB hop-class taxonomy,
  VC budget, load-balance bounds) as toggleable rules;
* :mod:`repro.verify.report` packages both into a :class:`VerifyReport`
  with text/JSON rendering, exposed on the CLI as ``python -m repro
  verify`` and as the ``SimParams(verify=True)`` engine pre-flight gate;
* :mod:`repro.verify.registry` cross-checks the ``repro.spec`` registries
  against their consumers (examples parse, build, round-trip, fingerprint;
  the routing registry matches the simulator's variant list), runnable as
  ``python -m repro.verify.registry`` in CI.
"""

from repro.verify.cdg import (
    CdgResult,
    ChannelDependencyGraph,
    build_cdg,
    certify_deadlock_freedom,
)
from repro.verify.lint import LINT_RULES, Finding, lint_pathset
from repro.verify.registry import check_registries
from repro.verify.report import VerifyReport, verify_config

__all__ = [
    "CdgResult",
    "ChannelDependencyGraph",
    "build_cdg",
    "certify_deadlock_freedom",
    "check_registries",
    "Finding",
    "LINT_RULES",
    "lint_pathset",
    "VerifyReport",
    "verify_config",
]
