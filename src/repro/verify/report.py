"""Aggregate verification report: CDG certification + lint findings.

:func:`verify_config` is the one-call entry point used by the ``verify``
CLI subcommand, the ``SimParams(verify=True)`` pre-flight gate in the
simulation engine, and Algorithm 1's finalization check.  It packages a
:class:`~repro.verify.cdg.CdgResult` and the linter's
:class:`~repro.verify.lint.Finding` list into a :class:`VerifyReport`
renderable as text or JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.routing.pathset import AllVlbPolicy, PathPolicy
from repro.sim.params import SimParams
from repro.topology.dragonfly import Dragonfly
from repro.verify.cdg import (
    _FAST_ROW_LIMIT,
    _estimated_rows,
    CdgResult,
    certify_deadlock_freedom,
)
from repro.verify.lint import Finding, lint_pathset

__all__ = ["VerifyReport", "verify_config"]

# bounds applied when the topology is too large for exhaustive analysis
_SAMPLED_CDG_PAIRS = 200
_SAMPLED_CDG_DESCRIPTORS = 512
# the generic builder materializes paths one by one, ~100x the per-row
# cost of the vectorized builder: cap its exhaustive use much lower
_GENERIC_ROW_LIMIT = 2_000_000
# a broken config can produce tens of thousands of findings; keep the
# text rendering readable (to_dict/to_json always carry everything)
_MAX_RENDERED_FINDINGS = 25


@dataclass
class VerifyReport:
    """Everything one static verification run established."""

    topo: str
    policy: str
    scheme: str
    routing: str
    num_vcs: int
    cdg: Optional[CdgResult]
    findings: List[Finding]

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def passed(self) -> bool:
        """No dependency cycle and no error-severity lint finding."""
        cdg_ok = self.cdg is None or self.cdg.deadlock_free
        return cdg_ok and not self.errors

    def to_text(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"repro.verify -- {self.topo}  policy={self.policy}  "
            f"scheme={self.scheme}  routing={self.routing}  "
            f"vcs={self.num_vcs}"
        ]
        if self.cdg is None:
            lines.append("  deadlock: skipped")
        else:
            lines.append(f"  deadlock: {self.cdg.describe()}")
            if self.cdg.cycle is not None:
                lines.append("  dependency cycle (each waits on the next):")
                for ch, vc in self.cdg.cycle:
                    kind = "global" if ch.is_global else "local"
                    slot = f" slot {ch.slot}" if ch.is_global else ""
                    lines.append(
                        f"    {kind} {ch.src}->{ch.dst}{slot} @ vc {vc}"
                    )
        lines.append(
            f"  lint: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)"
        )
        shown = self.findings[:_MAX_RENDERED_FINDINGS]
        lines.extend(f"    {f}" for f in shown)
        omitted = len(self.findings) - len(shown)
        if omitted:
            lines.append(
                f"    ... {omitted} more finding(s) omitted "
                f"(JSON output carries all of them)"
            )
        lines.append(f"RESULT: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable summary (stable keys, machine-readable)."""
        cdg: Optional[Dict[str, Any]] = None
        if self.cdg is not None:
            cdg = {
                "deadlock_free": self.cdg.deadlock_free,
                "certified": self.cdg.certified,
                "exhaustive": self.cdg.exhaustive,
                "num_nodes": self.cdg.num_nodes,
                "num_edges": self.cdg.num_edges,
                "num_paths": self.cdg.num_paths,
                "cycle": None
                if self.cdg.cycle is None
                else [
                    {
                        "src": ch.src,
                        "dst": ch.dst,
                        "slot": ch.slot,
                        "vc": vc,
                    }
                    for ch, vc in self.cdg.cycle
                ],
            }
        return {
            "topo": self.topo,
            "policy": self.policy,
            "scheme": self.scheme,
            "routing": self.routing,
            "num_vcs": self.num_vcs,
            "passed": self.passed,
            "cdg": cdg,
            "findings": [
                {
                    "rule": f.rule,
                    "severity": f.severity,
                    "location": f.location,
                    "message": f.message,
                }
                for f in self.findings
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def _default_num_vcs(topo: Dragonfly, scheme: str, routing: str) -> int:
    if scheme == "none":
        return 1
    params = SimParams(vc_scheme=scheme)
    return params.vcs_required(routing, topo.max_local_hops)


def verify_config(
    topo: Dragonfly,
    policy: Optional[PathPolicy] = None,
    *,
    scheme: str = "won",
    routing: str = "par",
    num_vcs: Optional[int] = None,
    seed: int = 0,
    rules: Optional[Sequence[str]] = None,
    run_cdg: bool = True,
    run_lint: bool = True,
    max_pairs: Optional[int] = 40,
    max_descriptors: Optional[int] = 200,
) -> VerifyReport:
    """Statically verify a ``(topology, path set, VC scheme)`` configuration.

    Builds the channel dependency graph and certifies deadlock freedom
    (``run_cdg``), then lints the sampled path set (``run_lint``,
    restricted to ``rules`` when given).  ``num_vcs`` defaults to the
    scheme's requirement for ``routing`` on this topology.  On topologies
    too large for exhaustive dependency enumeration the CDG falls back to
    a sampled build and the result is flagged non-exhaustive.
    """
    policy = policy if policy is not None else AllVlbPolicy()
    base = routing.lower().removeprefix("t-")
    vcs = (
        num_vcs
        if num_vcs is not None and num_vcs > 0
        else _default_num_vcs(topo, scheme, base)
    )
    cdg: Optional[CdgResult] = None
    if run_cdg:
        limit = (
            _FAST_ROW_LIMIT if topo.max_local_hops == 1 else _GENERIC_ROW_LIMIT
        )
        exhaustive_ok = _estimated_rows(topo) <= limit
        cdg = certify_deadlock_freedom(
            topo,
            policy,
            scheme=scheme,
            routing=base,
            seed=seed,
            max_pairs=None if exhaustive_ok else _SAMPLED_CDG_PAIRS,
            max_descriptors=None if exhaustive_ok else _SAMPLED_CDG_DESCRIPTORS,
        )
    findings: List[Finding] = []
    if run_lint:
        findings = lint_pathset(
            topo,
            policy,
            scheme=scheme,
            routing=base,
            num_vcs=vcs,
            rules=rules,
            max_pairs=max_pairs,
            max_descriptors=max_descriptors,
            seed=seed,
        )
    return VerifyReport(
        topo=str(topo),
        policy=policy.describe(),
        scheme=scheme,
        routing=base,
        num_vcs=vcs,
        cdg=cdg,
        findings=findings,
    )
