"""Path-set linter: structural invariants a routed configuration must hold.

Each rule inspects a sampled set of switch pairs (MIN paths plus the
policy's VLB paths) and yields structured :class:`Finding` records -- rule
id, severity, location, message -- instead of raising, so one run reports
every violation at once.  Rules are registered in :data:`LINT_RULES` and
individually toggleable via the ``rules`` argument of
:func:`lint_pathset`.

Rules (severity in parentheses):

* ``hop-validity`` (error): every hop of every path is a real channel of
  the topology, and VLB descriptors materialize without raising.
* ``slot-range`` (error): global-link slot indices stay within the group
  pair's link table (``topo.links_between_groups``) and match the actual
  link endpoints at that slot.
* ``min-minimality`` (error): MIN paths really are shortest -- hop counts
  equal BFS distances on the switch graph.
* ``hop-class`` (error): the VLB taxonomy holds -- descriptor hop counts
  lie in ``[2, max_vlb_hops]``, materialized paths have exactly two global
  hops and the predicted length, and every descriptor the policy
  *enumerates* is also one it *contains* (the LP model and the simulator
  assume this consistency).
* ``vc-overflow`` (error): every path -- and, under PAR, every revised
  fragment -- fits in the configured VC count per ``assign_vcs``.
* ``balance`` (warning): the load-balance ratios of ``core/balance.py``
  stay under the adjustment factor (3.0) -- a hotter channel would have
  been removed by Algorithm 1's balance step.
* ``vlb-reachability`` (warning): no sampled pair is left without any VLB
  candidate by the policy while the topology offers some.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.balance import global_usage_probability, pair_usage_probability
from repro.routing.channels import ChannelIndex
from repro.routing.minimal import min_paths
from repro.routing.paths import LOCAL_SLOT, Path
from repro.routing.pathset import AllVlbPolicy, PathPolicy
from repro.routing.vlb import (
    VlbDescriptor,
    count_vlb_paths,
    max_vlb_hops,
    vlb_hops,
    vlb_path,
)
from repro.sim.vc import assign_vcs
from repro.topology.dragonfly import Dragonfly

__all__ = ["Finding", "LINT_RULES", "lint_pathset"]

BALANCE_FACTOR = 3.0  # mirrors core.balance.balance_adjust defaults
_BALANCE_MAX_PAIRS = 8  # balance enumerates full per-pair sets: keep few
_BALANCE_MAX_PATHS = 20_000  # skip balance for pairs with huge VLB sets


@dataclass(frozen=True)
class Finding:
    """One lint diagnostic."""

    rule: str
    severity: str  # "error" | "warning"
    location: str  # e.g. "pair (3->17)" or "pair (3->17) desc (mid=40,1,0)"
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.rule} @ {self.location}: {self.message}"


def _loc(src: int, dst: int, desc: Optional[VlbDescriptor] = None) -> str:
    base = f"pair ({src}->{dst})"
    if desc is None:
        return base
    return f"{base} desc (mid={desc.mid},{desc.slot1},{desc.slot2})"


@dataclass
class _LintContext:
    """Shared sampled state handed to every rule."""

    topo: Dragonfly
    policy: PathPolicy
    scheme: str
    routing: str
    num_vcs: int
    pairs: List[Tuple[int, int]]
    max_descriptors: Optional[int]
    _desc_cache: Dict[Tuple[int, int], List[VlbDescriptor]] = field(
        default_factory=dict, repr=False
    )
    _path_cache: Dict[
        Tuple[int, int],
        List[Tuple[VlbDescriptor, Optional[Path], Optional[Exception]]],
    ] = field(default_factory=dict, repr=False)

    def descriptors(self, src: int, dst: int) -> List[VlbDescriptor]:
        """The pair's policy descriptors, capped at ``max_descriptors``."""
        key = (src, dst)
        cached = self._desc_cache.get(key)
        if cached is None:
            cached = []
            for desc in self.policy.iter_descriptors(self.topo, src, dst):
                cached.append(desc)
                if (
                    self.max_descriptors is not None
                    and len(cached) >= self.max_descriptors
                ):
                    break
            self._desc_cache[key] = cached
        return cached

    def vlb_paths(
        self, src: int, dst: int
    ) -> List[Tuple[VlbDescriptor, Optional[Path], Optional[Exception]]]:
        """Materialized (descriptor, path, error) triples for a pair."""
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is None:
            cached = []
            for desc in self.descriptors(src, dst):
                try:
                    cached.append((desc, vlb_path(self.topo, src, dst, desc), None))
                except (ValueError, IndexError) as exc:
                    cached.append((desc, None, exc))
            self._path_cache[key] = cached
        return cached

    @property
    def par(self) -> bool:
        return self.routing in ("par", "t-par")

    def fragment_pair(self, src: int, dst: int) -> bool:
        """Can (src, dst) be the (revision switch, dst) of a PAR re-route?"""
        return self.topo.group_of(src) != self.topo.group_of(dst) or (
            self.topo.max_local_hops > 1
        )


RuleFn = Callable[[_LintContext], Iterator[Finding]]


def _rule_hop_validity(ctx: _LintContext) -> Iterator[Finding]:
    for src, dst in ctx.pairs:
        for p in min_paths(ctx.topo, src, dst):
            try:
                p.validate(ctx.topo)
            except ValueError as exc:
                yield Finding("hop-validity", "error", _loc(src, dst), str(exc))
        for desc, p, exc in ctx.vlb_paths(src, dst):
            if exc is not None and isinstance(exc, ValueError):
                yield Finding(
                    "hop-validity", "error", _loc(src, dst, desc), str(exc)
                )
                continue
            if p is None:
                continue
            try:
                p.validate(ctx.topo)
            except ValueError as e:
                yield Finding(
                    "hop-validity", "error", _loc(src, dst, desc), str(e)
                )
            else:
                if p.src != src or p.dst != dst:
                    yield Finding(
                        "hop-validity",
                        "error",
                        _loc(src, dst, desc),
                        f"path runs {p.src}->{p.dst}, not {src}->{dst}",
                    )


def _rule_slot_range(ctx: _LintContext) -> Iterator[Finding]:
    topo = ctx.topo
    for src, dst in ctx.pairs:
        gs, gd = topo.group_of(src), topo.group_of(dst)
        for desc, p, exc in ctx.vlb_paths(src, dst):
            gm = topo.group_of(desc.mid)
            if gm != gs and gm != gd:
                for slot, ga, gb in (
                    (desc.slot1, gs, gm),
                    (desc.slot2, gm, gd),
                ):
                    n = len(topo.links_between_groups(ga, gb))
                    if not 0 <= slot < n:
                        yield Finding(
                            "slot-range",
                            "error",
                            _loc(src, dst, desc),
                            f"slot {slot} out of range for groups "
                            f"{ga}<->{gb} ({n} links)",
                        )
            if isinstance(exc, IndexError):
                yield Finding(
                    "slot-range",
                    "error",
                    _loc(src, dst, desc),
                    "descriptor slot indexes past the group pair's links",
                )
            if p is None:
                continue
            for ch in p.channels():
                if ch.slot == LOCAL_SLOT:
                    continue
                links = topo.links_between_groups(
                    topo.group_of(ch.src), topo.group_of(ch.dst)
                )
                if not 0 <= ch.slot < len(links):
                    yield Finding(
                        "slot-range",
                        "error",
                        _loc(src, dst, desc),
                        f"{ch}: slot outside the {len(links)}-link table",
                    )
                elif {links[ch.slot].switch_a, links[ch.slot].switch_b} != {
                    ch.src,
                    ch.dst,
                }:
                    yield Finding(
                        "slot-range",
                        "error",
                        _loc(src, dst, desc),
                        f"{ch}: slot {ch.slot} joins different switches",
                    )


def _rule_min_minimality(ctx: _LintContext) -> Iterator[Finding]:
    # A dragonfly MIN path is one canonical route *per direct global link*
    # (not the graph-wide shortest), so the checkable invariants are: the
    # path takes exactly one global hop between distinct groups (zero
    # within a group), and every local segment is a shortest route of the
    # intra-group subgraph (BFS over local links as ground truth).
    import networkx as nx

    topo = ctx.topo
    local = nx.Graph()
    local.add_nodes_from(range(topo.num_switches))
    for u in range(topo.num_switches):
        for v in topo.local_neighbors(u):
            if u < v:
                local.add_edge(u, v)
    bfs_cache: Dict[int, Dict[int, int]] = {}

    def local_distance(u: int, v: int) -> Optional[int]:
        dists = bfs_cache.get(u)
        if dists is None:
            dists = nx.single_source_shortest_path_length(local, u)
            bfs_cache[u] = dists
        return dists.get(v)

    for src, dst in ctx.pairs:
        expected_globals = (
            0 if topo.group_of(src) == topo.group_of(dst) else 1
        )
        for p in min_paths(topo, src, dst):
            if p.num_global_hops != expected_globals:
                yield Finding(
                    "min-minimality",
                    "error",
                    _loc(src, dst),
                    f"MIN path takes {p.num_global_hops} global hops, "
                    f"expected {expected_globals}",
                )
            # maximal runs of consecutive local hops
            run_start, run_len = p.switches[0], 0
            segments = []
            for i, slot in enumerate(p.slots):
                if slot == LOCAL_SLOT:
                    run_len += 1
                else:
                    if run_len:
                        segments.append((run_start, p.switches[i], run_len))
                    run_start, run_len = p.switches[i + 1], 0
            if run_len:
                segments.append((run_start, p.switches[-1], run_len))
            for u, v, hops in segments:
                dist = local_distance(u, v)
                if dist is None:
                    yield Finding(
                        "min-minimality",
                        "error",
                        _loc(src, dst),
                        f"local segment {u}->{v} crosses disconnected "
                        f"switches",
                    )
                elif hops != dist:
                    yield Finding(
                        "min-minimality",
                        "error",
                        _loc(src, dst),
                        f"local segment {u}->{v} takes {hops} hops, "
                        f"intra-group distance is {dist}",
                    )


def _rule_hop_class(ctx: _LintContext) -> Iterator[Finding]:
    topo = ctx.topo
    cap = max_vlb_hops(topo)
    for src, dst in ctx.pairs:
        for desc, p, _exc in ctx.vlb_paths(src, dst):
            if not ctx.policy.contains(topo, src, dst, desc):
                yield Finding(
                    "hop-class",
                    "error",
                    _loc(src, dst, desc),
                    "policy enumerates a descriptor its own contains() "
                    "rejects",
                )
            if p is None:
                continue
            hops = vlb_hops(topo, src, dst, desc)
            if not 2 <= hops <= cap:
                yield Finding(
                    "hop-class",
                    "error",
                    _loc(src, dst, desc),
                    f"VLB path has {hops} hops, outside [2, {cap}]",
                )
            if p.num_global_hops != 2:
                yield Finding(
                    "hop-class",
                    "error",
                    _loc(src, dst, desc),
                    f"VLB path takes {p.num_global_hops} global hops, "
                    f"expected exactly 2",
                )
            if p.num_hops != hops:
                yield Finding(
                    "hop-class",
                    "error",
                    _loc(src, dst, desc),
                    f"materialized path has {p.num_hops} hops but the "
                    f"descriptor taxonomy predicts {hops}",
                )


def _rule_vc_overflow(ctx: _LintContext) -> Iterator[Finding]:
    if ctx.scheme == "none":
        return
    for src, dst in ctx.pairs:
        paths: List[Tuple[Optional[VlbDescriptor], Path]] = [
            (None, p) for p in min_paths(ctx.topo, src, dst)
        ]
        paths.extend(
            (desc, p) for desc, p, _e in ctx.vlb_paths(src, dst) if p is not None
        )
        for desc, p in paths:
            try:
                assign_vcs(p, ctx.scheme, num_vcs=ctx.num_vcs)
            except ValueError as exc:
                yield Finding(
                    "vc-overflow", "error", _loc(src, dst, desc), str(exc)
                )
        if ctx.par and ctx.fragment_pair(src, dst):
            for desc, p, _e in ctx.vlb_paths(src, dst):
                if p is None:
                    continue
                try:
                    assign_vcs(
                        p,
                        ctx.scheme,
                        hop_offset=1,
                        revised=True,
                        num_vcs=ctx.num_vcs,
                    )
                except ValueError as exc:
                    yield Finding(
                        "vc-overflow",
                        "error",
                        _loc(src, dst, desc),
                        f"PAR-revised fragment: {exc}",
                    )


def _rule_balance(ctx: _LintContext) -> Iterator[Finding]:
    chidx = ChannelIndex(ctx.topo)
    checked: List[Tuple[int, int]] = []
    for src, dst in ctx.pairs:
        if len(checked) >= _BALANCE_MAX_PAIRS:
            break
        if count_vlb_paths(ctx.topo, src, dst) > _BALANCE_MAX_PATHS:
            continue
        try:
            probs = pair_usage_probability(
                ctx.topo, chidx, ctx.policy, src, dst
            )
        except (ValueError, IndexError):
            # malformed descriptor; hop-validity / slot-range report it
            continue
        checked.append((src, dst))
        used = probs[probs > 0]
        if used.size == 0:
            continue
        ratio = float(probs.max() / used.mean())
        if ratio > BALANCE_FACTOR:
            hot = chidx.channel(int(probs.argmax()))
            yield Finding(
                "balance",
                "warning",
                _loc(src, dst),
                f"channel {hot} is {ratio:.1f}x the pair's mean usage "
                f"(adjustment factor {BALANCE_FACTOR})",
            )
    if not checked:
        return
    gprobs = global_usage_probability(ctx.topo, chidx, ctx.policy, checked)
    used = gprobs[gprobs > 0]
    if used.size:
        ratio = float(gprobs.max() / used.mean())
        if ratio > BALANCE_FACTOR:
            hot = chidx.channel(int(gprobs.argmax()))
            yield Finding(
                "balance",
                "warning",
                f"{len(checked)} sampled pairs",
                f"channel {hot} is {ratio:.1f}x the global mean usage "
                f"(adjustment factor {BALANCE_FACTOR})",
            )


def _rule_vlb_reachability(ctx: _LintContext) -> Iterator[Finding]:
    for src, dst in ctx.pairs:
        if ctx.descriptors(src, dst):
            continue
        if count_vlb_paths(ctx.topo, src, dst) > 0:
            yield Finding(
                "vlb-reachability",
                "warning",
                _loc(src, dst),
                "policy leaves this pair without any VLB candidate "
                "(UGAL degenerates to MIN here)",
            )


LINT_RULES: Dict[str, RuleFn] = {
    "hop-validity": _rule_hop_validity,
    "slot-range": _rule_slot_range,
    "min-minimality": _rule_min_minimality,
    "hop-class": _rule_hop_class,
    "vc-overflow": _rule_vc_overflow,
    "balance": _rule_balance,
    "vlb-reachability": _rule_vlb_reachability,
}


def _sample_pairs(
    topo: Dragonfly, max_pairs: Optional[int], seed: int
) -> List[Tuple[int, int]]:
    pairs = [
        (s, d)
        for s in range(topo.num_switches)
        for d in range(topo.num_switches)
        if s != d
    ]
    if max_pairs is None or max_pairs >= len(pairs):
        return pairs
    rng = np.random.default_rng(seed)
    idx = rng.choice(len(pairs), size=max_pairs, replace=False)
    return [pairs[i] for i in sorted(idx)]


def lint_pathset(
    topo: Dragonfly,
    policy: Optional[PathPolicy] = None,
    *,
    scheme: str = "won",
    routing: str = "par",
    num_vcs: int = 8,
    rules: Optional[Sequence[str]] = None,
    max_pairs: Optional[int] = 40,
    max_descriptors: Optional[int] = 200,
    seed: int = 0,
) -> List[Finding]:
    """Run the (selected) lint rules over a sampled set of switch pairs.

    ``rules`` selects a subset of :data:`LINT_RULES` (default: all);
    unknown names raise ``ValueError``.  ``max_pairs`` / ``max_descriptors``
    bound the sample (``None`` = no cap).  Findings come back sorted with
    errors first.
    """
    if rules is None:
        selected = list(LINT_RULES)
    else:
        unknown = [r for r in rules if r not in LINT_RULES]
        if unknown:
            raise ValueError(
                f"unknown lint rule(s) {unknown}; "
                f"available: {sorted(LINT_RULES)}"
            )
        selected = list(rules)
    ctx = _LintContext(
        topo=topo,
        policy=policy if policy is not None else AllVlbPolicy(),
        scheme=scheme,
        routing=routing.lower().removeprefix("t-"),
        num_vcs=num_vcs,
        pairs=_sample_pairs(topo, max_pairs, seed),
        max_descriptors=max_descriptors,
    )
    findings: List[Finding] = []
    for name in selected:
        findings.extend(LINT_RULES[name](ctx))
    findings.sort(key=lambda f: (f.severity != "error", f.rule, f.location))
    return findings
