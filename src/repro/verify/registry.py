"""Registry consistency self-check for the ``repro.spec`` registries.

Static cross-checks between the pluggable registries and their consumers,
run in CI next to ruff/mypy so a half-registered kind (parseable but not
buildable, buildable but not fingerprintable, registered in the spec layer
but missing from the simulator's variant list) fails the lint job instead
of surfacing as a confusing runtime error.

Checks, per registry:

* every routing variant the simulator advertises
  (:data:`repro.sim.routing.ROUTING_VARIANTS`) is registered, and vice
  versa, in the same order;
* every parseable entry ships a non-empty ``example`` spec string, the
  example parses back to the entry's own kind, and parsing is
  deterministic (two parses agree);
* the parsed canonical args build a live object, the live object's type
  matches the registered ``cls``, and -- when a ``to_dict`` codec exists --
  the object round-trips back to the identical canonical args;
* the resulting spec (:class:`~repro.spec.TopologySpec` /
  :class:`~repro.spec.PatternSpec` / :class:`~repro.spec.PolicySpec`)
  survives ``to_dict``/``from_dict`` and keeps a stable fingerprint
  across the round trip;
* routing entries build :class:`~repro.sim.strategies.RoutingStrategy`
  instances and their ``accepts_policy`` flags agree with
  :func:`~repro.spec.resolve_routing`'s T- form gate;
* search-strategy entries (:data:`repro.adversary.SEARCH_REGISTRY`)
  build their registered class and round-trip through ``to_dict``.

Run as a module -- ``python -m repro.verify.registry`` -- it prints each
problem and exits non-zero when any check fails.
"""

from __future__ import annotations

from typing import Any, List

__all__ = ["check_registries"]


def _check_example(registry: Any, problems: List[str]) -> None:
    """Parse/build/round-trip every parseable entry's example spec."""
    for entry in registry:
        if entry.parse is None:
            continue  # dict-only kind: no mini-language to exercise
        where = f"{registry.name}[{entry.kind!r}]"
        if not entry.example:
            problems.append(f"{where}: parseable entry has no example")
            continue
        try:
            kind, args = registry.parse(entry.example)
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            problems.append(
                f"{where}: example {entry.example!r} does not parse: {exc}"
            )
            continue
        if kind != entry.kind:
            problems.append(
                f"{where}: example {entry.example!r} parses as kind "
                f"{kind!r}"
            )
            continue
        _, again = registry.parse(entry.example)
        if again != args:
            problems.append(
                f"{where}: parsing {entry.example!r} twice disagrees: "
                f"{args!r} vs {again!r}"
            )


def _check_traffic(problems: List[str]) -> None:
    from repro.spec import TRAFFIC_REGISTRY, PatternSpec
    from repro.topology.dragonfly import Dragonfly

    _check_example(TRAFFIC_REGISTRY, problems)
    topo = Dragonfly(2, 4, 2, 3)
    for entry in TRAFFIC_REGISTRY:
        if entry.parse is None or not entry.example:
            continue
        where = f"TRAFFIC_REGISTRY[{entry.kind!r}]"
        try:
            spec = PatternSpec.parse(entry.example)
            pattern = spec.build(topo)
        except Exception as exc:  # noqa: BLE001
            problems.append(f"{where}: example does not build: {exc}")
            continue
        if entry.cls is not None and type(pattern) is not entry.cls:
            problems.append(
                f"{where}: example built a {type(pattern).__name__}, "
                f"registered class is {entry.cls.__name__}"
            )
            continue
        if entry.to_dict is not None:
            recovered = PatternSpec.of(pattern)
            if recovered != spec:
                problems.append(
                    f"{where}: build/of round trip changed the spec: "
                    f"{spec.to_dict()!r} vs {recovered.to_dict()!r}"
                )
        round_trip = PatternSpec.from_dict(spec.to_dict())
        if round_trip != spec or round_trip.fingerprint() != spec.fingerprint():
            problems.append(
                f"{where}: to_dict/from_dict round trip is unstable"
            )


def _check_policies(problems: List[str]) -> None:
    from repro.spec import POLICY_REGISTRY, PolicySpec

    _check_example(POLICY_REGISTRY, problems)
    for entry in POLICY_REGISTRY:
        if entry.parse is None or not entry.example:
            continue
        where = f"POLICY_REGISTRY[{entry.kind!r}]"
        try:
            spec = PolicySpec.parse(entry.example)
            policy = spec.build()
        except Exception as exc:  # noqa: BLE001
            problems.append(f"{where}: example does not build: {exc}")
            continue
        if entry.cls is not None and type(policy) is not entry.cls:
            problems.append(
                f"{where}: example built a {type(policy).__name__}, "
                f"registered class is {entry.cls.__name__}"
            )
            continue
        if entry.to_dict is not None:
            recovered = PolicySpec.of(policy)
            if recovered != spec:
                problems.append(
                    f"{where}: build/of round trip changed the spec: "
                    f"{spec.to_dict()!r} vs {recovered.to_dict()!r}"
                )
        round_trip = PolicySpec.from_dict(spec.to_dict())
        if round_trip != spec or round_trip.fingerprint() != spec.fingerprint():
            problems.append(
                f"{where}: to_dict/from_dict round trip is unstable"
            )


def _check_topologies(problems: List[str]) -> None:
    from repro.spec import TOPOLOGY_REGISTRY, TopologySpec

    _check_example(TOPOLOGY_REGISTRY, problems)
    for entry in TOPOLOGY_REGISTRY:
        if entry.parse is None or not entry.example:
            continue
        where = f"TOPOLOGY_REGISTRY[{entry.kind!r}]"
        try:
            spec = TopologySpec.parse(entry.example)
            topo = spec.build()
        except Exception as exc:  # noqa: BLE001
            problems.append(f"{where}: example does not build: {exc}")
            continue
        if entry.cls is not None and type(topo) is not entry.cls:
            problems.append(
                f"{where}: example built a {type(topo).__name__}, "
                f"registered class is {entry.cls.__name__}"
            )
            continue
        if entry.to_dict is not None:
            recovered = TopologySpec.of(topo)
            if recovered != spec:
                problems.append(
                    f"{where}: build/of round trip changed the spec: "
                    f"{spec.to_dict()!r} vs {recovered.to_dict()!r}"
                )
        round_trip = TopologySpec.from_dict(spec.to_dict())
        if round_trip != spec or round_trip.fingerprint() != spec.fingerprint():
            problems.append(
                f"{where}: to_dict/from_dict round trip is unstable"
            )


def _check_routing(problems: List[str]) -> None:
    from repro.sim.routing import ROUTING_VARIANTS
    from repro.sim.strategies import RoutingStrategy
    from repro.spec import ROUTING_REGISTRY, SpecError, resolve_routing

    if ROUTING_REGISTRY.kinds() != tuple(ROUTING_VARIANTS):
        problems.append(
            "ROUTING_REGISTRY and repro.sim.routing.ROUTING_VARIANTS "
            f"disagree: {ROUTING_REGISTRY.kinds()!r} vs "
            f"{tuple(ROUTING_VARIANTS)!r}"
        )
    _check_example(ROUTING_REGISTRY, problems)
    for entry in ROUTING_REGISTRY:
        where = f"ROUTING_REGISTRY[{entry.kind!r}]"
        try:
            strategy = entry.build({})
        except Exception as exc:  # noqa: BLE001
            problems.append(f"{where}: does not build: {exc}")
            continue
        if not isinstance(strategy, RoutingStrategy):
            problems.append(
                f"{where}: built a {type(strategy).__name__}, not a "
                f"RoutingStrategy"
            )
        base, custom = resolve_routing(entry.kind)
        if (base, custom) != (entry.kind, False):
            problems.append(
                f"{where}: resolve_routing({entry.kind!r}) returned "
                f"({base!r}, {custom!r})"
            )
        t_ok = True
        try:
            resolve_routing(f"t-{entry.kind}")
        except SpecError:
            t_ok = False
        if t_ok != entry.accepts_policy:
            problems.append(
                f"{where}: accepts_policy={entry.accepts_policy} but "
                f"resolve_routing {'accepts' if t_ok else 'rejects'} "
                f"'t-{entry.kind}'"
            )


def _check_search(problems: List[str]) -> None:
    from repro.adversary import SEARCH_REGISTRY

    _check_example(SEARCH_REGISTRY, problems)
    for entry in SEARCH_REGISTRY:
        if entry.parse is None or not entry.example:
            continue
        where = f"SEARCH_REGISTRY[{entry.kind!r}]"
        try:
            kind, args = SEARCH_REGISTRY.parse(entry.example)
            strategy = SEARCH_REGISTRY.build(kind, args)
        except Exception as exc:  # noqa: BLE001
            problems.append(f"{where}: example does not build: {exc}")
            continue
        if entry.cls is not None and type(strategy) is not entry.cls:
            problems.append(
                f"{where}: example built a {type(strategy).__name__}, "
                f"registered class is {entry.cls.__name__}"
            )
            continue
        if entry.to_dict is not None and entry.to_dict(strategy) != args:
            problems.append(
                f"{where}: build/to_dict round trip changed the args: "
                f"{args!r} vs {entry.to_dict(strategy)!r}"
            )


def check_registries() -> List[str]:
    """Run every registry consistency check; return the problems found."""
    problems: List[str] = []
    _check_topologies(problems)
    _check_traffic(problems)
    _check_policies(problems)
    _check_routing(problems)
    _check_search(problems)
    return problems


def main() -> int:
    problems = check_registries()
    for problem in problems:
        print(f"FAIL: {problem}")
    if problems:
        return 1
    from repro.adversary import SEARCH_REGISTRY
    from repro.spec import (
        POLICY_REGISTRY,
        ROUTING_REGISTRY,
        TOPOLOGY_REGISTRY,
        TRAFFIC_REGISTRY,
    )

    print(
        "registry consistency OK: "
        f"{len(TOPOLOGY_REGISTRY)} topologies, "
        f"{len(TRAFFIC_REGISTRY)} patterns, "
        f"{len(POLICY_REGISTRY)} policies, "
        f"{len(ROUTING_REGISTRY)} routing variants, "
        f"{len(SEARCH_REGISTRY)} search strategies"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
