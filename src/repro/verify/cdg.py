"""Channel-dependency-graph construction and static deadlock certification.

Dally's criterion: a source-routed network is deadlock-free if the channel
dependency graph (CDG) over *virtual* channels -- nodes are ``(channel,
vc)`` pairs, with an edge whenever some admissible path holds the first
while waiting for the second -- is acyclic.  This module enumerates every
hop-to-hop dependency a ``(topology, path set, vc scheme)`` configuration
can create (MIN paths, the policy's VLB paths, and PAR-revised fragments
with their shifted VC levels) and runs cycle detection, reporting a
concrete dependency cycle as a counterexample on failure.

Two builders produce identical graphs (a property the tests assert):

* a **vectorized builder** for fully connected groups: paths are never
  materialized; all ``(src, dst, mid, slot1, slot2)`` candidates of a
  group triple are expanded as flat numpy arrays, policy membership is
  evaluated as a vectorized mask (including the exact splitmix64 subset
  hash of :class:`~repro.routing.pathset.HopClassPolicy`), and the edge
  list is deduplicated per triple.  This certifies the paper's
  ``dfly(4,8,4,9)`` full-VLB set (~4.6M paths) in seconds.
* a **generic builder** that walks ``policy.iter_descriptors`` pair by
  pair and materializes paths -- required for sparse intra-group
  topologies (Cascade), :class:`ExplicitPathSet`, or unknown policy types,
  and optionally sampled (``max_pairs`` / ``max_descriptors``), in which
  case the result is only a bounded check, not a certificate.

Injection and ejection channels are not modeled: terminal channels are
pure sources/sinks and cannot participate in a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.routing.minimal import min_paths
from repro.routing.paths import Channel, Path
from repro.routing.pathset import (
    AllVlbPolicy,
    ExcludingPolicy,
    HopClassPolicy,
    PathPolicy,
    StrategicFiveHopPolicy,
)
from repro.routing.vlb import max_vlb_hops, vlb_path
from repro.sim.vc import assign_vcs
from repro.topology.dragonfly import Dragonfly

__all__ = [
    "VC_SCHEMES",
    "ChannelDependencyGraph",
    "CdgResult",
    "build_cdg",
    "certify_deadlock_freedom",
]

VC_SCHEMES = ("won", "perhop", "none")

# beyond this many (src, dst, mid, slot1, slot2) candidates the vectorized
# builder is considered too expensive and `method="auto"` falls back to the
# generic (sampled) builder
_FAST_ROW_LIMIT = 50_000_000

VcNode = Tuple[Channel, int]


class _UnsupportedPolicy(Exception):
    """Raised when a policy has no vectorized membership mask."""


def _vcs_for(path: Path, scheme: str, revised: bool = False) -> List[int]:
    """Per-hop VC levels under ``scheme``, including the analysis-only
    ``none`` scheme (a single shared VC level -- no VC protection)."""
    if scheme == "none":
        return [0] * path.num_hops
    if scheme == "perhop":
        return assign_vcs(
            path, scheme, hop_offset=1 if revised else 0, num_vcs=1 << 30
        )
    return assign_vcs(path, scheme, revised=revised, num_vcs=1 << 30)


@dataclass
class CdgResult:
    """Outcome of one deadlock-freedom analysis."""

    scheme: str
    routing: str
    num_nodes: int
    num_edges: int
    num_paths: int
    exhaustive: bool
    cycle: Optional[List[VcNode]]

    @property
    def deadlock_free(self) -> bool:
        """No dependency cycle was found (on the analyzed path set)."""
        return self.cycle is None

    @property
    def certified(self) -> bool:
        """Acyclic *and* every admissible dependency was enumerated."""
        return self.cycle is None and self.exhaustive

    def describe(self) -> str:
        """One-line human-readable verdict."""
        if self.cycle is not None:
            return (
                f"DEADLOCK RISK: dependency cycle of length "
                f"{len(self.cycle)} (scheme {self.scheme!r})"
            )
        kind = "certified" if self.exhaustive else "no cycle found (sampled)"
        return (
            f"deadlock-free: {kind} -- CDG acyclic "
            f"({self.num_nodes} nodes, {self.num_edges} edges, "
            f"scheme {self.scheme!r}, routing {self.routing!r})"
        )


class ChannelDependencyGraph:
    """The CDG of one configuration, with integer-encoded nodes.

    A node is a ``(channel, vc)`` pair encoded as
    ``channel_id * num_levels + vc``; local channel ids are ``u * S + v``
    and global channel ids index ``topo.global_links`` twice (once per
    direction), so parallel links between one switch pair stay distinct.
    """

    def __init__(self, topo: Dragonfly, scheme: str) -> None:
        if scheme not in VC_SCHEMES:
            raise ValueError(
                f"unknown vc scheme {scheme!r}; choose from {VC_SCHEMES}"
            )
        self.topo = topo
        self.scheme = scheme
        self._S = topo.num_switches
        # enough VC levels for any scheme incl. PAR offsets on this topo
        self.num_levels = max_vlb_hops(topo) + 2
        self._global_base = self._S * self._S
        self.num_channel_ids = self._global_base + 2 * len(topo.global_links)
        self.num_node_ids = self.num_channel_ids * self.num_levels
        self._link_pos: Dict[Tuple[int, int, int], Tuple[int, int]] = {}
        for pos, link in enumerate(topo.global_links):
            key = (
                min(link.group_a, link.group_b),
                max(link.group_a, link.group_b),
                link.slot,
            )
            self._link_pos[key] = (pos, link.switch_a)
        self._edges: Set[int] = set()
        self.exhaustive = True
        self.num_paths = 0

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode_channel(self, ch: Channel) -> int:
        """Integer id of a directed channel (see class docstring)."""
        if not ch.is_global:
            return ch.src * self._S + ch.dst
        ga = self.topo.group_of(ch.src)
        gb = self.topo.group_of(ch.dst)
        key = (min(ga, gb), max(ga, gb), ch.slot)
        pos, switch_a = self._link_pos[key]
        direction = 0 if ch.src == switch_a else 1
        return self._global_base + 2 * pos + direction

    def decode_channel(self, cid: int) -> Channel:
        """Inverse of :meth:`encode_channel`."""
        if cid < self._global_base:
            return Channel(cid // self._S, cid % self._S)
        pos, direction = divmod(cid - self._global_base, 2)
        link = self.topo.global_links[pos]
        if direction == 0:
            return Channel(link.switch_a, link.switch_b, link.slot)
        return Channel(link.switch_b, link.switch_a, link.slot)

    def decode_node(self, node: int) -> VcNode:
        """Map an encoded node id back to its ``(channel, vc)`` pair."""
        cid, vc = divmod(node, self.num_levels)
        return self.decode_channel(cid), vc

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_dependency(self, ch1: Channel, vc1: int, ch2: Channel, vc2: int) -> None:
        """Record that a packet may hold ``(ch1, vc1)`` while waiting for
        ``(ch2, vc2)`` (public: tests hand-build cyclic fixtures with it)."""
        n1 = self.encode_channel(ch1) * self.num_levels + vc1
        n2 = self.encode_channel(ch2) * self.num_levels + vc2
        self._edges.add(n1 * self.num_node_ids + n2)

    def add_path(self, path: Path, vcs: Sequence[int]) -> None:
        """Add the consecutive-hop dependencies of one routed path."""
        if len(vcs) != path.num_hops:
            raise ValueError(
                f"{path.num_hops}-hop path got {len(vcs)} VC assignments"
            )
        channels = list(path.channels())
        for i in range(len(channels) - 1):
            self.add_dependency(
                channels[i], vcs[i], channels[i + 1], vcs[i + 1]
            )
        self.num_paths += 1

    def add_encoded_edges(self, edges: np.ndarray) -> None:
        """Bulk-add edges already encoded as ``n1 * num_node_ids + n2``."""
        if edges.size:
            self._edges.update(np.unique(edges).tolist())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def num_nodes(self) -> int:
        nodes = set()
        # repro: allow[DET101]: feeds only len(); order cannot matter
        for e in self._edges:
            nodes.add(e // self.num_node_ids)
            nodes.add(e % self.num_node_ids)
        return len(nodes)

    def iter_dependencies(self) -> Iterable[Tuple[VcNode, VcNode]]:
        """Yield every dependency as ``((ch, vc), (ch, vc))`` pairs."""
        # repro: allow[DET101]: int elements hash to themselves, so set
        # order is value-determined and PYTHONHASHSEED-independent
        for e in self._edges:
            n1, n2 = divmod(e, self.num_node_ids)
            yield self.decode_node(n1), self.decode_node(n2)

    def find_cycle(self) -> Optional[List[VcNode]]:
        """A dependency cycle as ``[(channel, vc), ...]``, or ``None``.

        The returned list is the cycle in traversal order: each element
        depends on the next, and the last depends on the first.  A single
        three-color iterative DFS, O(nodes + edges).
        """
        adj: Dict[int, List[int]] = {}
        # repro: allow[DET101]: int elements hash to themselves, so set
        # order is value-determined and PYTHONHASHSEED-independent
        for e in self._edges:
            n1, n2 = divmod(e, self.num_node_ids)
            adj.setdefault(n1, []).append(n2)
        white, gray, black = 0, 1, 2
        color: Dict[int, int] = {}
        for start in adj:
            if color.get(start, white) != white:
                continue
            color[start] = gray
            stack = [(start, iter(adj[start]))]
            trail = [start]
            while stack:
                node, successors = stack[-1]
                for nxt in successors:
                    c = color.get(nxt, white)
                    if c == gray:
                        cyc = trail[trail.index(nxt):]
                        return [self.decode_node(n) for n in cyc]
                    if c == white:
                        color[nxt] = gray
                        stack.append((nxt, iter(adj.get(nxt, ()))))
                        trail.append(nxt)
                        break
                else:
                    color[node] = black
                    stack.pop()
                    trail.pop()
        return None


# ---------------------------------------------------------------------------
# Vectorized policy membership
# ---------------------------------------------------------------------------
_U = np.uint64


def _mix_vec(
    seed: int,
    src: np.ndarray,
    dst: np.ndarray,
    mid: np.ndarray,
    s1: np.ndarray,
    s2: np.ndarray,
) -> np.ndarray:
    """Vectorized replica of ``repro.routing.pathset._mix`` (uint64 wrap
    arithmetic is exactly the scalar version's ``& 0xFFF...F`` masking)."""
    # the seed term is folded in exact Python arithmetic (numpy *scalar*
    # overflow would warn); array x scalar products wrap silently mod 2**64,
    # matching the scalar version's explicit masking
    seed_term = ((seed & 0xFFFFFFFFFFFFFFFF) * 0x9E3779B97F4A7C15) & (
        0xFFFFFFFFFFFFFFFF
    )
    x = (
        src.astype(np.uint64) * _U(0xBF58476D1CE4E5B9)
        + dst.astype(np.uint64) * _U(0x94D049BB133111EB)
        + mid.astype(np.uint64) * _U(0xD6E8FEB86659FD93)
        + s1.astype(np.uint64) * _U(0xA5A5A5A5A5A5A5A5)
        + s2.astype(np.uint64) * _U(0x0123456789ABCDEF)
        + _U(seed_term)
    )
    x ^= x >> _U(30)
    x *= _U(0xBF58476D1CE4E5B9)
    x ^= x >> _U(27)
    x *= _U(0x94D049BB133111EB)
    x ^= x >> _U(31)
    return x


_DESC_SLOT_BITS = 10  # slots per group pair < 1024 in any realistic dfly


def _encode_desc(
    S: int,
    src: np.ndarray,
    dst: np.ndarray,
    mid: np.ndarray,
    s1: np.ndarray,
    s2: np.ndarray,
) -> np.ndarray:
    base = (src.astype(np.int64) * S + dst) * S + mid
    return ((base << _DESC_SLOT_BITS) | s1) << _DESC_SLOT_BITS | s2


def _policy_mask(
    topo: Dragonfly, policy: PathPolicy, R: Dict[str, np.ndarray]
) -> Optional[np.ndarray]:
    """Vectorized ``policy.contains`` over candidate rows ``R``.

    ``R`` holds flat int arrays ``src, dst, mid, s1, s2`` and bool arrays
    ``h0, h2, h3, h5`` (presence of the four optional local hops).
    Returns ``None`` for "all rows".  Raises :class:`_UnsupportedPolicy`
    for policy types without a closed-form mask.
    """
    if isinstance(policy, AllVlbPolicy):
        return None
    hops = 2 + R["h0"] + R["h2"] + R["h3"] + R["h5"]
    if isinstance(policy, HopClassPolicy):
        mask = hops <= policy.full_hops
        if policy.extra_fraction > 0.0:
            quota = int(round(policy.extra_fraction * 10_000))
            mixed = _mix_vec(
                policy.seed, R["src"], R["dst"], R["mid"], R["s1"], R["s2"]
            )
            in_quota = (mixed % _U(10_000)).astype(np.int64) < quota
            mask |= (hops == policy.full_hops + 1) & in_quota
        return mask
    if isinstance(policy, StrategicFiveHopPolicy):
        leg1 = 1 + R["h0"] + R["h2"]
        leg2 = 1 + R["h3"] + R["h5"]
        want1, want2 = (2, 3) if policy.order == "2+3" else (3, 2)
        return (leg1 + leg2 <= 4) | (
            (leg1 == want1) & (leg2 == want2)
        )
    if isinstance(policy, ExcludingPolicy):
        base = _policy_mask(topo, policy.base, R)
        mask = (
            np.ones(R["src"].shape, dtype=bool) if base is None else base.copy()
        )
        if policy.excluded_descriptors:
            S = topo.num_switches
            if any(
                d.slot1 >= (1 << _DESC_SLOT_BITS)
                or d.slot2 >= (1 << _DESC_SLOT_BITS)
                for _s, _d, d in policy.excluded_descriptors
            ):
                raise _UnsupportedPolicy("slot out of encodable range")
            excl = np.fromiter(
                (
                    int(
                        _encode_desc(
                            S,
                            np.int64(s),
                            np.int64(d),
                            np.int64(desc.mid),
                            np.int64(desc.slot1),
                            np.int64(desc.slot2),
                        )
                    )
                    for s, d, desc in policy.excluded_descriptors
                ),
                dtype=np.int64,
            )
            enc = _encode_desc(
                S, R["src"], R["dst"], R["mid"], R["s1"], R["s2"]
            )
            mask &= ~np.isin(enc, excl)
        if policy.excluded_channels:
            # a path is excluded when any of its (present) hops uses an
            # excluded channel; graph construction knows the hop channel
            # ids, so the caller passes them through R
            cids = np.fromiter(
                (R["encode"](ch) for ch in policy.excluded_channels),
                dtype=np.int64,
            )
            hit = np.zeros(R["src"].shape, dtype=bool)
            for col, present in (
                ("ch0", R["h0"]),
                ("ch1", None),
                ("ch2", R["h2"]),
                ("ch3", R["h3"]),
                ("ch4", None),
                ("ch5", R["h5"]),
            ):
                on = np.isin(R[col], cids)
                hit |= on if present is None else (on & present)
            mask &= ~hit
        return mask
    raise _UnsupportedPolicy(type(policy).__name__)


# ---------------------------------------------------------------------------
# Vectorized builder (fully connected groups)
# ---------------------------------------------------------------------------
def _pair_tables(
    topo: Dragonfly, graph: ChannelDependencyGraph
) -> Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Per ordered group pair: slot-indexed endpoint and channel-id arrays
    ``(xs, ys, cids)`` for traversing each global link from ``ga`` side."""
    tables: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
    for ga in range(topo.g):
        for gb in range(topo.g):
            if ga == gb:
                continue
            links = topo.links_between_groups(ga, gb)
            if not links:
                continue
            xs = np.fromiter(
                (ln.endpoint_in(ga) for ln in links), dtype=np.int64
            )
            ys = np.fromiter(
                (ln.endpoint_in(gb) for ln in links), dtype=np.int64
            )
            cids = np.fromiter(
                (
                    graph.encode_channel(
                        Channel(ln.endpoint_in(ga), ln.endpoint_in(gb), ln.slot)
                    )
                    for ln in links
                ),
                dtype=np.int64,
            )
            tables[(ga, gb)] = (xs, ys, cids)
    return tables


def _emit(
    graph: ChannelDependencyGraph,
    collected: List[np.ndarray],
    sel: np.ndarray,
    ch_a: np.ndarray,
    vc_a: np.ndarray,
    ch_b: np.ndarray,
    vc_b: np.ndarray,
) -> None:
    if not sel.any():
        return
    lv = graph.num_levels
    n1 = ch_a[sel] * lv + vc_a[sel]
    n2 = ch_b[sel] * lv + vc_b[sel]
    collected.append(np.unique(n1 * graph.num_node_ids + n2))


def _won_vlb_vcs(
    h2: np.ndarray, h3: np.ndarray, offset: int
) -> Tuple[np.ndarray, ...]:
    c = (h2 & h3).astype(np.int64)
    zero = np.zeros(h2.shape, dtype=np.int64) + offset
    return (
        zero,
        zero,
        zero + 1,
        offset + 1 + c,
        offset + 1 + c,
        offset + 2 + c,
    )


def _perhop_vlb_vcs(
    h0: np.ndarray, h2: np.ndarray, h3: np.ndarray, offset: int
) -> Tuple[np.ndarray, ...]:
    p0 = np.zeros(h0.shape, dtype=np.int64) + offset
    p1 = p0 + h0
    p2 = p1 + 1
    p3 = p1 + h2 + 1
    p4 = p3 + h3
    return p0, p1, p2, p3, p4, p4 + 1


def _none_vlb_vcs(h0: np.ndarray) -> Tuple[np.ndarray, ...]:
    z = np.zeros(h0.shape, dtype=np.int64)
    return z, z, z, z, z, z


def _vlb_vcs(
    scheme: str,
    h0: np.ndarray,
    h2: np.ndarray,
    h3: np.ndarray,
    offset: int,
) -> Tuple[np.ndarray, ...]:
    if scheme == "won":
        return _won_vlb_vcs(h2, h3, offset)
    if scheme == "perhop":
        return _perhop_vlb_vcs(h0, h2, h3, offset)
    return _none_vlb_vcs(h0)


def _emit_vlb_rows(
    graph: ChannelDependencyGraph,
    collected: List[np.ndarray],
    R: Dict[str, np.ndarray],
    include: Optional[np.ndarray],
    scheme: str,
    offset: int,
) -> None:
    """Emit the consecutive-hop edges of all (masked) candidate rows.

    The 6-hop template is ``l g l l g l`` with optional hops h0/h2/h3/h5;
    edges join each present hop to the next present hop.
    """
    h0, h2, h3, h5 = R["h0"], R["h2"], R["h3"], R["h5"]
    base = R["valid"] if include is None else (R["valid"] & include)
    v = _vlb_vcs(scheme, h0, h2, h3, offset)
    ch = (R["ch0"], R["ch1"], R["ch2"], R["ch3"], R["ch4"], R["ch5"])
    transitions = (
        (0, 1, h0),
        (1, 2, h2),
        (1, 3, ~h2 & h3),
        (1, 4, ~h2 & ~h3),
        (2, 3, h2 & h3),
        (2, 4, h2 & ~h3),
        (3, 4, h3),
        (4, 5, h5),
    )
    for i, j, cond in transitions:
        _emit(graph, collected, base & cond, ch[i], v[i], ch[j], v[j])


def _build_fast(
    topo: Dragonfly,
    policy: PathPolicy,
    scheme: str,
    include_par: bool,
    graph: ChannelDependencyGraph,
) -> None:
    S = topo.num_switches
    a = topo.a
    tables = _pair_tables(topo, graph)
    collected: List[np.ndarray] = []

    # ---- MIN paths: one canonical l g l (with collapses) per link ----
    for (ga, gb), (xs, ys, cids) in tables.items():
        srcs = np.arange(ga * a, (ga + 1) * a, dtype=np.int64)
        dsts = np.arange(gb * a, (gb + 1) * a, dtype=np.int64)
        SRC, DST, K = np.meshgrid(srcs, dsts, np.arange(len(xs)), indexing="ij")
        SRC, DST, K = SRC.ravel(), DST.ravel(), K.ravel()
        X, Y, G = xs[K], ys[K], cids[K]
        h0 = SRC != X
        h2 = Y != DST
        ch0 = SRC * S + X
        ch2 = Y * S + DST
        if scheme == "won":
            v0 = np.zeros(SRC.shape, dtype=np.int64)
            v1 = v0
            v2 = v0 + 1
        elif scheme == "perhop":
            v0 = np.zeros(SRC.shape, dtype=np.int64)
            v1 = h0.astype(np.int64)
            v2 = v1 + 1
        else:
            v0 = v1 = v2 = np.zeros(SRC.shape, dtype=np.int64)
        _emit(graph, collected, h0, ch0, v0, G, v1)
        _emit(graph, collected, h2, G, v1, ch2, v2)
        graph.num_paths += int(SRC.size)

    # ---- VLB candidates per (source group, dest group, mid group) ----
    for gs in range(topo.g):
        for gd in range(topo.g):
            for gm in range(topo.g):
                if gm == gs or gm == gd:
                    continue
                t1 = tables.get((gs, gm))
                t2 = tables.get((gm, gd))
                if t1 is None or t2 is None:
                    continue
                xs1, ys1, g1 = t1
                xs2, ys2, g2 = t2
                srcs = np.arange(gs * a, (gs + 1) * a, dtype=np.int64)
                dsts = np.arange(gd * a, (gd + 1) * a, dtype=np.int64)
                mids = np.arange(gm * a, (gm + 1) * a, dtype=np.int64)
                s1 = np.arange(len(xs1), dtype=np.int64)
                s2 = np.arange(len(xs2), dtype=np.int64)
                SRC, DST, MID, K1, K2 = (
                    arr.ravel()
                    for arr in np.meshgrid(
                        srcs, dsts, mids, s1, s2, indexing="ij"
                    )
                )
                X1, Y1, G1 = xs1[K1], ys1[K1], g1[K1]
                X2, Y2, G2 = xs2[K2], ys2[K2], g2[K2]
                R: Dict[str, np.ndarray] = {
                    "src": SRC,
                    "dst": DST,
                    "mid": MID,
                    "s1": K1,
                    "s2": K2,
                    "h0": SRC != X1,
                    "h2": Y1 != MID,
                    "h3": MID != X2,
                    "h5": Y2 != DST,
                    "ch0": SRC * S + X1,
                    "ch1": G1,
                    "ch2": Y1 * S + MID,
                    "ch3": MID * S + X2,
                    "ch4": G2,
                    "ch5": Y2 * S + DST,
                    "valid": (
                        SRC != DST
                        if gs == gd
                        else np.ones(SRC.shape, dtype=bool)
                    ),
                    "encode": graph.encode_channel,  # type: ignore[dict-item]
                }
                include = _policy_mask(topo, policy, R)
                n_inc = (
                    int(R["valid"].sum())
                    if include is None
                    else int((R["valid"] & include).sum())
                )
                graph.num_paths += n_inc
                _emit_vlb_rows(graph, collected, R, include, scheme, 0)
                if include_par and gs != gd and scheme != "none":
                    # PAR revision: the same VLB candidates re-routed from
                    # a second source-group switch, one VC level up, plus
                    # the dependency from the pre-revision first hop
                    _emit_vlb_rows(graph, collected, R, include, scheme, 1)
                    sel = (
                        R["valid"]
                        if include is None
                        else (R["valid"] & include)
                    )
                    if sel.any():
                        # the revised first hop always sits one VC level up
                        # (level 1) in both schemes
                        first_ch = np.where(R["h0"], R["ch0"], R["ch1"])
                        combo = np.unique(
                            SRC[sel] * np.int64(graph.num_channel_ids)
                            + first_ch[sel]
                        )
                        u_src = combo // graph.num_channel_ids
                        u_fch = combo % graph.num_channel_ids
                        # every other switch s of the source group may be
                        # the original injection point: (s -> r)@0 is held
                        # while the revised first hop is awaited
                        group_sw = np.arange(gs * a, (gs + 1) * a, dtype=np.int64)
                        s_all = np.repeat(
                            group_sw[None, :], len(combo), axis=0
                        ).ravel()
                        r_all = np.repeat(u_src, a)
                        f_all = np.repeat(u_fch, a)
                        ok = s_all != r_all
                        pre = s_all * S + r_all
                        zeros = np.zeros(pre.shape, dtype=np.int64)
                        _emit(
                            graph, collected, ok, pre, zeros, f_all, zeros + 1
                        )
    for arr in collected:
        graph.add_encoded_edges(arr)


# ---------------------------------------------------------------------------
# Generic builder
# ---------------------------------------------------------------------------
def _build_generic(
    topo: Dragonfly,
    policy: PathPolicy,
    scheme: str,
    include_par: bool,
    graph: ChannelDependencyGraph,
    max_pairs: Optional[int],
    max_descriptors: Optional[int],
    seed: int,
) -> None:
    pairs = [
        (s, d)
        for s in range(topo.num_switches)
        for d in range(topo.num_switches)
        if s != d
    ]
    if max_pairs is not None and max_pairs < len(pairs):
        rng = np.random.default_rng(seed)
        idx = rng.choice(len(pairs), size=max_pairs, replace=False)
        pairs = [pairs[i] for i in sorted(idx)]
        graph.exhaustive = False
    for src, dst in pairs:
        for p in min_paths(topo, src, dst):
            graph.add_path(p, _vcs_for(p, scheme))
        # this pair can be the (revision switch, dst) of a PAR re-route
        # when some packet's first MIN hop lands on `src`: always possible
        # for inter-group traffic, and for intra-group traffic only on
        # topologies with multi-hop local routes (revision fires at hop 1)
        fragment_pair = topo.group_of(src) != topo.group_of(dst) or (
            topo.max_local_hops > 1
        )
        neighbors = topo.local_neighbors(src) if fragment_pair else []
        count = 0
        for desc in policy.iter_descriptors(topo, src, dst):
            if max_descriptors is not None and count >= max_descriptors:
                graph.exhaustive = False
                break
            count += 1
            try:
                p = vlb_path(topo, src, dst, desc)
            except (ValueError, IndexError):
                continue  # malformed descriptor; the linter reports these
            graph.add_path(p, _vcs_for(p, scheme))
            if include_par and fragment_pair and scheme != "none":
                # this pair doubles as the (revision switch, dst) pair of
                # a PAR re-route: same path, VC levels shifted up one,
                # held while the pre-revision source-group hop drains
                vcs = _vcs_for(p, scheme, revised=True)
                graph.add_path(p, vcs)
                first = next(p.channels())
                for s in neighbors:
                    graph.add_dependency(
                        Channel(s, src), 0, first, vcs[0]
                    )


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------
def _estimated_rows(topo: Dragonfly) -> int:
    m = max(topo.links_per_group_pair, 1)
    return topo.g * topo.g * max(topo.g - 2, 0) * topo.a**3 * m * m


def build_cdg(
    topo: Dragonfly,
    policy: Optional[PathPolicy] = None,
    *,
    scheme: str = "won",
    routing: str = "par",
    method: str = "auto",
    max_pairs: Optional[int] = None,
    max_descriptors: Optional[int] = None,
    seed: int = 0,
) -> ChannelDependencyGraph:
    """Build the CDG of a ``(topo, policy, scheme, routing)`` configuration.

    ``routing`` decides which dependencies exist: any ``par`` variant adds
    the PAR-revised path fragments (one VC level up) on top of the MIN and
    VLB dependencies every UGAL variant creates.  ``method`` is ``auto``
    (vectorized when the topology/policy allow it and the candidate space
    is tractable), ``fast``, or ``generic``; sampling caps only apply to
    the generic builder and clear the graph's ``exhaustive`` flag.
    """
    policy = policy if policy is not None else AllVlbPolicy()
    base = routing.lower()
    base = base[2:] if base.startswith("t-") else base
    include_par = base == "par"
    graph = ChannelDependencyGraph(topo, scheme)
    if method not in ("auto", "fast", "generic"):
        raise ValueError(f"unknown method {method!r}")
    use_fast = method == "fast"
    if method == "auto":
        use_fast = (
            topo.max_local_hops == 1
            and max_pairs is None
            and max_descriptors is None
            and _estimated_rows(topo) <= _FAST_ROW_LIMIT
        )
    if use_fast:
        if topo.max_local_hops != 1:
            raise ValueError(
                "the vectorized builder requires fully connected groups"
            )
        try:
            _build_fast(topo, policy, scheme, include_par, graph)
            return graph
        except _UnsupportedPolicy:
            if method == "fast":
                raise ValueError(
                    f"policy {policy.describe()!r} has no vectorized "
                    f"membership mask; use method='generic'"
                )
            graph = ChannelDependencyGraph(topo, scheme)
    _build_generic(
        topo,
        policy,
        scheme,
        include_par,
        graph,
        max_pairs,
        max_descriptors,
        seed,
    )
    return graph


def certify_deadlock_freedom(
    topo: Dragonfly,
    policy: Optional[PathPolicy] = None,
    *,
    scheme: str = "won",
    routing: str = "par",
    method: str = "auto",
    max_pairs: Optional[int] = None,
    max_descriptors: Optional[int] = None,
    seed: int = 0,
) -> CdgResult:
    """Build the CDG and run cycle detection; see :class:`CdgResult`."""
    graph = build_cdg(
        topo,
        policy,
        scheme=scheme,
        routing=routing,
        method=method,
        max_pairs=max_pairs,
        max_descriptors=max_descriptors,
        seed=seed,
    )
    cycle = graph.find_cycle()
    return CdgResult(
        scheme=scheme,
        routing=routing,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        num_paths=graph.num_paths,
        exhaustive=graph.exhaustive,
        cycle=cycle,
    )
