"""Package-level logging: the ``repro`` logger hierarchy.

Library rule: ``repro`` never configures the root logger and emits
nothing unless the application opts in -- the package logger carries a
:class:`logging.NullHandler` so an unconfigured program stays silent.
Modules obtain children via :func:`get_logger` (``repro.<name>``) and
log operational events through them: the executor's oversubscription
warning, cache-corruption fallbacks, batch lifecycle debug lines.

``python -m repro -v ...`` (and ``-vv`` for debug) calls
:func:`enable_verbose`, which attaches one stderr handler to the package
logger; applications embedding the library should instead configure the
``repro`` logger with standard :mod:`logging` machinery.
"""

from __future__ import annotations

import logging
from typing import Optional

__all__ = ["enable_verbose", "get_logger", "logger"]

logger = logging.getLogger("repro")
"""The package root logger (NullHandler attached; never configured)."""

logger.addHandler(logging.NullHandler())

_VERBOSE_HANDLER: Optional[logging.Handler] = None


def get_logger(name: str) -> logging.Logger:
    """The ``repro.<name>`` child logger (e.g. ``get_logger("perf")``)."""
    return logger.getChild(name)


def enable_verbose(verbosity: int = 1) -> logging.Logger:
    """Attach a stderr handler to the package logger (CLI ``-v``/``-vv``).

    ``verbosity`` 0 removes the handler again; 1 logs at INFO; 2 or more
    at DEBUG.  Idempotent: repeated calls reconfigure the single handler
    instead of stacking duplicates.
    """
    global _VERBOSE_HANDLER
    if _VERBOSE_HANDLER is not None:
        logger.removeHandler(_VERBOSE_HANDLER)
        _VERBOSE_HANDLER = None
    if verbosity <= 0:
        logger.setLevel(logging.NOTSET)
        return logger
    handler = logging.StreamHandler()
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    level = logging.INFO if verbosity == 1 else logging.DEBUG
    handler.setLevel(level)
    logger.setLevel(level)
    logger.addHandler(handler)
    _VERBOSE_HANDLER = handler
    return logger
