"""Observability enablement: the ``obs`` field of ``SimParams``.

:class:`ObsConfig` is a small frozen dataclass that switches the
observability subsystem on for one run.  It is deliberately
**identity-neutral**: observability never changes simulation results
(asserted by the engine-parity test suite), so the config is excluded
from every spec fingerprint and cache key -- a traced run and an
untraced run of the same point share one cache entry, and enabling
tracing can never orphan previously cached results.

The default (``SimParams.obs is None``) is the fully uninstrumented
path; ``ObsConfig()`` with all defaults wires the no-op registry and no
sampler, which the bench smoke holds to a <2% engine-overhead budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["ObsConfig"]


@dataclass(frozen=True)
class ObsConfig:
    """Per-run observability switches (identity-neutral, see module doc).

    ``metrics``
        Collect engine counters into a live
        :class:`~repro.obs.metrics.MetricRegistry`; the snapshot lands on
        the run's :class:`~repro.obs.manifest.RunManifest`.  When false
        the engine is wired to the shared no-op registry.
    ``sample_every``
        Engine timeline sample period in cycles (0 disables sampling).
        Every sample records per-channel utilization aggregates, per-VC
        buffer occupancy, and the injection backlog.
    ``trace_dir``
        Directory receiving one ``engine-<seed>-<load>.jsonl`` timeline
        file per traced run (created on demand).  ``None`` keeps samples
        in memory, visible only to an active
        :func:`repro.obs.trace.capture` context (the in-process API).
    """

    metrics: bool = False
    sample_every: int = 0
    trace_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.sample_every < 0:
            raise ValueError("sample_every must be >= 0 (0 disables)")

    @property
    def tracing(self) -> bool:
        """True when engine timeline sampling is switched on."""
        return self.sample_every > 0
