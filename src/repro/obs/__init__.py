"""Observability: metrics, event tracing, run manifests, progress, logging.

The subsystem behind ``ObsConfig`` (the optional ``obs`` field of
:class:`~repro.sim.params.SimParams`) and ``python -m repro obs``:

* :mod:`repro.obs.metrics` -- :class:`MetricRegistry` with
  counter/gauge/histogram instruments and a shared no-op registry, so
  the disabled path costs near-zero in the engine hot loop;
* :mod:`repro.obs.trace` -- :class:`Tracer`, an event log of engine
  timeline samples and executor lifecycles with JSONL and Chrome
  ``trace_event`` exporters (opens in ``chrome://tracing`` / Perfetto);
* :mod:`repro.obs.manifest` -- :class:`RunManifest`, the provenance
  record attached to every ``SimResult``/``ModelResult`` and persisted
  alongside cache records;
* :mod:`repro.obs.progress` -- :class:`ProgressReporter`, heartbeat/ETA
  lines for sweep batches;
* :mod:`repro.obs.log` -- the ``repro`` logger hierarchy (NullHandler by
  default; ``-v`` on the CLI attaches a stderr handler).

Observability is identity-neutral by design: enabling it never changes
simulation results (asserted by the engine-parity tests) and never
changes spec fingerprints or cache keys, so traced runs stay cacheable
and reproducible.  See ``docs/observability.md``.
"""

from repro.obs.config import ObsConfig
from repro.obs.log import enable_verbose, get_logger, logger
from repro.obs.manifest import RunManifest
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NullRegistry,
)
from repro.obs.progress import ProgressReporter
from repro.obs.trace import (
    EngineSampler,
    Tracer,
    active_capture,
    capture,
    render_summary,
)

__all__ = [
    "Counter",
    "EngineSampler",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "ObsConfig",
    "ProgressReporter",
    "RunManifest",
    "Tracer",
    "active_capture",
    "capture",
    "enable_verbose",
    "get_logger",
    "logger",
    "render_summary",
]
