"""Event tracing: engine timelines, executor lifecycles, trace export.

A :class:`Tracer` is an append-only list of JSON-clean event dicts.  Two
producers feed it:

* the **engine** (``repro.sim.engine``) samples the network every K
  cycles -- per-channel utilization aggregates, per-VC buffer occupancy,
  injection backlog -- bracketed by ``run_start``/``run_end`` events;
* the **executor** (``repro.perf.executor``) records batch lifecycles --
  task submitted/finished with worker id and duration, cache hits,
  batch wall time.

Two export formats:

* **JSONL** (:meth:`Tracer.save_jsonl` / :meth:`Tracer.load_jsonl`) --
  one event per line, the durable on-disk form the CLI consumes;
* **Chrome ``trace_event``** (:meth:`Tracer.to_chrome` /
  :meth:`Tracer.export_chrome`) -- a JSON object that loads directly in
  ``chrome://tracing`` or https://ui.perfetto.dev: executor tasks appear
  as duration slices laid out per worker process, cache hits as instant
  markers, and each engine run as its own process row of counter tracks
  (backlog, per-VC occupancy, utilization) with the cycle number as the
  microsecond timestamp.

In-process capture: ``with capture() as tracer: simulate(...)`` collects
engine events without going through a ``trace_dir`` file (workers in a
process pool still need ``ObsConfig.trace_dir``, since their tracers die
with the worker).
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = [
    "EngineSampler",
    "Tracer",
    "active_capture",
    "capture",
    "render_summary",
]

Event = Dict[str, Any]


class Tracer:
    """An append-only event log with JSONL and Chrome exporters.

    ``clock`` (default :func:`time.time`) stamps every event's ``t``
    field; tests inject a deterministic clock.  Events are plain dicts so
    the tracer has no schema lock-in beyond the ``type`` discriminator.
    """

    def __init__(self, clock: Callable[[], float] = time.time) -> None:
        self.events: List[Event] = []
        self._clock = clock

    def record(self, type_: str, **fields: Any) -> Event:
        """Append one event; returns the stored dict."""
        event: Event = {"type": type_, "t": self._clock()}
        event.update(fields)
        self.events.append(event)
        return event

    def extend(self, events: List[Event]) -> None:
        """Append already-stamped events (merging another tracer's log)."""
        self.events.extend(events)

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # JSONL round trip
    # ------------------------------------------------------------------
    def save_jsonl(self, path: str) -> None:
        """Write one JSON object per line (the durable trace form)."""
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        with open(path, "w") as fh:
            for event in self.events:
                fh.write(json.dumps(event, sort_keys=True))
                fh.write("\n")

    @classmethod
    def load_jsonl(cls, path: str) -> "Tracer":
        """Read a JSONL trace back into a tracer (blank lines skipped)."""
        tracer = cls()
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    tracer.events.append(json.loads(line))
        return tracer

    # ------------------------------------------------------------------
    # Chrome trace_event export
    # ------------------------------------------------------------------
    def to_chrome(self) -> Dict[str, Any]:
        """Render the log as a Chrome ``trace_event`` JSON object.

        Wall-clock events are rebased to the earliest ``t`` in the log
        (microsecond timestamps); engine samples use their cycle number
        as the timestamp, each run on its own process row.
        """
        wall = [
            e["t"]
            for e in self.events
            if e.get("t") is not None and e["type"] != "engine_sample"
        ]
        origin = min(wall) if wall else 0.0

        def us(t: float) -> float:
            return (t - origin) * 1e6

        trace: List[Dict[str, Any]] = [
            {
                "ph": "M",
                "name": "process_name",
                "pid": 1,
                "tid": 0,
                "args": {"name": "executor"},
            }
        ]
        engine_pids: Dict[str, int] = {}

        def engine_pid(run: str) -> int:
            pid = engine_pids.get(run)
            if pid is None:
                pid = 100 + len(engine_pids)
                engine_pids[run] = pid
                trace.append(
                    {
                        "ph": "M",
                        "name": "process_name",
                        "pid": pid,
                        "tid": 0,
                        "args": {"name": f"engine {run}"},
                    }
                )
            return pid

        open_batches: List[Event] = []
        for event in self.events:
            kind = event["type"]
            if kind == "task_finished":
                started = event.get("started", event["t"])
                trace.append(
                    {
                        "ph": "X",
                        "name": event.get("label", "task"),
                        "cat": event.get("kind", "sim"),
                        "pid": 1,
                        "tid": event.get("worker", 0),
                        "ts": us(started),
                        "dur": event.get("duration", 0.0) * 1e6,
                        "args": {
                            "index": event.get("index"),
                            "mode": event.get("mode"),
                        },
                    }
                )
            elif kind == "cache_hit":
                trace.append(
                    {
                        "ph": "i",
                        "name": f"cache-hit {event.get('label', '')}",
                        "cat": event.get("kind", "sim"),
                        "pid": 1,
                        "tid": 0,
                        "ts": us(event["t"]),
                        "s": "p",
                    }
                )
            elif kind == "batch_start":
                open_batches.append(event)
            elif kind == "batch_end":
                start = open_batches.pop() if open_batches else event
                trace.append(
                    {
                        "ph": "X",
                        "name": f"batch:{event.get('kind', 'sim')}",
                        "cat": "batch",
                        "pid": 1,
                        "tid": 0,
                        "ts": us(start["t"]),
                        "dur": max(event["t"] - start["t"], 0.0) * 1e6,
                        "args": {
                            "tasks": start.get("tasks"),
                            "cache_hits": event.get("cache_hits"),
                            "computed": event.get("computed"),
                        },
                    }
                )
            elif kind == "engine_sample":
                pid = engine_pid(str(event.get("run", "run")))
                ts = float(event.get("cycle", 0))
                trace.append(
                    {
                        "ph": "C",
                        "name": "backlog",
                        "pid": pid,
                        "tid": 0,
                        "ts": ts,
                        "args": {
                            "backlog": event.get("backlog", 0),
                            "in_flight": event.get("in_flight", 0),
                        },
                    }
                )
                occupancy = event.get("vc_occupancy") or []
                if occupancy:
                    trace.append(
                        {
                            "ph": "C",
                            "name": "vc_occupancy",
                            "pid": pid,
                            "tid": 0,
                            "ts": ts,
                            "args": {
                                f"vc{i}": v for i, v in enumerate(occupancy)
                            },
                        }
                    )
                util = event.get("util") or {}
                if util:
                    trace.append(
                        {
                            "ph": "C",
                            "name": "utilization",
                            "pid": pid,
                            "tid": 0,
                            "ts": ts,
                            "args": dict(util),
                        }
                    )
            elif kind in ("run_start", "run_end"):
                pid = engine_pid(str(event.get("run", "run")))
                trace.append(
                    {
                        "ph": "i",
                        "name": kind,
                        "pid": pid,
                        "tid": 0,
                        "ts": float(event.get("cycle", 0)),
                        "s": "p",
                    }
                )
        return {"traceEvents": trace, "displayTimeUnit": "ms"}

    def export_chrome(self, path: str) -> None:
        """Write the Chrome ``trace_event`` JSON to ``path``."""
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        with open(path, "w") as fh:
            json.dump(self.to_chrome(), fh)
            fh.write("\n")

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """Aggregate view: per-kind task durations, cache rate, phases.

        The dict behind ``python -m repro obs summarize``: per-kind task
        counts and duration stats, cache hit-rate, per-batch wall times,
        and engine-sample aggregates.
        """
        tasks: Dict[str, Dict[str, Any]] = {}
        batches: List[Dict[str, Any]] = []
        cache_hits = 0
        computed = 0
        samples = 0
        max_backlog = 0
        runs: Dict[str, int] = {}
        for event in self.events:
            kind = event["type"]
            if kind == "task_finished":
                bucket = tasks.setdefault(
                    event.get("kind", "sim"),
                    {"count": 0, "total": 0.0, "max": 0.0},
                )
                duration = float(event.get("duration", 0.0))
                bucket["count"] += 1
                bucket["total"] += duration
                bucket["max"] = max(bucket["max"], duration)
                computed += 1
            elif kind == "cache_hit":
                cache_hits += 1
            elif kind == "batch_end":
                batches.append(
                    {
                        "kind": event.get("kind", "sim"),
                        "tasks": event.get("computed", 0)
                        + event.get("cache_hits", 0),
                        "cache_hits": event.get("cache_hits", 0),
                        "wall_seconds": event.get("wall_seconds", 0.0),
                    }
                )
            elif kind == "engine_sample":
                samples += 1
                max_backlog = max(max_backlog, int(event.get("backlog", 0)))
                run = str(event.get("run", "run"))
                runs[run] = runs.get(run, 0) + 1
        # repro: allow[DET102]: each bucket's mean is computed from that
        # bucket alone; iteration order cannot leak into any value
        for bucket in tasks.values():
            bucket["mean"] = (
                bucket["total"] / bucket["count"] if bucket["count"] else 0.0
            )
        total_points = cache_hits + computed
        return {
            "events": len(self.events),
            "tasks": tasks,
            "batches": batches,
            "cache_hits": cache_hits,
            "computed": computed,
            "cache_hit_rate": (
                cache_hits / total_points if total_points else 0.0
            ),
            "engine_samples": samples,
            "engine_runs": len(runs),
            "max_backlog": max_backlog,
        }


def render_summary(summary: Dict[str, Any]) -> str:
    """Human-readable rendering of :meth:`Tracer.summary`."""
    lines = [f"events: {summary['events']}"]
    for kind, stats in sorted(summary["tasks"].items()):
        lines.append(
            f"  {kind} tasks: {stats['count']} computed, "
            f"total {stats['total']:.3f}s, mean {stats['mean']:.3f}s, "
            f"max {stats['max']:.3f}s"
        )
    lines.append(
        f"  cache: {summary['cache_hits']} hits / "
        f"{summary['cache_hits'] + summary['computed']} points "
        f"({summary['cache_hit_rate']:.0%} hit rate)"
    )
    for batch in summary["batches"]:
        lines.append(
            f"  batch[{batch['kind']}]: {batch['tasks']} points in "
            f"{batch['wall_seconds']:.3f}s "
            f"({batch['cache_hits']} cache hits)"
        )
    if summary["engine_samples"]:
        lines.append(
            f"  engine: {summary['engine_samples']} samples over "
            f"{summary['engine_runs']} run(s), "
            f"max backlog {summary['max_backlog']}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# In-process capture of engine tracers
# ---------------------------------------------------------------------------
_CAPTURE_STACK: List[Tracer] = []


def active_capture() -> Optional[Tracer]:
    """The innermost active :func:`capture` tracer, or ``None``."""
    return _CAPTURE_STACK[-1] if _CAPTURE_STACK else None


@contextmanager
def capture(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Collect engine trace events emitted inside the context.

    ``simulate()`` merges each traced run's events into the innermost
    active capture tracer, so in-process callers need no ``trace_dir``::

        with capture() as tracer:
            simulate(topo, pattern, load, params=traced_params)
        tracer.export_chrome("run.json")
    """
    sink = tracer if tracer is not None else Tracer()
    _CAPTURE_STACK.append(sink)
    try:
        yield sink
    finally:
        _CAPTURE_STACK.pop()


class EngineSampler:
    """Periodic network-state sampler feeding a :class:`Tracer`.

    Built by ``simulate()`` when ``ObsConfig.sample_every > 0``.  Each
    sample turns the network's cumulative flit counters into per-period
    utilization (flits/cycle/channel) via a kept baseline; the engine
    calls :meth:`rebase` at the warmup boundary, where the network's
    counters are reset underneath us.
    """

    def __init__(self, tracer: Tracer, network: Any, run: str) -> None:
        self.tracer = tracer
        self.network = network
        self.run = run
        self._last_cycle = 0
        self._last_totals = network.channel_flit_totals()

    def rebase(self) -> None:
        """Re-anchor the utilization baseline (after a counter reset)."""
        self._last_cycle = self.network.cycle
        self._last_totals = self.network.channel_flit_totals()

    def sample(self) -> None:
        """Record one ``engine_sample`` event at the current cycle."""
        network = self.network
        cycle = network.cycle
        period = max(cycle - self._last_cycle, 1)
        local, glob = network.channel_flit_totals()
        prev_local, prev_glob = self._last_totals
        d_local = local - prev_local
        d_glob = glob - prev_glob
        util = {
            "local_mean": float(d_local.mean()) / period
            if d_local.size
            else 0.0,
            "local_max": float(d_local.max()) / period
            if d_local.size
            else 0.0,
            "global_mean": float(d_glob.mean()) / period
            if d_glob.size
            else 0.0,
            "global_max": float(d_glob.max()) / period
            if d_glob.size
            else 0.0,
        }
        self._last_cycle = cycle
        self._last_totals = (local, glob)
        self.tracer.record(
            "engine_sample",
            run=self.run,
            cycle=cycle,
            backlog=network.injection_backlog(),
            in_flight=network.in_flight(),
            vc_occupancy=network.vc_occupancy(),
            util=util,
        )
