"""Metric primitives: counters, gauges, histograms, and their registry.

Two registry flavours share one interface:

* :class:`MetricRegistry` -- live instruments, named and memoized, with a
  JSON-clean :meth:`~MetricRegistry.snapshot`;
* :data:`NULL_REGISTRY` -- the shared no-op registry.  Every lookup
  returns a shared null instrument whose mutators do nothing, so
  instrumented code can bind ``registry.counter(...).inc`` once and call
  it unconditionally; the disabled path costs one no-op method call per
  event, which the bench smoke holds to a <2% engine-overhead budget.

Instruments are process-local and deliberately not thread-safe: the
engine is single-threaded and sweep workers are separate processes, each
with its own registry (snapshots travel back on the run manifest).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
]


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the count."""
        self.value += n


class Gauge:
    """A point-in-time level (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = float(value)


class Histogram:
    """Streaming summary of observed values: count/sum/min/max.

    Deliberately bucket-free -- the trace subsystem already records full
    timelines, so the histogram only needs cheap O(1) aggregates for the
    manifest snapshot (mean is derived as ``sum / count``).
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, Any]:
        """JSON-clean aggregate view of this histogram."""
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, n: int = 1) -> None:  # noqa: D102 - interface no-op
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:  # noqa: D102 - interface no-op
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:  # noqa: D102 - interface no-op
        pass


class MetricRegistry:
    """Named instrument store: one instrument per name, created lazily.

    Repeated lookups of one name return the same instrument, so callers
    may either hold instruments or re-look them up; both observe the same
    state.  ``snapshot()`` renders every instrument to JSON-clean dicts
    keyed by name -- the form embedded in run manifests.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created on first use)."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def names(self) -> List[str]:
        """Sorted names of every registered instrument."""
        return sorted(
            [*self._counters, *self._gauges, *self._histograms]
        )

    def snapshot(self) -> Dict[str, Any]:
        """JSON-clean view of every instrument, keyed by name."""
        out: Dict[str, Any] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, histogram in self._histograms.items():
            out[name] = histogram.summary()
        return out


class NullRegistry(MetricRegistry):
    """The disabled registry: shared no-op instruments, empty snapshots.

    Use the module-level :data:`NULL_REGISTRY` instance rather than
    constructing new ones -- null instruments are stateless, so one
    registry serves every disabled run in the process.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")

    def counter(self, name: str) -> Counter:
        """The shared no-op counter (state is never recorded)."""
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        """The shared no-op gauge (state is never recorded)."""
        return self._null_gauge

    def histogram(self, name: str) -> Histogram:
        """The shared no-op histogram (state is never recorded)."""
        return self._null_histogram

    def names(self) -> List[str]:
        """Always empty: null instruments register nothing."""
        return []

    def snapshot(self) -> Dict[str, Any]:
        """Always empty: null instruments record nothing."""
        return {}


NULL_REGISTRY = NullRegistry()
"""The shared no-op registry wired into uninstrumented runs."""
