"""Heartbeat/ETA progress reporting for sweep batches.

:class:`ProgressReporter` is a tiny terminal-friendly reporter the
executor drives: ``start(total)`` then ``advance()`` per finished point,
``finish()`` at the end.  Output goes to ``stderr`` (results stay clean
on ``stdout``) and is throttled to one line per ``interval`` seconds,
so a thousand cache hits do not print a thousand lines.  The ETA is the
classic remaining/rate estimate over *computed* points -- cache hits are
counted separately and excluded from the rate, since a hit costs a file
read, not a simulation.

The reporter is deliberately dependency-free (no tqdm) and injectable
(``stream``, ``clock``) so tests can drive it deterministically.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Optional, TextIO

__all__ = ["ProgressReporter"]


class ProgressReporter:
    """Throttled ``N done / N total / cache hits / ETA`` heartbeats."""

    def __init__(
        self,
        label: str = "sweep",
        interval: float = 1.0,
        stream: Optional[TextIO] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.label = label
        self.interval = interval
        self.stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self.total = 0
        self.done = 0
        self.cache_hits = 0
        self._started = 0.0
        self._last_emit = 0.0
        self.lines_emitted = 0

    def start(self, total: int) -> None:
        """Begin a batch of ``total`` points (resets all counters)."""
        self.total = total
        self.done = 0
        self.cache_hits = 0
        self._started = self._clock()
        self._last_emit = 0.0  # force an initial heartbeat

    def advance(self, cache_hit: bool = False) -> None:
        """Mark one point finished; emits a heartbeat when due."""
        self.done += 1
        if cache_hit:
            self.cache_hits += 1
        now = self._clock()
        due = (
            self.done >= self.total
            or self._last_emit == 0.0
            or now - self._last_emit >= self.interval
        )
        if due:
            self._emit(now)

    def finish(self) -> None:
        """Emit the final line (idempotent when already up to date)."""
        if self.done < self.total:
            return  # batch ended early (e.g. an exception); stay quiet
        self._emit(self._clock())

    def eta_seconds(self, now: Optional[float] = None) -> Optional[float]:
        """Estimated seconds remaining, or ``None`` (no rate yet).

        Cache hits are excluded from the rate: the estimate divides the
        elapsed wall time by *computed* points only, then scales by the
        remaining count (pessimistically assuming no further hits).
        """
        computed = self.done - self.cache_hits
        if computed <= 0 or self.done >= self.total:
            return None
        now = self._clock() if now is None else now
        elapsed = max(now - self._started, 0.0)
        rate = computed / elapsed if elapsed > 0 else None
        if not rate:
            return None
        return (self.total - self.done) / rate

    def _emit(self, now: float) -> None:
        self._last_emit = now
        eta = self.eta_seconds(now)
        eta_text = f", ETA {eta:.0f}s" if eta is not None else ""
        hits = (
            f", {self.cache_hits} cache hit"
            f"{'s' if self.cache_hits != 1 else ''}"
            if self.cache_hits
            else ""
        )
        self.stream.write(
            f"[{self.label}] {self.done}/{self.total} done{hits}{eta_text}\n"
        )
        self.stream.flush()
        self.lines_emitted += 1
