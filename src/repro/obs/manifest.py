"""Run manifests: the provenance record attached to every result.

A :class:`RunManifest` answers "where did this number come from?": the
declarative fingerprint of the run (when its components are registered
spec types), the seed, topology and routing, the package and Python
versions, wall-clock timings, and how the result reached the caller
(computed fresh, served from the on-disk cache, stored into it).

Manifests split into two field groups:

* **identity fields** (:meth:`RunManifest.identity`) are a pure function
  of the run's declarative content -- equal across processes, hosts and
  reruns of the same spec (asserted by the determinism tests);
* **environment fields** (timings, cache outcome, metrics snapshot)
  describe the particular execution.

The cache persists manifests *alongside* result records -- never inside
the result payload -- so a manifest can evolve without touching result
(de)serialization or cache keys.
"""

from __future__ import annotations

import platform
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["RunManifest"]

IDENTITY_FIELDS = (
    "kind",
    "fingerprint",
    "spec_fingerprint",
    "topology",
    "routing",
    "load",
    "seed",
    "package_version",
)


def _package_version() -> str:
    from repro import __version__

    return __version__


@dataclass
class RunManifest:
    """Provenance of one ``SimResult`` / ``ModelResult``.

    ``fingerprint`` is the content-address the cache would use (``None``
    for uncacheable ad-hoc components); ``spec_fingerprint`` is the raw
    ``RunSpec``/``ModelSpec`` fingerprint when one exists.  ``cache``
    records the outcome: ``"computed"`` (no cache consulted),
    ``"stored"`` (computed and written), ``"hit"`` (served from disk),
    or ``"uncacheable"``.
    """

    kind: str = "sim"
    fingerprint: Optional[str] = None
    spec_fingerprint: Optional[str] = None
    topology: str = ""
    routing: str = ""
    load: Optional[float] = None
    seed: int = 0
    package_version: str = field(default_factory=_package_version)
    python: str = field(default_factory=platform.python_version)
    wall_seconds: Optional[float] = None
    engine_cycles: Optional[int] = None
    cache: str = "computed"
    metrics: Optional[Dict[str, Any]] = None
    # batched-execution runtime metadata (repro.sim.batch): how many
    # runs shared the kernel calls and this run's slot in that batch.
    # Environment fields, never identity -- a batched run is
    # bit-identical to its single-run result
    batch_size: Optional[int] = None
    batch_slot: Optional[int] = None

    def identity(self) -> Dict[str, Any]:
        """The deterministic field subset: equal for equal specs.

        Excludes everything environmental (Python version, timings,
        cache outcome, metric values) -- the cross-process determinism
        test asserts this dict matches exactly for one spec.
        """
        data = self.to_dict()
        return {name: data[name] for name in IDENTITY_FIELDS}

    def to_dict(self) -> Dict[str, Any]:
        """JSON-clean form (what the cache persists)."""
        return {
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "spec_fingerprint": self.spec_fingerprint,
            "topology": self.topology,
            "routing": self.routing,
            "load": self.load,
            "seed": self.seed,
            "package_version": self.package_version,
            "python": self.python,
            "wall_seconds": self.wall_seconds,
            "engine_cycles": self.engine_cycles,
            "cache": self.cache,
            "metrics": self.metrics,
            "batch_size": self.batch_size,
            "batch_slot": self.batch_slot,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunManifest":
        """Rebuild from :meth:`to_dict` output (unknown keys ignored)."""
        known = {
            "kind",
            "fingerprint",
            "spec_fingerprint",
            "topology",
            "routing",
            "load",
            "seed",
            "package_version",
            "python",
            "wall_seconds",
            "engine_cycles",
            "cache",
            "metrics",
            "batch_size",
            "batch_slot",
        }
        return cls(**{k: v for k, v in data.items() if k in known})
