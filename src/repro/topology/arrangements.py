"""Global (inter-group) link arrangements for dragonfly topologies.

An arrangement decides, for every group, which other group each of its
``a*h`` global ports connects to, and pairs ports up so that every global
link is a single bidirectional cable between two specific switches.

All arrangement functions return a list of :class:`GlobalLinkSpec` tuples
``(group_i, port_i, group_j, port_j)`` with ``group_i < group_j``; port
indices are group-local global-port indices in ``0 .. a*h-1``.  Port ``q`` of
a group belongs to switch ``q // h`` of that group (each switch owns ``h``
consecutive global ports), which is how the specs later map onto switches.

Three arrangements from Hastings et al. (CLUSTER '15) are provided:

* ``absolute`` -- the paper's choice (a minor variation able to form
  bidirectional dragonflies with any number of groups).  Each group's ports
  are dealt out to the other groups in increasing group order, ``m`` ports
  per peer group when ``(g-1) | a*h``.
* ``relative`` -- ports are dealt out by group *offset* rather than absolute
  group id.
* ``circulant`` -- ports cycle through offsets ``1..g-1`` repeatedly.
"""

from __future__ import annotations

from typing import List, NamedTuple

__all__ = [
    "GlobalLinkSpec",
    "absolute_arrangement",
    "relative_arrangement",
    "circulant_arrangement",
    "ARRANGEMENTS",
]


class GlobalLinkSpec(NamedTuple):
    """One bidirectional global link between two groups.

    ``port_i``/``port_j`` are group-local global-port indices (``0..a*h-1``).
    """

    group_i: int
    port_i: int
    group_j: int
    port_j: int


def _check_params(a: int, h: int, g: int) -> int:
    """Validate arrangement parameters and return links-per-group-pair."""
    if g < 2:
        raise ValueError(f"need at least 2 groups, got g={g}")
    ports = a * h
    if g - 1 > ports:
        raise ValueError(
            f"g={g} groups need {g - 1} global ports per group but only "
            f"a*h={ports} are available"
        )
    if ports % (g - 1) != 0:
        raise ValueError(
            f"a*h={ports} global ports per group do not divide evenly over "
            f"g-1={g - 1} peer groups; choose g so that (g-1) | a*h"
        )
    return ports // (g - 1)


def absolute_arrangement(a: int, h: int, g: int) -> List[GlobalLinkSpec]:
    """Absolute arrangement: ports dealt to peer groups in increasing id order.

    Group ``i`` lists its peers as ``0, 1, .., i-1, i+1, .., g-1``; ports
    ``t*m .. t*m+m-1`` go to the ``t``-th peer.  The pairing is symmetric:
    link slot ``r`` between groups ``i < j`` uses port ``idx_j*m + r`` on
    group ``i`` and port ``idx_i*m + r`` on group ``j`` where ``idx_x`` is
    the position of ``x`` in the other group's peer list.
    """
    m = _check_params(a, h, g)
    links: List[GlobalLinkSpec] = []
    for i in range(g):
        for j in range(i + 1, g):
            idx_j_in_i = j - 1  # peers of i below j: all of 0..j-1 except i
            idx_i_in_j = i  # peers of j below i: 0..i-1 (i < j)
            for r in range(m):
                links.append(
                    GlobalLinkSpec(i, idx_j_in_i * m + r, j, idx_i_in_j * m + r)
                )
    return links


def relative_arrangement(a: int, h: int, g: int) -> List[GlobalLinkSpec]:
    """Relative arrangement: ports dealt to peers by offset ``1..g-1``.

    Port block ``o-1`` of group ``i`` (ports ``(o-1)*m..o*m-1``) connects to
    group ``(i+o) mod g``; the peer sees the link at offset ``g-o``.
    """
    m = _check_params(a, h, g)
    links: List[GlobalLinkSpec] = []
    for i in range(g):
        for o in range(1, g):
            j = (i + o) % g
            if j < i:
                continue  # the (j, g-o) iteration emits this link
            for r in range(m):
                links.append(
                    GlobalLinkSpec(i, (o - 1) * m + r, j, (g - o - 1) * m + r)
                )
    return links


def circulant_arrangement(a: int, h: int, g: int) -> List[GlobalLinkSpec]:
    """Circulant arrangement: port ``q`` connects at offset ``(q mod (g-1))+1``.

    Equivalent to ``m`` interleaved rounds of the relative dealing; spreads
    the links of one group pair across switches rather than packing them
    onto consecutive ports.
    """
    m = _check_params(a, h, g)
    links: List[GlobalLinkSpec] = []
    for i in range(g):
        for c in range(m):
            for t in range(g - 1):
                o = t + 1
                j = (i + o) % g
                if j < i:
                    continue
                port_i = c * (g - 1) + t
                port_j = c * (g - 1) + (g - o - 1)
                links.append(GlobalLinkSpec(i, port_i, j, port_j))
    return links


ARRANGEMENTS = {
    "absolute": absolute_arrangement,
    "relative": relative_arrangement,
    "circulant": circulant_arrangement,
}
