"""Full-mesh topology: every switch directly linked to every other.

A full mesh of ``n`` switches is the degenerate dragonfly with one switch
per group: ``dfly(p, a=1, h=n-1, g=n)``.  Each ordered switch pair has
exactly one global link (``links_per_group_pair == 1``), MIN paths are the
single direct hop, and a VLB path is ``src -> mid -> dst`` -- two global
hops with no local hops at all.  Expressing it this way means every layer
built on the :class:`~repro.topology.base.Topology` surface (path
enumeration, the LP model, the simulator, CDG verification, Algorithm 1)
works unchanged.

What *is* custom is the deadlock story, following Cano et al. (HOTI'25,
"deadlock-free non-minimal routing without virtual channels"): instead of
a VC ladder, restrict VLB to intermediates larger than both endpoints
(:class:`~repro.routing.pathset.OrderedVlbPolicy`).  Every channel
dependency then goes from a lower-endpoint channel to a higher-endpoint
one, so the channel dependency graph is acyclic with a *single* VC --
certified by ``repro.verify`` under the analysis-only ``"none"`` scheme
(see :attr:`FullMesh.deadlock_vc_scheme`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.topology.dragonfly import Dragonfly

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.routing.pathset import PathPolicy
    from repro.traffic.patterns import TrafficPattern

__all__ = ["FullMesh"]


class FullMesh(Dragonfly):
    """``n`` switches, one bidirectional link per switch pair.

    ``FullMesh(n, p)`` is constructed as ``dfly(p, 1, n-1, n)``; the
    ``n`` and ``p`` parameters are the whole identity (the registry codec
    serializes exactly those two).
    """

    def __init__(self, n: int, p: int = 1, arrangement: str = "absolute") -> None:
        if n < 2:
            raise ValueError("a full mesh needs at least 2 switches")
        super().__init__(p=p, a=1, h=n - 1, g=n, arrangement=arrangement)

    @property
    def n(self) -> int:
        """Number of switches (alias of ``g``: one switch per group)."""
        return self.g

    # ------------------------------------------------------------------
    # Algorithm-1 / verification hooks
    # ------------------------------------------------------------------
    @property
    def deadlock_vc_scheme(self) -> Optional[str]:
        """One shared VC suffices: the ordered-intermediate restriction
        makes the CDG acyclic without VC protection, so certification
        runs under the analysis-only ``"none"`` scheme."""
        return "none"

    @property
    def default_model_engine(self) -> str:
        """The factored fast pipeline has no class weights for the
        ordered policy family; Step 1 uses the legacy LP assembly."""
        return "legacy"

    def tvlb_datapoints(
        self, step: float = 0.25, seed: int = 0
    ) -> List["PathPolicy"]:
        """Fraction ladder over the ordered-intermediate VLB family.

        The hop-class grid is meaningless here (every VLB path has
        exactly 2 hops); the tunable axis is *how many* deadlock-free
        ordered intermediates each pair keeps.
        """
        from repro.routing.pathset import OrderedVlbPolicy

        if not 0.0 < step <= 1.0:
            raise ValueError("step must be in (0, 1]")
        fractions: List[float] = []
        f = step
        while f < 1.0 - 1e-9:
            fractions.append(round(f, 10))
            f += step
        fractions.append(1.0)
        return [
            OrderedVlbPolicy(fraction=frac, seed=seed) for frac in fractions
        ]

    def baseline_policy(self) -> Optional["PathPolicy"]:
        """No unrestricted baseline: the full VLB set deadlocks under a
        single VC (``mid`` ordering is what breaks the cycles), so the
        largest competing set is the fraction-1.0 ordered policy already
        on the grid."""
        return None

    def adversary_suite(
        self, *, num_type2: int = 20, seed: int = 0
    ) -> Tuple[List["TrafficPattern"], List["TrafficPattern"]]:
        """Native full-mesh suite: switch shifts + seeded derangements.

        The paper's TYPE_1 construction degenerates cleanly here (one
        switch per group, so a group shift *is* a switch shift): each
        ``shift(d, 0)`` saturates the single direct link of every
        ``(s, s+d)`` switch pair, the full mesh's worst case under MIN.
        The TYPE_2 axis keeps the seeded switch-level derangement family,
        built through the registry so the seeds stay spec-visible.
        """
        # lazy import: repro.traffic/repro.spec sit above topology
        from repro.spec import PatternSpec
        from repro.traffic.patterns import Shift

        shifts: List["TrafficPattern"] = [
            Shift(self, d, 0) for d in range(1, self.n)
        ]
        perms: List["TrafficPattern"] = [
            PatternSpec.make("type2", seed=seed + i).build(self)
            for i in range(num_type2)
        ]
        return shifts, perms

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"full-mesh(n={self.n}, p={self.p})"
