"""Topology substrate: the ``Topology`` protocol and its implementations.

Implements the ``dfly(p, a, h, g)`` family used throughout the paper --
fully-connected intra-group topology, configurable number of groups,
several inter-group (global) link arrangements -- plus the variations
that exercise the abstraction: the Cascade-style 2D all-to-all group and
the full mesh (one switch per group).  The paper's experiments use a
minor variation of the *absolute* arrangement that forms bidirectional
dragonflies for any number of groups; that is the default here.

Every topology class is registered with a serialization codec in
``repro.spec``'s ``TOPOLOGY_REGISTRY``; see ``docs/topologies.md`` for
how to add one.
"""

from repro.topology.arrangements import (
    absolute_arrangement,
    circulant_arrangement,
    relative_arrangement,
)
from repro.topology.base import Topology
from repro.topology.cascade import CascadeDragonfly
from repro.topology.dragonfly import Dragonfly, GlobalLink
from repro.topology.fullmesh import FullMesh
from repro.topology.validate import validate_topology

__all__ = [
    "Topology",
    "Dragonfly",
    "CascadeDragonfly",
    "FullMesh",
    "GlobalLink",
    "DEFAULT_DRAGONFLY",
    "default_dragonfly",
    "absolute_arrangement",
    "relative_arrangement",
    "circulant_arrangement",
    "validate_topology",
]

# The paper's reference configuration ``dfly(4, 8, 4, 9)`` (Table 2, used
# by most figures and as the bench/CLI default).  Treat the shared
# instance as read-only; call :func:`default_dragonfly` for a private one.
DEFAULT_DRAGONFLY = Dragonfly(4, 8, 4, 9)


def default_dragonfly() -> Dragonfly:
    """A fresh instance of the paper's default ``dfly(4, 8, 4, 9)``."""
    return Dragonfly(4, 8, 4, 9)
