"""Dragonfly topology substrate.

Implements the ``dfly(p, a, h, g)`` family used throughout the paper:
fully-connected intra-group topology, configurable number of groups, and
several inter-group (global) link arrangements.  The paper's experiments use
a minor variation of the *absolute* arrangement that forms bidirectional
dragonflies for any number of groups; that is the default here.
"""

from repro.topology.arrangements import (
    absolute_arrangement,
    circulant_arrangement,
    relative_arrangement,
)
from repro.topology.cascade import CascadeDragonfly
from repro.topology.dragonfly import Dragonfly, GlobalLink
from repro.topology.validate import validate_topology

__all__ = [
    "Dragonfly",
    "CascadeDragonfly",
    "GlobalLink",
    "absolute_arrangement",
    "relative_arrangement",
    "circulant_arrangement",
    "validate_topology",
]
