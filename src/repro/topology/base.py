"""The structural ``Topology`` protocol every registered topology satisfies.

The rest of the package -- path enumeration (:mod:`repro.routing`), the LP
model (:mod:`repro.model`), the simulator (:mod:`repro.sim`), static
verification (:mod:`repro.verify`) and Algorithm 1 (:mod:`repro.core`) --
talks to topologies exclusively through this surface: flat switch/node
identifiers, group structure, the ``local_*`` intra-group hooks, the global
link tables, and the five *policy hooks* that make Algorithm 1
topology-custom (candidate grid, deadlock-certification VC scheme,
preferred model engine, baseline policy, adversarial suite).

:class:`~repro.topology.dragonfly.Dragonfly` is the canonical
implementation; :class:`~repro.topology.cascade.CascadeDragonfly` varies
the intra-group structure and :class:`~repro.topology.fullmesh.FullMesh`
degenerates the group to a single switch.  New topologies subclass one of
these (or implement the protocol directly) and register a codec entry in
``repro.spec``'s ``TOPOLOGY_REGISTRY`` -- see ``docs/topologies.md``.

The protocol is structural (:class:`typing.Protocol`): no inheritance
relationship is required, so this module stays import-cycle-free.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.routing.pathset import PathPolicy
    from repro.topology.dragonfly import GlobalLink
    from repro.traffic.patterns import TrafficPattern

__all__ = ["Topology"]


@runtime_checkable
class Topology(Protocol):
    """What every layer of the package may assume about a topology."""

    # --- parameters (the ``dfly`` vocabulary all layers share) ---
    p: int  # terminals per switch
    a: int  # switches per group
    h: int  # global ports per switch
    g: int  # number of groups
    arrangement: str
    global_links: List["GlobalLink"]

    # --- sizes and identifiers ---
    @property
    def num_groups(self) -> int: ...

    @property
    def num_switches(self) -> int: ...

    @property
    def num_nodes(self) -> int: ...

    @property
    def links_per_group_pair(self) -> int: ...

    @property
    def max_local_hops(self) -> int: ...

    def group_of(self, switch: int) -> int: ...

    def local_index(self, switch: int) -> int: ...

    def switch_id(self, group: int, local: int) -> int: ...

    def switch_of_node(self, node: int) -> int: ...

    def node_id(self, switch: int, k: int) -> int: ...

    def switches_in_group(self, group: int) -> range: ...

    # --- connectivity ---
    def local_neighbors(self, switch: int) -> List[int]: ...

    def local_adjacent(self, u: int, v: int) -> bool: ...

    def local_route(self, u: int, v: int) -> List[int]: ...

    def local_hops(self, u: int, v: int) -> int: ...

    def links_between_groups(self, ga: int, gb: int) -> List["GlobalLink"]: ...

    def global_links_of_switch(self, switch: int) -> List["GlobalLink"]: ...

    def global_neighbors(self, switch: int) -> List[int]: ...

    def connected_groups(self, group: int) -> List[int]: ...

    # --- per-topology Algorithm-1 / verification hooks ---
    @property
    def deadlock_vc_scheme(self) -> Optional[str]: ...

    @property
    def default_model_engine(self) -> str: ...

    def tvlb_datapoints(
        self, step: float = 0.25, seed: int = 0
    ) -> List["PathPolicy"]: ...

    def baseline_policy(self) -> Optional["PathPolicy"]: ...

    def adversary_suite(
        self, *, num_type2: int = 20, seed: int = 0
    ) -> Tuple[List["TrafficPattern"], List["TrafficPattern"]]: ...

    # --- reporting ---
    def describe(self) -> Dict[str, int]: ...
