"""Structural invariant checks for dragonfly topologies.

``validate_topology`` raises :class:`TopologyError` with a precise message on
the first violated invariant; it returns a statistics dict on success so
tests can assert on the aggregate counts as well.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict

from repro.topology.dragonfly import Dragonfly

__all__ = ["TopologyError", "validate_topology"]


class TopologyError(AssertionError):
    """A dragonfly structural invariant does not hold."""


def validate_topology(topo: Dragonfly) -> Dict[str, int]:
    """Check every structural invariant of a ``dfly(p,a,h,g)`` instance.

    Invariants checked:

    1. every switch uses at most ``h`` global ports, and exactly ``h`` when
       ``(g-1)*m == a*h`` (all ports used);
    2. every pair of groups is joined by exactly ``m = a*h/(g-1)`` links;
    3. no global link connects a group to itself;
    4. link endpoint bookkeeping (groups recorded on the link match the
       switch ids);
    5. slots within a group pair are ``0..m-1`` with no duplicates;
    6. the switch-level graph is connected (for g >= 1).
    """
    m = topo.links_per_group_pair

    per_switch = Counter()
    for link in topo.global_links:
        if topo.group_of(link.switch_a) != link.group_a:
            raise TopologyError(f"link {link}: switch_a not in group_a")
        if topo.group_of(link.switch_b) != link.group_b:
            raise TopologyError(f"link {link}: switch_b not in group_b")
        if link.group_a == link.group_b:
            raise TopologyError(f"link {link} connects group to itself")
        per_switch[link.switch_a] += 1
        per_switch[link.switch_b] += 1

    for sw in range(topo.num_switches):
        used = per_switch[sw]
        if used > topo.h:
            raise TopologyError(
                f"switch {sw} uses {used} global ports but h={topo.h}"
            )
        if topo.g > 1 and used != topo.h:
            raise TopologyError(
                f"switch {sw} uses {used} of h={topo.h} global ports; the "
                f"divisible arrangement should use all of them"
            )

    for ga in range(topo.g):
        for gb in range(ga + 1, topo.g):
            links = topo.links_between_groups(ga, gb)
            if len(links) != m:
                raise TopologyError(
                    f"groups ({ga},{gb}) joined by {len(links)} links, "
                    f"expected {m}"
                )
            slots = sorted(ln.slot for ln in links)
            if slots != list(range(m)):
                raise TopologyError(
                    f"groups ({ga},{gb}) have slot sequence {slots}"
                )

    graph = topo.to_networkx()
    import networkx as nx

    if topo.num_switches > 0 and not nx.is_connected(graph):
        raise TopologyError("switch-level graph is not connected")

    return {
        "num_global_links": len(topo.global_links),
        "links_per_group_pair": m,
        "num_switches": topo.num_switches,
        "num_nodes": topo.num_nodes,
    }
