"""Cascade-style dragonfly: 2D all-to-all intra-group topology.

The Cray Cascade (XC) architecture arranges each group's ``a = rows*cols``
switches in a 2D grid with all-to-all links along each row and each
column, instead of the single fully connected graph the paper focuses on.
Intra-group routes then take up to 2 hops (dimension-ordered: row first,
then column), inter-group MIN paths up to 5, and VLB paths up to 10.

The paper notes its techniques "can be applied to other Dragonfly
variations"; this subclass demonstrates that: all path machinery
(MIN/VLB enumeration, policies, the LP model, balance analysis) and the
simulator work unchanged through the ``local_*`` hooks.

Deadlock note: canonical intra-group routes are dimension-ordered
(row-then-column), which is acyclic within a group, so both VC schemes of
``repro.sim.vc`` remain deadlock-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.topology.dragonfly import Dragonfly

__all__ = ["CascadeDragonfly"]


@dataclass
class CascadeDragonfly(Dragonfly):
    """``dfly`` with a ``rows x cols`` all-to-all-per-dimension group.

    ``a`` must equal ``rows * cols``.  Global link arrangement and all
    inter-group structure are inherited unchanged.
    """

    rows: int = 0
    cols: int = 0

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("rows and cols must be positive")
        if self.rows * self.cols != self.a:
            raise ValueError(
                f"rows*cols = {self.rows * self.cols} must equal a = {self.a}"
            )
        super().__post_init__()

    # ------------------------------------------------------------------
    # Grid coordinates
    # ------------------------------------------------------------------
    def coords(self, switch: int) -> tuple:
        """(row, col) of a switch within its group."""
        s = self.local_index(switch)
        return divmod(s, self.cols)

    def switch_at(self, group: int, row: int, col: int) -> int:
        return self.switch_id(group, row * self.cols + col)

    # ------------------------------------------------------------------
    # Intra-group overrides
    # ------------------------------------------------------------------
    @property
    def local_degree(self) -> int:
        return (self.rows - 1) + (self.cols - 1)

    @property
    def max_local_hops(self) -> int:
        return 1 if self.rows == 1 or self.cols == 1 else 2

    def local_neighbors(self, switch: int) -> List[int]:
        group = self.group_of(switch)
        row, col = self.coords(switch)
        same_row = [
            self.switch_at(group, row, c)
            for c in range(self.cols)
            if c != col
        ]
        same_col = [
            self.switch_at(group, r, col)
            for r in range(self.rows)
            if r != row
        ]
        return same_row + same_col

    def local_adjacent(self, u: int, v: int) -> bool:
        if u == v or self.group_of(u) != self.group_of(v):
            return False
        ru, cu = self.coords(u)
        rv, cv = self.coords(v)
        return ru == rv or cu == cv

    def local_route(self, u: int, v: int) -> List[int]:
        """Dimension-ordered (row-first) canonical intra-group route."""
        if self.group_of(u) != self.group_of(v):
            raise ValueError(f"{u} and {v} are not in the same group")
        if u == v or self.local_adjacent(u, v):
            return []
        group = self.group_of(u)
        ru, _cu = self.coords(u)
        _rv, cv = self.coords(v)
        # move along u's row to v's column, then along that column
        return [self.switch_at(group, ru, cv)]
