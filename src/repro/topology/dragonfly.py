"""The dragonfly topology ``dfly(p, a, h, g)``.

Follows the paper's notation:

* ``p`` -- compute nodes (terminals) per switch,
* ``a`` -- switches per group (fully connected intra-group),
* ``h`` -- global ports per switch,
* ``g`` -- number of groups, ``2 <= g <= a*h + 1``.

Identifiers are flat integers:

* switch id  ``sw = group * a + local_index``  (``0 .. g*a - 1``)
* node id    ``n  = sw * p + k``               (``0 .. g*a*p - 1``)

The balanced, maximum-size dragonfly of Kim et al. is recovered with
``a = 2p = 2h`` and ``g = a*h + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import networkx as nx

from repro.topology.arrangements import ARRANGEMENTS, GlobalLinkSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.routing.pathset import PathPolicy
    from repro.traffic.patterns import TrafficPattern

__all__ = ["Dragonfly", "GlobalLink"]


@dataclass(frozen=True)
class GlobalLink:
    """One bidirectional global link between two switches.

    ``slot`` is the link's index among the links connecting the same ordered
    group pair (0-based); it is the ``r`` used by VLB path descriptors.
    """

    switch_a: int
    switch_b: int
    group_a: int
    group_b: int
    slot: int

    def endpoint_in(self, group: int) -> int:
        """Return the endpoint switch that lies in ``group``."""
        if group == self.group_a:
            return self.switch_a
        if group == self.group_b:
            return self.switch_b
        raise ValueError(f"link {self} does not touch group {group}")

    def other_end(self, switch: int) -> int:
        """Return the endpoint opposite to ``switch``."""
        if switch == self.switch_a:
            return self.switch_b
        if switch == self.switch_b:
            return self.switch_a
        raise ValueError(f"switch {switch} is not an endpoint of {self}")


@dataclass
class Dragonfly:
    """A ``dfly(p, a, h, g)`` topology with a chosen global arrangement.

    The constructor materializes the global link tables; intra-group links
    are implicit (complete graph) and queried through helpers.
    """

    p: int
    a: int
    h: int
    g: int
    arrangement: str = "absolute"

    # Derived tables, built in __post_init__.
    global_links: List[GlobalLink] = field(init=False, repr=False)
    _pair_links: Dict[Tuple[int, int], List[GlobalLink]] = field(
        init=False, repr=False
    )
    _switch_links: List[List[GlobalLink]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if min(self.p, self.a, self.h, self.g) < 1:
            raise ValueError("p, a, h, g must all be positive")
        if self.g > self.a * self.h + 1:
            raise ValueError(
                f"g={self.g} exceeds the maximum {self.a * self.h + 1} groups "
                f"supported by a*h={self.a * self.h} global ports per group"
            )
        try:
            arrange = ARRANGEMENTS[self.arrangement]
        except KeyError:
            raise ValueError(
                f"unknown arrangement {self.arrangement!r}; "
                f"choose from {sorted(ARRANGEMENTS)}"
            ) from None

        specs: List[GlobalLinkSpec] = (
            arrange(self.a, self.h, self.g) if self.g > 1 else []
        )
        links: List[GlobalLink] = []
        pair_links: Dict[Tuple[int, int], List[GlobalLink]] = {}
        switch_links: List[List[GlobalLink]] = [
            [] for _ in range(self.num_switches)
        ]
        slot_counter: Dict[Tuple[int, int], int] = {}
        for spec in specs:
            gi, qi, gj, qj = spec
            sa = gi * self.a + qi // self.h
            sb = gj * self.a + qj // self.h
            key = (gi, gj)
            slot = slot_counter.get(key, 0)
            slot_counter[key] = slot + 1
            link = GlobalLink(sa, sb, gi, gj, slot)
            links.append(link)
            pair_links.setdefault(key, []).append(link)
            switch_links[sa].append(link)
            switch_links[sb].append(link)

        object.__setattr__(self, "global_links", links)
        object.__setattr__(self, "_pair_links", pair_links)
        object.__setattr__(self, "_switch_links", switch_links)

    # ------------------------------------------------------------------
    # Sizes and identifiers
    # ------------------------------------------------------------------
    @property
    def num_groups(self) -> int:
        return self.g

    @property
    def num_switches(self) -> int:
        return self.g * self.a

    @property
    def num_nodes(self) -> int:
        return self.g * self.a * self.p

    @property
    def local_degree(self) -> int:
        """Intra-group links per switch (``a-1``: fully connected)."""
        return self.a - 1

    @property
    def radix(self) -> int:
        """Ports per switch: ``p`` terminal + local + ``h`` global."""
        return self.p + self.local_degree + self.h

    @property
    def links_per_group_pair(self) -> int:
        """Global links between each pair of groups (uniform by design)."""
        if self.g <= 1:
            return 0
        return (self.a * self.h) // (self.g - 1)

    def group_of(self, switch: int) -> int:
        return switch // self.a

    def local_index(self, switch: int) -> int:
        return switch % self.a

    def switch_id(self, group: int, local: int) -> int:
        return group * self.a + local

    def switch_of_node(self, node: int) -> int:
        return node // self.p

    def node_id(self, switch: int, k: int) -> int:
        return switch * self.p + k

    def nodes_of_switch(self, switch: int) -> range:
        return range(switch * self.p, (switch + 1) * self.p)

    def switches_in_group(self, group: int) -> range:
        return range(group * self.a, (group + 1) * self.a)

    # ------------------------------------------------------------------
    # Connectivity queries
    # ------------------------------------------------------------------
    def local_neighbors(self, switch: int) -> List[int]:
        """All other switches in the same group (complete intra-group graph)."""
        group = self.group_of(switch)
        return [s for s in self.switches_in_group(group) if s != switch]

    def local_adjacent(self, u: int, v: int) -> bool:
        """Is there a direct intra-group link between ``u`` and ``v``?"""
        return u != v and self.group_of(u) == self.group_of(v)

    def local_route(self, u: int, v: int) -> List[int]:
        """Intermediate switches on the canonical intra-group route.

        Empty for a fully connected group (direct link); subclasses with a
        sparser intra-group topology (e.g. the Cascade 2D all-to-all)
        return the dimension-ordered intermediates.
        """
        if self.group_of(u) != self.group_of(v):
            raise ValueError(f"{u} and {v} are not in the same group")
        return []

    def local_hops(self, u: int, v: int) -> int:
        """Intra-group hop count between two switches of one group."""
        if u == v:
            return 0
        return len(self.local_route(u, v)) + 1

    @property
    def max_local_hops(self) -> int:
        """Worst-case intra-group distance (1 for fully connected)."""
        return 1

    def links_between_groups(self, ga: int, gb: int) -> List[GlobalLink]:
        """Global links between two distinct groups, in slot order."""
        if ga == gb:
            raise ValueError("a group has no global links to itself")
        key = (ga, gb) if ga < gb else (gb, ga)
        return self._pair_links.get(key, [])

    def global_links_of_switch(self, switch: int) -> List[GlobalLink]:
        """Global links with ``switch`` as one endpoint."""
        return self._switch_links[switch]

    def global_neighbors(self, switch: int) -> List[int]:
        """Peer switches across this switch's global links."""
        return [ln.other_end(switch) for ln in self._switch_links[switch]]

    def connected_groups(self, group: int) -> List[int]:
        """Groups reachable from ``group`` via a direct global link."""
        return [
            other
            for other in range(self.g)
            if other != group and self.links_between_groups(group, other)
        ]

    # ------------------------------------------------------------------
    # Per-topology Algorithm-1 / verification hooks (Topology protocol)
    # ------------------------------------------------------------------
    @property
    def deadlock_vc_scheme(self) -> Optional[str]:
        """VC scheme whose CDG analysis certifies this topology's path
        sets deadlock-free, or ``None`` to certify under the simulation
        VC scheme.  Dragonfly path sets rely on the Won et al. / per-hop
        VC ladders, so the simulation scheme is the right certificate.
        """
        return None

    @property
    def default_model_engine(self) -> str:
        """Preferred Step-1 LP engine (``"fast"`` or ``"legacy"``)."""
        return "fast"

    def tvlb_datapoints(
        self, step: float = 0.25, seed: int = 0
    ) -> List["PathPolicy"]:
        """Algorithm 1's Step-1 candidate grid for this topology.

        Dragonflies sweep the paper's Table-1 hop-class grid; topologies
        with a different path-length structure override this with their
        own candidate family.
        """
        # lazy import: repro.core sits above the topology layer
        from repro.core.datapoints import table1_datapoints

        return list(table1_datapoints(step=step, seed=seed))

    def baseline_policy(self) -> Optional["PathPolicy"]:
        """The conventional-routing candidate Algorithm 1 always scores
        alongside the restricted sets (``None`` = no extra baseline --
        the grid's largest set already is the conventional one)."""
        # lazy import: repro.routing sits above the topology layer
        from repro.routing.pathset import AllVlbPolicy

        return AllVlbPolicy()

    def adversary_suite(
        self, *, num_type2: int = 20, seed: int = 0
    ) -> Tuple[List["TrafficPattern"], List["TrafficPattern"]]:
        """The adversarial pattern suites Algorithm 1 trains against.

        Dragonflies use the paper's Section-3.3.1 suites verbatim: every
        combined group/switch shift (TYPE_1) and ``num_type2`` seeded
        group+switch permutations (TYPE_2).  Topologies with a different
        worst-case structure override this with their own suites;
        ``repro.adversary`` *searches* beyond whatever this hook returns.
        """
        # lazy import: repro.traffic sits above the topology layer
        from repro.traffic.adversarial import type_1_set, type_2_set

        return (
            list(type_1_set(self)),
            list(type_2_set(self, count=num_type2, seed=seed)),
        )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.Graph:
        """Switch-level graph with ``kind`` edge attributes (local/global)."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_switches))
        for u in range(self.num_switches):
            for v in self.local_neighbors(u):
                if u < v:
                    graph.add_edge(u, v, kind="local")
        # parallel global links collapse to one edge with a multiplicity
        for link in self.global_links:
            u, v = link.switch_a, link.switch_b
            if graph.has_edge(u, v) and graph[u][v].get("kind") == "global":
                graph[u][v]["multiplicity"] += 1
            else:
                graph.add_edge(u, v, kind="global", multiplicity=1)
        return graph

    def describe(self) -> Dict[str, int]:
        """Table-2 style summary row for this topology."""
        return {
            "PEs": self.num_nodes,
            "switches": self.num_switches,
            "groups": self.num_groups,
            "links_per_group_pair": self.links_per_group_pair,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"dfly(p={self.p}, a={self.a}, h={self.h}, g={self.g})"
