"""Algorithm 1: compute the custom T-VLB path set for a topology.

The two-step procedure of Section 3.3:

* **Step 1 (coarse grain)** -- model the throughput of every Table-1
  datapoint against the adversarial suites (TYPE_1 shifts + TYPE_2
  group/switch permutations) with the LP model, and keep the datapoints in
  the vicinity of the best as candidates.  Our LP is a pure capacity model,
  so `all VLB` is always on the frontier and the vicinity is ordered by
  average VLB path length (T-UGAL property 2: "as small as possible") --
  shorter candidate sets that model within ``vicinity_tol`` of the best
  are preferred for Step 2.
* **Step 2 (finalize)** -- expand the candidates with the deterministic
  strategic 5-hop choices where applicable, check and adjust local/global
  load balance (removing paths), then rank every adjusted candidate by
  *simulated* throughput on TYPE_2 patterns and return the winner.

The returned policy plugs straight into the simulator's ``t-ugal-l`` /
``t-ugal-g`` / ``t-par`` routing variants.  On topologies with one link
per group pair (e.g. ``dfly(4,8,4,33)``) the procedure selects the full
VLB set, reproducing the paper's "T-UGAL converges with UGAL" result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.balance import BalanceReport, balance_adjust
from repro.model.pathstats import PathStatsCache
from repro.model.sweep import SweepPoint, candidate_vicinity, step1_sweep
from repro.routing.pathset import (
    AllVlbPolicy,
    HopClassPolicy,
    PathPolicy,
    StrategicFiveHopPolicy,
)
from repro.sim.params import SimParams
from repro.sim.sweep import LoadSweep, latency_vs_load
from repro.topology.dragonfly import Dragonfly
from repro.traffic.adversarial import type_1_set, type_2_set
from repro.traffic.patterns import Shift

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.perf.executor import SweepExecutor
    from repro.traffic.patterns import TrafficPattern
    from repro.verify.report import VerifyReport

__all__ = [
    "CandidateEval",
    "TvlbResult",
    "compute_tvlb",
    "simulation_evaluator",
    "model_evaluator",
]

Evaluator = Callable[[PathPolicy, str], float]


@dataclass
class CandidateEval:
    """One Step-2 candidate after balance adjustment and evaluation."""

    label: str
    policy: PathPolicy
    balance: Optional[BalanceReport]
    score: float


@dataclass
class TvlbResult:
    """Everything Algorithm 1 produced, including the audit trail."""

    policy: PathPolicy  # the T-VLB set (use with t-ugal-* routing)
    label: str
    sweep: List[SweepPoint]
    candidates: List[CandidateEval]
    converged_to_ugal: bool  # True when the full VLB set won
    # static verification of the winning set (None when verify=False)
    verify_report: Optional["VerifyReport"] = None

    def describe(self) -> str:
        return self.label


def _mean_vlb_hops(
    topo: Dragonfly, policy: PathPolicy, sample_pairs: Sequence[Tuple[int, int]]
) -> float:
    values = []
    for src, dst in sample_pairs:
        try:
            values.append(policy.average_hops(topo, src, dst))
        except ValueError:
            continue
    return float(np.mean(values)) if values else float("inf")


def model_evaluator(
    topo: Dragonfly,
    *,
    num_patterns: int = 3,
    max_descriptors: Optional[int] = 2000,
    seed: int = 0,
) -> Evaluator:
    """Cheap Step-2 scoring via the uniform-selection LP.

    A fallback for very large topologies where simulation-based ranking is
    too slow: the uniform-mode LP models UGAL's random candidate draw and
    therefore penalizes badly balanced restricted sets, though it cannot
    credit the queueing benefits of shorter paths the way simulation does.
    """
    from repro.model.lp_model import model_throughput, weights_for_policy

    patterns = type_2_set(topo, count=num_patterns, seed=seed + 500)
    cache = PathStatsCache(topo, max_descriptors=max_descriptors, seed=seed)

    def evaluate(policy: PathPolicy, label: str) -> float:
        try:
            weights_for_policy(
                policy.base if hasattr(policy, "base") else policy
            )
        except (TypeError, ValueError):
            return -1.0  # not representable in the class-weight model
        target = policy.base if hasattr(policy, "base") else policy
        scores = [
            model_throughput(
                topo,
                pattern.demand_matrix(),
                policy=target,
                cache=cache,
                mode="uniform",
            ).throughput
            for pattern in patterns
        ]
        return float(np.mean(scores))

    return evaluate


def simulation_evaluator(
    topo: Dragonfly,
    *,
    routing: str = "ugal-l",
    params: Optional[SimParams] = None,
    num_patterns: int = 5,
    loads: Sequence[float] = (0.15, 0.25, 0.35, 0.45),
    seed: int = 0,
    executor: Optional["SweepExecutor"] = None,
) -> Evaluator:
    """Step-2 scoring: mean simulated saturation throughput on TYPE_2
    patterns (the paper simulates 5 of them and averages).

    With an ``executor``, all (pattern, load) points of a candidate's
    evaluation are submitted as one batch -- the 5-pattern evaluation
    fans out across worker processes and repeated points (e.g. the
    ``all VLB`` candidate re-scored across Algorithm 1 runs) come from
    the result cache.  Scores are identical to the serial path.
    """
    params = params if params is not None else SimParams(window_cycles=300)
    patterns = type_2_set(topo, count=num_patterns, seed=seed + 1000)

    def evaluate(policy: PathPolicy, label: str) -> float:
        conventional = isinstance(policy, AllVlbPolicy)
        variant = routing if conventional else f"t-{routing}"
        run_policy = None if conventional else policy
        if executor is not None:
            from repro.perf.executor import SimTask

            flat = executor.run(
                [
                    SimTask(
                        topo,
                        pattern,
                        load,
                        routing=variant,
                        policy=run_policy,
                        params=params,
                        seed=seed,
                    )
                    for pattern in patterns
                    for load in loads
                ]
            )
            scores = []
            for i in range(len(patterns)):
                chunk = flat[i * len(loads) : (i + 1) * len(loads)]
                sweep = LoadSweep(routing=variant, policy_label=label)
                # same truncation as the serial ladder's early stop
                for result in chunk:
                    sweep.results.append(result)
                    if result.saturated:
                        break
                scores.append(sweep.saturation_throughput())
            return float(np.mean(scores))
        scores = []
        for pattern in patterns:
            sweep = latency_vs_load(
                topo,
                pattern,
                loads,
                routing=variant,
                policy=run_policy,
                params=params,
                seed=seed,
            )
            scores.append(sweep.saturation_throughput())
        return float(np.mean(scores))

    return evaluate


def compute_tvlb(
    topo: Dragonfly,
    *,
    routing: str = "ugal-l",
    step: float = 0.25,
    num_type1: Optional[int] = 6,
    num_type2: int = 3,
    vicinity_tol: float = 0.15,
    max_candidates: int = 3,
    evaluator: Optional[Evaluator] = None,
    sim_params: Optional[SimParams] = None,
    max_descriptors: Optional[int] = 2000,
    balance: bool = True,
    verify: bool = True,
    seed: int = 0,
    datapoints: Optional[Sequence[PathPolicy]] = None,
    executor: Optional["SweepExecutor"] = None,
    model_engine: Optional[str] = None,
    extra_adversaries: Optional[Sequence["TrafficPattern"]] = None,
) -> TvlbResult:
    """Run Algorithm 1 and return the T-VLB policy for ``topo``.

    Defaults are scaled for interactive runs: a coarser Table-1 grid
    (``step=0.25``), a subsample of the TYPE_1 suite (``num_type1``
    patterns; ``None`` = all ``(g-1)*a``), and a short simulation-based
    Step-2 evaluation.  Paper-scale behaviour: ``step=0.1``,
    ``num_type1=None``, ``num_type2=20``, and a ``simulation_evaluator``
    built from ``SimParams.paper()``.

    Unless ``verify=False``, the winning path set is statically verified
    (``repro.verify``: deadlock-freedom certification under PAR plus the
    path-set lint) before being returned; a failed verification raises
    ``RuntimeError`` so a broken set can never reach the simulator.

    ``model_engine`` selects the Step-1 LP solver (``"fast"`` -- the
    factored :class:`~repro.model.fastpath.FastModel` pipeline -- or
    ``"legacy"``, the original per-solve assembly; ``None`` defers to
    the topology's ``default_model_engine`` hook); an ``executor``
    additionally fans both the Step-1 model solves and the Step-2
    simulation points out across its worker pool and result cache.

    The per-topology hooks of the :class:`~repro.topology.base.Topology`
    protocol shape the run: ``tvlb_datapoints`` supplies the Step-1
    candidate grid (Table 1 on dragonflies, the ordered-intermediate
    fraction ladder on full meshes), ``baseline_policy`` the
    always-competing conventional set, and ``deadlock_vc_scheme`` the VC
    scheme the final verification certifies under.

    ``extra_adversaries`` appends further patterns (e.g. discovered by
    ``repro.adversary`` search) to the Step-1 training suite; the
    suite itself comes from the topology's ``adversary_suite`` hook.
    """
    rng = np.random.default_rng(seed)
    if model_engine is None:
        model_engine = getattr(topo, "default_model_engine", "fast")

    # ---- adversarial suites (Section 3.3.1, via the topology hook) ----
    suite = getattr(topo, "adversary_suite", None)
    if suite is not None:
        t1, t2 = suite(num_type2=num_type2, seed=seed)
    else:  # bare protocol stand-ins in tests
        t1 = list(type_1_set(topo))
        t2 = list(type_2_set(topo, count=num_type2, seed=seed))
    if num_type1 is not None and num_type1 < len(t1):
        idx = rng.choice(len(t1), size=num_type1, replace=False)
        t1 = [t1[i] for i in sorted(idx)]
    patterns = t1 + t2 + list(extra_adversaries or [])

    # ---- Step 1: coarse-grain model sweep over the candidate grid ----
    # (the topology's `tvlb_datapoints` hook: Table 1 on dragonflies;
    # pass a custom `datapoints` grid for variations like
    # CascadeDragonfly where VLB paths reach `max_vlb_hops(topo)`)
    cache = PathStatsCache(topo, max_descriptors=max_descriptors, seed=seed)
    grid = (
        list(datapoints)
        if datapoints is not None
        else topo.tvlb_datapoints(step=step, seed=seed)
    )
    sweep = step1_sweep(
        topo,
        patterns,
        grid,
        cache=cache,
        max_descriptors=max_descriptors,
        mode="free",
        engine=model_engine,
        executor=executor,
        seed=seed,
    )
    vicinity = candidate_vicinity(sweep, rel_tol=vicinity_tol)

    # shortest-average-length first (T-UGAL property 2)
    shift_pairs = [
        (s, d)
        for s, d in zip(*np.nonzero(Shift(topo, 1, 0).demand_matrix()))
    ]
    sample_pairs = [
        shift_pairs[i]
        for i in rng.choice(
            len(shift_pairs), size=min(4, len(shift_pairs)), replace=False
        )
    ]
    vicinity = sorted(
        vicinity,
        key=lambda pt: _mean_vlb_hops(topo, pt.policy, sample_pairs),
    )[:max_candidates]

    candidates: List[Tuple[str, PathPolicy]] = [
        (pt.label, pt.policy) for pt in vicinity
    ]

    # ---- Step 2: expand with the deterministic strategic choices ----
    if any(
        isinstance(pol, HopClassPolicy)
        and pol.full_hops == 4
        and 0.0 < pol.extra_fraction < 1.0
        for _lbl, pol in candidates
    ):
        for order in ("2+3", "3+2"):
            strategic = StrategicFiveHopPolicy(order)
            candidates.append((strategic.describe(), strategic))

    # the topology's conventional set always competes; if it wins, T-UGAL
    # converges with UGAL (the paper's g=33 outcome).  Topologies whose
    # unrestricted set is not deadlock-safe (FullMesh under one VC)
    # return None here -- their grid already tops out at the largest
    # admissible set.
    baseline = topo.baseline_policy()
    if baseline is not None and not any(
        isinstance(pol, type(baseline)) or lbl == baseline.describe()
        for lbl, pol in candidates
    ):
        candidates.append((baseline.describe(), baseline))

    # ---- balance analysis + adjustment ----
    evaluated: List[CandidateEval] = []
    balance_pairs = sample_pairs if len(sample_pairs) else shift_pairs[:4]
    if evaluator is None:
        evaluator = simulation_evaluator(
            topo, routing=routing, params=sim_params, seed=seed,
            num_patterns=min(num_type2, 5) or 2,
            executor=executor,
        )
    for label, policy in candidates:
        report: Optional[BalanceReport] = None
        adjusted = policy
        if balance and not isinstance(policy, AllVlbPolicy):
            adjusted, report = balance_adjust(topo, policy, balance_pairs)
            if report.adjusted:
                label = f"{label} (balanced)"
        score = evaluator(adjusted, label)
        evaluated.append(CandidateEval(label, adjusted, report, score))

    best = max(evaluated, key=lambda c: c.score)
    converged = isinstance(best.policy, AllVlbPolicy)

    # ---- finalize: assert the winner is statically sound ----
    verify_report: Optional["VerifyReport"] = None
    if verify:
        from repro.verify import verify_config

        # the topology's own certification scheme wins (e.g. FullMesh's
        # one-VC "none"); dragonflies certify under the simulation scheme
        scheme = topo.deadlock_vc_scheme or (
            sim_params or SimParams()
        ).vc_scheme
        # verify under PAR: its dependency set (revised fragments, one VC
        # level up) is a superset of every UGAL variant's
        verify_report = verify_config(
            topo, best.policy, scheme=scheme, routing="par", seed=seed
        )
        if not verify_report.passed:
            raise RuntimeError(
                "Algorithm 1 selected a T-VLB set that fails static "
                f"verification:\n{verify_report.to_text()}"
            )
    return TvlbResult(
        policy=best.policy,
        label=best.label,
        sweep=sweep,
        candidates=evaluated,
        converged_to_ugal=converged,
        verify_report=verify_report,
    )
