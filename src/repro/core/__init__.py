"""T-UGAL core: Algorithm 1, the paper's contribution.

``compute_tvlb`` runs the full two-step procedure -- Step-1 coarse-grain LP
sweep over the Table-1 grid, Step-2 strategic expansion, load-balance
analysis/adjustment, and simulation-based final selection -- and returns the
winning :class:`~repro.routing.pathset.PathPolicy` (the T-VLB set) for a
given topology.
"""

from repro.core.datapoints import datapoint_label, table1_datapoints
from repro.core.balance import (
    BalanceReport,
    balance_adjust,
    global_usage_probability,
    pair_usage_probability,
)
from repro.core.algorithm import (
    TvlbResult,
    compute_tvlb,
    model_evaluator,
    simulation_evaluator,
)

__all__ = [
    "table1_datapoints",
    "datapoint_label",
    "BalanceReport",
    "pair_usage_probability",
    "global_usage_probability",
    "balance_adjust",
    "compute_tvlb",
    "TvlbResult",
    "simulation_evaluator",
    "model_evaluator",
]
