"""Load-balance analysis and adjustment of candidate T-VLB sets
(Algorithm 1, lines 15-18).

T-VLB restricts the VLB candidate set, which can leave some channels far
more likely to be used than others.  Two levels are checked, following
Section 3.3.3:

* **local**: for one switch pair, assuming each of its candidate VLB paths
  equally likely, is some channel's usage probability much higher than the
  pair's average?
* **global**: averaging the per-pair distributions over all (sampled)
  pairs, is some channel globally much hotter than average?

When imbalance is found, the adjustment *removes paths* (the paper's simple
mechanism): locally the offending pair's paths through its hot channels,
globally every path through the globally hot channels, producing an
:class:`~repro.routing.pathset.ExcludingPolicy`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.routing.channels import ChannelIndex
from repro.routing.paths import Channel
from repro.routing.pathset import ExcludingPolicy, PathPolicy
from repro.routing.vlb import VlbDescriptor, vlb_path
from repro.topology.dragonfly import Dragonfly

__all__ = [
    "BalanceReport",
    "pair_usage_probability",
    "global_usage_probability",
    "balance_adjust",
]

Pair = Tuple[int, int]


@dataclass
class BalanceReport:
    """What the balance analysis found and what was removed."""

    local_hot_pairs: List[Pair] = field(default_factory=list)
    removed_descriptors: int = 0
    global_hot_channels: List[Channel] = field(default_factory=list)
    max_over_mean_local: float = 0.0
    max_over_mean_global: float = 0.0

    @property
    def adjusted(self) -> bool:
        return bool(self.removed_descriptors or self.global_hot_channels)


def pair_usage_probability(
    topo: Dragonfly,
    chidx: ChannelIndex,
    policy: PathPolicy,
    src: int,
    dst: int,
) -> np.ndarray:
    """P(channel is on the chosen path) for a pair under uniform selection."""
    usage = np.zeros(len(chidx))
    count = 0
    for desc in policy.iter_descriptors(topo, src, dst):
        for ch in vlb_path(topo, src, dst, desc).channels():
            usage[chidx.index(ch)] += 1.0
        count += 1
    if count:
        usage /= count
    return usage


def global_usage_probability(
    topo: Dragonfly,
    chidx: ChannelIndex,
    policy: PathPolicy,
    pairs: Sequence[Pair],
) -> np.ndarray:
    """Mean per-pair usage probability over ``pairs`` (uniform pair choice)."""
    total = np.zeros(len(chidx))
    for src, dst in pairs:
        total += pair_usage_probability(topo, chidx, policy, src, dst)
    if len(pairs):
        total /= len(pairs)
    return total


def _hot_indices(probs: np.ndarray, factor: float) -> np.ndarray:
    """Channels whose probability exceeds ``factor`` x mean of used channels."""
    used = probs[probs > 0]
    if used.size == 0:
        return np.empty(0, dtype=int)
    threshold = factor * used.mean()
    return np.flatnonzero(probs > threshold)


def balance_adjust(
    topo: Dragonfly,
    policy: PathPolicy,
    pairs: Sequence[Pair],
    *,
    chidx: Optional[ChannelIndex] = None,
    local_factor: float = 3.0,
    global_factor: float = 3.0,
    min_remaining: int = 4,
) -> Tuple[PathPolicy, BalanceReport]:
    """Detect and fix local/global imbalance by removing paths.

    ``min_remaining`` guards against removing so many paths that a pair is
    left with fewer candidates than that; offending removals are skipped
    (UGAL tolerates residual imbalance, as the paper notes).
    Returns ``(possibly wrapped policy, report)``.
    """
    if chidx is None:
        chidx = ChannelIndex(topo)
    report = BalanceReport()

    # ---- local level: per-pair hot channels -> remove that pair's paths
    excluded_descs: set = set()
    for src, dst in pairs:
        probs = pair_usage_probability(topo, chidx, policy, src, dst)
        used = probs[probs > 0]
        if used.size == 0:
            continue
        ratio = float(probs.max() / used.mean())
        report.max_over_mean_local = max(report.max_over_mean_local, ratio)
        hot = _hot_indices(probs, local_factor)
        if hot.size == 0:
            continue
        hot_set = {chidx.channel(i) for i in hot}
        keep: List[VlbDescriptor] = []
        drop: List[VlbDescriptor] = []
        for desc in policy.iter_descriptors(topo, src, dst):
            chans = set(vlb_path(topo, src, dst, desc).channels())
            (drop if chans & hot_set else keep).append(desc)
        if drop and len(keep) >= min_remaining:
            report.local_hot_pairs.append((src, dst))
            excluded_descs.update((src, dst, d) for d in drop)

    adjusted: PathPolicy = policy
    if excluded_descs:
        report.removed_descriptors = len(excluded_descs)
        adjusted = ExcludingPolicy(
            policy, excluded_descriptors=frozenset(excluded_descs)
        )

    # ---- global level: hot channels across all pairs -> exclude channels
    gprobs = global_usage_probability(topo, chidx, adjusted, pairs)
    used = gprobs[gprobs > 0]
    if used.size:
        report.max_over_mean_global = float(gprobs.max() / used.mean())
    ghot = _hot_indices(gprobs, global_factor)
    if ghot.size:
        channels = frozenset(chidx.channel(i) for i in ghot)
        candidate = ExcludingPolicy(
            adjusted if isinstance(adjusted, ExcludingPolicy) else policy,
            excluded_channels=channels,
            excluded_descriptors=(
                adjusted.excluded_descriptors
                if isinstance(adjusted, ExcludingPolicy)
                else frozenset()
            ),
        )
        # only commit if no pair is starved below min_remaining
        starved = False
        for src, dst in pairs:
            remaining = 0
            for _ in candidate.iter_descriptors(topo, src, dst):
                remaining += 1
                if remaining >= min_remaining:
                    break
            if remaining < min_remaining:
                starved = True
                break
        if not starved:
            report.global_hot_channels = sorted(
                channels, key=lambda ch: (ch.src, ch.dst, ch.slot)
            )
            adjusted = candidate

    return adjusted, report
