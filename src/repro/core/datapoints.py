"""The Step-1 datapoint grid (Table 1 of the paper).

Each datapoint is "all VLB paths of <= L hops plus q% of the (L+1)-hop
paths", represented directly as a :class:`HopClassPolicy`.  The full grid is
``3-hop, 10% 4-hop, .., 90% 4-hop, 4-hop, .., 90% 6-hop, all VLB``
(31 points at 10% steps); a coarser ``step`` shrinks sweeps for quick runs.
"""

from __future__ import annotations

from typing import List

from repro.routing.pathset import HopClassPolicy

__all__ = ["table1_datapoints", "datapoint_label"]


def datapoint_label(policy: HopClassPolicy) -> str:
    """The Table-1 name of a datapoint (delegates to the policy)."""
    return policy.describe()


def table1_datapoints(
    step: float = 0.1, seed: int = 0
) -> List[HopClassPolicy]:
    """The Table-1 grid as policies, in increasing-set order.

    ``step`` controls the percentage granularity of partial classes
    (0.1 reproduces Table 1 exactly; e.g. 0.25 probes 25/50/75%).
    """
    if not 0.0 < step <= 1.0:
        raise ValueError("step must be in (0, 1]")
    points: List[HopClassPolicy] = []
    fractions = []
    f = step
    while f < 1.0 - 1e-9:
        fractions.append(round(f, 10))
        f += step
    for full in (3, 4, 5):
        points.append(HopClassPolicy(full, 0.0, seed=seed))
        for frac in fractions:
            points.append(HopClassPolicy(full, frac, seed=seed))
    points.append(HopClassPolicy(6, 0.0, seed=seed))  # all VLB
    return points
