"""Dense indexing of every directed switch-to-switch channel.

Used by the LP model and the load-balance analysis to accumulate per-channel
loads in flat numpy arrays.  Local channels come first (per group, all
ordered switch pairs), then global channels (each :class:`GlobalLink` in
both directions).
"""

from __future__ import annotations

from typing import Dict, List

from repro.routing.paths import Channel
from repro.topology.dragonfly import Dragonfly

__all__ = ["ChannelIndex"]


class ChannelIndex:
    """Bijection between :class:`Channel` objects and ``0..n_channels-1``."""

    def __init__(self, topo: Dragonfly) -> None:
        self.topo = topo
        self._channels: List[Channel] = []
        self._index: Dict[Channel, int] = {}
        for u in range(topo.num_switches):
            for v in topo.local_neighbors(u):
                self._add(Channel(u, v))
        self.num_local = len(self._channels)
        for link in topo.global_links:
            self._add(Channel(link.switch_a, link.switch_b, link.slot))
            self._add(Channel(link.switch_b, link.switch_a, link.slot))
        self.num_global = 2 * len(topo.global_links)

    def _add(self, ch: Channel) -> None:
        if ch in self._index:
            raise ValueError(
                f"duplicate channel registration: {ch} is already index "
                f"{self._index[ch]}"
            )
        self._index[ch] = len(self._channels)
        self._channels.append(ch)

    def __len__(self) -> int:
        return len(self._channels)

    def index(self, ch: Channel) -> int:
        return self._index[ch]

    def channel(self, idx: int) -> Channel:
        return self._channels[idx]

    def is_global(self, idx: int) -> bool:
        return self._channels[idx].is_global
