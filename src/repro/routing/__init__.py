"""Path computation on dragonfly: MIN paths, VLB paths, and path policies.

A *MIN path* crosses at most one global link; between two groups there is
exactly one canonical MIN path per global link joining them (local hop to
the link's source-side switch, the global hop, local hop to the
destination switch), so MIN path diversity equals the number of links
between the group pair.

A *VLB path* is two MIN paths glued at an intermediate switch outside the
source and destination groups.  We represent a VLB path compactly by its
:class:`VlbDescriptor` ``(mid, slot1, slot2)`` and only materialize
:class:`Path` objects on demand -- full enumeration is quadratic in the
links-per-group-pair and infeasible to store for large topologies.

:class:`PathPolicy` subclasses define *which* VLB paths a routing scheme may
use; they are the object Algorithm 1 (``repro.core``) produces and the
simulator and LP model consume.
"""

from repro.routing.paths import Channel, Path
from repro.routing.minimal import min_path_via, min_paths
from repro.routing.vlb import (
    VlbDescriptor,
    enumerate_vlb_descriptors,
    vlb_class_counts,
    vlb_hops,
    vlb_path,
)
from repro.routing.pathset import (
    AllVlbPolicy,
    ExcludingPolicy,
    ExplicitPathSet,
    HopClassPolicy,
    PathPolicy,
    StrategicFiveHopPolicy,
)
from repro.routing.analysis import (
    PathLengthStats,
    expected_packet_hops,
    mean_min_hops,
    vlb_length_distribution,
)
from repro.routing.channels import ChannelIndex
from repro.routing.serialization import (
    load_policy,
    policy_from_dict,
    policy_to_dict,
    save_policy,
)

__all__ = [
    "Channel",
    "Path",
    "min_paths",
    "min_path_via",
    "VlbDescriptor",
    "vlb_path",
    "vlb_hops",
    "vlb_class_counts",
    "enumerate_vlb_descriptors",
    "PathPolicy",
    "AllVlbPolicy",
    "HopClassPolicy",
    "StrategicFiveHopPolicy",
    "ExcludingPolicy",
    "ExplicitPathSet",
    "PathLengthStats",
    "vlb_length_distribution",
    "mean_min_hops",
    "expected_packet_hops",
    "ChannelIndex",
    "policy_to_dict",
    "policy_from_dict",
    "save_policy",
    "load_policy",
]
