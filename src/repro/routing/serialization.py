"""Serialization of path policies (T-VLB sets).

The paper emphasizes that T-VLB is computed once, offline, "during network
designing", and never changes unless the topology does.  These helpers
turn any policy produced by Algorithm 1 into a JSON-safe dict (and back),
so a computed T-VLB can be stored next to the network configuration and
loaded by the router at boot.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.routing.paths import Channel
from repro.routing.pathset import (
    AllVlbPolicy,
    ExcludingPolicy,
    ExplicitPathSet,
    HopClassPolicy,
    OrderedVlbPolicy,
    PathPolicy,
    StrategicFiveHopPolicy,
)
from repro.routing.vlb import VlbDescriptor

__all__ = ["policy_to_dict", "policy_from_dict", "save_policy", "load_policy"]


def policy_to_dict(policy: PathPolicy) -> Dict:
    """JSON-safe representation of a policy."""
    if isinstance(policy, AllVlbPolicy):
        return {"kind": "all"}
    if isinstance(policy, HopClassPolicy):
        return {
            "kind": "hopclass",
            "full_hops": policy.full_hops,
            "extra_fraction": policy.extra_fraction,
            "seed": policy.seed,
        }
    if isinstance(policy, StrategicFiveHopPolicy):
        return {"kind": "strategic", "order": policy.order}
    if isinstance(policy, OrderedVlbPolicy):
        return {
            "kind": "ordered",
            "fraction": policy.fraction,
            "seed": policy.seed,
        }
    if isinstance(policy, ExcludingPolicy):
        return {
            "kind": "excluding",
            "base": policy_to_dict(policy.base),
            "excluded_channels": [
                [ch.src, ch.dst, ch.slot]
                for ch in sorted(
                    policy.excluded_channels,
                    key=lambda c: (c.src, c.dst, c.slot),
                )
            ],
            "excluded_descriptors": [
                [src, dst, list(desc)]
                for src, dst, desc in sorted(policy.excluded_descriptors)
            ],
        }
    if isinstance(policy, ExplicitPathSet):
        return {
            "kind": "explicit",
            "label": policy.label,
            "paths": [
                [src, dst, [list(d) for d in descs]]
                for (src, dst), descs in sorted(policy.paths.items())
            ],
        }
    raise TypeError(f"cannot serialize policy type {type(policy).__name__}")


def policy_from_dict(data: Dict) -> PathPolicy:
    """Inverse of :func:`policy_to_dict`."""
    kind = data.get("kind")
    if kind == "all":
        return AllVlbPolicy()
    if kind == "hopclass":
        return HopClassPolicy(
            full_hops=data["full_hops"],
            extra_fraction=data["extra_fraction"],
            seed=data.get("seed", 0),
        )
    if kind == "strategic":
        return StrategicFiveHopPolicy(order=data["order"])
    if kind == "ordered":
        return OrderedVlbPolicy(
            fraction=data["fraction"], seed=data.get("seed", 0)
        )
    if kind == "excluding":
        return ExcludingPolicy(
            base=policy_from_dict(data["base"]),
            excluded_channels=frozenset(
                Channel(src, dst, slot)
                for src, dst, slot in data["excluded_channels"]
            ),
            excluded_descriptors=frozenset(
                (src, dst, VlbDescriptor(*desc))
                for src, dst, desc in data["excluded_descriptors"]
            ),
        )
    if kind == "explicit":
        return ExplicitPathSet(
            paths={
                (src, dst): [VlbDescriptor(*d) for d in descs]
                for src, dst, descs in data["paths"]
            },
            label=data.get("label", "explicit"),
        )
    raise ValueError(f"unknown policy kind {kind!r}")


def save_policy(policy: PathPolicy, path: str) -> None:
    """Write a policy to a JSON file."""
    with open(path, "w") as fh:
        json.dump(policy_to_dict(policy), fh, indent=2)
        fh.write("\n")


def load_policy(path: str) -> PathPolicy:
    """Load a policy from a JSON file."""
    with open(path) as fh:
        return policy_from_dict(json.load(fh))
