"""Path policies: which VLB paths a routing scheme is allowed to use.

The conventional UGAL uses :class:`AllVlbPolicy`.  T-UGAL (the paper's
contribution) uses a restricted policy computed per topology by
``repro.core.compute_tvlb`` -- typically a :class:`HopClassPolicy`
("all paths of <= L hops plus q% of the (L+1)-hop paths", Table 1 of the
paper), a :class:`StrategicFiveHopPolicy` (the deterministic "all 2-hop MIN
legs followed by 3-hop MIN legs" choice of Section 3.3.3), possibly wrapped
in an :class:`ExcludingPolicy` after load-balance adjustment.

Percentage subsets are *deterministic*: a path is included iff a stable
64-bit mix of (seed, src, dst, descriptor) falls below the quota.  The same
subset is therefore seen by the LP model, the balance analysis, and the
simulator without ever materializing the set, and membership is O(1).

Candidate sampling is O(1) rejection sampling over the uniform descriptor
distribution with a bounded number of attempts, falling back to reservoir
sampling over full enumeration for extremely sparse policies.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

import numpy as np

from repro.routing.paths import Channel, Path
from repro.routing.vlb import (
    VlbDescriptor,
    enumerate_vlb_descriptors,
    vlb_hops,
    vlb_leg_hops,
    vlb_path,
)
from repro.topology.dragonfly import Dragonfly

__all__ = [
    "PathPolicy",
    "AllVlbPolicy",
    "HopClassPolicy",
    "OrderedVlbPolicy",
    "StrategicFiveHopPolicy",
    "ExcludingPolicy",
    "ExplicitPathSet",
    "reset_sample_memo",
    "swap_sample_memo",
]

_SAMPLE_ATTEMPTS = 128
# Sparse-policy fallback memo: when rejection sampling fails for a pair,
# one enumeration reservoir-samples this many descriptors and they are
# reused for every later draw of that (policy, pair).  Policies are frozen
# (hashable), so equal policies share entries.
_SPARSE_RESERVOIR = 256
_SPARSE_MEMO_MAX = 20_000  # pairs; beyond this, reservoirs are not stored
_sparse_memo: dict = {}


def reset_sample_memo() -> None:
    """Clear the sparse-policy reservoir memo.

    The memo's contents depend on the rng that first populated each
    entry, so a simulation that inherits another run's reservoirs can
    draw differently than one starting fresh.  ``simulate()`` clears it
    at entry so every run is a pure function of its own arguments --
    which also makes serial and process-pool sweeps bit-identical.
    """
    _sparse_memo.clear()


def swap_sample_memo(memo: dict) -> dict:
    """Install ``memo`` as the live reservoir memo, returning the old one.

    The batched driver (:mod:`repro.sim.batch`) interleaves several
    runs in one process; because reservoir contents depend on the rng
    that populated them, each run owns a private memo dict and swaps it
    in around its injection/revision slices -- the batched equivalent of
    the fresh-memo-per-run guarantee :func:`reset_sample_memo` gives
    ``simulate()``.
    """
    global _sparse_memo
    old = _sparse_memo
    _sparse_memo = memo
    return old


def _mix(seed: int, src: int, dst: int, desc: VlbDescriptor) -> int:
    """Stable splitmix64-style hash of a path identity into [0, 2**64)."""
    # plain Python ints: numpy scalars would overflow at 64-bit products
    src, dst = int(src), int(dst)
    x = (
        (seed & 0xFFFFFFFFFFFFFFFF) * 0x9E3779B97F4A7C15
        + src * 0xBF58476D1CE4E5B9
        + dst * 0x94D049BB133111EB
        + desc.mid * 0xD6E8FEB86659FD93
        + desc.slot1 * 0xA5A5A5A5A5A5A5A5
        + desc.slot2 * 0x0123456789ABCDEF
    ) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 31
    return x


class PathPolicy(abc.ABC):
    """The set of candidate VLB paths available per switch pair."""

    @abc.abstractmethod
    def contains(
        self, topo: Dragonfly, src: int, dst: int, desc: VlbDescriptor
    ) -> bool:
        """Is this VLB path in the candidate set for (src, dst)?"""

    @abc.abstractmethod
    def describe(self) -> str:
        """Short human-readable label (used in benches and reports)."""

    # ------------------------------------------------------------------
    def iter_descriptors(
        self, topo: Dragonfly, src: int, dst: int
    ) -> Iterator[VlbDescriptor]:
        """All descriptors in the set for a pair (enumeration order)."""
        for desc in enumerate_vlb_descriptors(topo, src, dst):
            if self.contains(topo, src, dst, desc):
                yield desc

    def sample(
        self,
        topo: Dragonfly,
        src: int,
        dst: int,
        rng: np.random.Generator,
    ) -> Optional[VlbDescriptor]:
        """Draw one candidate VLB path uniformly from the set.

        Returns ``None`` when the pair has no VLB path at all (fewer than
        three groups) or the policy excludes every path for the pair.
        """
        gs, gd = topo.group_of(src), topo.group_of(dst)
        eligible = [
            gm for gm in range(topo.g) if gm != gs and gm != gd
        ]
        if not eligible:
            return None
        for _ in range(_SAMPLE_ATTEMPTS):
            gm = eligible[int(rng.integers(len(eligible)))]
            m1 = len(topo.links_between_groups(gs, gm))
            m2 = len(topo.links_between_groups(gm, gd))
            if m1 == 0 or m2 == 0:
                continue
            desc = VlbDescriptor(
                mid=topo.switch_id(gm, int(rng.integers(topo.a))),
                slot1=int(rng.integers(m1)),
                slot2=int(rng.integers(m2)),
            )
            if self.contains(topo, src, dst, desc):
                return desc
        # Sparse policy: build a memoized reservoir for this pair, reused
        # by every later draw.  A long bounded rejection burst is tried
        # first (cheap); full enumeration only for truly tiny/empty sets.
        key = (self, src, dst)
        reservoir = _sparse_memo.get(key)
        if reservoir is None:
            reservoir = []
            burst = 64 * _SPARSE_RESERVOIR
            for _ in range(burst):
                gm = eligible[int(rng.integers(len(eligible)))]
                m1 = len(topo.links_between_groups(gs, gm))
                m2 = len(topo.links_between_groups(gm, gd))
                if m1 == 0 or m2 == 0:
                    continue
                desc = VlbDescriptor(
                    mid=topo.switch_id(gm, int(rng.integers(topo.a))),
                    slot1=int(rng.integers(m1)),
                    slot2=int(rng.integers(m2)),
                )
                if self.contains(topo, src, dst, desc):
                    reservoir.append(desc)
                    if len(reservoir) >= _SPARSE_RESERVOIR:
                        break
            if not reservoir:
                # genuinely tiny or empty set: enumerate exactly once
                seen = 0
                for desc in self.iter_descriptors(topo, src, dst):
                    seen += 1
                    if len(reservoir) < _SPARSE_RESERVOIR:
                        reservoir.append(desc)
                    else:
                        j = int(rng.integers(seen))
                        if j < _SPARSE_RESERVOIR:
                            reservoir[j] = desc
            if len(_sparse_memo) < _SPARSE_MEMO_MAX:
                _sparse_memo[key] = reservoir
        if not reservoir:
            return None
        return reservoir[int(rng.integers(len(reservoir)))]

    def sample_path(
        self,
        topo: Dragonfly,
        src: int,
        dst: int,
        rng: np.random.Generator,
    ) -> Optional[Path]:
        """Like :meth:`sample` but returns a materialized :class:`Path`."""
        desc = self.sample(topo, src, dst, rng)
        if desc is None:
            return None
        return vlb_path(topo, src, dst, desc)

    def average_hops(self, topo: Dragonfly, src: int, dst: int) -> float:
        """Mean hop count over the set for a pair (by enumeration)."""
        total = 0
        count = 0
        for desc in self.iter_descriptors(topo, src, dst):
            total += vlb_hops(topo, src, dst, desc)
            count += 1
        if count == 0:
            raise ValueError(f"policy has no VLB path for pair ({src},{dst})")
        return total / count


@dataclass(frozen=True)
class AllVlbPolicy(PathPolicy):
    """Every VLB path -- the conventional UGAL candidate set."""

    def contains(self, topo, src, dst, desc) -> bool:
        return True

    def describe(self) -> str:
        return "all VLB"


@dataclass(frozen=True)
class HopClassPolicy(PathPolicy):
    """All VLB paths of <= ``full_hops`` hops plus a deterministic
    ``extra_fraction`` of the ``full_hops + 1`` class (a Table-1 datapoint).

    ``full_hops=6`` (or 5 with fraction 1.0 etc.) degenerates to all VLB.
    ``full_hops=0`` with ``extra_fraction=0.0`` admits no VLB path at all:
    the MIN-only policy (the ``repro.adversary`` scoring objective).
    """

    full_hops: int
    extra_fraction: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        # fully connected groups top out at 6 hops; Cascade-style 2D
        # all-to-all groups at 10.  0 is the degenerate MIN-only policy;
        # 1 stays invalid (no VLB path has fewer than 2 hops)
        if self.full_hops != 0 and not 2 <= self.full_hops <= 12:
            raise ValueError("full_hops must be 0 (MIN only) or in 2..12")
        if not 0.0 <= self.extra_fraction <= 1.0:
            raise ValueError("extra_fraction must be in [0, 1]")

    def contains(self, topo, src, dst, desc) -> bool:
        hops = vlb_hops(topo, src, dst, desc)
        if hops <= self.full_hops:
            return True
        if hops == self.full_hops + 1 and self.extra_fraction > 0.0:
            quota = int(round(self.extra_fraction * 10_000))
            return _mix(self.seed, src, dst, desc) % 10_000 < quota
        return False

    def describe(self) -> str:
        if self.full_hops == 0 and self.extra_fraction == 0.0:
            return "MIN only"
        if self.full_hops >= 6 or (
            self.full_hops == 5 and self.extra_fraction >= 1.0
        ):
            return "all VLB"
        if self.extra_fraction == 0.0:
            return f"{self.full_hops}-hop"
        return (
            f"{int(round(self.extra_fraction * 100))}% "
            f"{self.full_hops + 1}-hop"
        )


@dataclass(frozen=True)
class OrderedVlbPolicy(PathPolicy):
    """VLB restricted to intermediate switches larger than both endpoints,
    plus an optional deterministic ``fraction`` of those intermediates.

    The restriction ``mid > max(src, dst)`` is the HOTI'25-style
    deadlock-freedom argument for direct topologies without local hops
    (e.g. :class:`~repro.topology.fullmesh.FullMesh`): every channel
    dependency then points from a channel *entering* ``mid`` to one
    *leaving* ``mid`` with ``mid`` above both far endpoints, so no two
    dependencies can chain and the single-VC channel dependency graph is
    acyclic.  On topologies with intra-group hops the argument does not
    apply -- there the usual VC ladders do the protecting.

    Pairs involving the largest switch have no admissible intermediate;
    the routing layer degrades those pairs to MIN-only (exactly the
    paper's behaviour for pairs whose restricted set is empty).
    """

    fraction: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")

    def contains(self, topo, src, dst, desc) -> bool:
        if desc.mid <= src or desc.mid <= dst:
            return False
        if self.fraction >= 1.0:
            return True
        quota = int(round(self.fraction * 10_000))
        return _mix(self.seed, src, dst, desc) % 10_000 < quota

    def describe(self) -> str:
        if self.fraction >= 1.0:
            return "ordered VLB"
        return f"{int(round(self.fraction * 100))}% ordered VLB"


@dataclass(frozen=True)
class StrategicFiveHopPolicy(PathPolicy):
    """All VLB paths of <= 4 hops plus the 5-hop paths whose MIN legs have
    the given lengths -- the deterministic "strategic" choices of Section
    3.3.3 (half of the 5-hop class each).

    ``order='2+3'``: 2-hop first leg followed by 3-hop second leg;
    ``order='3+2'``: the opposite split.
    """

    order: str = "2+3"

    def __post_init__(self) -> None:
        if self.order not in ("2+3", "3+2"):
            raise ValueError("order must be '2+3' or '3+2'")

    def contains(self, topo, src, dst, desc) -> bool:
        a, b = vlb_leg_hops(topo, src, dst, desc)
        if a + b <= 4:
            return True
        if a + b == 5:
            return (a, b) == ((2, 3) if self.order == "2+3" else (3, 2))
        return False

    def describe(self) -> str:
        return f"strategic 5-hop ({self.order})"


@dataclass(frozen=True)
class ExcludingPolicy(PathPolicy):
    """A base policy minus paths using any excluded channel or descriptor.

    This is what the load-balance adjustment of Algorithm 1 Step 2 produces:
    paths responsible for hot links are *removed* (the paper's "simple
    mechanism of just removing paths").

    ``excluded_channels`` removes paths globally; ``excluded_descriptors``
    removes specific (src, dst, descriptor) triples (local adjustment).
    """

    base: PathPolicy
    excluded_channels: FrozenSet[Channel] = frozenset()
    excluded_descriptors: FrozenSet[Tuple[int, int, VlbDescriptor]] = frozenset()

    def contains(self, topo, src, dst, desc) -> bool:
        if not self.base.contains(topo, src, dst, desc):
            return False
        if (src, dst, desc) in self.excluded_descriptors:
            return False
        if self.excluded_channels:
            path = vlb_path(topo, src, dst, desc)
            if any(ch in self.excluded_channels for ch in path.channels()):
                return False
        return True

    def describe(self) -> str:
        return (
            f"{self.base.describe()} minus {len(self.excluded_channels)} "
            f"channels / {len(self.excluded_descriptors)} paths"
        )


@dataclass
class ExplicitPathSet(PathPolicy):
    """A fully materialized per-pair path set (small topologies / tests).

    Built either from another policy (``from_policy``) or directly from a
    mapping of pair -> descriptor list.
    """

    paths: Dict[Tuple[int, int], List[VlbDescriptor]] = field(
        default_factory=dict
    )
    label: str = "explicit"

    @classmethod
    def from_policy(
        cls,
        topo: Dragonfly,
        policy: PathPolicy,
        pairs: Optional[List[Tuple[int, int]]] = None,
    ) -> "ExplicitPathSet":
        if pairs is None:
            pairs = [
                (s, d)
                for s in range(topo.num_switches)
                for d in range(topo.num_switches)
                if s != d
            ]
        table = {
            pair: list(policy.iter_descriptors(topo, *pair)) for pair in pairs
        }
        return cls(paths=table, label=f"explicit({policy.describe()})")

    def contains(self, topo, src, dst, desc) -> bool:
        return desc in self.paths.get((src, dst), ())

    def iter_descriptors(self, topo, src, dst):
        return iter(self.paths.get((src, dst), ()))

    def sample(self, topo, src, dst, rng):
        options = self.paths.get((src, dst))
        if not options:
            return None
        return options[int(rng.integers(len(options)))]

    def describe(self) -> str:
        return self.label
