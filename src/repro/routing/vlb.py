"""Valiant (VLB) path computation via compact descriptors.

A VLB path routes ``src -> mid -> dst`` where ``mid`` is an intermediate
switch outside both the source and destination groups, and each leg is a
canonical MIN path.  The descriptor ``(mid, slot1, slot2)`` -- intermediate
switch plus the global-link slots chosen for each leg -- identifies the path
uniquely, so the full VLB set never has to be materialized: there are
``(g-2) * a * m^2`` descriptors per switch pair (``m`` links per group
pair), ~110k per pair on ``dfly(13,26,13,27)``.

Hop counts run from 2 (both legs are bare global hops) to 6 (both legs are
local+global+local), always with exactly 2 global hops.
"""

from __future__ import annotations

from typing import Dict, Iterator, NamedTuple

from repro.routing.minimal import min_hops_via, min_path_via
from repro.routing.paths import Path
from repro.topology.dragonfly import Dragonfly

__all__ = [
    "max_vlb_hops",
    "VlbDescriptor",
    "vlb_path",
    "vlb_hops",
    "vlb_leg_hops",
    "enumerate_vlb_descriptors",
    "vlb_class_counts",
    "count_vlb_paths",
]

MIN_VLB_HOPS = 2
MAX_VLB_HOPS = 6  # fully connected groups; see max_vlb_hops() for others


def max_vlb_hops(topo: Dragonfly) -> int:
    """Longest possible VLB path on this topology: two MIN legs, each up
    to ``2*max_local_hops + 1`` hops (e.g. 6 for fully connected groups,
    10 for 2D all-to-all Cascade groups)."""
    return 2 * (2 * topo.max_local_hops + 1)


class VlbDescriptor(NamedTuple):
    """Compact identity of one VLB path: intermediate switch + leg link slots."""

    mid: int
    slot1: int  # global link slot between src group and mid group
    slot2: int  # global link slot between mid group and dst group


def _legs(topo: Dragonfly, src: int, dst: int, desc: VlbDescriptor):
    gs, gd = topo.group_of(src), topo.group_of(dst)
    gm = topo.group_of(desc.mid)
    if gm == gs or gm == gd:
        raise ValueError(
            f"VLB intermediate {desc.mid} lies in the source or destination "
            f"group ({gs}, {gd})"
        )
    link1 = topo.links_between_groups(gs, gm)[desc.slot1]
    link2 = topo.links_between_groups(gm, gd)[desc.slot2]
    return link1, link2


def vlb_path(topo: Dragonfly, src: int, dst: int, desc: VlbDescriptor) -> Path:
    """Materialize the VLB path for a descriptor."""
    link1, link2 = _legs(topo, src, dst, desc)
    first = min_path_via(topo, src, desc.mid, link1)
    second = min_path_via(topo, desc.mid, dst, link2)
    return first.concat(second)


def vlb_leg_hops(
    topo: Dragonfly, src: int, dst: int, desc: VlbDescriptor
) -> tuple:
    """Hop counts of the two MIN legs, without building paths."""
    link1, link2 = _legs(topo, src, dst, desc)
    return (
        min_hops_via(topo, src, desc.mid, link1),
        min_hops_via(topo, desc.mid, dst, link2),
    )


def vlb_hops(topo: Dragonfly, src: int, dst: int, desc: VlbDescriptor) -> int:
    """Total hop count of a VLB path, without building it."""
    a, b = vlb_leg_hops(topo, src, dst, desc)
    return a + b


def enumerate_vlb_descriptors(
    topo: Dragonfly, src: int, dst: int
) -> Iterator[VlbDescriptor]:
    """Yield every VLB descriptor for a switch pair.

    Order: intermediate switches ascending, then slot1, then slot2 -- a
    deterministic order that callers may subsample.
    """
    gs, gd = topo.group_of(src), topo.group_of(dst)
    for gm in range(topo.g):
        if gm == gs or gm == gd:
            continue
        m1 = len(topo.links_between_groups(gs, gm))
        m2 = len(topo.links_between_groups(gm, gd))
        for mid in topo.switches_in_group(gm):
            for s1 in range(m1):
                for s2 in range(m2):
                    yield VlbDescriptor(mid, s1, s2)


def count_vlb_paths(topo: Dragonfly, src: int, dst: int) -> int:
    """Number of VLB descriptors for a switch pair (closed form per group)."""
    gs, gd = topo.group_of(src), topo.group_of(dst)
    total = 0
    for gm in range(topo.g):
        if gm == gs or gm == gd:
            continue
        m1 = len(topo.links_between_groups(gs, gm))
        m2 = len(topo.links_between_groups(gm, gd))
        total += topo.a * m1 * m2
    return total


def vlb_class_counts(topo: Dragonfly, src: int, dst: int) -> Dict[int, int]:
    """Histogram {hop count: number of VLB paths} for a switch pair."""
    counts: Dict[int, int] = {}
    for desc in enumerate_vlb_descriptors(topo, src, dst):
        h = vlb_hops(topo, src, dst, desc)
        counts[h] = counts.get(h, 0) + 1
    return counts
