"""Path-length analytics for candidate VLB sets.

Supports the paper's Section 3.1 motivation: with MIN paths of ~3 hops and
all-VLB paths of ~6 hops, a UGAL mix routing 70% minimally averages
``0.7*3 + 0.3*6 = 3.9`` hops per packet; shortening the VLB set to 4.8
hops cuts that to 3.54 -- a ~10% latency/load reduction.  These helpers
compute the same quantities for real topologies and policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.routing.minimal import min_paths
from repro.routing.pathset import PathPolicy
from repro.routing.vlb import vlb_hops
from repro.topology.dragonfly import Dragonfly

__all__ = [
    "PathLengthStats",
    "vlb_length_distribution",
    "mean_min_hops",
    "expected_packet_hops",
]


@dataclass
class PathLengthStats:
    """Hop histogram and mean of a policy's VLB set over sampled pairs."""

    histogram: Dict[int, int]
    mean: float
    count: int

    def fraction(self, hops: int) -> float:
        return self.histogram.get(hops, 0) / self.count if self.count else 0.0


def vlb_length_distribution(
    topo: Dragonfly,
    policy: PathPolicy,
    pairs: Sequence[Tuple[int, int]],
) -> PathLengthStats:
    """Hop-count distribution of the policy's VLB paths over ``pairs``."""
    histogram: Dict[int, int] = {}
    total = 0
    count = 0
    for src, dst in pairs:
        for desc in policy.iter_descriptors(topo, src, dst):
            h = vlb_hops(topo, src, dst, desc)
            histogram[h] = histogram.get(h, 0) + 1
            total += h
            count += 1
    mean = total / count if count else float("nan")
    return PathLengthStats(histogram=histogram, mean=mean, count=count)


def mean_min_hops(
    topo: Dragonfly, pairs: Sequence[Tuple[int, int]]
) -> float:
    """Mean MIN path length over pairs (uniform over each pair's paths)."""
    values = []
    for src, dst in pairs:
        paths = min_paths(topo, src, dst)
        values.append(np.mean([p.num_hops for p in paths]))
    return float(np.mean(values)) if values else float("nan")


def expected_packet_hops(
    min_fraction: float, min_hops: float, vlb_hops_mean: float
) -> float:
    """Average hops per packet for a MIN/VLB mix (Section 3.1 arithmetic)."""
    if not 0.0 <= min_fraction <= 1.0:
        raise ValueError("min_fraction must be in [0, 1]")
    return min_fraction * min_hops + (1.0 - min_fraction) * vlb_hops_mean
