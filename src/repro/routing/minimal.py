"""Minimal (MIN) path computation.

On a dragonfly with fully connected groups, a MIN path from switch ``u`` to
switch ``v``:

* is empty when ``u == v``;
* is the single local hop when they share a group;
* otherwise takes (up to) one local hop to the switch in ``u``'s group
  holding a global link to ``v``'s group, the global hop, and (up to) one
  local hop to ``v`` -- one canonical MIN path *per global link* between the
  two groups, 1 to 3 hops long.
"""

from __future__ import annotations

from typing import List

from repro.routing.paths import LOCAL_SLOT, Path
from repro.topology.dragonfly import Dragonfly, GlobalLink

__all__ = ["min_paths", "min_path_via", "min_hops_via"]


def _extend_local(topo, switches: list, slots: list, target: int) -> None:
    """Append the canonical intra-group route from ``switches[-1]`` to
    ``target`` (possibly multi-hop on sparse intra-group topologies)."""
    here = switches[-1]
    if here == target:
        return
    for mid in topo.local_route(here, target):
        switches.append(mid)
        slots.append(LOCAL_SLOT)
    switches.append(target)
    slots.append(LOCAL_SLOT)


def min_path_via(topo: Dragonfly, src: int, dst: int, link: GlobalLink) -> Path:
    """The canonical MIN path from ``src`` to ``dst`` using global ``link``.

    ``link`` must join ``src``'s and ``dst``'s groups (which must differ).
    Local segments follow the topology's canonical intra-group route (one
    hop on fully connected groups, dimension-ordered on Cascade grids).
    """
    gs, gd = topo.group_of(src), topo.group_of(dst)
    x = link.endpoint_in(gs)
    y = link.endpoint_in(gd)
    switches = [src]
    slots: list = []
    _extend_local(topo, switches, slots, x)
    switches.append(y)
    slots.append(link.slot)
    _extend_local(topo, switches, slots, dst)
    return Path(tuple(switches), tuple(slots))


def min_hops_via(topo: Dragonfly, src: int, dst: int, link: GlobalLink) -> int:
    """Hop count of :func:`min_path_via` without building the path."""
    gs, gd = topo.group_of(src), topo.group_of(dst)
    return (
        topo.local_hops(src, link.endpoint_in(gs))
        + 1
        + topo.local_hops(link.endpoint_in(gd), dst)
    )


def min_paths(topo: Dragonfly, src: int, dst: int) -> List[Path]:
    """All MIN paths from ``src`` to ``dst`` (switch ids).

    Returns one zero-hop path if ``src == dst``, the single local-hop path
    if they share a group, else one path per global link between the groups
    (in link slot order).
    """
    if src == dst:
        return [Path((src,), ())]
    gs, gd = topo.group_of(src), topo.group_of(dst)
    if gs == gd:
        switches = [src]
        slots: list = []
        _extend_local(topo, switches, slots, dst)
        return [Path(tuple(switches), tuple(slots))]
    return [
        min_path_via(topo, src, dst, link)
        for link in topo.links_between_groups(gs, gd)
    ]
