"""Switch-level paths and channel identities.

A :class:`Path` records the switch sequence plus, for every global hop, the
*slot* of the global link used -- required because non-maximal dragonflies
have parallel global links between the same pair of switches and link-level
load accounting must tell them apart.

A :class:`Channel` is a directed switch-to-switch channel key usable as a
dict key for load accounting: local channels are identified by their
endpoint switches, global channels additionally by the link slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.topology.dragonfly import Dragonfly

__all__ = ["Channel", "Path"]

LOCAL_SLOT = -1  # slot placeholder for local (intra-group) hops


@dataclass(frozen=True)
class Channel:
    """A directed switch-to-switch channel.

    ``slot`` is the global-link slot (0-based within the group pair) for
    global channels and ``-1`` for local channels.
    """

    src: int
    dst: int
    slot: int = LOCAL_SLOT

    @property
    def is_global(self) -> bool:
        return self.slot != LOCAL_SLOT


@dataclass(frozen=True)
class Path:
    """A switch-level path: ``switches[i] -> switches[i+1]`` per hop.

    ``slots[i]`` is the global-link slot of hop ``i`` (``-1`` if local).
    A zero-hop path (source switch == destination switch) is
    ``Path((sw,), ())``.
    """

    switches: Tuple[int, ...]
    slots: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.switches) == 0:
            raise ValueError("a path needs at least one switch")
        if len(self.slots) != len(self.switches) - 1:
            raise ValueError(
                f"{len(self.switches)} switches need "
                f"{len(self.switches) - 1} hop slots, got {len(self.slots)}"
            )

    @property
    def src(self) -> int:
        return self.switches[0]

    @property
    def dst(self) -> int:
        return self.switches[-1]

    @property
    def num_hops(self) -> int:
        return len(self.switches) - 1

    @property
    def num_global_hops(self) -> int:
        return sum(1 for s in self.slots if s != LOCAL_SLOT)

    @property
    def num_local_hops(self) -> int:
        return self.num_hops - self.num_global_hops

    def channels(self) -> Iterator[Channel]:
        """Directed channels traversed, in order."""
        for i in range(self.num_hops):
            yield Channel(self.switches[i], self.switches[i + 1], self.slots[i])

    def concat(self, other: "Path") -> "Path":
        """Join two paths sharing a junction switch (``self.dst == other.src``)."""
        if self.dst != other.src:
            raise ValueError(
                f"cannot join path ending at {self.dst} with path starting "
                f"at {other.src}"
            )
        return Path(
            self.switches + other.switches[1:], self.slots + other.slots
        )

    def validate(self, topo: Dragonfly) -> None:
        """Raise ``ValueError`` unless every hop is a real channel of ``topo``."""
        for ch in self.channels():
            gu, gv = topo.group_of(ch.src), topo.group_of(ch.dst)
            if ch.slot == LOCAL_SLOT:
                if not topo.local_adjacent(ch.src, ch.dst):
                    raise ValueError(f"{ch} is not a local channel")
            else:
                links = topo.links_between_groups(gu, gv)
                if ch.slot >= len(links):
                    raise ValueError(f"{ch}: slot out of range")
                link = links[ch.slot]
                if {link.switch_a, link.switch_b} != {ch.src, ch.dst}:
                    raise ValueError(
                        f"{ch} does not match link {link} at that slot"
                    )

    def __len__(self) -> int:
        return self.num_hops
