"""Routing decision strategies: the variant-specific half of UGAL routing.

:class:`~repro.sim.routing.RoutingAlgorithm` owns the state a decision
needs -- candidate caches, queue estimates, decision counters -- while the
*decision procedure* of each variant (MIN, VLB, UGAL-L, UGAL-G, PAR) lives
here as a registered strategy object.  Adding a routing variant means
registering a new strategy in ``ROUTING_REGISTRY`` (see
:mod:`repro.spec.builtins`), not editing branch chains in the algorithm.

Every strategy draws its random candidates in exactly the order the
original monolithic implementation did, so same-seed simulations are
bit-identical to the pre-split code (pinned by the LegacyParity tests).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.routing.paths import LOCAL_SLOT, Path
from repro.sim.vc import assign_vcs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.packet import Packet
    from repro.sim.routing import CandidateEntry, RoutingAlgorithm

__all__ = [
    "MinimalStrategy",
    "ParStrategy",
    "RoutingStrategy",
    "UgalGlobalStrategy",
    "UgalLocalStrategy",
    "ValiantStrategy",
]


class RoutingStrategy:
    """Per-variant route selection; stateless, shared across algorithms."""

    name: str = ""

    def decide(
        self,
        algo: "RoutingAlgorithm",
        packet: "Packet",
        src_sw: int,
        dst_sw: int,
    ) -> None:
        """Choose a route for ``packet`` at its source switch."""
        raise NotImplementedError

    def revise(
        self, algo: "RoutingAlgorithm", packet: "Packet", router_idx: int
    ) -> None:
        """Mid-route revision hook (PAR only); default is a no-op."""
        return None


class MinimalStrategy(RoutingStrategy):
    """Always a random MIN path."""

    name = "min"

    def decide(
        self,
        algo: "RoutingAlgorithm",
        packet: "Packet",
        src_sw: int,
        dst_sw: int,
    ) -> None:
        algo._apply(packet, algo._random_min(src_sw, dst_sw), used_vlb=False)


class ValiantStrategy(RoutingStrategy):
    """Always a random VLB path (falling back to MIN when the policy
    offers none for the pair)."""

    name = "vlb"

    def decide(
        self,
        algo: "RoutingAlgorithm",
        packet: "Packet",
        src_sw: int,
        dst_sw: int,
    ) -> None:
        # the MIN candidate is drawn first (same rng order as UGAL) and
        # used only as the no-VLB fallback
        min_entry = algo._random_min(src_sw, dst_sw)
        vlb_entry = algo._random_vlb(src_sw, dst_sw)
        if vlb_entry is None:
            algo._apply(packet, min_entry, used_vlb=False)
        else:
            algo._apply(packet, vlb_entry, used_vlb=True)


class UgalStrategy(RoutingStrategy):
    """The common UGAL recipe: draw MIN and VLB candidates, estimate each
    path's delay from queue state, pick the smaller (MIN wins ties plus
    the threshold ``T``).  Subclasses choose the delay estimate."""

    def cost(self, algo: "RoutingAlgorithm", entry: "CandidateEntry") -> int:
        """Estimated delay of a candidate path."""
        raise NotImplementedError

    def on_min_chosen(
        self, algo: "RoutingAlgorithm", packet: "Packet", min_path: Path
    ) -> None:
        """Hook invoked when the MIN candidate wins (PAR arms revision)."""
        return None

    def decide(
        self,
        algo: "RoutingAlgorithm",
        packet: "Packet",
        src_sw: int,
        dst_sw: int,
    ) -> None:
        min_entry = algo._random_min(src_sw, dst_sw)
        vlb_entry = algo._random_vlb(src_sw, dst_sw)
        if vlb_entry is None:
            algo._apply(packet, min_entry, used_vlb=False)
            return

        # optionally draw extra candidates and keep the cheapest of each
        # kind (the original UGAL allows "a small number" of candidates)
        params = algo.network.params
        cost_min = self.cost(algo, min_entry)
        for _ in range(params.min_candidates - 1):
            other = algo._random_min(src_sw, dst_sw)
            other_cost = self.cost(algo, other)
            if other_cost < cost_min:
                min_entry, cost_min = other, other_cost
        cost_vlb = self.cost(algo, vlb_entry)
        for _ in range(params.vlb_candidates - 1):
            maybe = algo._random_vlb(src_sw, dst_sw)
            if maybe is None:
                continue
            maybe_cost = self.cost(algo, maybe)
            if maybe_cost < cost_vlb:
                vlb_entry, cost_vlb = maybe, maybe_cost

        if cost_min <= cost_vlb + algo.threshold:
            algo._apply(packet, min_entry, used_vlb=False)
            self.on_min_chosen(algo, packet, min_entry[0])
        else:
            algo._apply(packet, vlb_entry, used_vlb=True)


class UgalLocalStrategy(UgalStrategy):
    """UGAL-L: delay = (local queue of the first channel) x (path length)."""

    name = "ugal-l"

    def cost(self, algo: "RoutingAlgorithm", entry: "CandidateEntry") -> int:
        return algo._cost_local(entry[1], entry[0].num_hops)


class UgalGlobalStrategy(UgalStrategy):
    """UGAL-G: delay = total queue along the whole path (idealized)."""

    name = "ugal-g"

    def cost(self, algo: "RoutingAlgorithm", entry: "CandidateEntry") -> int:
        return algo._cost_global(entry[1])


class ParStrategy(UgalLocalStrategy):
    """PAR: UGAL-L at the source, with one possible revision at the second
    switch of the source group (one extra VC level absorbs the hop)."""

    name = "par"

    def on_min_chosen(
        self, algo: "RoutingAlgorithm", packet: "Packet", min_path: Path
    ) -> None:
        if min_path.num_hops >= 2 and min_path.slots[0] == LOCAL_SLOT:
            packet.revisable = True

    def revise(
        self, algo: "RoutingAlgorithm", packet: "Packet", router_idx: int
    ) -> None:
        """Re-decide MIN-vs-VLB from ``router_idx``.

        The remaining MIN route competes with a fresh VLB path from here;
        if VLB wins, the remaining route is rewritten using the next VC
        level.
        """
        dst_sw = algo.topo.switch_of_node(packet.dst_node)
        if router_idx == dst_sw:
            return
        vlb_entry = algo._random_vlb(router_idx, dst_sw)
        if vlb_entry is None:
            return
        vlb_path, vlb_ch, _ = vlb_entry
        remaining = packet.route[packet.hop :]
        remaining_hops = len(remaining)
        cost_min = (
            remaining[0].load_metric() * remaining_hops if remaining else 0
        )
        cost_vlb = algo._cost_local(vlb_ch, vlb_path.num_hops)
        if cost_vlb + algo.threshold < cost_min:
            vcs = assign_vcs(
                vlb_path,
                algo.vc_scheme,
                hop_offset=packet.hop,
                revised=True,
                num_vcs=algo.num_vcs,
            )
            packet.route = packet.route[: packet.hop] + vlb_ch
            packet.vcs = packet.vcs[: packet.hop] + vcs
            packet.path_hops = packet.hop + vlb_path.num_hops
            packet.used_vlb = True
            algo.par_revised += 1
