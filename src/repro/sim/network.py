"""The cycle-level network: channels, routers, and the per-cycle engine.

Model (a deliberately simplified BookSim-style input-queued router):

* every directed switch-to-switch link is a :class:`SimChannel` with an
  upstream **output queue** (drained at 1 flit/cycle onto the wire) and a
  downstream per-VC **input buffer** governed by credit-based flow control
  (credits returned with wire latency, as in BookSim);
* each router moves flits from input buffers to output queues through a
  crossbar that can accept/emit up to ``speedup`` flits per port per cycle
  (the paper's "switch speed-up" that relieves head-of-line blocking);
* terminal (injection/ejection) ports are channels too: the node's source
  queue is unbounded, ejection always sinks.

Packets are source-routed: the UGAL decision (see ``repro.sim.routing``)
fixes the channel/VC sequence at injection, except that PAR may rewrite the
remaining route once when the packet reaches the second switch of its
source group.

Per-cycle phases: (1) wire deliveries + credit returns, (2) crossbar
(switch allocation + traversal), (3) wire transmission from output queues,
(4) injection.  Only active elements are touched, so cost scales with
in-flight flits rather than network size.

Hot-path engineering (the structures below are chosen for the per-cycle
inner loops, see ``docs/performance.md``):

* future events (wire deliveries, credit returns, transmission starts)
  live in **timing wheels** sized by the maximum schedulable delay rather
  than a dict of cycle -> list buckets or a per-cycle scan over every
  channel with queued flits;
* each router's set of occupied ``(port, vc)`` input slots is a **sorted
  list**, so the rotating round-robin order is a ring rotation (one bisect
  plus two slices) instead of a per-cycle ``sorted(...)`` with a modular
  key;
* crossbar port budgets are **flat per-port arrays** with a cycle stamp
  (no clearing, no dict hashing);
* every channel caches the total of its credit counters so
  :meth:`SimChannel.load_metric` -- the UGAL congestion estimate queried
  per routing decision -- is O(1) instead of ``sum(self.credits)``;
* work lists are wheels or insertion-ordered dicts, never ``set``s of
  objects, so iteration order (and therefore the whole simulation) is a
  pure function of the seed rather than of ``id()`` hashes.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import deque
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.routing.paths import LOCAL_SLOT, Path
from repro.sim.packet import Packet
from repro.sim.params import SimParams
from repro.topology.dragonfly import Dragonfly

__all__ = ["SimChannel", "Router", "Network"]


class SimChannel:
    """A directed channel plus its upstream output queue and credits."""

    __slots__ = (
        "src_router",
        "dst_router",
        "src_port",
        "dst_port",
        "latency",
        "is_global_link",
        "is_ejection",
        "is_injection",
        "delivery_delay",
        "dst_slot_base",
        "out_queue",
        "out_capacity",
        "credits",
        "credit_total",
        "credit_capacity",
        "buffer_size",
        "flits_sent",
        "busy_until",
    )

    def __init__(
        self,
        src_router: Optional[int],
        dst_router: Optional[int],
        dst_port: int,
        latency: int,
        num_vcs: int,
        buffer_size: int,
        out_capacity: int,
        is_global_link: bool = False,
        is_ejection: bool = False,
        src_port: int = 0,
    ) -> None:
        self.src_router = src_router
        self.dst_router = dst_router
        self.src_port = src_port  # output port at src_router (0 if none)
        self.dst_port = dst_port
        self.latency = latency
        self.is_global_link = is_global_link
        self.is_ejection = is_ejection
        self.is_injection = src_router is None and not is_ejection
        # filled by Network.__init__ (depends on SimParams constants):
        # cycles from transmission start to tail-flit delivery, and the
        # flattened (dst_port, vc=0) input-slot index downstream
        self.delivery_delay = latency
        self.dst_slot_base = dst_port * num_vcs
        self.out_queue: deque = deque()
        self.out_capacity = out_capacity
        self.credits = [buffer_size] * num_vcs
        # cached sum(self.credits); every credit mutation keeps it current
        self.credit_total = buffer_size * num_vcs
        self.credit_capacity = buffer_size * num_vcs
        self.buffer_size = buffer_size
        self.flits_sent = 0  # measurement-window traversals (engine-reset)
        self.busy_until = 0  # wire occupied until this cycle (multi-flit)

    def load_metric(self) -> int:
        """Locally known congestion of this channel: flits queued at the
        output plus downstream buffer slots currently committed (credits
        spent).  This is what UGAL-L reads for its first hop and UGAL-G
        sums along the whole path.  O(1): the credit sum is maintained
        incrementally by the engine."""
        return len(self.out_queue) + self.credit_capacity - self.credit_total


class Router:
    """Per-router input buffers and round-robin crossbar state."""

    __slots__ = (
        "idx",
        "num_ports",
        "num_vcs",
        "total_slots",
        "queues",
        "active",
        "rr",
        "in_budget",
        "in_stamp",
        "out_budget",
        "out_stamp",
    )

    def __init__(self, idx: int, num_ports: int, num_vcs: int) -> None:
        self.idx = idx
        self.num_ports = num_ports
        self.num_vcs = num_vcs
        self.total_slots = num_ports * num_vcs
        # input buffer per (port, vc), flattened
        self.queues: List[deque] = [
            deque() for _ in range(num_ports * num_vcs)
        ]
        # flat (port, vc) indices with flits, kept sorted ascending; the
        # round-robin order of the crossbar is then a ring rotation
        self.active: List[int] = []
        self.rr = 0  # rotating arbitration priority
        # per-cycle crossbar budgets, valid only when stamp == cycle
        # (stamping avoids clearing the arrays every cycle)
        self.in_budget = [0] * num_ports
        self.in_stamp = [-1] * num_ports
        self.out_budget = [0] * num_ports
        self.out_stamp = [-1] * num_ports

    def slot(self, port: int, vc: int) -> int:
        return port * self.num_vcs + vc

    def activate(self, slot: int) -> None:
        """Mark an input slot occupied (caller ensures it was empty)."""
        insort(self.active, slot)

    def deactivate(self, slot: int) -> None:
        """Mark an input slot drained."""
        active = self.active
        i = bisect_left(active, slot)
        if i < len(active) and active[i] == slot:
            active.pop(i)


class Network:
    """Builds the simulation network for a topology and runs cycles.

    Port layout per router: ``0..p-1`` terminal, then one local port per
    intra-group neighbor (``topo.local_neighbors`` order), then global
    ports in the order of ``topo.global_links_of_switch``.
    """

    # overridable element classes (the benchmark harness substitutes
    # seed-faithful variants to measure the data-structure speedup)
    channel_cls = SimChannel
    router_cls = Router

    def __init__(
        self, topo: Dragonfly, params: SimParams, num_vcs: int
    ) -> None:
        self.topo = topo
        self.params = params
        self.num_vcs = num_vcs
        self.cycle = 0

        p = topo.p
        local_degree = topo.local_degree
        num_ports = topo.radix
        router_cls = self.router_cls
        channel_cls = self.channel_cls
        self.routers = [
            router_cls(i, num_ports, num_vcs)
            for i in range(topo.num_switches)
        ]

        # --- switch-to-switch channels, keyed by (src, dst, slot) ---
        self.channels: Dict[Tuple[int, int, int], SimChannel] = {}
        # local port of neighbor v at router u: p + rank of v among group
        self._local_port: Dict[Tuple[int, int], int] = {}
        for u in range(topo.num_switches):
            for rank, v in enumerate(topo.local_neighbors(u)):
                self._local_port[(u, v)] = p + rank
        for u in range(topo.num_switches):
            for v in topo.local_neighbors(u):
                self.channels[(u, v, LOCAL_SLOT)] = channel_cls(
                    u,
                    v,
                    self._local_port[(v, u)],
                    params.local_latency,
                    num_vcs,
                    params.buffer_size,
                    params.output_queue_size,
                    src_port=self._local_port[(u, v)],
                )
        self._global_port: Dict[Tuple[int, int, int], int] = {}
        for u in range(topo.num_switches):
            for rank, link in enumerate(topo.global_links_of_switch(u)):
                v = link.other_end(u)
                key_in = (v, u, link.slot)
                self._global_port[key_in] = p + local_degree + rank
        for link in topo.global_links:
            for u, v in (
                (link.switch_a, link.switch_b),
                (link.switch_b, link.switch_a),
            ):
                self.channels[(u, v, link.slot)] = channel_cls(
                    u,
                    v,
                    self._global_port[(u, v, link.slot)],
                    params.global_latency,
                    num_vcs,
                    params.buffer_size,
                    params.output_queue_size,
                    is_global_link=True,
                    src_port=self._global_port[(v, u, link.slot)],
                )

        # --- terminal channels ---
        self.inject_channels: List[SimChannel] = []
        self.eject_channels: List[SimChannel] = []
        for node in range(topo.num_nodes):
            sw = topo.switch_of_node(node)
            term_port = node % p
            self.inject_channels.append(
                channel_cls(
                    None,
                    sw,
                    term_port,
                    params.injection_latency,
                    num_vcs,
                    params.buffer_size,
                    out_capacity=1 << 30,  # the node source queue, unbounded
                )
            )
            self.eject_channels.append(
                channel_cls(
                    sw,
                    None,
                    0,
                    params.injection_latency,
                    num_vcs,
                    params.buffer_size,
                    out_capacity=params.output_queue_size,
                    is_ejection=True,
                    src_port=term_port,
                )
            )

        # --- event timing wheels: slot (cycle % size) -> work items ---
        # The farthest any event is scheduled ahead is a delivery:
        # channel latency + router pipeline + packet serialization.
        max_latency = max(
            params.local_latency,
            params.global_latency,
            params.injection_latency,
        )
        self._max_latency = max_latency
        self._wheel_size = (
            max_latency + params.router_latency + params.packet_size + 1
        )
        # transmission-start -> tail-flit-delivery delay, fixed per channel
        # (wire latency + serialization + downstream router pipeline)
        tail_delay = params.packet_size - 1
        for channel in self.channels.values():
            channel.delivery_delay = (
                channel.latency + tail_delay + params.router_latency
            )
        for channel in self.inject_channels:
            channel.delivery_delay = channel.latency + tail_delay
        for channel in self.eject_channels:
            channel.delivery_delay = channel.latency + tail_delay
        self._delivery_wheel: List[List[Tuple[SimChannel, Packet]]] = [
            [] for _ in range(self._wheel_size)
        ]
        # (channel, vc) pairs; every return is exactly packet_size credits
        self._credit_wheel: List[List[Tuple[SimChannel, int]]] = [
            [] for _ in range(self._wheel_size)
        ]
        # flat slot index -> input port, shared by all routers
        self._port_of = [
            s // num_vcs for s in range(num_ports * num_vcs)
        ]
        self._pending_deliveries = 0  # packets on wires
        self._pending_credits = 0  # credit returns in flight
        # transmit wheel: channels due to start a transmission at a cycle.
        # A channel is scheduled exactly once while its output queue is
        # non-empty: on the empty->non-empty transition (at
        # ``max(now, busy_until)``), then re-scheduled ``packet_size``
        # cycles after each transmission while flits remain (or next cycle
        # when an injection channel stalls on terminal credits).  This
        # replaces the seed's per-cycle scan over every channel with
        # queued flits.
        self._transmit_wheel: List[List[SimChannel]] = [
            [] for _ in range(self._wheel_size)
        ]
        self._pending_transmits = 0  # channels scheduled on the wheel
        # the router work list is an insertion-ordered dict
        # (dict-as-ordered-set): a set would iterate in hash order, which
        # for id()-hashed objects would make results depend on memory
        # layout instead of only on the seed
        self._active_routers: Dict[int, None] = {}

        # hooks filled by the engine
        self.on_eject = None  # callable(packet, cycle)
        self.on_arrival = None  # callable(packet, router_idx) for PAR
        # optional batched ejection hook: callable(latencies, hops,
        # used_vlb, cycle) over numpy arrays for every packet ejected in
        # one cycle, in ejection order.  The wheel engine ignores it (it
        # ejects packet-at-a-time through on_eject); the array engine
        # prefers it when set, falling back to per-packet on_eject calls
        self.on_eject_batch = None

    # ------------------------------------------------------------------
    # Route helpers
    # ------------------------------------------------------------------
    def path_channels(self, path: Path) -> List[SimChannel]:
        """Materialize the SimChannels of a switch-level path."""
        return [
            self.channels[(path.switches[i], path.switches[i + 1], slot)]
            for i, slot in enumerate(path.slots)
        ]

    # ------------------------------------------------------------------
    # Engine phases
    # ------------------------------------------------------------------
    def _deliver(self) -> None:
        """Wire arrivals into downstream input buffers; credit returns."""
        idx = self.cycle % self._wheel_size
        returns = self._credit_wheel[idx]
        if returns:
            self._credit_wheel[idx] = []
            self._pending_credits -= len(returns)
            psize = self.params.packet_size
            for channel, vc in returns:
                channel.credits[vc] += psize
                channel.credit_total += psize
        items = self._delivery_wheel[idx]
        if not items:
            return
        self._delivery_wheel[idx] = []
        self._pending_deliveries -= len(items)
        routers = self.routers
        active_routers = self._active_routers
        on_arrival = self.on_arrival
        on_eject = self.on_eject
        cycle = self.cycle
        for channel, packet in items:
            if channel.is_ejection:
                on_eject(packet, cycle)
                continue
            ridx = channel.dst_router
            router = routers[ridx]
            if packet.revisable and packet.hop == 1 and on_arrival:
                on_arrival(packet, ridx)
            # the flit occupies the buffer of the VC it traveled on
            slot = channel.dst_slot_base + packet.current_vc
            queue = router.queues[slot]
            if not queue:
                # first flit on this slot; a router with any occupied slot
                # is already in the work list (invariant kept by _crossbar)
                insort(router.active, slot)
                active_routers[ridx] = None
            queue.append(packet)
            packet.arrived_channel = channel

    def _crossbar(self) -> None:
        """Move head flits from input buffers to output queues.

        VC allocation happens here, BookSim-style: a flit leaves its input
        buffer only once a downstream credit for its next VC is reserved,
        so output queues never block and VC isolation (hence deadlock
        freedom) is preserved end to end.
        """
        speedup = self.params.speedup
        psize = self.params.packet_size
        cycle = self.cycle
        eject_channels = self.eject_channels
        credit_wheel = self._credit_wheel
        wheel_size = self._wheel_size
        transmit_wheel = self._transmit_wheel
        port_of = self._port_of
        # bound bucket appends per credit-return delay (a handful of
        # distinct wire latencies), resolved once per cycle per delay
        # instead of once per forwarded packet
        credit_append = [
            credit_wheel[(cycle + d) % wheel_size].append
            for d in range(self._max_latency + 1)
        ]
        pending_credits = 0
        pending_transmits = 0
        for ridx in list(self._active_routers):
            router = self.routers[ridx]
            active = router.active
            if not active:
                del self._active_routers[ridx]
                continue
            rr = router.rr
            if len(active) == 1:
                order = [active[0]]
            else:
                # rotate the sorted slot list so slots >= rr come first:
                # identical order to sorting by (slot - rr) % total
                start = bisect_left(active, rr)
                order = active[start:] + active[:start]
            router.rr = rr + 1 if rr + 1 < router.total_slots else 0
            in_budget = router.in_budget
            in_stamp = router.in_stamp
            out_budget = router.out_budget
            out_stamp = router.out_stamp
            queues = router.queues
            for slot in order:
                queue = queues[slot]
                if not queue:
                    active.remove(slot)
                    continue
                port = port_of[slot]
                if in_stamp[port] != cycle:
                    in_stamp[port] = cycle
                    in_budget[port] = 0
                elif in_budget[port] >= speedup:
                    continue
                packet = queue[0]
                hop = packet.hop
                ejecting = hop >= packet.path_hops
                if ejecting:
                    out_channel = eject_channels[packet.dst_node]
                    next_vc = 0
                else:
                    out_channel = packet.route[hop]
                    next_vc = packet.vcs[hop]
                out_port = out_channel.src_port
                if out_stamp[out_port] != cycle:
                    out_stamp[out_port] = cycle
                    out_budget[out_port] = 0
                elif out_budget[out_port] >= speedup:
                    continue
                out_queue = out_channel.out_queue
                if len(out_queue) >= out_channel.out_capacity:
                    continue
                if not ejecting and out_channel.credits[next_vc] < psize:
                    continue  # not enough downstream space for the packet
                queue.popleft()
                if not queue:
                    active.remove(slot)
                in_budget[port] += 1
                out_budget[out_port] += 1
                # free the input buffer space: return credits upstream
                arrived = packet.arrived_channel
                if arrived is not None:
                    credit_append[arrived.latency](
                        (arrived, packet.current_vc)
                    )
                    pending_credits += 1
                if not ejecting:
                    out_channel.credits[next_vc] -= psize
                    out_channel.credit_total -= psize
                    packet.current_vc = next_vc
                    packet.hop = hop + 1
                if not out_queue:
                    # queue was empty: schedule the transmission start
                    when = out_channel.busy_until
                    if when < cycle:
                        when = cycle
                    transmit_wheel[when % wheel_size].append(out_channel)
                    pending_transmits += 1
                out_queue.append(packet)
            if not router.active:
                self._active_routers.pop(ridx, None)
        self._pending_credits += pending_credits
        self._pending_transmits += pending_transmits

    def _transmit(self) -> None:
        """Start the transmissions scheduled for this cycle.

        A ``packet_size``-flit packet occupies the wire for that many
        cycles (virtual cut-through serialization); the packet is
        delivered when its tail flit lands.  Channels with more queued
        flits re-schedule themselves ``packet_size`` cycles ahead, so each
        wheel bucket holds exactly the channels that act this cycle -- no
        scan over idle or serializing channels.
        """
        cycle = self.cycle
        wheel_size = self._wheel_size
        idx = cycle % wheel_size
        todo = self._transmit_wheel[idx]
        if not todo:
            return
        self._transmit_wheel[idx] = []
        psize = self.params.packet_size
        delivery_wheel = self._delivery_wheel
        transmit_wheel = self._transmit_wheel
        # bound bucket appends per delivery delay, resolved once per cycle
        deliver_append = [
            delivery_wheel[(cycle + d) % wheel_size].append
            for d in range(wheel_size)
        ]
        next_append = transmit_wheel[(cycle + psize) % wheel_size].append
        retry_append = transmit_wheel[(cycle + 1) % wheel_size].append
        pending = 0
        retired = 0
        for channel in todo:
            out_queue = channel.out_queue
            if not out_queue:  # defensive: drained while scheduled
                retired += 1
                continue
            if channel.is_injection:
                # injection channel: reserve the terminal buffer credit here
                packet = out_queue[0]
                vc = packet.vcs[0] if packet.path_hops else 0
                if channel.credits[vc] < psize:
                    # terminal buffer full: retry next cycle
                    retry_append(channel)
                    continue
                channel.credits[vc] -= psize
                channel.credit_total -= psize
                packet.current_vc = vc
                out_queue.popleft()
            else:
                packet = out_queue.popleft()
            channel.busy_until = cycle + psize
            channel.flits_sent += psize
            deliver_append[channel.delivery_delay]((channel, packet))
            pending += 1
            if out_queue:
                next_append(channel)
            else:
                retired += 1
        self._pending_deliveries += pending
        self._pending_transmits -= retired

    def inject(self, packet: Packet) -> None:
        """Queue a routed packet at its node's source queue."""
        channel = self.inject_channels[packet.src_node]
        out_queue = channel.out_queue
        if not out_queue:
            when = channel.busy_until
            if when < self.cycle:
                when = self.cycle
            self._transmit_wheel[when % self._wheel_size].append(channel)
            self._pending_transmits += 1
        out_queue.append(packet)

    def source_queue_len(self, node: int) -> int:
        return len(self.inject_channels[node].out_queue)

    def step(self) -> None:
        """Advance one cycle (deliver -> crossbar -> transmit)."""
        self._deliver()
        self._crossbar()
        self._transmit()
        self.cycle += 1

    # ------------------------------------------------------------------
    # Introspection for tests
    # ------------------------------------------------------------------
    def reset_channel_counters(self) -> None:
        """Zero per-channel traversal counters (at the warmup boundary)."""
        for channel in self.channels.values():
            channel.flits_sent = 0
        for channel in self.inject_channels:
            channel.flits_sent = 0
        for channel in self.eject_channels:
            channel.flits_sent = 0

    def channel_utilization(self, cycles: int) -> Dict[str, float]:
        """Utilization statistics of switch-to-switch channels.

        Returns mean/max utilization (flits per cycle) separately for
        local and global channels over ``cycles`` -- used to verify the
        load-balance properties that T-VLB selection relies on.
        """
        local = []
        glob = []
        # repro: allow[DET102]: self.channels is insertion-ordered by the
        # deterministic topology construction; order is reproducible
        for channel in self.channels.values():
            util = channel.flits_sent / max(cycles, 1)
            (glob if channel.is_global_link else local).append(util)
        local_arr = np.asarray(local) if local else np.zeros(1)
        glob_arr = np.asarray(glob) if glob else np.zeros(1)
        return {
            "local_mean": float(local_arr.mean()),
            "local_max": float(local_arr.max()),
            "global_mean": float(glob_arr.mean()),
            "global_max": float(glob_arr.max()),
        }

    # ------------------------------------------------------------------
    # Observability hooks (repro.obs) -- read-only samples of live state.
    # None of these are called from the per-cycle hot path; the engine's
    # EngineSampler invokes them every K cycles when tracing is enabled.
    # ------------------------------------------------------------------
    def channel_flit_totals(self) -> Tuple[np.ndarray, np.ndarray]:
        """Cumulative ``flits_sent`` per switch channel (local, global).

        Array order is the deterministic channel-insertion order, so an
        element-wise difference of two snapshots is the per-channel flit
        count of the interval between them (the sampler's utilization).
        """
        local = []
        glob = []
        # repro: allow[DET102]: deterministic channel-insertion order is
        # the documented contract of these snapshot arrays
        for channel in self.channels.values():
            if channel.is_global_link:
                glob.append(channel.flits_sent)
            else:
                local.append(channel.flits_sent)
        return (
            np.asarray(local, dtype=float),
            np.asarray(glob, dtype=float),
        )

    def vc_occupancy(self) -> List[int]:
        """Flits buffered per VC, summed over every router input port.

        Iterates only occupied ``(port, vc)`` slots (the routers' active
        lists), so the cost scales with buffered flits, not network size.
        """
        occupancy = [0] * self.num_vcs
        num_vcs = self.num_vcs
        for router in self.routers:
            queues = router.queues
            for slot in router.active:
                occupancy[slot % num_vcs] += len(queues[slot])
        return occupancy

    def injection_backlog(self) -> int:
        """Packets waiting in node source queues (not yet on the wire)."""
        return sum(len(c.out_queue) for c in self.inject_channels)

    def quiescent(self) -> bool:
        """True when nothing is in flight and no events remain scheduled."""
        return (
            not self._pending_transmits
            and not self._pending_deliveries
            and not self._pending_credits
            and self.in_flight() == 0
        )

    def finalize(self) -> None:
        """Flush any lazily buffered hook work after the last ``step()``.

        The wheel engine fires every hook inline, so this is a no-op;
        the array engine buffers ejections across cycles and overrides
        this to drain them.  ``simulate`` calls it before reading stats.
        """

    def in_flight(self) -> int:
        """Packets anywhere in the network (excluding source queues)."""
        total = self._pending_deliveries
        for router in self.routers:
            for q in router.queues:
                total += len(q)
        # repro: allow[DET102]: integer occupancy total; addition order
        # cannot change the sum
        for channel in self.channels.values():
            total += len(channel.out_queue)
        for channel in self.eject_channels:
            total += len(channel.out_queue)
        return total
