"""The cycle-level network: channels, routers, and the per-cycle engine.

Model (a deliberately simplified BookSim-style input-queued router):

* every directed switch-to-switch link is a :class:`SimChannel` with an
  upstream **output queue** (drained at 1 flit/cycle onto the wire) and a
  downstream per-VC **input buffer** governed by credit-based flow control
  (credits returned with wire latency, as in BookSim);
* each router moves flits from input buffers to output queues through a
  crossbar that can accept/emit up to ``speedup`` flits per port per cycle
  (the paper's "switch speed-up" that relieves head-of-line blocking);
* terminal (injection/ejection) ports are channels too: the node's source
  queue is unbounded, ejection always sinks.

Packets are source-routed: the UGAL decision (see ``repro.sim.routing``)
fixes the channel/VC sequence at injection, except that PAR may rewrite the
remaining route once when the packet reaches the second switch of its
source group.

Per-cycle phases: (1) wire deliveries + credit returns, (2) crossbar
(switch allocation + traversal), (3) wire transmission from output queues,
(4) injection.  Only active elements are touched, so cost scales with
in-flight flits rather than network size.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.routing.paths import LOCAL_SLOT, Path
from repro.sim.packet import Packet
from repro.sim.params import SimParams
from repro.topology.dragonfly import Dragonfly

__all__ = ["SimChannel", "Router", "Network"]


class SimChannel:
    """A directed channel plus its upstream output queue and credits."""

    __slots__ = (
        "src_router",
        "dst_router",
        "dst_port",
        "latency",
        "is_global_link",
        "is_ejection",
        "out_queue",
        "out_capacity",
        "credits",
        "buffer_size",
        "flits_sent",
        "busy_until",
    )

    def __init__(
        self,
        src_router: Optional[int],
        dst_router: Optional[int],
        dst_port: int,
        latency: int,
        num_vcs: int,
        buffer_size: int,
        out_capacity: int,
        is_global_link: bool = False,
        is_ejection: bool = False,
    ) -> None:
        self.src_router = src_router
        self.dst_router = dst_router
        self.dst_port = dst_port
        self.latency = latency
        self.is_global_link = is_global_link
        self.is_ejection = is_ejection
        self.out_queue: deque = deque()
        self.out_capacity = out_capacity
        self.credits = [buffer_size] * num_vcs
        self.buffer_size = buffer_size
        self.flits_sent = 0  # measurement-window traversals (engine-reset)
        self.busy_until = 0  # wire occupied until this cycle (multi-flit)

    def load_metric(self) -> int:
        """Locally known congestion of this channel: flits queued at the
        output plus downstream buffer slots currently committed (credits
        spent).  This is what UGAL-L reads for its first hop and UGAL-G
        sums along the whole path."""
        committed = self.buffer_size * len(self.credits) - sum(self.credits)
        return len(self.out_queue) + committed


class Router:
    """Per-router input buffers and round-robin crossbar state."""

    __slots__ = ("idx", "num_ports", "num_vcs", "queues", "active", "rr")

    def __init__(self, idx: int, num_ports: int, num_vcs: int) -> None:
        self.idx = idx
        self.num_ports = num_ports
        self.num_vcs = num_vcs
        # input buffer per (port, vc), flattened
        self.queues: List[deque] = [
            deque() for _ in range(num_ports * num_vcs)
        ]
        self.active: set = set()  # flat (port, vc) indices with flits
        self.rr = 0  # rotating arbitration priority

    def slot(self, port: int, vc: int) -> int:
        return port * self.num_vcs + vc


class Network:
    """Builds the simulation network for a topology and runs cycles.

    Port layout per router: ``0..p-1`` terminal, then one local port per
    intra-group neighbor (``topo.local_neighbors`` order), then global
    ports in the order of ``topo.global_links_of_switch``.
    """

    def __init__(
        self, topo: Dragonfly, params: SimParams, num_vcs: int
    ) -> None:
        self.topo = topo
        self.params = params
        self.num_vcs = num_vcs
        self.cycle = 0

        p = topo.p
        local_degree = topo.local_degree
        num_ports = topo.radix
        self.routers = [
            Router(i, num_ports, num_vcs) for i in range(topo.num_switches)
        ]

        # --- switch-to-switch channels, keyed by (src, dst, slot) ---
        self.channels: Dict[Tuple[int, int, int], SimChannel] = {}
        # local port of neighbor v at router u: p + rank of v among group
        self._local_port: Dict[Tuple[int, int], int] = {}
        for u in range(topo.num_switches):
            for rank, v in enumerate(topo.local_neighbors(u)):
                self._local_port[(u, v)] = p + rank
        for u in range(topo.num_switches):
            for v in topo.local_neighbors(u):
                self.channels[(u, v, LOCAL_SLOT)] = SimChannel(
                    u,
                    v,
                    self._local_port[(v, u)],
                    params.local_latency,
                    num_vcs,
                    params.buffer_size,
                    params.output_queue_size,
                )
        self._global_port: Dict[Tuple[int, int, int], int] = {}
        for u in range(topo.num_switches):
            for rank, link in enumerate(topo.global_links_of_switch(u)):
                v = link.other_end(u)
                key_in = (v, u, link.slot)
                self._global_port[key_in] = p + local_degree + rank
        for link in topo.global_links:
            for u, v in (
                (link.switch_a, link.switch_b),
                (link.switch_b, link.switch_a),
            ):
                self.channels[(u, v, link.slot)] = SimChannel(
                    u,
                    v,
                    self._global_port[(u, v, link.slot)],
                    params.global_latency,
                    num_vcs,
                    params.buffer_size,
                    params.output_queue_size,
                    is_global_link=True,
                )

        # --- terminal channels ---
        self.inject_channels: List[SimChannel] = []
        self.eject_channels: List[SimChannel] = []
        for node in range(topo.num_nodes):
            sw = topo.switch_of_node(node)
            term_port = node % p
            self.inject_channels.append(
                SimChannel(
                    None,
                    sw,
                    term_port,
                    params.injection_latency,
                    num_vcs,
                    params.buffer_size,
                    out_capacity=1 << 30,  # the node source queue, unbounded
                )
            )
            self.eject_channels.append(
                SimChannel(
                    sw,
                    None,
                    0,
                    params.injection_latency,
                    num_vcs,
                    params.buffer_size,
                    out_capacity=params.output_queue_size,
                    is_ejection=True,
                )
            )

        # event buckets: cycle -> work items
        self._deliveries: Dict[int, List[Tuple[SimChannel, Packet]]] = {}
        self._credit_returns: Dict[int, List[Tuple[SimChannel, int]]] = {}
        self._busy_channels: set = set()  # channels with queued output flits
        self._active_routers: set = set()

        # hooks filled by the engine
        self.on_eject = None  # callable(packet, cycle)
        self.on_arrival = None  # callable(packet, router_idx) for PAR

    # ------------------------------------------------------------------
    # Route helpers
    # ------------------------------------------------------------------
    def path_channels(self, path: Path) -> List[SimChannel]:
        """Materialize the SimChannels of a switch-level path."""
        return [
            self.channels[(path.switches[i], path.switches[i + 1], slot)]
            for i, slot in enumerate(path.slots)
        ]

    # ------------------------------------------------------------------
    # Engine phases
    # ------------------------------------------------------------------
    def _deliver(self) -> None:
        """Wire arrivals into downstream input buffers; credit returns."""
        returns = self._credit_returns.pop(self.cycle, None)
        if returns:
            for channel, vc, count in returns:
                channel.credits[vc] += count
        items = self._deliveries.pop(self.cycle, None)
        if not items:
            return
        for channel, packet in items:
            if channel.is_ejection:
                self.on_eject(packet, self.cycle)
                continue
            router = self.routers[channel.dst_router]
            if packet.hop == 1 and packet.revisable and self.on_arrival:
                self.on_arrival(packet, router.idx)
            # the flit occupies the buffer of the VC it traveled on
            slot = router.slot(channel.dst_port, packet.current_vc)
            router.queues[slot].append(packet)
            router.active.add(slot)
            self._active_routers.add(router.idx)
            packet.arrived_channel = channel

    def _crossbar(self) -> None:
        """Move head flits from input buffers to output queues.

        VC allocation happens here, BookSim-style: a flit leaves its input
        buffer only once a downstream credit for its next VC is reserved,
        so output queues never block and VC isolation (hence deadlock
        freedom) is preserved end to end.
        """
        speedup = self.params.speedup
        num_vcs = self.num_vcs
        psize = self.params.packet_size
        for ridx in list(self._active_routers):
            router = self.routers[ridx]
            if not router.active:
                self._active_routers.discard(ridx)
                continue
            if len(router.active) == 1:
                order = list(router.active)
            else:
                total = router.num_ports * num_vcs
                rr = router.rr
                order = sorted(router.active, key=lambda s: (s - rr) % total)
            router.rr = (router.rr + 1) % (router.num_ports * num_vcs)
            in_budget: Dict[int, int] = {}
            out_budget: Dict[int, int] = {}
            for slot in order:
                queue = router.queues[slot]
                if not queue:
                    router.active.discard(slot)
                    continue
                port = slot // num_vcs
                if in_budget.get(port, 0) >= speedup:
                    continue
                packet = queue[0]
                ejecting = packet.hop >= packet.path_hops
                if ejecting:
                    out_channel = self.eject_channels[packet.dst_node]
                    next_vc = 0
                else:
                    out_channel = packet.route[packet.hop]
                    next_vc = packet.next_vc
                out_key = id(out_channel)
                if out_budget.get(out_key, 0) >= speedup:
                    continue
                if len(out_channel.out_queue) >= out_channel.out_capacity:
                    continue
                if not ejecting and out_channel.credits[next_vc] < psize:
                    continue  # not enough downstream space for the packet
                queue.popleft()
                if not queue:
                    router.active.discard(slot)
                in_budget[port] = in_budget.get(port, 0) + 1
                out_budget[out_key] = out_budget.get(out_key, 0) + 1
                # free the input buffer space: return credits upstream
                arrived = packet.arrived_channel
                if arrived is not None:
                    when = self.cycle + arrived.latency
                    self._credit_returns.setdefault(when, []).append(
                        (arrived, packet.current_vc, psize)
                    )
                if not ejecting:
                    out_channel.credits[next_vc] -= psize
                    packet.current_vc = next_vc
                    packet.hop += 1
                out_channel.out_queue.append(packet)
                self._busy_channels.add(out_channel)
            if not router.active:
                self._active_routers.discard(ridx)

    def _transmit(self) -> None:
        """Pop one packet per idle channel onto the wire.

        A ``packet_size``-flit packet occupies the wire for that many
        cycles (virtual cut-through serialization); the packet is
        delivered when its tail flit lands.
        """
        psize = self.params.packet_size
        tail_delay = psize - 1
        done = []
        for channel in self._busy_channels:
            if not channel.out_queue:
                done.append(channel)
                continue
            if self.cycle < channel.busy_until:
                continue  # wire still serializing the previous packet
            if channel.src_router is None and not channel.is_ejection:
                # injection channel: reserve the terminal buffer credit here
                packet = channel.out_queue[0]
                vc = packet.next_vc if packet.path_hops else 0
                if channel.credits[vc] < psize:
                    continue
                channel.credits[vc] -= psize
                packet.current_vc = vc
                channel.out_queue.popleft()
                when = self.cycle + channel.latency + tail_delay
            else:
                packet = channel.out_queue.popleft()
                when = self.cycle + channel.latency + tail_delay
                if not channel.is_ejection:
                    when += self.params.router_latency
            channel.busy_until = self.cycle + psize
            channel.flits_sent += psize
            self._deliveries.setdefault(when, []).append((channel, packet))
            if not channel.out_queue:
                done.append(channel)
        for channel in done:
            self._busy_channels.discard(channel)

    def inject(self, packet: Packet) -> None:
        """Queue a routed packet at its node's source queue."""
        channel = self.inject_channels[packet.src_node]
        channel.out_queue.append(packet)
        self._busy_channels.add(channel)

    def source_queue_len(self, node: int) -> int:
        return len(self.inject_channels[node].out_queue)

    def step(self) -> None:
        """Advance one cycle (deliver -> crossbar -> transmit)."""
        self._deliver()
        self._crossbar()
        self._transmit()
        self.cycle += 1

    # ------------------------------------------------------------------
    # Introspection for tests
    # ------------------------------------------------------------------
    def reset_channel_counters(self) -> None:
        """Zero per-channel traversal counters (at the warmup boundary)."""
        for channel in self.channels.values():
            channel.flits_sent = 0
        for channel in self.inject_channels:
            channel.flits_sent = 0
        for channel in self.eject_channels:
            channel.flits_sent = 0

    def channel_utilization(self, cycles: int) -> Dict[str, float]:
        """Utilization statistics of switch-to-switch channels.

        Returns mean/max utilization (flits per cycle) separately for
        local and global channels over ``cycles`` -- used to verify the
        load-balance properties that T-VLB selection relies on.
        """
        local = []
        glob = []
        for channel in self.channels.values():
            util = channel.flits_sent / max(cycles, 1)
            (glob if channel.is_global_link else local).append(util)
        local_arr = np.asarray(local) if local else np.zeros(1)
        glob_arr = np.asarray(glob) if glob else np.zeros(1)
        return {
            "local_mean": float(local_arr.mean()),
            "local_max": float(local_arr.max()),
            "global_mean": float(glob_arr.mean()),
            "global_max": float(glob_arr.max()),
        }

    def quiescent(self) -> bool:
        """True when nothing is in flight and no events remain scheduled."""
        return (
            not self._busy_channels
            and not self._deliveries
            and not self._credit_returns
            and self.in_flight() == 0
        )

    def in_flight(self) -> int:
        """Flits anywhere in the network (excluding source queues)."""
        total = sum(
            len(items) for items in self._deliveries.values()
        )
        for router in self.routers:
            for q in router.queues:
                total += len(q)
        for channel in self.channels.values():
            total += len(channel.out_queue)
        for channel in self.eject_channels:
            total += len(channel.out_queue)
        return total
