"""Latency/throughput statistics collection."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.manifest import RunManifest
    from repro.sim.routing import RoutingAlgorithm

__all__ = ["StatsCollector", "SimResult"]


@dataclass
class SimResult:
    """Measurement-window outcome of one simulation run."""

    offered_load: float  # packets/cycle/node requested
    accepted_rate: float  # packets/cycle/node ejected in the window
    avg_latency: float  # cycles, packets ejected in the window
    p99_latency: float
    avg_hops: float  # switch-to-switch hops per delivered packet
    vlb_fraction: float  # share of delivered packets that used VLB
    packets_measured: int
    saturated: bool  # avg latency above the configured threshold
    min_chosen: int = 0
    vlb_chosen: int = 0
    par_revised: int = 0
    # measurement-window channel utilization: local/global mean and max
    channel_utilization: Optional[Dict[str, float]] = None
    # provenance record (repro.obs): excluded from equality because its
    # environment fields (timings, cache outcome) vary run to run while
    # the measurement itself stays bit-identical
    manifest: Optional["RunManifest"] = field(
        default=None, compare=False, repr=False
    )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sat = " SAT" if self.saturated else ""
        return (
            f"SimResult(load={self.offered_load:.3f} "
            f"acc={self.accepted_rate:.3f} lat={self.avg_latency:.1f}{sat})"
        )


class StatsCollector:
    """Accumulates per-packet measurements inside the measurement window."""

    def __init__(self, num_nodes: int, warmup_cycles: int) -> None:
        self.num_nodes = num_nodes
        self.warmup_cycles = warmup_cycles
        self.latencies: List[int] = []
        self.hops: List[int] = []
        # batched ejections stay numpy chunks until result(); converting
        # tens of thousands of entries to Python ints per drain was the
        # single largest Python-side cost of the array engine's step
        self._lat_chunks: List["np.ndarray"] = []
        self._hop_chunks: List["np.ndarray"] = []
        self.vlb_count = 0
        self.ejected = 0

    def record_ejection(self, packet, cycle: int) -> None:
        if cycle < self.warmup_cycles:
            return
        self.ejected += 1
        self.latencies.append(cycle - packet.inject_cycle)
        self.hops.append(packet.path_hops)
        if packet.used_vlb:
            self.vlb_count += 1

    def record_ejection_batch(
        self,
        latencies: "np.ndarray",
        hops: "np.ndarray",
        used_vlb: "np.ndarray",
        cycles: "np.ndarray",
    ) -> None:
        """Batched ``record_ejection``: packets ejected over many cycles.

        ``cycles[i]`` is the ejection cycle of packet ``i`` (the array
        engine buffers ejections across cycles before draining), so the
        warmup guard is applied per packet, exactly like the scalar path.

        Bit-identity with the scalar path is by construction, not by
        accident -- audited for the array engine's batched reductions:

        * ``latencies``/``hops`` are *integers* (cycle counts), kept as
          numpy chunks and concatenated in ``result()`` in arrival
          order.  The sequence reaching ``result()`` -- order included,
          not just the multiset -- is identical to what per-packet
          appends would build, and every downstream reduction there
          (``np.mean`` pairwise summation over exact integer-valued
          floats < 2**53, multiset-based ``np.percentile``) therefore
          produces the same IEEE doubles regardless of whether entries
          arrived one at a time or in batches.  No float accumulation
          happens at record time, so pairwise-vs-sequential summation
          order never enters the picture (the summation-order audit of
          every reduction in this module lives in ``result()``).
        * callers must preserve ejection order within the batch (the
          array engine drains its eject buffer in delivery-bucket order,
          the same order the wheel engine fires ``on_eject``), and the
          boolean warmup mask below is order-preserving.  Interleaved
          scalar appends are folded into the chunk sequence in order,
          so mixing both hooks stays exact too.
        * ``vlb_count``/``ejected`` are plain int sums (associative).
        """
        mask = cycles >= self.warmup_cycles
        if not mask.all():
            if not mask.any():
                return
            latencies = latencies[mask]
            hops = hops[mask]
            used_vlb = used_vlb[mask]
        self.ejected += len(latencies)
        if self.latencies:
            # preserve global arrival order across mixed scalar/batch use
            self._lat_chunks.append(np.asarray(self.latencies))
            self._hop_chunks.append(np.asarray(self.hops))
            self.latencies = []
            self.hops = []
        # copy: callers may pass views into buffers they reuse
        self._lat_chunks.append(np.array(latencies))
        self._hop_chunks.append(np.array(hops))
        self.vlb_count += int(np.count_nonzero(used_vlb))

    def result(
        self,
        offered_load: float,
        measure_cycles: int,
        sat_latency: float,
        routing: Optional["RoutingAlgorithm"] = None,
        sat_accept_factor: float = 0.90,
        live_fraction: float = 1.0,
    ) -> SimResult:
        """``live_fraction`` scales the offered load for patterns where some
        nodes never inject (permutation fixed points, shift(0,0)).

        Float-summation-order audit (bit-identity across engines): the
        only float reductions over per-packet data are ``np.mean`` and
        ``np.percentile`` below, both over a single concatenated array
        whose element order equals the scalar append order, so numpy's
        pairwise summation sees the same operand tree no matter how the
        entries were recorded.  All record-time accumulators
        (``ejected``, ``vlb_count``) are exact integer sums, and the
        remaining arithmetic here (``accepted``, ``vlb_fraction``) is a
        single division of exact integers -- no order sensitivity
        anywhere.
        """
        lat_parts = list(self._lat_chunks)
        if self.latencies:
            lat_parts.append(np.asarray(self.latencies))
        lat = (
            np.concatenate(lat_parts).astype(float)
            if lat_parts
            else np.zeros(0)
        )
        hop_parts = list(self._hop_chunks)
        if self.hops:
            hop_parts.append(np.asarray(self.hops))
        hops = np.concatenate(hop_parts) if hop_parts else np.zeros(0, int)
        n = len(lat)
        avg_latency = float(lat.mean()) if n else float("inf")
        accepted = self.ejected / (self.num_nodes * measure_cycles)
        effective_offered = offered_load * live_fraction
        saturated = (
            (not n)
            or avg_latency > sat_latency
            or (
                effective_offered > 0
                and accepted < sat_accept_factor * effective_offered
            )
        )
        return SimResult(
            offered_load=offered_load,
            accepted_rate=accepted,
            avg_latency=avg_latency,
            p99_latency=float(np.percentile(lat, 99)) if n else float("inf"),
            avg_hops=float(np.mean(hops)) if n else 0.0,
            vlb_fraction=self.vlb_count / n if n else 0.0,
            packets_measured=n,
            saturated=saturated,
            min_chosen=getattr(routing, "min_chosen", 0),
            vlb_chosen=getattr(routing, "vlb_chosen", 0),
            par_revised=getattr(routing, "par_revised", 0),
        )
