"""Latency/throughput statistics collection."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.manifest import RunManifest
    from repro.sim.routing import RoutingAlgorithm

__all__ = ["StatsCollector", "SimResult"]


@dataclass
class SimResult:
    """Measurement-window outcome of one simulation run."""

    offered_load: float  # packets/cycle/node requested
    accepted_rate: float  # packets/cycle/node ejected in the window
    avg_latency: float  # cycles, packets ejected in the window
    p99_latency: float
    avg_hops: float  # switch-to-switch hops per delivered packet
    vlb_fraction: float  # share of delivered packets that used VLB
    packets_measured: int
    saturated: bool  # avg latency above the configured threshold
    min_chosen: int = 0
    vlb_chosen: int = 0
    par_revised: int = 0
    # measurement-window channel utilization: local/global mean and max
    channel_utilization: Optional[Dict[str, float]] = None
    # provenance record (repro.obs): excluded from equality because its
    # environment fields (timings, cache outcome) vary run to run while
    # the measurement itself stays bit-identical
    manifest: Optional["RunManifest"] = field(
        default=None, compare=False, repr=False
    )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sat = " SAT" if self.saturated else ""
        return (
            f"SimResult(load={self.offered_load:.3f} "
            f"acc={self.accepted_rate:.3f} lat={self.avg_latency:.1f}{sat})"
        )


class StatsCollector:
    """Accumulates per-packet measurements inside the measurement window."""

    def __init__(self, num_nodes: int, warmup_cycles: int) -> None:
        self.num_nodes = num_nodes
        self.warmup_cycles = warmup_cycles
        self.latencies: List[int] = []
        self.hops: List[int] = []
        self.vlb_count = 0
        self.ejected = 0

    def record_ejection(self, packet, cycle: int) -> None:
        if cycle < self.warmup_cycles:
            return
        self.ejected += 1
        self.latencies.append(cycle - packet.inject_cycle)
        self.hops.append(packet.path_hops)
        if packet.used_vlb:
            self.vlb_count += 1

    def result(
        self,
        offered_load: float,
        measure_cycles: int,
        sat_latency: float,
        routing: Optional["RoutingAlgorithm"] = None,
        sat_accept_factor: float = 0.90,
        live_fraction: float = 1.0,
    ) -> SimResult:
        """``live_fraction`` scales the offered load for patterns where some
        nodes never inject (permutation fixed points, shift(0,0))."""
        lat = np.asarray(self.latencies, dtype=float)
        n = len(lat)
        avg_latency = float(lat.mean()) if n else float("inf")
        accepted = self.ejected / (self.num_nodes * measure_cycles)
        effective_offered = offered_load * live_fraction
        saturated = (
            (not n)
            or avg_latency > sat_latency
            or (
                effective_offered > 0
                and accepted < sat_accept_factor * effective_offered
            )
        )
        return SimResult(
            offered_load=offered_load,
            accepted_rate=accepted,
            avg_latency=avg_latency,
            p99_latency=float(np.percentile(lat, 99)) if n else float("inf"),
            avg_hops=float(np.mean(self.hops)) if n else 0.0,
            vlb_fraction=self.vlb_count / n if n else 0.0,
            packets_measured=n,
            saturated=saturated,
            min_chosen=getattr(routing, "min_chosen", 0),
            vlb_chosen=getattr(routing, "vlb_chosen", 0),
            par_revised=getattr(routing, "par_revised", 0),
        )
