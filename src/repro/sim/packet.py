"""Packet representation (single-flit packets, as in the paper)."""

from __future__ import annotations

__all__ = ["Packet"]


class Packet:
    """One single-flit packet and its source route.

    ``route`` is the list of :class:`~repro.sim.network.SimChannel` objects
    still to traverse (switch-to-switch channels followed by the ejection
    channel); ``vcs`` the matching VC per switch-to-switch hop.  ``hop``
    indexes the next entry of ``route``.
    """

    __slots__ = (
        "src_node",
        "dst_node",
        "inject_cycle",
        "route",
        "vcs",
        "hop",
        "revisable",
        "used_vlb",
        "path_hops",
        "arrived_channel",
        "current_vc",
    )

    def __init__(self, src_node: int, dst_node: int, inject_cycle: int) -> None:
        self.src_node = src_node
        self.dst_node = dst_node
        self.inject_cycle = inject_cycle
        self.route = None  # type: ignore[assignment]
        self.vcs = None  # type: ignore[assignment]
        self.hop = 0
        self.revisable = False  # PAR: may re-decide at the second switch
        self.used_vlb = False
        self.path_hops = 0  # switch-to-switch hops of the chosen path
        self.arrived_channel = None  # channel whose buffer we occupy
        self.current_vc = 0  # VC of the buffer slot currently held

    @property
    def next_channel(self):
        return self.route[self.hop]

    @property
    def next_vc(self) -> int:
        return self.vcs[self.hop]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet({self.src_node}->{self.dst_node} "
            f"t={self.inject_cycle} hop={self.hop}/{self.path_hops})"
        )
