"""Virtual-channel allocation schemes (Figure 18 of the paper).

Deadlock freedom with source routing is obtained by making the VC index
non-decreasing along every path, increasing across the hops that could
otherwise close a cyclic channel dependency:

* ``won`` (the paper's default, "routing(4)" in Fig. 18, after Won et al.
  HPCA'15): the VC index equals the number of *global* hops already taken
  plus the number of *chained* local hops (a local hop directly following
  another local hop), plus one if the packet went through a PAR revision
  (the extra source-group hop).  The chained-local term matters because the
  paper's VLB paths route through an intermediate *switch*: a 6-hop path
  ``l g l l g l`` visits the intermediate group with two consecutive local
  hops, and without the bump those two hops would share a VC level --
  three such paths can close a cyclic dependency among one group's local
  channels (see ``repro.verify.cdg``, which certifies the fixed scheme).
  With the bump, the key ``(vc, local<global)`` strictly increases along
  every path, so the channel dependency graph is provably acyclic, and the
  scheme uses exactly the paper's budget: VC levels 0..3 for UGAL (4 VCs)
  and 0..4 for PAR-revised fragments (5 VCs) on fully connected groups.
* ``perhop`` ("routing(6)"): a fresh VC every hop -- simple, but needs as
  many VCs as the longest path and leaves fewer buffers per VC for a fixed
  total, which is why Fig. 18 shows it trading off against ``routing(4)``.
"""

from __future__ import annotations

from typing import List

from repro.routing.paths import LOCAL_SLOT, Path

__all__ = ["assign_vcs"]


def _checked(vc: int, hop: int, scheme: str, num_vcs: int) -> int:
    """Fail fast, naming the offending hop, when a VC index overflows."""
    if vc >= num_vcs:
        raise ValueError(
            f"hop {hop}: path needs VC {vc} but only {num_vcs} are "
            f"configured (scheme {scheme!r})"
        )
    return vc


def assign_vcs(
    path: Path,
    scheme: str,
    *,
    hop_offset: int = 0,
    revised: bool = False,
    num_vcs: int = 8,
) -> List[int]:
    """Per-hop VC indices for ``path`` under ``scheme``.

    ``hop_offset`` is the number of hops already taken before this path
    fragment starts (PAR revision re-routes mid-flight); ``revised`` marks
    a post-revision fragment under the ``won`` scheme.  Raises
    ``ValueError`` -- naming the offending hop -- as soon as any hop would
    need a VC index ``>= num_vcs``.
    """
    vcs: List[int] = []
    if scheme == "perhop":
        for i in range(path.num_hops):
            vcs.append(_checked(hop_offset + i, i, scheme, num_vcs))
    elif scheme == "won":
        offset = 1 if revised else 0
        globals_done = 0
        chained = 0
        prev_local = False
        for i, slot in enumerate(path.slots):
            is_local = slot == LOCAL_SLOT
            if is_local and prev_local:
                chained += 1
            vcs.append(
                _checked(globals_done + chained + offset, i, scheme, num_vcs)
            )
            if not is_local:
                globals_done += 1
            prev_local = is_local
    else:
        raise ValueError(f"unknown vc scheme {scheme!r}")
    return vcs
