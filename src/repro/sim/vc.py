"""Virtual-channel allocation schemes (Figure 18 of the paper).

Deadlock freedom with source routing is obtained by making the VC index
non-decreasing along every path, increasing across the hops that could
otherwise close a cyclic channel dependency:

* ``won`` (the paper's default, "routing(4)" in Fig. 18, after Won et al.
  HPCA'15): the VC index equals the number of *global* hops already taken,
  plus one if the packet went through a PAR revision (the extra source-group
  hop).  A fully-connected group never chains two local hops in one visit,
  so levels 0..2 suffice for VLB and 0..3 for revised PAR paths.
* ``perhop`` ("routing(6)"): a fresh VC every hop -- simple, but needs as
  many VCs as the longest path and leaves fewer buffers per VC for a fixed
  total, which is why Fig. 18 shows it trading off against ``routing(4)``.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.routing.paths import LOCAL_SLOT, Path

__all__ = ["assign_vcs"]


def assign_vcs(
    path: Path,
    scheme: str,
    *,
    hop_offset: int = 0,
    revised: bool = False,
    num_vcs: int = 8,
) -> List[int]:
    """Per-hop VC indices for ``path`` under ``scheme``.

    ``hop_offset`` is the number of hops already taken before this path
    fragment starts (PAR revision re-routes mid-flight); ``revised`` marks
    a post-revision fragment under the ``won`` scheme.
    """
    vcs: List[int] = []
    if scheme == "perhop":
        for i in range(path.num_hops):
            vcs.append(hop_offset + i)
    elif scheme == "won":
        offset = 1 if revised else 0
        globals_done = 0
        for slot in path.slots:
            vcs.append(globals_done + offset)
            if slot != LOCAL_SLOT:
                globals_done += 1
    else:
        raise ValueError(f"unknown vc scheme {scheme!r}")
    for vc in vcs:
        if vc >= num_vcs:
            raise ValueError(
                f"path needs VC {vc} but only {num_vcs} are configured "
                f"(scheme {scheme!r})"
            )
    return vcs
