"""Batched multi-run driver: advance B independent runs in lockstep.

``simulate_batch([spec, ...])`` produces, for every :class:`RunSpec` in
the batch, a result **bit-identical** to ``simulate(spec)`` on the array
engine -- batching is a scheduling change, never an algorithm change.
One ``repro_step_batch`` kernel call advances every run one cycle
(run-major: each run's struct-of-arrays state stays contiguous, so
per-run cache behavior matches the single-run kernel), and the per-cycle
Python driver work around it is paid once per batch:

* **Shared candidate tables.**  MIN-path candidate sets are rng-free and
  identical for every run on one (topology, VC scheme) -- the batch
  enumerates them once (process-memoized) and each run bulk-interns the
  whole table into its route arena in one vectorized copy.
* **Vectorized injection.**  For MIN routing the per-packet Python loop
  (candidate lookup, ``Packet`` objects, per-packet ``inject()``)
  collapses to array lookups plus one ``inject_batch`` scatter per run
  per cycle; only the order-pinned rng draws (one ``integers(k)`` per
  multi-candidate packet, in packet order -- exactly the draws
  ``RoutingAlgorithm._random_min`` makes) stay scalar.
* **Generic fallback.**  Every other variant (VLB/UGAL/PAR and the T-
  forms) runs the engine's own per-packet injection loop verbatim, per
  run, still sharing the batched kernel call.  Their VLB candidate
  caches are rng-dependent, so each run owns a private sparse-sampling
  memo swapped in around its injection/revision slices
  (:func:`repro.routing.pathset.swap_sample_memo`).

Runs may differ in seed, load, pattern, and measurement params; runs
with fewer total cycles finish early and are compacted out of the batch
(ragged completion) while the rest keep advancing.  Each run gets its
own :class:`RunManifest`, is cached individually under its own RunSpec
fingerprint by the executor, and is announced through ``on_result`` /
tracer events as it completes.
"""

from __future__ import annotations

import ctypes
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import Tracer
from repro.routing.minimal import min_paths
from repro.routing.pathset import swap_sample_memo
from repro.sim.array import ArrayNetwork
from repro.sim.array.native import CState
from repro.sim.packet import Packet
from repro.sim.params import SimParams
from repro.sim.routing import make_routing
from repro.sim.stats import SimResult, StatsCollector
from repro.sim.vc import assign_vcs
from repro.traffic.patterns import NO_TRAFFIC

__all__ = ["BatchUnsupported", "simulate_batch"]

_MAX_SOURCE_QUEUE = 10_000  # simulate()'s default source-queue cap


class BatchUnsupported(RuntimeError):
    """This batch cannot take the batched path (caller should fall back
    to per-run ``simulate()``; results are identical either way)."""


# ----------------------------------------------------------------------
# Shared MIN candidate tables (rng-free, so safe to share across runs
# and across calls; keyed by topology identity + VC parameters)
# ----------------------------------------------------------------------
class _MinTable:
    """Flattened per-pair MIN candidates over one (topology, VC scheme).

    ``k[pair]`` candidates starting at slot ``first[pair]``; per slot a
    hop count, a head VC, and an offset into one concatenated
    (channel, vc) route image that each network interns wholesale.
    """

    __slots__ = ("k", "first", "hops", "vcs0", "rel", "chan", "vc", "nsw")

    def __init__(self, topo, network: ArrayNetwork, vc_scheme: str,
                 num_vcs: int) -> None:
        nsw = topo.num_switches
        self.nsw = nsw
        k = np.zeros(nsw * nsw, np.int32)
        first = np.zeros(nsw * nsw, np.int64)
        hops: List[int] = []
        vcs0: List[int] = []
        rel: List[int] = []
        chan: List[int] = []
        vc: List[int] = []
        for s in range(nsw):
            for d in range(nsw):
                if s == d:
                    continue
                pair = s * nsw + d
                paths = min_paths(topo, s, d)
                first[pair] = len(hops)
                k[pair] = len(paths)
                for path in paths:
                    vcs = assign_vcs(path, vc_scheme, num_vcs=num_vcs)
                    rel.append(len(chan))
                    hops.append(path.num_hops)
                    vcs0.append(vcs[0])
                    chan.extend(
                        c.index for c in network.path_channels(path)
                    )
                    vc.extend(vcs)
        self.k = k
        self.first = first
        self.hops = np.array(hops, np.int32)
        self.vcs0 = np.array(vcs0, np.int32)
        self.rel = np.array(rel, np.int64)
        self.chan = np.array(chan, np.int32)
        self.vc = np.array(vc, np.int32)


_MIN_TABLE_MEMO: Dict[Tuple, _MinTable] = {}
_MIN_TABLE_MEMO_MAX = 4


def _min_table(topo, network: ArrayNetwork, vc_scheme: str,
               num_vcs: int) -> _MinTable:
    import json

    from repro.perf.cache import topology_fingerprint

    key = (
        json.dumps(topology_fingerprint(topo), sort_keys=True),
        vc_scheme,
        num_vcs,
    )
    table = _MIN_TABLE_MEMO.get(key)
    if table is None:
        if len(_MIN_TABLE_MEMO) >= _MIN_TABLE_MEMO_MAX:
            _MIN_TABLE_MEMO.pop(next(iter(_MIN_TABLE_MEMO)))
        table = _MinTable(topo, network, vc_scheme, num_vcs)
        _MIN_TABLE_MEMO[key] = table
    return table


# ----------------------------------------------------------------------
class _Run:
    """One batch member: network + routing + stats + private rng state."""

    __slots__ = (
        "spec", "pattern", "load", "routing", "policy", "params", "seed",
        "net", "rng", "algo", "stats", "memo", "swaps_memo", "scheduled",
        "warmup", "total", "offs", "table", "slot", "result",
    )

    def __init__(self, spec, topo) -> None:
        self.spec = spec
        self.pattern = spec.pattern.build(topo)
        self.load = spec.load
        self.routing = spec.routing
        self.policy = (
            spec.policy.build() if spec.policy is not None else None
        )
        self.params: SimParams = spec.params
        self.seed = spec.seed
        base = self.routing.lower()
        base = base[2:] if base.startswith("t-") else base
        num_vcs = self.params.vcs_required(base, topo.max_local_hops)
        if self.params.verify:
            from repro.verify import verify_config

            report = verify_config(
                topo,
                self.policy,
                scheme=self.params.vc_scheme,
                routing=base,
                num_vcs=num_vcs,
                seed=self.seed,
            )
            if not report.passed:
                raise RuntimeError(
                    "static verification failed for this simulation "
                    f"configuration:\n{report.to_text()}"
                )
        self.net = ArrayNetwork(topo, self.params, num_vcs)
        self.rng = np.random.default_rng(self.seed)
        self.algo = make_routing(
            self.net, self.routing, policy=self.policy, rng=self.rng
        )
        self.stats = StatsCollector(
            topo.num_nodes, self.params.warmup_cycles
        )
        self.net.on_eject = self.stats.record_ejection
        self.net.on_eject_batch = self.stats.record_ejection_batch
        self.net.on_arrival = self.algo.revise_at
        # private sparse-sampling reservoir memo: the batched equivalent
        # of simulate()'s reset_sample_memo() purity guarantee
        self.memo: dict = {}
        self.swaps_memo = base != "min"
        self.scheduled = getattr(self.pattern, "scheduled", False)
        self.warmup = self.params.warmup_cycles
        self.total = self.params.total_cycles
        self.offs: Optional[np.ndarray] = None  # MIN fast path arena map
        self.slot = 0
        self.result: Optional[SimResult] = None


def _check_compatible(specs) -> None:
    from repro.spec import RunSpec

    first = specs[0]
    if not isinstance(first, RunSpec):
        raise BatchUnsupported("batched runs require declarative RunSpecs")
    topo_d = first.topology.to_dict()
    routing = first.routing
    pol_d = first.policy.to_dict() if first.policy is not None else None
    for spec in specs[1:]:
        if not isinstance(spec, RunSpec):
            raise BatchUnsupported(
                "batched runs require declarative RunSpecs"
            )
        if (
            spec.topology.to_dict() != topo_d
            or spec.routing != routing
            or (spec.policy.to_dict() if spec.policy else None) != pol_d
        ):
            raise BatchUnsupported(
                "batch members must share topology + routing structure "
                "(seed/load/pattern/params may differ)"
            )
    for spec in specs:
        if spec.params.obs is not None:
            raise BatchUnsupported(
                "observability-instrumented runs take the single-run path"
            )
        if spec.params.engine == "legacy":
            raise BatchUnsupported(
                "engine='legacy' is an explicit oracle request"
            )


def simulate_batch(
    specs: Sequence,
    *,
    tracer: Optional[Tracer] = None,
    on_result: Optional[Callable[[int, SimResult], None]] = None,
) -> List[SimResult]:
    """Run every ``RunSpec`` in ``specs`` lockstep on the array engine.

    Returns results in spec order, each bit-identical to
    ``simulate(spec)``.  Raises :class:`BatchUnsupported` when the batch
    cannot take this path (non-spec payloads, mixed topology/routing,
    observability-instrumented runs, or no native kernel); callers fall
    back to per-run ``simulate()`` and lose only the speedup.
    ``on_result(index, result)`` fires as each run completes (ragged
    batches complete out of spec order).
    """
    specs = list(specs)
    if not specs:
        return []
    _check_compatible(specs)
    topo = specs[0].topology.build()
    # repro: allow[DET104]: wall_seconds is runtime metadata on the
    # manifest, never part of result identity or cache keys
    wall_start = time.perf_counter()
    runs = [_Run(spec, topo) for spec in specs]
    for i, run in enumerate(runs):
        run.slot = i
    if any(run.net.backend != "native" for run in runs):
        raise BatchUnsupported(
            "native array kernel unavailable on this host"
        )
    kernel = runs[0].net._kernel
    batch_step = kernel.repro_step_batch

    base = specs[0].routing.lower()
    fast_min = base == "min" and all(not r.scheduled for r in runs)
    nsw = topo.num_switches
    num_nodes = topo.num_nodes
    nodes = np.arange(num_nodes)
    if fast_min:
        sw_of = np.fromiter(
            (topo.switch_of_node(n) for n in range(num_nodes)),
            np.int64,
            num_nodes,
        )
        for run in runs:
            table = _min_table(
                topo, run.net, run.params.vc_scheme, run.net.num_vcs
            )
            run.table = table  # type: ignore[attr-defined]
            base_off = run.net.intern_route(table.chan, table.vc)
            run.offs = base_off + table.rel

    if tracer is not None:
        tracer.record(
            "batch_start",
            kind="sim-batch",
            runs=len(runs),
            routing=specs[0].routing,
            topology=str(topo),
        )

    active = list(runs)
    ptrs = (ctypes.POINTER(CState) * len(active))(
        *[ctypes.pointer(r.net._cstate) for r in active]
    )
    skips = (ctypes.c_int64 * len(active))()
    max_total = max(r.total for r in runs)
    results: List[Optional[SimResult]] = [None] * len(runs)

    for cycle in range(max_total):
        for i, run in enumerate(active):
            prev = swap_sample_memo(run.memo) if run.swaps_memo else None
            try:
                if cycle == run.warmup:
                    run.net.reset_channel_counters()
                if fast_min:
                    _inject_min(run, cycle, nodes, sw_of, nsw)
                else:
                    _inject_generic(run, cycle, nodes)
                skips[i] = run.net.pre_step()
            finally:
                if prev is not None:
                    swap_sample_memo(prev)
        rc = int(batch_step(ptrs, len(active), cycle, skips))
        if rc:
            run = active[rc % 1000]
            raise RuntimeError(
                f"array kernel invariant violation (code {rc // 1000}) "
                f"at cycle {cycle} in batched run seed={run.seed} "
                f"load={run.load:g}"
            )
        finished = False
        for run in active:
            run.net.post_step()
            if cycle + 1 == run.total:
                results[run.slot] = _finish(
                    run, topo, wall_start, len(runs), tracer
                )
                if on_result is not None:
                    on_result(run.slot, results[run.slot])
                finished = True
        if finished:
            active = [r for r in active if cycle + 1 != r.total]
            if active:
                ptrs = (ctypes.POINTER(CState) * len(active))(
                    *[ctypes.pointer(r.net._cstate) for r in active]
                )
                skips = (ctypes.c_int64 * len(active))()
    if tracer is not None:
        tracer.record(
            "batch_end",
            kind="sim-batch",
            runs=len(runs),
            # repro: allow[DET104]: trace timing is runtime metadata
            wall_seconds=time.perf_counter() - wall_start,
        )
    return results  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Injection paths
# ----------------------------------------------------------------------
def _inject_min(run: _Run, cycle: int, nodes, sw_of, nsw: int) -> None:
    """Vectorized MIN injection: bit-identical to the engine's loop.

    The rng consumption exactly matches ``simulate()`` + ``route_packets``:
    one ``random(num_nodes)`` Bernoulli draw, one ``sample_destinations``
    call with the unfiltered sources, then one ``integers(k)`` per
    multi-candidate packet in packet order (single-candidate and
    same-switch packets draw nothing, matching ``_random_min``).
    """
    load = run.load
    if load <= 0.0:
        return
    rng = run.rng
    draws = rng.random(nodes.size) < load
    srcs = nodes[draws]
    if not srcs.size:
        return
    dests = np.asarray(run.pattern.sample_destinations(srcs, rng))
    S = run.net._S
    keep = (dests != NO_TRAFFIC) & (S.src_len[srcs] < _MAX_SOURCE_QUEUE)
    srcs = srcs[keep]
    m = srcs.size
    if not m:
        return
    dests = dests[keep]
    ssw = sw_of[srcs]
    dsw = sw_of[dests]
    pairs = ssw * nsw + dsw
    table = run.table  # type: ignore[attr-defined]
    ks = np.where(ssw == dsw, 0, table.k[pairs])
    slots = table.first[pairs]
    multi = np.nonzero(ks > 1)[0]
    if multi.size:
        ints = rng.integers
        for i in multi.tolist():
            slots[i] += int(ints(int(ks[i])))
    picked = ks > 0
    hops = np.where(picked, table.hops[slots], 0).astype(np.int32)
    vcs0 = np.where(picked, table.vcs0[slots], 0).astype(np.int32)
    offs = np.where(picked, run.offs[slots], 0)
    run.algo.min_chosen += m
    run.net.inject_batch(srcs, hops, vcs0, dests, offs, cycle)


def _inject_generic(run: _Run, cycle: int, nodes) -> None:
    """The engine's per-packet injection loop, verbatim, for one run."""
    net = run.net
    algo = run.algo
    pattern = run.pattern
    if run.scheduled:
        for src, dst in pattern.injections_at(cycle):
            if src == dst:
                continue
            if net.source_queue_len(src) >= _MAX_SOURCE_QUEUE:
                continue
            packet = Packet(src, int(dst), cycle)
            algo.route_packet(packet)
            net.inject(packet)
        return
    load = run.load
    if load <= 0.0:
        return
    rng = run.rng
    draws = rng.random(nodes.size) < load
    srcs = nodes[draws]
    if not srcs.size:
        return
    dests = pattern.sample_destinations(srcs, rng)
    batch = []
    for src, dst in zip(srcs.tolist(), dests.tolist()):
        if dst == NO_TRAFFIC:
            continue
        if net.source_queue_len(src) >= _MAX_SOURCE_QUEUE:
            continue
        batch.append(Packet(src, int(dst), cycle))
    if batch:
        algo.route_packets(batch)
        for packet in batch:
            net.inject(packet)


def _finish(
    run: _Run, topo, wall_start: float, batch_size: int,
    tracer: Optional[Tracer],
) -> SimResult:
    """Finalize one completed run: drain, stats, manifest, trace."""
    from repro.sim.engine import _run_manifest

    run.net.finalize()
    measure_cycles = run.params.measure_windows * run.params.window_cycles
    result = run.stats.result(
        offered_load=run.load,
        measure_cycles=measure_cycles,
        sat_latency=run.params.sat_latency,
        routing=run.algo,
        sat_accept_factor=run.params.sat_accept_factor,
        live_fraction=run.pattern.live_fraction(),
    )
    result.channel_utilization = run.net.channel_utilization(measure_cycles)
    manifest = _run_manifest(
        topo, run.pattern, run.load, run.routing, run.policy, run.params,
        run.seed, run.spec,
    )
    # repro: allow[DET104]: wall_seconds is runtime metadata
    manifest.wall_seconds = time.perf_counter() - wall_start
    manifest.engine_cycles = run.total
    manifest.batch_size = batch_size
    manifest.batch_slot = run.slot
    result.manifest = manifest
    if tracer is not None:
        tracer.record(
            "run_end",
            kind="sim-batch",
            slot=run.slot,
            seed=run.seed,
            load=float(run.load),
            cycles=run.total,
        )
    return result
