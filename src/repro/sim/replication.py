"""Multi-seed replication: mean and standard error across runs.

The paper runs every random-seed-dependent experiment 8-20 times and
reports the mean with the standard error of the mean; these helpers do the
same for single points and whole latency curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.routing.pathset import PathPolicy
from repro.sim.params import SimParams
from repro.sim.stats import SimResult
from repro.topology.dragonfly import Dragonfly
from repro.traffic.patterns import TrafficPattern

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.perf.executor import SweepExecutor

__all__ = ["Replicated", "replicate", "replicated_curve"]


@dataclass
class Replicated:
    """Mean +- standard error of one metric over seeds."""

    mean: float
    sem: float
    n: int
    values: List[float]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.4g} +- {self.sem:.2g} (n={self.n})"


def _aggregate(values: Sequence[float]) -> Replicated:
    arr = np.asarray(values, dtype=float)
    sem = float(arr.std(ddof=1) / np.sqrt(len(arr))) if len(arr) > 1 else 0.0
    return Replicated(float(arr.mean()), sem, len(arr), list(values))


def replicate(
    topo,
    pattern_factory: Optional[Callable[[int], TrafficPattern]] = None,
    load: Optional[float] = None,
    *,
    routing: str = "ugal-l",
    policy: Optional[PathPolicy] = None,
    params: Optional[SimParams] = None,
    seeds: Sequence[int] = range(8),
    executor: Optional["SweepExecutor"] = None,
) -> Dict[str, Replicated]:
    """Run one load point under several seeds.

    ``pattern_factory(seed)`` builds the traffic pattern per run, so
    seed-dependent patterns (permutations, MIXED node selections) vary
    along with the injection process.  Returns mean+-sem for latency,
    accepted rate, hops, and VLB fraction.

    Alternatively pass a single :class:`repro.spec.RunSpec` as the first
    argument: its pattern is re-seeded per replication seed (when the
    pattern kind is seed-bearing) exactly like a factory would.

    With an ``executor``, the per-seed runs fan out across worker
    processes (patterns are materialized up front, in this process, so
    the factory need not be picklable); results are identical to the
    serial path.
    """
    if pattern_factory is None and load is None:
        from repro.spec import RunSpec

        if not isinstance(topo, RunSpec):
            raise TypeError(
                "replicate() needs (topo, pattern_factory, load, ...) or "
                "a RunSpec"
            )
        spec = topo
        topo = spec.topology.build()
        load = spec.load
        routing = spec.routing
        policy = spec.policy.build() if spec.policy is not None else None
        params = spec.params
        pattern_factory = (
            lambda s: spec.pattern.with_seed(s).build(topo)
        )
    elif pattern_factory is None or load is None:
        raise TypeError("replicate() needs both pattern_factory and load")
    from repro.perf.executor import SimTask, SweepExecutor

    tasks = [
        SimTask(
            topo,
            pattern_factory(seed),
            load,
            routing=routing,
            policy=policy,
            params=params,
            seed=seed,
        )
        for seed in seeds
    ]
    if executor is not None:
        results: List[SimResult] = executor.run(tasks)
    else:
        # transient in-process executor: no pool, no cache, but the runs
        # route through the BatchPlanner, so compatible seeds advance in
        # one batched engine (bit-identical to the per-seed simulate()
        # loop this path used to be)
        with SweepExecutor(jobs=1) as transient:
            results = transient.run(tasks)
    finite = [r for r in results if np.isfinite(r.avg_latency)]
    return {
        "latency": _aggregate([r.avg_latency for r in finite] or [np.inf]),
        "accepted": _aggregate([r.accepted_rate for r in results]),
        "hops": _aggregate([r.avg_hops for r in finite] or [0.0]),
        "vlb_fraction": _aggregate(
            [r.vlb_fraction for r in finite] or [0.0]
        ),
    }


def replicated_curve(
    topo: Dragonfly,
    pattern_factory: Callable[[int], TrafficPattern],
    loads: Sequence[float],
    **kwargs,
) -> List[Tuple[float, Dict[str, Replicated]]]:
    """A latency curve with per-point mean+-sem over seeds."""
    return [
        (load, replicate(topo, pattern_factory, load, **kwargs))
        for load in loads
    ]
