"""Routing decision state: candidate generation, caches, queue estimates.

The T- variants (T-UGAL-L, T-UGAL-G, T-PAR) are the same decision
procedures with a restricted VLB :class:`~repro.routing.pathset.PathPolicy`
-- exactly the paper's framing: "T-UGAL only changes the set of candidate
paths for UGAL".

:class:`RoutingAlgorithm` owns everything a decision *uses* -- per-pair
MIN/VLB candidate caches, the rng, queue-state cost estimates, decision
counters -- while each variant's decision *procedure* (how MIN, VLB,
UGAL-L, UGAL-G, and PAR choose and revise) lives in a
:class:`~repro.sim.strategies.RoutingStrategy` looked up in
``repro.spec``'s ``ROUTING_REGISTRY``.  Adding a variant is a
registration, not an edit to this file.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.routing.minimal import min_paths
from repro.routing.paths import Path
from repro.routing.pathset import AllVlbPolicy, PathPolicy
from repro.sim.network import Network, SimChannel
from repro.sim.packet import Packet
from repro.sim.vc import assign_vcs

__all__ = [
    "CandidateEntry",
    "RoutingAlgorithm",
    "ROUTING_VARIANTS",
    "make_routing",
]

ROUTING_VARIANTS = ("min", "vlb", "ugal-l", "ugal-g", "par")

# a prepared route candidate: the path, its live channels, its VC ladder
CandidateEntry = Tuple[Path, List[SimChannel], List[int]]


class _NoVlbPath:
    """Typed cache sentinel: a pair with no VLB path under the policy."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<no VLB path>"


_NO_VLB_PATH = _NoVlbPath()


class RoutingAlgorithm:
    """Per-packet route selection bound to a network and a VLB policy."""

    def __init__(
        self,
        network: Network,
        variant: str,
        policy: Optional[PathPolicy] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        # lazy import: the spec layer sits above sim and imports this
        # module, so the reverse edge must not exist at import time
        from repro.spec.builtins import strategy_for

        self.strategy = strategy_for(variant)
        self.network = network
        self.topo = network.topo
        self.variant = variant
        self.policy = policy if policy is not None else AllVlbPolicy()
        # fixed fallback seed: an OS-entropy default here would make any
        # caller that forgets to pass the SimParams-derived rng silently
        # nonreproducible
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.threshold = network.params.ugal_threshold
        self.vc_scheme = network.params.vc_scheme
        self.num_vcs = network.num_vcs
        # decision counters (reported by the engine)
        self.min_chosen = 0
        self.vlb_chosen = 0
        self.par_revised = 0
        # per-pair MIN path cache (tiny objects, hot path)
        self._min_cache: Dict[Tuple[int, int], List[CandidateEntry]] = {}
        # per-pair VLB candidate cache; once `_vlb_cache_cap` distinct
        # candidates were drawn for a pair, further draws reuse them
        # uniformly; _NO_VLB_PATH marks pairs the policy cannot serve
        self._vlb_cache: Dict[
            Tuple[int, int], Union[List[CandidateEntry], _NoVlbPath]
        ] = {}
        self._vlb_cache_cap = network.params.vlb_cache_per_pair

    # ------------------------------------------------------------------
    # Candidate generation
    # ------------------------------------------------------------------
    def _prepare(self, path: Path) -> CandidateEntry:
        return (
            path,
            self.network.path_channels(path),
            assign_vcs(path, self.vc_scheme, num_vcs=self.num_vcs),
        )

    def _min_candidates(
        self, src_sw: int, dst_sw: int
    ) -> List[CandidateEntry]:
        entries = self._min_cache.get((src_sw, dst_sw))
        if entries is None:
            entries = [
                self._prepare(p) for p in min_paths(self.topo, src_sw, dst_sw)
            ]
            self._min_cache[(src_sw, dst_sw)] = entries
        return entries

    def _random_min(self, src_sw: int, dst_sw: int) -> CandidateEntry:
        entries = self._min_candidates(src_sw, dst_sw)
        if len(entries) == 1:
            return entries[0]
        return entries[int(self.rng.integers(len(entries)))]

    def _random_vlb(
        self, src_sw: int, dst_sw: int
    ) -> Optional[CandidateEntry]:
        """One random VLB candidate as a (path, channels, vcs) triple.

        Uses the per-pair candidate cache: the first ``_vlb_cache_cap``
        draws are genuine uniform samples from the policy (and are
        memoized); later draws reuse them uniformly.
        """
        key = (src_sw, dst_sw)
        cache = self._vlb_cache.get(key)
        if isinstance(cache, _NoVlbPath):
            return None  # pair has no VLB path under this policy
        if cache is None:
            cache = []
            self._vlb_cache[key] = cache
        if self._vlb_cache_cap <= 0 or len(cache) < self._vlb_cache_cap:
            path = self.policy.sample_path(
                self.topo, src_sw, dst_sw, self.rng
            )
            if path is None:
                if not cache:
                    self._vlb_cache[key] = _NO_VLB_PATH
                    return None
                return cache[int(self.rng.integers(len(cache)))]
            entry = self._prepare(path)
            if self._vlb_cache_cap > 0:
                cache.append(entry)
            return entry
        return cache[int(self.rng.integers(len(cache)))]

    # ------------------------------------------------------------------
    # Queue estimates
    # ------------------------------------------------------------------
    def _channels_of(self, path: Path) -> List[SimChannel]:
        return self.network.path_channels(path)

    def _cost_local(self, channels: List[SimChannel], hops: int) -> int:
        """UGAL-L/PAR estimate: first-hop local queue x path length."""
        if not channels:
            return 0
        return channels[0].load_metric() * hops

    def _cost_global(self, channels: List[SimChannel]) -> int:
        """UGAL-G estimate: total queue along the whole path."""
        return sum(ch.load_metric() for ch in channels)

    # ------------------------------------------------------------------
    # Decisions (delegated to the registered strategy)
    # ------------------------------------------------------------------
    def route_packet(self, packet: Packet) -> None:
        """Fill in route/vcs for a packet at its source switch."""
        src_sw = self.topo.switch_of_node(packet.src_node)
        dst_sw = self.topo.switch_of_node(packet.dst_node)
        if src_sw == dst_sw:
            self._apply(packet, ((Path((src_sw,), ())), [], []), False)
            return
        self.strategy.decide(self, packet, src_sw, dst_sw)

    def route_packets(self, packets: Sequence[Packet]) -> None:
        """Route a batch of freshly created packets, in order.

        Batch-friendly hook for the engines: one call per injection
        cycle instead of one per packet.  The RNG draw order is pinned
        -- packets are routed strictly in sequence order, so the draws
        (and the VLB candidate-cache mutations they cause) happen in
        exactly the order the per-packet loop would produce.  Decisions
        only read channel ``load_metric`` state, never source-queue
        occupancy, so routing a whole batch before injecting any of it
        is bit-identical to interleaving route/inject per packet.
        """
        for packet in packets:
            self.route_packet(packet)

    def revise_at(self, packet: Packet, router_idx: int) -> None:
        """Mid-route revision hook (PAR's second-hop re-decision).

        Called by the network when a revisable packet reaches the second
        switch of its source group; non-revising strategies ignore it.
        """
        packet.revisable = False
        self.strategy.revise(self, packet, router_idx)

    # ------------------------------------------------------------------
    def _apply(
        self, packet: Packet, entry: CandidateEntry, used_vlb: bool
    ) -> None:
        path, channels, vcs = entry
        packet.route = channels
        packet.vcs = vcs
        packet.path_hops = path.num_hops
        packet.used_vlb = used_vlb
        if used_vlb:
            self.vlb_chosen += 1
        else:
            self.min_chosen += 1


def make_routing(
    network: Network,
    variant: str,
    policy: Optional[PathPolicy] = None,
    rng: Optional[np.random.Generator] = None,
) -> RoutingAlgorithm:
    """Factory accepting both plain and ``t-`` prefixed variant names.

    T- prefixes are validated against the registry: only variants that
    accept a custom policy have a T- form, and a T- form without a policy
    is an error (the same error the CLI and ``RunSpec`` raise).
    """
    from repro.spec.builtins import resolve_routing

    base, _custom = resolve_routing(variant, has_policy=policy is not None)
    return RoutingAlgorithm(network, base, policy=policy, rng=rng)
