"""Routing decision logic: MIN, VLB, UGAL-L, UGAL-G, and PAR.

The T- variants (T-UGAL-L, T-UGAL-G, T-PAR) are the same decision
procedures with a restricted VLB :class:`~repro.routing.pathset.PathPolicy`
-- exactly the paper's framing: "T-UGAL only changes the set of candidate
paths for UGAL".

All variants follow the original UGAL recipe: per packet, draw **one**
random MIN candidate and **one** random VLB candidate, estimate the delay
of each from queue state, and pick the smaller (MIN wins ties plus the
threshold ``T``):

* UGAL-L estimates a path's delay as (local queue of its first channel) x
  (path length) -- local information only;
* UGAL-G sums the queue of every channel on the path -- idealized global
  information;
* PAR starts like UGAL-L but may revise a MIN decision once, at the second
  switch in the source group, switching to a VLB path from there (one
  extra VC level absorbs the extra hop).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.routing.minimal import min_paths
from repro.routing.paths import LOCAL_SLOT, Path
from repro.routing.pathset import AllVlbPolicy, PathPolicy
from repro.sim.network import Network, SimChannel
from repro.sim.packet import Packet
from repro.sim.vc import assign_vcs

__all__ = ["RoutingAlgorithm", "ROUTING_VARIANTS", "make_routing"]

ROUTING_VARIANTS = ("min", "vlb", "ugal-l", "ugal-g", "par")


class RoutingAlgorithm:
    """Per-packet route selection bound to a network and a VLB policy."""

    def __init__(
        self,
        network: Network,
        variant: str,
        policy: Optional[PathPolicy] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if variant not in ROUTING_VARIANTS:
            raise ValueError(
                f"unknown routing variant {variant!r}; "
                f"choose from {ROUTING_VARIANTS}"
            )
        self.network = network
        self.topo = network.topo
        self.variant = variant
        self.policy = policy if policy is not None else AllVlbPolicy()
        self.rng = rng if rng is not None else np.random.default_rng()
        self.threshold = network.params.ugal_threshold
        self.vc_scheme = network.params.vc_scheme
        self.num_vcs = network.num_vcs
        # decision counters (reported by the engine)
        self.min_chosen = 0
        self.vlb_chosen = 0
        self.par_revised = 0
        # per-pair MIN path cache (tiny objects, hot path)
        self._min_cache: dict = {}
        # per-pair VLB candidate cache: (path, channels, vcs) triples; once
        # `_vlb_cache_cap` distinct candidates were drawn for a pair,
        # further draws reuse them uniformly
        self._vlb_cache: dict = {}
        self._vlb_cache_cap = network.params.vlb_cache_per_pair

    # ------------------------------------------------------------------
    # Candidate generation
    # ------------------------------------------------------------------
    def _prepare(self, path: Path) -> Tuple[Path, list, list]:
        return (
            path,
            self.network.path_channels(path),
            assign_vcs(path, self.vc_scheme, num_vcs=self.num_vcs),
        )

    def _min_candidates(self, src_sw: int, dst_sw: int) -> List[Tuple]:
        entries = self._min_cache.get((src_sw, dst_sw))
        if entries is None:
            entries = [
                self._prepare(p) for p in min_paths(self.topo, src_sw, dst_sw)
            ]
            self._min_cache[(src_sw, dst_sw)] = entries
        return entries

    def _random_min(self, src_sw: int, dst_sw: int) -> Tuple:
        entries = self._min_candidates(src_sw, dst_sw)
        if len(entries) == 1:
            return entries[0]
        return entries[int(self.rng.integers(len(entries)))]

    def _random_vlb(self, src_sw: int, dst_sw: int) -> Optional[Tuple]:
        """One random VLB candidate as a (path, channels, vcs) triple.

        Uses the per-pair candidate cache: the first ``_vlb_cache_cap``
        draws are genuine uniform samples from the policy (and are
        memoized); later draws reuse them uniformly.
        """
        key = (src_sw, dst_sw)
        cache = self._vlb_cache.get(key)
        if cache is False:
            return None  # pair has no VLB path under this policy
        if cache is None:
            cache = []
            self._vlb_cache[key] = cache
        if self._vlb_cache_cap <= 0 or len(cache) < self._vlb_cache_cap:
            path = self.policy.sample_path(
                self.topo, src_sw, dst_sw, self.rng
            )
            if path is None:
                if not cache:
                    self._vlb_cache[key] = False
                    return None
                return cache[int(self.rng.integers(len(cache)))]
            entry = self._prepare(path)
            if self._vlb_cache_cap > 0:
                cache.append(entry)
            return entry
        return cache[int(self.rng.integers(len(cache)))]

    # ------------------------------------------------------------------
    # Queue estimates
    # ------------------------------------------------------------------
    def _channels_of(self, path: Path) -> List[SimChannel]:
        return self.network.path_channels(path)

    def _cost_local(self, channels: List[SimChannel], hops: int) -> int:
        """UGAL-L/PAR estimate: first-hop local queue x path length."""
        if not channels:
            return 0
        return channels[0].load_metric() * hops

    def _cost_global(self, channels: List[SimChannel]) -> int:
        """UGAL-G estimate: total queue along the whole path."""
        return sum(ch.load_metric() for ch in channels)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def route_packet(self, packet: Packet) -> None:
        """Fill in route/vcs for a packet at its source switch."""
        src_sw = self.topo.switch_of_node(packet.src_node)
        dst_sw = self.topo.switch_of_node(packet.dst_node)
        if src_sw == dst_sw:
            self._apply(packet, ((Path((src_sw,), ())), [], []), False)
            return

        min_entry = self._random_min(src_sw, dst_sw)
        if self.variant == "min":
            self._apply(packet, min_entry, used_vlb=False)
            return

        vlb_entry = self._random_vlb(src_sw, dst_sw)
        if vlb_entry is None:
            self._apply(packet, min_entry, used_vlb=False)
            return
        if self.variant == "vlb":
            self._apply(packet, vlb_entry, used_vlb=True)
            return

        # optionally draw extra candidates and keep the cheapest of each
        # kind (the original UGAL allows "a small number" of candidates)
        params = self.network.params
        if self.variant == "ugal-g":
            cost_fn = lambda e: self._cost_global(e[1])  # noqa: E731
        else:  # ugal-l and par
            cost_fn = lambda e: self._cost_local(  # noqa: E731
                e[1], e[0].num_hops
            )
        cost_min = cost_fn(min_entry)
        for _ in range(params.min_candidates - 1):
            other = self._random_min(src_sw, dst_sw)
            cost = cost_fn(other)
            if cost < cost_min:
                min_entry, cost_min = other, cost
        cost_vlb = cost_fn(vlb_entry)
        for _ in range(params.vlb_candidates - 1):
            other = self._random_vlb(src_sw, dst_sw)
            if other is None:
                continue
            cost = cost_fn(other)
            if cost < cost_vlb:
                vlb_entry, cost_vlb = other, cost
        min_path = min_entry[0]

        if cost_min <= cost_vlb + self.threshold:
            self._apply(packet, min_entry, used_vlb=False)
            if (
                self.variant == "par"
                and min_path.num_hops >= 2
                and min_path.slots[0] == LOCAL_SLOT
            ):
                packet.revisable = True
        else:
            self._apply(packet, vlb_entry, used_vlb=True)

    def revise_at(self, packet: Packet, router_idx: int) -> None:
        """PAR second-hop revision: re-decide MIN-vs-VLB from ``router_idx``.

        Called by the network when a revisable packet reaches the second
        switch of its source group.  The remaining MIN route competes with
        a fresh VLB path from here; if VLB wins, the remaining route is
        rewritten using the next VC level.
        """
        packet.revisable = False
        if self.variant != "par":
            return
        dst_sw = self.topo.switch_of_node(packet.dst_node)
        if router_idx == dst_sw:
            return
        vlb_entry = self._random_vlb(router_idx, dst_sw)
        if vlb_entry is None:
            return
        vlb_path, vlb_ch, _ = vlb_entry
        remaining = packet.route[packet.hop :]
        remaining_hops = len(remaining)
        cost_min = (
            remaining[0].load_metric() * remaining_hops if remaining else 0
        )
        cost_vlb = self._cost_local(vlb_ch, vlb_path.num_hops)
        if cost_vlb + self.threshold < cost_min:
            vcs = assign_vcs(
                vlb_path,
                self.vc_scheme,
                hop_offset=packet.hop,
                revised=True,
                num_vcs=self.num_vcs,
            )
            packet.route = packet.route[: packet.hop] + vlb_ch
            packet.vcs = packet.vcs[: packet.hop] + vcs
            packet.path_hops = packet.hop + vlb_path.num_hops
            packet.used_vlb = True
            self.par_revised += 1

    # ------------------------------------------------------------------
    def _apply(self, packet: Packet, entry: Tuple, used_vlb: bool) -> None:
        path, channels, vcs = entry
        packet.route = channels
        packet.vcs = vcs
        packet.path_hops = path.num_hops
        packet.used_vlb = used_vlb
        if used_vlb:
            self.vlb_chosen += 1
        else:
            self.min_chosen += 1


def make_routing(
    network: Network,
    variant: str,
    policy: Optional[PathPolicy] = None,
    rng: Optional[np.random.Generator] = None,
) -> RoutingAlgorithm:
    """Factory accepting both plain and ``t-`` prefixed variant names."""
    name = variant.lower()
    if name.startswith("t-"):
        if policy is None:
            raise ValueError(
                f"{variant} is a T-UGAL variant and needs a custom policy"
            )
        name = name[2:]
    return RoutingAlgorithm(network, name, policy=policy, rng=rng)
