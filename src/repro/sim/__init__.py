"""Cycle-level dragonfly network simulator (the BookSim substitute).

Public entry points:

* :func:`repro.sim.simulate` -- one run at a fixed offered load;
* :func:`repro.sim.latency_vs_load` -- a latency curve;
* :func:`repro.sim.saturation_throughput` -- bisection for the paper's
  saturation metric;
* :class:`repro.sim.SimParams` -- Table-3 configuration
  (``SimParams.paper()`` for the full-scale windows).
"""

from repro.sim.engine import build_network, simulate
from repro.sim.params import SimParams
from repro.sim.replication import Replicated, replicate, replicated_curve
from repro.sim.stats import SimResult
from repro.sim.sweep import (
    LoadSweep,
    latency_vs_load,
    saturation_throughput,
)

__all__ = [
    "simulate",
    "build_network",
    "SimParams",
    "SimResult",
    "LoadSweep",
    "latency_vs_load",
    "saturation_throughput",
    "Replicated",
    "replicate",
    "replicated_curve",
]
