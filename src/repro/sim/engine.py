"""Top-level simulation driver.

``simulate(...)`` builds the network, wires a routing algorithm and a
traffic pattern to it, runs warmup + measurement windows, and returns a
:class:`~repro.sim.stats.SimResult`.

Injection follows BookSim's Bernoulli process: each node independently
generates a packet with probability ``load`` per cycle; packets wait in an
unbounded source queue, and their route is computed (the UGAL decision)
when they are handed to the network, using current queue state.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.routing.pathset import PathPolicy
from repro.sim.network import Network
from repro.sim.packet import Packet
from repro.sim.params import SimParams
from repro.sim.routing import make_routing
from repro.sim.stats import SimResult, StatsCollector
from repro.topology.dragonfly import Dragonfly
from repro.traffic.patterns import NO_TRAFFIC, TrafficPattern

__all__ = ["simulate", "build_network"]


def build_network(
    topo: Dragonfly,
    params: SimParams,
    routing_variant: str,
) -> Network:
    """Construct a :class:`Network` sized for the routing variant's VCs."""
    name = routing_variant.lower()
    base = name[2:] if name.startswith("t-") else name
    num_vcs = params.vcs_required(base, topo.max_local_hops)
    return Network(topo, params, num_vcs)


def simulate(
    topo,
    pattern: Optional[TrafficPattern] = None,
    load: Optional[float] = None,
    *,
    routing: str = "ugal-l",
    policy: Optional[PathPolicy] = None,
    params: Optional[SimParams] = None,
    seed: int = 0,
    max_source_queue: int = 10_000,
) -> SimResult:
    """Run one simulation at a fixed offered load (packets/cycle/node).

    Two call forms:

    * ``simulate(topo, pattern, load, ...)`` -- live objects, as always;
    * ``simulate(spec)`` -- a single :class:`repro.spec.RunSpec`, which
      carries every argument declaratively (what sweep workers receive).

    ``routing`` is one of ``min, vlb, ugal-l, ugal-g, par`` or a ``t-``
    variant (which requires ``policy``, the T-VLB set).

    Scheduled patterns (``repro.traffic.trace.TraceTraffic``) inject their
    explicit event list; ``load`` is then ignored for injection and only
    used as the nominal offered load in the result record.
    ``max_source_queue`` caps per-node source queues deep in saturation so
    runaway runs stay bounded; the cap is far above anything a
    non-saturated run reaches and packets are only generated while below
    it (stalled generation, like BookSim's finite injection queues).
    """
    if pattern is None and load is None:
        # spec form -- lazy import, the spec layer sits above sim
        from repro.spec import RunSpec

        if not isinstance(topo, RunSpec):
            raise TypeError(
                "simulate() needs (topo, pattern, load, ...) or a RunSpec"
            )
        spec = topo
        topo = spec.topology.build()
        pattern = spec.pattern.build(topo)
        load = spec.load
        routing = spec.routing
        policy = spec.policy.build() if spec.policy is not None else None
        params = spec.params
        seed = spec.seed
    elif pattern is None or load is None:
        raise TypeError("simulate() needs both pattern and load")
    if not 0.0 <= load <= 1.0:
        raise ValueError("load must be in [0, 1] packets/cycle/node")
    params = params if params is not None else SimParams()

    # drop sampling state inherited from earlier runs in this process, so
    # the result is a pure function of the arguments (and serial sweeps
    # match process-pool sweeps bit for bit)
    from repro.routing.pathset import reset_sample_memo

    reset_sample_memo()

    network = build_network(topo, params, routing)
    if params.verify:
        # static pre-flight gate: certify deadlock freedom and path-set
        # invariants before burning cycles on a broken configuration
        from repro.verify import verify_config

        base = routing.lower()
        base = base[2:] if base.startswith("t-") else base
        report = verify_config(
            topo,
            policy,
            scheme=params.vc_scheme,
            routing=base,
            num_vcs=network.num_vcs,
            seed=seed,
        )
        if not report.passed:
            raise RuntimeError(
                "static verification failed for this simulation "
                f"configuration:\n{report.to_text()}"
            )
    rng = np.random.default_rng(seed)
    algo = make_routing(network, routing, policy=policy, rng=rng)
    stats = StatsCollector(topo.num_nodes, params.warmup_cycles)

    network.on_eject = stats.record_ejection
    network.on_arrival = algo.revise_at

    nodes = np.arange(topo.num_nodes)
    total_cycles = params.total_cycles
    warmup_cycles = params.warmup_cycles

    scheduled = getattr(pattern, "scheduled", False)

    for cycle in range(total_cycles):
        if cycle == warmup_cycles:
            network.reset_channel_counters()
        # --- injection: trace events, or Bernoulli per node ---
        if scheduled:
            for src, dst in pattern.injections_at(cycle):
                if src == dst:
                    continue
                if network.source_queue_len(src) >= max_source_queue:
                    continue
                packet = Packet(src, int(dst), cycle)
                algo.route_packet(packet)
                network.inject(packet)
        elif load > 0.0:
            draws = rng.random(topo.num_nodes) < load
            srcs = nodes[draws]
            if srcs.size:
                dests = pattern.sample_destinations(srcs, rng)
                for src, dst in zip(srcs.tolist(), dests.tolist()):
                    if dst == NO_TRAFFIC:
                        continue
                    if network.source_queue_len(src) >= max_source_queue:
                        continue
                    packet = Packet(src, int(dst), cycle)
                    algo.route_packet(packet)
                    network.inject(packet)
        network.step()

    measure_cycles = params.measure_windows * params.window_cycles
    result = stats.result(
        offered_load=load,
        measure_cycles=measure_cycles,
        sat_latency=params.sat_latency,
        routing=algo,
        sat_accept_factor=params.sat_accept_factor,
        live_fraction=pattern.live_fraction(),
    )
    result.channel_utilization = network.channel_utilization(measure_cycles)
    return result
