"""Top-level simulation driver.

``simulate(...)`` builds the network, wires a routing algorithm and a
traffic pattern to it, runs warmup + measurement windows, and returns a
:class:`~repro.sim.stats.SimResult`.

Injection follows BookSim's Bernoulli process: each node independently
generates a packet with probability ``load`` per cycle; packets wait in an
unbounded source queue, and their route is computed (the UGAL decision)
when they are handed to the network, using current queue state.
"""

from __future__ import annotations

import os
import time
from typing import Any, Optional

import numpy as np

from repro.obs import (
    NULL_REGISTRY,
    EngineSampler,
    MetricRegistry,
    Tracer,
    active_capture,
)
from repro.obs.manifest import RunManifest
from repro.routing.pathset import PathPolicy
from repro.sim.network import Network
from repro.sim.packet import Packet
from repro.sim.params import SimParams
from repro.sim.routing import make_routing
from repro.sim.stats import SimResult, StatsCollector
from repro.topology.dragonfly import Dragonfly
from repro.traffic.patterns import NO_TRAFFIC, TrafficPattern

__all__ = ["simulate", "build_network"]


def _run_manifest(
    topo: Dragonfly,
    pattern: TrafficPattern,
    load: float,
    routing: str,
    policy: Optional[PathPolicy],
    params: SimParams,
    seed: int,
    spec: Optional[Any],
) -> RunManifest:
    """The provenance record of one run (identity fields only).

    Fingerprint derivation mirrors the result cache: the declarative
    ``RunSpec`` identity when every component is a registered spec type,
    the structural fallback otherwise, ``None`` for ad-hoc components.
    Lazy imports keep ``repro.sim`` importable without ``repro.perf``.
    """
    from repro.perf.cache import fingerprint as cache_fingerprint
    from repro.spec import RunSpec, SpecError

    if spec is None:
        try:
            spec = RunSpec.from_objects(
                topo,
                pattern,
                load,
                routing=routing,
                policy=policy,
                params=params,
                seed=seed,
            )
        except SpecError:
            spec = None
    return RunManifest(
        kind="sim",
        fingerprint=cache_fingerprint(
            topo,
            pattern,
            load,
            routing=routing,
            policy=policy,
            params=params,
            seed=seed,
        ),
        spec_fingerprint=spec.fingerprint() if spec is not None else None,
        topology=str(topo),
        routing=routing.lower(),
        load=float(load),
        seed=int(seed),
    )


def build_network(
    topo: Dragonfly,
    params: SimParams,
    routing_variant: str,
) -> Network:
    """Construct a :class:`Network` sized for the routing variant's VCs.

    ``params.engine`` selects the implementation behind the shared
    interface: the timing-wheel default, the struct-of-arrays batched
    engine (``repro.sim.array``), or the seed-faithful legacy oracle.
    All three are bit-identical (the knob is identity-neutral), so the
    choice is purely a performance decision.
    """
    name = routing_variant.lower()
    base = name[2:] if name.startswith("t-") else name
    num_vcs = params.vcs_required(base, topo.max_local_hops)
    engine = params.engine
    if engine == "array":
        from repro.sim.array import ArrayNetwork

        return ArrayNetwork(topo, params, num_vcs)
    if engine == "legacy":
        # lazy: the oracle lives in the bench harness, above repro.sim
        from repro.perf.bench import LegacyNetwork

        return LegacyNetwork(topo, params, num_vcs)
    # the module-global name, not a direct class reference:
    # repro.perf.bench.legacy_engine() monkeypatches it for A/B timing
    return Network(topo, params, num_vcs)


def simulate(
    topo,
    pattern: Optional[TrafficPattern] = None,
    load: Optional[float] = None,
    *,
    routing: str = "ugal-l",
    policy: Optional[PathPolicy] = None,
    params: Optional[SimParams] = None,
    seed: int = 0,
    max_source_queue: int = 10_000,
) -> SimResult:
    """Run one simulation at a fixed offered load (packets/cycle/node).

    Two call forms:

    * ``simulate(topo, pattern, load, ...)`` -- live objects, as always;
    * ``simulate(spec)`` -- a single :class:`repro.spec.RunSpec`, which
      carries every argument declaratively (what sweep workers receive).

    ``routing`` is one of ``min, vlb, ugal-l, ugal-g, par`` or a ``t-``
    variant (which requires ``policy``, the T-VLB set).

    Scheduled patterns (``repro.traffic.trace.TraceTraffic``) inject their
    explicit event list; ``load`` is then ignored for injection and only
    used as the nominal offered load in the result record.
    ``max_source_queue`` caps per-node source queues deep in saturation so
    runaway runs stay bounded; the cap is far above anything a
    non-saturated run reaches and packets are only generated while below
    it (stalled generation, like BookSim's finite injection queues).
    """
    run_spec = None
    if pattern is None and load is None:
        # spec form -- lazy import, the spec layer sits above sim
        from repro.spec import RunSpec

        if not isinstance(topo, RunSpec):
            raise TypeError(
                "simulate() needs (topo, pattern, load, ...) or a RunSpec"
            )
        run_spec = topo
        topo = run_spec.topology.build()
        pattern = run_spec.pattern.build(topo)
        load = run_spec.load
        routing = run_spec.routing
        policy = (
            run_spec.policy.build() if run_spec.policy is not None else None
        )
        params = run_spec.params
        seed = run_spec.seed
    elif pattern is None or load is None:
        raise TypeError("simulate() needs both pattern and load")
    if not 0.0 <= load <= 1.0:
        raise ValueError("load must be in [0, 1] packets/cycle/node")
    params = params if params is not None else SimParams()

    # drop sampling state inherited from earlier runs in this process, so
    # the result is a pure function of the arguments (and serial sweeps
    # match process-pool sweeps bit for bit)
    from repro.routing.pathset import reset_sample_memo

    reset_sample_memo()

    network = build_network(topo, params, routing)
    if params.verify:
        # static pre-flight gate: certify deadlock freedom and path-set
        # invariants before burning cycles on a broken configuration
        from repro.verify import verify_config

        base = routing.lower()
        base = base[2:] if base.startswith("t-") else base
        report = verify_config(
            topo,
            policy,
            scheme=params.vc_scheme,
            routing=base,
            num_vcs=network.num_vcs,
            seed=seed,
        )
        if not report.passed:
            raise RuntimeError(
                "static verification failed for this simulation "
                f"configuration:\n{report.to_text()}"
            )
    rng = np.random.default_rng(seed)
    algo = make_routing(network, routing, policy=policy, rng=rng)
    stats = StatsCollector(topo.num_nodes, params.warmup_cycles)

    network.on_eject = stats.record_ejection
    network.on_eject_batch = stats.record_ejection_batch
    network.on_arrival = algo.revise_at

    nodes = np.arange(topo.num_nodes)
    total_cycles = params.total_cycles
    warmup_cycles = params.warmup_cycles

    scheduled = getattr(pattern, "scheduled", False)

    # --- observability wiring (repro.obs; identity-neutral) ---
    # The disabled default keeps the hot loop untouched beyond one
    # ``sampler is not None`` check per cycle and no-op counter calls
    # per injected packet (the <2% budget asserted in the bench smoke).
    obs = params.obs
    registry = NULL_REGISTRY
    tracer: Optional[Tracer] = None
    sampler: Optional[EngineSampler] = None
    sample_every = 0
    run_label = ""
    if obs is not None:
        if obs.metrics:
            registry = MetricRegistry()
        if obs.sample_every > 0:
            sample_every = obs.sample_every
            run_label = f"seed{seed}-load{load:g}"
            tracer = Tracer()
            tracer.record(
                "run_start",
                run=run_label,
                kind="sim",
                cycle=0,
                topology=str(topo),
                routing=routing,
                load=float(load),
                seed=int(seed),
                sample_every=sample_every,
            )
            sampler = EngineSampler(tracer, network, run_label)
    inc_injected = registry.counter("engine.packets_injected").inc
    inc_stalled = registry.counter("engine.inject_stalls").inc

    # repro: allow[DET104]: wall_seconds is runtime metadata on the
    # result, never part of result identity or cache keys
    wall_start = time.perf_counter()
    for cycle in range(total_cycles):
        if cycle == warmup_cycles:
            network.reset_channel_counters()
            if sampler is not None:
                sampler.rebase()
        # --- injection: trace events, or Bernoulli per node ---
        if scheduled:
            for src, dst in pattern.injections_at(cycle):
                if src == dst:
                    continue
                if network.source_queue_len(src) >= max_source_queue:
                    inc_stalled()
                    continue
                packet = Packet(src, int(dst), cycle)
                algo.route_packet(packet)
                network.inject(packet)
                inc_injected()
        elif load > 0.0:
            draws = rng.random(topo.num_nodes) < load
            srcs = nodes[draws]
            if srcs.size:
                dests = pattern.sample_destinations(srcs, rng)
                # batch: create, route all, then inject all.  Routing
                # reads only channel load_metric state (never source
                # queues), each node draws at most one packet per cycle,
                # and route_packets preserves sequence order, so this is
                # bit-identical to the per-packet route/inject interleave
                batch = []
                for src, dst in zip(srcs.tolist(), dests.tolist()):
                    if dst == NO_TRAFFIC:
                        continue
                    if network.source_queue_len(src) >= max_source_queue:
                        inc_stalled()
                        continue
                    batch.append(Packet(src, int(dst), cycle))
                    inc_injected()
                if batch:
                    algo.route_packets(batch)
                    for packet in batch:
                        network.inject(packet)
        network.step()
        if sampler is not None and network.cycle % sample_every == 0:
            sampler.sample()
    # drain any ejections the engine buffered across cycles (array
    # engine); must precede stats.result so the tail packets count
    network.finalize()
    # repro: allow[DET104]: closes the wall_seconds runtime measurement
    wall_seconds = time.perf_counter() - wall_start

    measure_cycles = params.measure_windows * params.window_cycles
    result = stats.result(
        offered_load=load,
        measure_cycles=measure_cycles,
        sat_latency=params.sat_latency,
        routing=algo,
        sat_accept_factor=params.sat_accept_factor,
        live_fraction=pattern.live_fraction(),
    )
    result.channel_utilization = network.channel_utilization(measure_cycles)

    # --- provenance + trace finalization (post-measurement, off the
    # hot path; observability must never perturb the result above) ---
    registry.counter("engine.cycles").inc(total_cycles)
    registry.counter("engine.packets_measured").inc(result.packets_measured)
    registry.gauge("engine.cycles_per_sec").set(
        total_cycles / wall_seconds if wall_seconds > 0 else 0.0
    )
    manifest = _run_manifest(
        topo, pattern, load, routing, policy, params, seed, run_spec
    )
    manifest.wall_seconds = wall_seconds
    manifest.engine_cycles = total_cycles
    if registry.enabled:
        manifest.metrics = registry.snapshot()
    result.manifest = manifest
    if tracer is not None:
        tracer.record(
            "run_end",
            run=run_label,
            kind="sim",
            cycle=total_cycles,
            cycles=total_cycles,
            wall_seconds=wall_seconds,
            metrics=registry.snapshot() if registry.enabled else None,
        )
        if obs is not None and obs.trace_dir:
            stem = (
                manifest.spec_fingerprint[:12]
                if manifest.spec_fingerprint
                else "adhoc"
            )
            tracer.save_jsonl(
                os.path.join(
                    obs.trace_dir,
                    f"engine-{stem}-{run_label}.jsonl",
                )
            )
        captured = active_capture()
        if captured is not None:
            captured.extend(tracer.events)
    return result
