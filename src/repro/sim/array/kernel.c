/* Native cycle kernel for repro.sim.array.ArrayNetwork.
 *
 * An exact transliteration of the timing-wheel engine's per-cycle phases
 * (repro/sim/network.py: _deliver -> _crossbar -> _transmit) over the
 * struct-of-arrays state owned by Python/numpy.  The kernel holds NO
 * private state: every array it touches is a numpy buffer allocated and
 * introspected on the Python side, so observability, routing decisions
 * (load_metric) and the pure-Python phases (PAR revision processing,
 * injection, ejection draining) all read and write the same memory.
 *
 * Bit-exactness contract (the reason this is a scalar transliteration and
 * not a blindly vectorized arbiter): every iteration order below mirrors
 * the wheel engine one-to-one --
 *   - routers are visited in activation (insertion) order over a snapshot
 *     of the active-router list, exactly like `list(self._active_routers)`;
 *   - a router's occupied slots are visited in ring-rotated sorted order
 *     (bisect + rotation), the wheel's round-robin;
 *   - wheel buckets are drained in append order;
 *   - credits are applied before deliveries, deliveries before the
 *     crossbar, the crossbar before transmissions.
 * Grant order pins the PAR on_arrival RNG draw order (handled in Python),
 * which is the only order-sensitive randomness in a cycle.
 *
 * Performance notes (the step is memory-bound: thousands of scattered
 * accesses per cycle at saturation):
 *   - per-packet hot fields are one packed 32-byte record (`pkt`, stride
 *     PK_STRIDE), so a packet touch costs one cache line, not seven;
 *   - ring head/len pairs are interleaved (in_meta/src_meta), as are
 *     the crossbar input budget stamp/count pairs (in_bud);
 *   - the entire grant-time output side of a channel -- ring head/len,
 *     per-VC credits plus cached total, output budget stamp/count,
 *     busy_until, flits_sent -- packs into one line-padded `outrow`
 *     row (output ports map 1:1 onto non-injection channels, so the
 *     per-port budget legally lives per channel), collapsing what used
 *     to be four random lines per grant into one;
 *   - every scalar and pointer the inner loops touch is copied into
 *     locals first -- int64 stores (stamps, counters) may legally alias
 *     the struct's int64 scalar fields, so leaving them behind `s->`
 *     forces reloads on every iteration;
 *   - ring and wheel indices use conditional wrap instead of `%`
 *     (offsets are proven < one full turn), which removes thousands of
 *     integer divisions per cycle.
 *
 * Memory-safety invariants (enforced upstream, checked defensively here;
 * a violated invariant aborts the step with a negative error code instead
 * of corrupting memory):
 *   - delivery/transmit buckets hold at most one entry per channel
 *     (fixed per-channel delay < wheel size);
 *   - credit buckets hold at most `speedup` entries per channel (input
 *     port budget) per source cycle, one source cycle per bucket;
 *   - input rings hold at most buffer_size/packet_size packets (credit
 *     flow control);
 *   - the ejection buffer (drained lazily by Python, many cycles per
 *     drain) holds at most nNodes packets per cycle and Python flushes
 *     it before fewer than nNodes slots remain.
 *
 * The kernel is built on demand by repro.sim.array.native with the system
 * C compiler; repro_abi() guards the struct layout against drift between
 * this file and the ctypes mirror.
 */

#include <stdint.h>
#include <string.h>

#define REPRO_ARRAYNET_ABI_VERSION 11

/* counters[] indices (shared with Python) */
#define CNT_ACT 0 /* active routers in act_list */
#define CNT_PD 1  /* pending deliveries (packets on wires) */
#define CNT_PC 2  /* pending credit returns */
#define CNT_PT 3  /* channels scheduled on the transmit wheel */
#define CNT_EJ 4   /* packets in the ejection buffer (Python drains) */
#define CNT_FREE 5 /* free packet-record slots on the stack */

/* channel kinds */
#define KIND_SWITCH 0
#define KIND_INJECT 1
#define KIND_EJECT 2

/* packed source-queue entry columns (stride SE_STRIDE int32): a queued
 * packet is a plain value record until it enters the network -- only at
 * injection-transmit does the kernel pop a pool pid from the free stack
 * and materialize pkt/pmeta rows.  This keeps the record pool sized by
 * *in-network* occupancy (L2-resident) instead of by the source-queue
 * backlog, which grows into the hundreds of thousands at saturation. */
#define SE_PATH 0 /* path_hops */
#define SE_VC0 1  /* injection VC (vcs[0], or 0 for empty routes) */
#define SE_DST 2
#define SE_REV 3  /* revisable flag */
#define SE_ROFF 4 /* route arena offset */
#define SE_ICYC 5 /* inject cycle */
#define SE_SPID 6 /* staging id of the Python Packet (revisable only) */
#define SE_VLB 7  /* used_vlb at inject */
#define SE_STRIDE 8

/* per-packet Python-facing meta (stride PM_STRIDE int32), written once at
 * network entry, read only by the ejection drain / revision mapping */
#define PM_SRC 0
#define PM_ICYC 1
#define PM_VLB 2
#define PM_SPID 3
#define PM_STRIDE 4

/* packed per-packet record columns (stride PK_STRIDE int32) */
#define PK_HOP 0
#define PK_PATH 1 /* path_hops */
#define PK_CVC 2  /* current_vc */
#define PK_VC0 3  /* vcs[0] if path_hops else 0 (injection reserve) */
#define PK_DST 4  /* destination node */
#define PK_REV 5  /* revisable flag */
#define PK_ARR 6  /* channel whose buffer the packet occupies, -1 none */
#define PK_ROFF 7 /* offset into the route arena */
#define PK_STRIDE 8

/* input-queue meta columns (in_meta stride IM_STRIDE int32): besides the
 * ring head/len, each queue caches its head packet's id and crossbar
 * decision (output channel + next VC; HNVC < 0 encodes "ejecting").  The
 * cache collapses the visit-time dependent-load chain
 * meta -> in_buf -> pkt -> arena -> output checks into a single meta
 * line plus independent output-side loads.  It is refilled whenever the
 * head changes (delivery into an empty queue, grant pop); a buffered
 * packet's hop/route/VC never change while it waits (PAR revisions run
 * strictly before delivery), so the cache cannot go stale. */
#define IM_HEAD 0
#define IM_LEN 1
#define IM_HPID 2
#define IM_HOUT 3
#define IM_HNVC 4
/* second-head cache: same fields for the packet at ring position
 * head+1, so a grant-pop promotes second -> head with three register
 * moves instead of a ring -> record -> arena dependent-load chain; the
 * vacated second slot is refilled in a deferred batched pipeline at the
 * end of the crossbar pass (see crossbar()), where the chain's latency
 * overlaps across every refill of the cycle */
#define IM_H2PID 5
#define IM_H2OUT 6
#define IM_H2NVC 7
#define IM_STRIDE 8

#if defined(__GNUC__) || defined(__clang__)
#define PREFETCH_W(addr) __builtin_prefetch((addr), 1)
#define PREFETCH_R(addr) __builtin_prefetch((addr), 0)
#else
#define PREFETCH_W(addr)
#define PREFETCH_R(addr)
#endif

typedef struct {
    /* --- static per-channel tables --- */
    const int32_t *ch_latency;
    const int32_t *ch_delay;
    const int32_t *ch_dst_router;
    const int32_t *ch_gslot;    /* dst_router*nSr + dst_slot_base */
    const int32_t *ch_kind;
    /* --- dynamic channel state --- */
    /* [nC][outrow_stride]: ring head, ring len, per-VC credits, credit
     * total, then (8-byte aligned at offset OR_BUD(cs)) four int64s:
     * output budget stamp, output budget count, busy_until, flits_sent
     * -- the full grant-time output-side state of a channel packed into
     * one (padded) cache line instead of four parallel tables */
    int32_t *outrow;
    int32_t *out_buf; /* [nC][out_cap][2]: pid, wire-vc | rev-flag<<16 */
    int32_t *src_buf;  /* [nNodes][src_cap] source-queue pid ring */
    int32_t *src_meta; /* [nNodes][2]: head, len */
    /* --- router state --- */
    int32_t *in_buf;  /* [nR*nSr][in_cap] input-buffer pid ring */
    int32_t *in_meta; /* [nR*nSr][IM_STRIDE]: see IM_* columns */
    int32_t *act_slots; /* [nR][nSr] sorted occupied local slots */
    int32_t *act_len;
    int32_t *act_list; /* [nR] insertion-ordered active routers */
    int32_t *act_pos;  /* [nR] position+1 in act_list, 0 = absent */
    int32_t *rr;       /* [nR] round-robin priority */
    int64_t *in_bud;   /* [nR*radix][2]: cycle stamp, used budget */
    int32_t *rsnap; /* scratch [nR]: active-router snapshot */
    int32_t *osnap; /* scratch [nSr]: rotated slot order */
    /* scratch [nR*nSr]: deferred second-head refills (queue, ring pos /
     * pid, arena offset) batched at the end of the crossbar pass */
    int32_t *rf_q;
    int32_t *rf_pos;
    int32_t *rf_off;
    /* --- timing wheels: [ws][cap] + per-bucket counts --- */
    int32_t *dw_chan; /* deliveries */
    int32_t *dw_pid;
    int32_t *dw_meta; /* wire VC of the flit in dw_pid */
    int32_t *dw_n;
    int32_t *rev_n;   /* revisable hop-1 deliveries per bucket */
    int32_t *cw_chan; /* credit returns */
    int32_t *cw_vc;
    int32_t *cw_n;
    int32_t *tw_chan; /* transmission starts */
    int32_t *tw_n;
    int32_t *ej_pid;   /* [ej_cap] ejection buffer (append-only) */
    int32_t *ej_cycle; /* [ej_cap] matching ejection cycles */
    /* ejection payloads, gathered here (from prefetched lines) so the
     * Python drain consumes flat slices instead of doing scattered
     * fancy-index gathers over the pool */
    int32_t *ej_lat;  /* [ej_cap] cycle - inject_cycle */
    int32_t *ej_hops; /* [ej_cap] path_hops */
    int32_t *ej_vlb;  /* [ej_cap] used_vlb */
    int32_t *ej_spid; /* [ej_cap] staging id (0 = never revisable) */
    /* --- packet records + route arena --- */
    int32_t *pkt;        /* [cap][PK_STRIDE] */
    int32_t *pmeta;      /* [cap][PM_STRIDE] */
    int32_t *free_stack; /* [cap] LIFO of free pids (count CNT_FREE) */
    const int32_t *arena_chan;
    const int32_t *arena_vc;
    int64_t *counters; /* CNT_* above */
    /* --- scalars --- */
    int64_t nR;
    int64_t radix;
    int64_t nV;
    int64_t nSr; /* radix * nV, slots per router */
    int64_t nC;
    int64_t inj_base;
    int64_t ej_base;
    int64_t nNodes;
    int64_t ws; /* wheel size */
    int64_t dw_cap;
    int64_t cw_cap;
    int64_t tw_cap;
    int64_t out_cap;
    int64_t in_cap;
    int64_t src_cap;
    int64_t speedup;
    int64_t psize;
    int64_t cred_stride; /* nV + 1 */
    int64_t ej_cap;
    int64_t outrow_stride; /* OR_BUD(cred_stride)+8, padded to a line */
} State;

/* outrow columns */
#define OR_HEAD 0
#define OR_LEN 1
#define OR_CRED 2 /* cred_stride entries: per-VC credits, then total */
/* even int32 offset of the row's int64 tail: budget stamp, budget
 * count, busy_until, flits_sent (indices 0..3 through an int64 view of
 * the row tail; the int32 and int64 regions never overlap) */
#define OR_BUD(cs) ((2 + (cs) + 1) & ~1)

/* sorted insert into an active-slot row (caller: slot absent) */
static void aslot_insert(int32_t *a, int32_t *alen, int32_t slot)
{
    int32_t n = *alen;
    int32_t lo = 0, hi = n;
    while (lo < hi) {
        int32_t mid = (lo + hi) >> 1;
        if (a[mid] < slot)
            lo = mid + 1;
        else
            hi = mid;
    }
    memmove(a + lo + 1, a + lo, (size_t)(n - lo) * sizeof(int32_t));
    a[lo] = slot;
    *alen = n + 1;
}

static void aslot_remove(int32_t *a, int32_t *alen, int32_t slot)
{
    int32_t n = *alen;
    int32_t lo = 0, hi = n;
    while (lo < hi) {
        int32_t mid = (lo + hi) >> 1;
        if (a[mid] < slot)
            lo = mid + 1;
        else
            hi = mid;
    }
    if (lo < n && a[lo] == slot) {
        memmove(a + lo, a + lo + 1, (size_t)(n - lo - 1) * sizeof(int32_t));
        *alen = n - 1;
    }
}

/* remove router r from the insertion-ordered active-router list,
 * preserving the order of the remaining entries (== dict.pop) */
static int64_t router_remove(int32_t *act_list, int32_t *act_pos,
                             int64_t nact, int32_t r)
{
    int32_t pos = act_pos[r] - 1;
    if (pos < 0)
        return nact;
    memmove(act_list + pos, act_list + pos + 1,
            (size_t)(nact - pos - 1) * sizeof(int32_t));
    for (int64_t k = pos; k < nact - 1; k++)
        act_pos[act_list[k]] = (int32_t)(k + 1);
    act_pos[r] = 0;
    return nact - 1;
}

/* phase 1: credit returns, then wire arrivals into input buffers.
 * skip_credits: Python already applied this bucket (PAR revision cycles,
 * where revisions must read post-credit load_metric before the kernel
 * runs). */
static int64_t deliver(State *s, int64_t cycle, int32_t idx,
                       int64_t skip_credits)
{
    const int32_t cs = (int32_t)s->cred_stride;
    const int32_t ors = (int32_t)s->outrow_stride;
    const int32_t psize = (int32_t)s->psize;
    int32_t *const outrow = s->outrow;
    int32_t ncr = s->cw_n[idx];
    if (ncr && !skip_credits) {
        const int32_t *cc = s->cw_chan + (int64_t)idx * s->cw_cap;
        const int32_t *cv = s->cw_vc + (int64_t)idx * s->cw_cap;
        for (int32_t i = 0; i < ncr; i++) {
            int32_t *row = outrow + (int64_t)cc[i] * ors + OR_CRED;
            row[cv[i]] += psize;
            row[cs - 1] += psize;
        }
        s->cw_n[idx] = 0;
        s->counters[CNT_PC] -= ncr;
    }
    const int32_t nd = s->dw_n[idx];
    if (!nd) {
        s->rev_n[idx] = 0;
        return 0;
    }
    const int32_t *dc = s->dw_chan + (int64_t)idx * s->dw_cap;
    const int32_t *dp = s->dw_pid + (int64_t)idx * s->dw_cap;
    const int32_t *const dm = s->dw_meta + (int64_t)idx * s->dw_cap;
    const int32_t nSr = (int32_t)s->nSr;
    const int32_t in_cap = (int32_t)s->in_cap;
    const int64_t ej_cap = s->ej_cap;
    const int32_t *const ch_kind = s->ch_kind;
    const int32_t *const ch_dst_router = s->ch_dst_router;
    const int32_t *const ch_gslot = s->ch_gslot;
    int32_t *const in_buf = s->in_buf;
    int32_t *const in_meta = s->in_meta;
    int32_t *const act_slots = s->act_slots;
    int32_t *const act_lenp = s->act_len;
    int32_t *const act_list = s->act_list;
    int32_t *const act_pos = s->act_pos;
    int32_t *const ej_pid = s->ej_pid;
    int32_t *const ej_cycle = s->ej_cycle;
    int32_t *const ej_lat = s->ej_lat;
    int32_t *const ej_hops = s->ej_hops;
    int32_t *const ej_vlb = s->ej_vlb;
    int32_t *const ej_spid = s->ej_spid;
    int32_t *const pkt = s->pkt;
    int32_t *const pmeta = s->pmeta;
    const int32_t ej_base = (int32_t)s->ej_base;
    const int32_t *const arena_chan = s->arena_chan;
    const int32_t *const arena_vc = s->arena_vc;
    int64_t nact = s->counters[CNT_ACT];
    int64_t nej = s->counters[CNT_EJ];
    /* overlap the scattered packet-record and queue-meta misses before
     * the serial pass; the wire VC rides the wheel, so the target slot
     * is known without touching the packet record first */
    for (int32_t i = 0; i < nd; i++) {
        PREFETCH_W(pkt + (int64_t)dp[i] * PK_STRIDE);
        if (ch_kind[dc[i]] == KIND_EJECT)
            PREFETCH_R(pmeta + (int64_t)dp[i] * PM_STRIDE);
        else
            PREFETCH_W(in_meta +
                       (int64_t)(ch_gslot[dc[i]] + dm[i]) * IM_STRIDE);
    }
    for (int32_t i = 0; i < nd; i++) {
        const int32_t c = dc[i];
        const int32_t pid = dp[i];
        if (ch_kind[c] == KIND_EJECT) {
            if (nej >= ej_cap)
                return -1;
            const int32_t *const pm = pmeta + (int64_t)pid * PM_STRIDE;
            ej_pid[nej] = pid;
            ej_cycle[nej] = (int32_t)cycle;
            ej_lat[nej] = (int32_t)cycle - pm[PM_ICYC];
            ej_hops[nej] = pkt[(int64_t)pid * PK_STRIDE + PK_PATH];
            ej_vlb[nej] = pm[PM_VLB];
            ej_spid[nej] = pm[PM_SPID];
            nej++;
            continue;
        }
        /* any PAR revision for this bucket already ran in Python */
        int32_t *const rec = pkt + (int64_t)pid * PK_STRIDE;
        const int32_t r = ch_dst_router[c];
        const int32_t gslot = ch_gslot[c] + dm[i];
        const int32_t lslot = gslot - r * nSr;
        rec[PK_CVC] = dm[i];
        int32_t *const meta = in_meta + (int64_t)gslot * IM_STRIDE;
        const int32_t qlen = meta[IM_LEN];
        if (qlen == 0) {
            aslot_insert(act_slots + (int64_t)r * nSr, act_lenp + r, lslot);
            if (act_pos[r] == 0) {
                act_list[nact] = r;
                act_pos[r] = (int32_t)(nact + 1);
                nact++;
            }
            /* new head: cache its crossbar decision */
            meta[IM_HPID] = pid;
            const int32_t hop = rec[PK_HOP];
            if (hop >= rec[PK_PATH]) {
                meta[IM_HOUT] = ej_base + rec[PK_DST];
                meta[IM_HNVC] = -1;
            } else {
                const int64_t off = (int64_t)rec[PK_ROFF] + hop;
                meta[IM_HOUT] = arena_chan[off];
                meta[IM_HNVC] = arena_vc[off];
            }
        } else if (qlen == 1) {
            /* arriving packet becomes the second head: cache its
             * decision now, while its record line is already hot */
            meta[IM_H2PID] = pid;
            const int32_t hop = rec[PK_HOP];
            if (hop >= rec[PK_PATH]) {
                meta[IM_H2OUT] = ej_base + rec[PK_DST];
                meta[IM_H2NVC] = -1;
            } else {
                const int64_t off = (int64_t)rec[PK_ROFF] + hop;
                meta[IM_H2OUT] = arena_chan[off];
                meta[IM_H2NVC] = arena_vc[off];
            }
        }
        if (qlen >= in_cap)
            return -2;
        int32_t pos = meta[IM_HEAD] + qlen;
        if (pos >= in_cap)
            pos -= in_cap;
        in_buf[(int64_t)gslot * in_cap + pos] = pid;
        meta[IM_LEN] = qlen + 1;
        rec[PK_ARR] = c;
    }
    s->dw_n[idx] = 0;
    s->rev_n[idx] = 0;
    s->counters[CNT_PD] -= nd;
    s->counters[CNT_ACT] = nact;
    s->counters[CNT_EJ] = nej;
    return 0;
}

/* phase 2: switch allocation + traversal (input buffers -> output
 * queues), with VC allocation and upstream credit returns */
static int64_t crossbar(State *s, int64_t cycle, int32_t idx)
{
    int64_t nact = s->counters[CNT_ACT];
    if (!nact)
        return 0;
    const int32_t ws = (int32_t)s->ws;
    const int32_t nV = (int32_t)s->nV;
    const int32_t cs = (int32_t)s->cred_stride;
    const int32_t ors = (int32_t)s->outrow_stride;
    const int32_t nSr = (int32_t)s->nSr;
    const int32_t radix = (int32_t)s->radix;
    const int32_t in_cap = (int32_t)s->in_cap;
    const int32_t out_cap = (int32_t)s->out_cap;
    const int64_t speedup = s->speedup;
    const int32_t psize = (int32_t)s->psize;
    const int32_t ej_base = (int32_t)s->ej_base;
    const int64_t cw_cap = s->cw_cap;
    const int64_t tw_cap = s->tw_cap;
    const int32_t *const ch_latency = s->ch_latency;
    const int32_t *const arena_chan = s->arena_chan;
    const int32_t *const arena_vc = s->arena_vc;
    int32_t *const outrow = s->outrow;
    int32_t *const out_buf = s->out_buf;
    int32_t *const in_buf = s->in_buf;
    int32_t *const in_meta = s->in_meta;
    int32_t *const act_slots = s->act_slots;
    int32_t *const act_lenp = s->act_len;
    int32_t *const act_list = s->act_list;
    int32_t *const act_pos = s->act_pos;
    int32_t *const rrp = s->rr;
    int64_t *const in_bud = s->in_bud;
    const int32_t orb = OR_BUD(cs);
    int32_t *const osnap = s->osnap;
    int32_t *const cw_chan = s->cw_chan;
    int32_t *const cw_vc = s->cw_vc;
    int32_t *const cw_n = s->cw_n;
    int32_t *const tw_chan = s->tw_chan;
    int32_t *const tw_n = s->tw_n;
    int32_t *const pkt = s->pkt;
    int32_t *const rf_q = s->rf_q;
    int32_t *const rf_pos = s->rf_pos;
    int32_t *const rf_off = s->rf_off;
    int32_t nrf = 0;
    /* snapshot: `for ridx in list(self._active_routers)` */
    int32_t *const rsnap = s->rsnap;
    memcpy(rsnap, act_list, (size_t)nact * sizeof(int32_t));
    const int64_t nact0 = nact;
    int64_t pc = 0, pt = 0;
    for (int64_t ri = 0; ri < nact0; ri++) {
        const int32_t r = rsnap[ri];
        int32_t *const aslots = act_slots + (int64_t)r * nSr;
        const int32_t alen = act_lenp[r];
        if (!alen) {
            nact = router_remove(act_list, act_pos, nact, r);
            continue;
        }
        /* ring rotation of the sorted slot list: slots >= rr first */
        const int32_t rrv = rrp[r];
        int32_t lo = 0, hi = alen;
        while (lo < hi) {
            int32_t mid = (lo + hi) >> 1;
            if (aslots[mid] < rrv)
                lo = mid + 1;
            else
                hi = mid;
        }
        const int32_t n = alen;
        {
            int32_t k = 0;
            for (int32_t j = lo; j < n; j++) {
                const int32_t sl = aslots[j];
                osnap[k++] = sl;
                PREFETCH_W(in_meta + ((int64_t)r * nSr + sl) * IM_STRIDE);
            }
            for (int32_t j = 0; j < lo; j++) {
                const int32_t sl = aslots[j];
                osnap[k++] = sl;
                PREFETCH_W(in_meta + ((int64_t)r * nSr + sl) * IM_STRIDE);
            }
        }
        rrp[r] = (rrv + 1 < nSr) ? rrv + 1 : 0;
        const int64_t pbase = (int64_t)r * radix;
        const int64_t qbase = (int64_t)r * nSr;
        for (int32_t k = 0; k < n; k++) {
            const int32_t slot = osnap[k];
            const int64_t q = qbase + slot;
            int32_t *const qmeta = in_meta + q * IM_STRIDE;
            const int32_t qlen = qmeta[IM_LEN];
            if (!qlen) {
                aslot_remove(aslots, act_lenp + r, slot);
                continue;
            }
            int64_t *const ib = in_bud + (pbase + slot / nV) * 2;
            if (ib[0] != cycle) {
                ib[0] = cycle;
                ib[1] = 0;
            } else if (ib[1] >= speedup)
                continue;
            /* head packet + its decision come straight from the cache */
            const int32_t pid = qmeta[IM_HPID];
            const int32_t out = qmeta[IM_HOUT];
            const int32_t hnvc = qmeta[IM_HNVC];
            /* overlap the grant-time record touch with the output-side
             * budget/queue/credit checks below */
            PREFETCH_W(pkt + (int64_t)pid * PK_STRIDE);
            const int ejecting = hnvc < 0;
            const int32_t nvc = ejecting ? 0 : hnvc;
            int32_t *const orow = outrow + (int64_t)out * ors;
            int64_t *const ob = (int64_t *)(orow + orb);
            if (ob[0] != cycle) {
                ob[0] = cycle;
                ob[1] = 0;
            } else if (ob[1] >= speedup)
                continue;
            const int32_t ol = orow[OR_LEN];
            if (ol >= out_cap)
                continue;
            int32_t *const crow = orow + OR_CRED;
            if (!ejecting && crow[nvc] < psize)
                continue; /* not enough downstream space for the packet */
            /* grant */
            int32_t *const rec = pkt + (int64_t)pid * PK_STRIDE;
            const int32_t hop = rec[PK_HOP];
            const int32_t newhop = ejecting ? hop : hop + 1;
            /* wire meta rides the ring + delivery wheel: low half the
             * VC the flit occupies downstream, bit 16 the "revisable
             * hop-1 delivery" flag, so transmit never loads records */
            const int32_t wmeta =
                nvc | ((rec[PK_REV] && newhop == 1) ? 0x10000 : 0);
            int32_t h = qmeta[IM_HEAD] + 1;
            if (h == in_cap)
                h = 0;
            qmeta[IM_HEAD] = h;
            qmeta[IM_LEN] = qlen - 1;
            if (qlen == 1)
                aslot_remove(aslots, act_lenp + r, slot);
            else {
                /* promote the cached second head; its replacement (ring
                 * position head+1) is refilled in the deferred batch
                 * below, off this visit's critical path */
                qmeta[IM_HPID] = qmeta[IM_H2PID];
                qmeta[IM_HOUT] = qmeta[IM_H2OUT];
                qmeta[IM_HNVC] = qmeta[IM_H2NVC];
                if (qlen >= 3) {
                    int32_t p2 = h + 1;
                    if (p2 >= in_cap)
                        p2 -= in_cap;
                    rf_q[nrf] = (int32_t)q;
                    rf_pos[nrf] = p2;
                    nrf++;
                }
            }
            ib[1] += 1;
            ob[1] += 1;
            /* free the input buffer space: return credits upstream */
            const int32_t arr = rec[PK_ARR];
            if (arr >= 0) {
                int32_t b = idx + ch_latency[arr];
                if (b >= ws)
                    b -= ws;
                const int32_t m = cw_n[b];
                if (m >= cw_cap)
                    return -3;
                cw_chan[b * cw_cap + m] = arr;
                cw_vc[b * cw_cap + m] = rec[PK_CVC];
                cw_n[b] = m + 1;
                pc++;
            }
            if (!ejecting) {
                crow[nvc] -= psize;
                crow[cs - 1] -= psize;
                rec[PK_CVC] = nvc;
                rec[PK_HOP] = newhop;
            }
            if (ol == 0) {
                /* queue was empty: schedule the transmission start */
                int64_t when = ob[2]; /* busy_until, same row */
                if (when < cycle)
                    when = cycle;
                int32_t b = idx + (int32_t)(when - cycle);
                if (b >= ws)
                    b -= ws;
                const int32_t m = tw_n[b];
                if (m >= tw_cap)
                    return -4;
                tw_chan[b * tw_cap + m] = out;
                tw_n[b] = m + 1;
                pt++;
            }
            int32_t pos = orow[OR_HEAD] + ol;
            if (pos >= out_cap)
                pos -= out_cap;
            int32_t *const oslot =
                out_buf + ((int64_t)out * out_cap + pos) * 2;
            oslot[0] = pid;
            oslot[1] = wmeta;
            orow[OR_LEN] = ol + 1;
        }
        if (!act_lenp[r])
            nact = router_remove(act_list, act_pos, nact, r);
    }
    /* deferred second-head refills: each stage touches every queued
     * refill before any value is consumed, so the ring -> record ->
     * arena dependent chain overlaps across the whole cycle's refills
     * instead of stalling each grant (queues are distinct -- a slot is
     * visited at most once per pass -- so order is irrelevant) */
    for (int32_t i = 0; i < nrf; i++)
        PREFETCH_R(in_buf + (int64_t)rf_q[i] * in_cap + rf_pos[i]);
    for (int32_t i = 0; i < nrf; i++) {
        const int32_t npid = in_buf[(int64_t)rf_q[i] * in_cap + rf_pos[i]];
        rf_pos[i] = npid;
        PREFETCH_R(pkt + (int64_t)npid * PK_STRIDE);
    }
    for (int32_t i = 0; i < nrf; i++) {
        const int32_t npid = rf_pos[i];
        const int32_t *const nrec = pkt + (int64_t)npid * PK_STRIDE;
        int32_t *const qm = in_meta + (int64_t)rf_q[i] * IM_STRIDE;
        qm[IM_H2PID] = npid;
        const int32_t nhop = nrec[PK_HOP];
        if (nhop >= nrec[PK_PATH]) {
            qm[IM_H2OUT] = ej_base + nrec[PK_DST];
            qm[IM_H2NVC] = -1;
            rf_off[i] = -1;
        } else {
            const int64_t noff = (int64_t)nrec[PK_ROFF] + nhop;
            rf_off[i] = (int32_t)noff;
            PREFETCH_R(arena_chan + noff);
            PREFETCH_R(arena_vc + noff);
        }
    }
    for (int32_t i = 0; i < nrf; i++) {
        const int32_t noff = rf_off[i];
        if (noff >= 0) {
            int32_t *const qm = in_meta + (int64_t)rf_q[i] * IM_STRIDE;
            qm[IM_H2OUT] = arena_chan[noff];
            qm[IM_H2NVC] = arena_vc[noff];
        }
    }
    s->counters[CNT_ACT] = nact;
    s->counters[CNT_PC] += pc;
    s->counters[CNT_PT] += pt;
    return 0;
}

/* phase 3: start the transmissions scheduled for this cycle */
static int64_t transmit(State *s, int64_t cycle, int32_t idx)
{
    const int32_t nt = s->tw_n[idx];
    if (!nt)
        return 0;
    const int32_t ws = (int32_t)s->ws;
    const int32_t cs = (int32_t)s->cred_stride;
    const int32_t ors = (int32_t)s->outrow_stride;
    const int32_t psize = (int32_t)s->psize;
    const int32_t out_cap = (int32_t)s->out_cap;
    const int32_t src_cap = (int32_t)s->src_cap;
    const int64_t inj_base = s->inj_base;
    const int64_t dw_cap = s->dw_cap;
    const int64_t tw_cap = s->tw_cap;
    const int32_t *const ch_kind = s->ch_kind;
    const int32_t *const ch_delay = s->ch_delay;
    int32_t *const outrow = s->outrow;
    const int32_t orb = OR_BUD(cs);
    int32_t *const out_buf = s->out_buf;
    int32_t *const src_buf = s->src_buf;
    int32_t *const pmeta = s->pmeta;
    int32_t *const free_stack = s->free_stack;
    int32_t *const dw_meta = s->dw_meta;
    int32_t *const src_meta = s->src_meta;
    int32_t *const dw_chan = s->dw_chan;
    int32_t *const dw_pid = s->dw_pid;
    int32_t *const dw_n = s->dw_n;
    int32_t *const rev_n = s->rev_n;
    int32_t *const tw_chan = s->tw_chan;
    int32_t *const tw_n = s->tw_n;
    int32_t *const pkt = s->pkt;
    /* in-place bucket iteration is safe: retries land in bucket cycle+1
     * and requeues in cycle+psize, both distinct from idx (ws > psize) */
    const int32_t *const tc = tw_chan + (int64_t)idx * tw_cap;
    /* staged prefetch: each pass overlaps one level of the per-channel
     * meta -> ring slot -> packet record dependent-load chain, so the
     * main pass below runs almost entirely out of cache */
    for (int32_t i = 0; i < nt; i++) {
        const int32_t c = tc[i];
        /* every transmit touches its outrow (ring meta or credits, plus
         * the busy/flits tail); injects additionally pop src_meta */
        PREFETCH_W(outrow + (int64_t)c * ors);
        if (ch_kind[c] == KIND_INJECT)
            PREFETCH_W(src_meta + (int64_t)(c - inj_base) * 2);
    }
    for (int32_t i = 0; i < nt; i++) {
        const int32_t c = tc[i];
        if (ch_kind[c] == KIND_INJECT) {
            const int64_t node = c - inj_base;
            PREFETCH_R(src_buf +
                       (node * src_cap + src_meta[node * 2]) * SE_STRIDE);
        } else
            PREFETCH_R(out_buf +
                       ((int64_t)c * out_cap +
                        outrow[(int64_t)c * ors + OR_HEAD]) *
                           2);
    }
    int64_t pd = 0;
    int32_t retired = 0;
    for (int32_t i = 0; i < nt; i++) {
        const int32_t c = tc[i];
        int32_t pid, rem, wvc, wrev;
        if (ch_kind[c] == KIND_INJECT) {
            /* injection channel: reserve the terminal buffer credit,
             * then materialize the queued entry as a pool record */
            const int64_t node = c - inj_base;
            int32_t *const meta = src_meta + node * 2;
            const int32_t sl = meta[1];
            if (!sl) { /* defensive: drained while scheduled */
                retired++;
                continue;
            }
            const int32_t *const e =
                src_buf + (node * src_cap + meta[0]) * SE_STRIDE;
            const int32_t vc = e[SE_VC0];
            int32_t *const crow = outrow + (int64_t)c * ors + OR_CRED;
            if (crow[vc] < psize) {
                /* terminal buffer full: retry next cycle */
                int32_t b = idx + 1;
                if (b >= ws)
                    b -= ws;
                const int32_t m = tw_n[b];
                if (m >= tw_cap)
                    return -4;
                tw_chan[b * tw_cap + m] = c;
                tw_n[b] = m + 1;
                continue;
            }
            int64_t nfree = s->counters[CNT_FREE];
            if (!nfree) /* Python grows the pool before each step */
                return -6;
            pid = free_stack[--nfree];
            s->counters[CNT_FREE] = nfree;
            crow[vc] -= psize;
            crow[cs - 1] -= psize;
            int32_t *const rec = pkt + (int64_t)pid * PK_STRIDE;
            rec[PK_HOP] = 0;
            rec[PK_PATH] = e[SE_PATH];
            rec[PK_CVC] = vc;
            rec[PK_VC0] = vc;
            rec[PK_DST] = e[SE_DST];
            rec[PK_REV] = e[SE_REV];
            rec[PK_ARR] = -1;
            rec[PK_ROFF] = e[SE_ROFF];
            int32_t *const pm = pmeta + (int64_t)pid * PM_STRIDE;
            pm[PM_SRC] = (int32_t)node;
            pm[PM_ICYC] = e[SE_ICYC];
            pm[PM_VLB] = e[SE_VLB];
            pm[PM_SPID] = e[SE_SPID];
            wvc = vc;
            wrev = 0;
            int32_t h = meta[0] + 1;
            meta[0] = (h == src_cap) ? 0 : h;
            rem = sl - 1;
            meta[1] = rem;
        } else {
            int32_t *const meta = outrow + (int64_t)c * ors;
            const int32_t ol = meta[1];
            if (!ol) { /* defensive: drained while scheduled */
                retired++;
                continue;
            }
            const int32_t *const oslot =
                out_buf + ((int64_t)c * out_cap + meta[0]) * 2;
            pid = oslot[0];
            const int32_t wmeta = oslot[1];
            wvc = wmeta & 0xffff;
            wrev = wmeta >> 16;
            int32_t h = meta[0] + 1;
            meta[0] = (h == out_cap) ? 0 : h;
            rem = ol - 1;
            meta[1] = rem;
        }
        int64_t *const dyn = (int64_t *)(outrow + (int64_t)c * ors + orb);
        dyn[2] = cycle + psize; /* busy_until */
        dyn[3] += psize;        /* flits_sent */
        int32_t b = idx + ch_delay[c];
        if (b >= ws)
            b -= ws;
        const int32_t m = dw_n[b];
        if (m >= dw_cap)
            return -5;
        dw_chan[b * dw_cap + m] = c;
        dw_pid[b * dw_cap + m] = pid;
        dw_meta[b * dw_cap + m] = wvc;
        dw_n[b] = m + 1;
        /* a revisable packet delivered after its first hop will need a
         * Python-side PAR revision before that bucket is drained; the
         * grant stamped that fact into the wire word so the switch path
         * here never loads the packet record */
        rev_n[b] += wrev;
        pd++;
        if (rem) {
            int32_t nb = idx + psize;
            if (nb >= ws)
                nb -= ws;
            const int32_t m2 = tw_n[nb];
            if (m2 >= tw_cap)
                return -4;
            tw_chan[nb * tw_cap + m2] = c;
            tw_n[nb] = m2 + 1;
        } else
            retired++;
    }
    tw_n[idx] = 0;
    s->counters[CNT_PD] += pd;
    s->counters[CNT_PT] -= retired;
    return 0;
}

/* layout guard: version * 100000 + sizeof(State), compared against the
 * ctypes mirror before the first call */
int64_t repro_abi(void)
{
    return REPRO_ARRAYNET_ABI_VERSION * 100000 + (int64_t)sizeof(State);
}

int64_t repro_step_cycle(State *s, int64_t cycle, int64_t skip_credits)
{
    const int32_t idx = (int32_t)(cycle % s->ws);
    int64_t rc = deliver(s, cycle, idx, skip_credits);
    if (rc)
        return rc;
    rc = crossbar(s, cycle, idx);
    if (rc)
        return rc;
    return transmit(s, cycle, idx);
}

/* Batched multi-run entry point: advance `n` independent simulations by
 * one cycle in a single call.  Runs are processed run-major -- each
 * run's whole deliver -> crossbar -> transmit sequence completes before
 * the next run's begins -- so per-run memory behavior is identical to
 * `repro_step_cycle` and results are bit-identical by construction (the
 * runs share no state).  The win lives in the Python driver above: the
 * per-cycle interpreter work (revision pre-passes, growth checks,
 * ejection-drain checks, the ctypes boundary) is paid once per batch
 * instead of once per run.
 *
 * A phase-major variant with one-run-ahead prefetch priming was
 * prototyped and measured SLOWER on the 1-CPU bench host (interleaving
 * the runs' working sets evicts the per-run L2 reuse that run-major
 * order preserves), so the simple loop is the deliberate final form.
 *
 * On a kernel invariant violation the failing run is encoded into the
 * return code as `rc * 1000 + run_index` (codes are small positive
 * ints, batches are far below 1000 runs). */
int64_t repro_step_batch(State **ss, int64_t n, int64_t cycle,
                         const int64_t *skip_credits)
{
    for (int64_t r = 0; r < n; r++) {
        int64_t rc = repro_step_cycle(ss[r], cycle, skip_credits[r]);
        if (rc)
            return rc * 1000 + r;
    }
    return 0;
}
