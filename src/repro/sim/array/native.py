"""Build & load the native cycle kernel (``kernel.c``) on demand.

The kernel is compiled once per source revision with the system C
compiler into a content-addressed shared object under a user cache
directory, then loaded via ctypes.  No third-party build machinery is
involved: ``cc -O3 -shared -fPIC`` is the whole toolchain, and the
sandbox/CI images both ship a C compiler.

Environment gate ``REPRO_ARRAYNET_NATIVE``:

* unset (default) -- try to build/load; on any failure log one warning
  and report the kernel as unavailable (ArrayNetwork then falls back to
  the bit-identical scalar wheel path, see ``repro.sim.array.network``);
* ``0`` / ``off`` / ``no`` / ``false`` -- never attempt the native path;
* ``require`` -- raise :class:`NativeKernelUnavailable` instead of
  falling back (CI perf gates use this to fail loudly).

The :class:`CState` ctypes structure mirrors ``struct State`` in
``kernel.c`` field for field; ``repro_abi()`` returns
``version * 100000 + sizeof(State)`` and is checked before the first
call so a layout drift between the two files fails fast instead of
corrupting memory.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from typing import List, Optional, Tuple

from repro.obs.log import get_logger

__all__ = [
    "CState",
    "NativeKernelUnavailable",
    "load_kernel",
    "native_available",
    "COUNTERS_LEN",
    "CNT_ACT",
    "CNT_PD",
    "CNT_PC",
    "CNT_PT",
    "CNT_EJ",
    "CNT_FREE",
    "PK_HOP",
    "PK_PATH",
    "PK_CVC",
    "PK_VC0",
    "PK_DST",
    "PK_REV",
    "PK_ARR",
    "PK_ROFF",
    "PK_STRIDE",
]

_log = get_logger("sim.array.native")

_ABI_VERSION = 11  # keep in sync with REPRO_ARRAYNET_ABI_VERSION in kernel.c
_KERNEL_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "kernel.c")
_COMPILERS = ("cc", "gcc", "clang")

# counters[] indices, shared with kernel.c
CNT_ACT = 0
CNT_PD = 1
CNT_PC = 2
CNT_PT = 3
CNT_EJ = 4
CNT_FREE = 5
COUNTERS_LEN = 8

_I32P = ctypes.POINTER(ctypes.c_int32)
_I64P = ctypes.POINTER(ctypes.c_int64)

# packed per-packet record columns (pkt stride, shared with kernel.c)
PK_HOP = 0
PK_PATH = 1
PK_CVC = 2
PK_VC0 = 3
PK_DST = 4
PK_REV = 5
PK_ARR = 6
PK_ROFF = 7
PK_STRIDE = 8

# field order MUST match struct State in kernel.c exactly; repro_abi()
# only guards the total size, the parity test suite guards the semantics
_POINTER_FIELDS: List[Tuple[str, object]] = [
    ("ch_latency", _I32P),
    ("ch_delay", _I32P),
    ("ch_dst_router", _I32P),
    ("ch_gslot", _I32P),
    ("ch_kind", _I32P),
    ("outrow", _I32P),
    ("out_buf", _I32P),
    ("src_buf", _I32P),
    ("src_meta", _I32P),
    ("in_buf", _I32P),
    ("in_meta", _I32P),
    ("act_slots", _I32P),
    ("act_len", _I32P),
    ("act_list", _I32P),
    ("act_pos", _I32P),
    ("rr", _I32P),
    ("in_bud", _I64P),
    ("rsnap", _I32P),
    ("osnap", _I32P),
    ("rf_q", _I32P),
    ("rf_pos", _I32P),
    ("rf_off", _I32P),
    ("dw_chan", _I32P),
    ("dw_pid", _I32P),
    ("dw_meta", _I32P),
    ("dw_n", _I32P),
    ("rev_n", _I32P),
    ("cw_chan", _I32P),
    ("cw_vc", _I32P),
    ("cw_n", _I32P),
    ("tw_chan", _I32P),
    ("tw_n", _I32P),
    ("ej_pid", _I32P),
    ("ej_cycle", _I32P),
    ("ej_lat", _I32P),
    ("ej_hops", _I32P),
    ("ej_vlb", _I32P),
    ("ej_spid", _I32P),
    ("pkt", _I32P),
    ("pmeta", _I32P),
    ("free_stack", _I32P),
    ("arena_chan", _I32P),
    ("arena_vc", _I32P),
    ("counters", _I64P),
]

SCALAR_FIELDS: Tuple[str, ...] = (
    "nR",
    "radix",
    "nV",
    "nSr",
    "nC",
    "inj_base",
    "ej_base",
    "nNodes",
    "ws",
    "dw_cap",
    "cw_cap",
    "tw_cap",
    "out_cap",
    "in_cap",
    "src_cap",
    "speedup",
    "psize",
    "cred_stride",
    "ej_cap",
    "outrow_stride",
)

POINTER_FIELD_NAMES: Tuple[str, ...] = tuple(n for n, _ in _POINTER_FIELDS)


class CState(ctypes.Structure):
    """ctypes mirror of ``struct State`` in kernel.c."""

    _fields_ = _POINTER_FIELDS + [  # type: ignore[assignment]
        (name, ctypes.c_int64) for name in SCALAR_FIELDS
    ]


class NativeKernelUnavailable(RuntimeError):
    """The native kernel was required but could not be built/loaded."""


def _cache_dir() -> str:
    base = os.environ.get("REPRO_ARRAYNET_CACHE")
    if not base:
        xdg = os.environ.get("XDG_CACHE_HOME") or os.path.join(
            os.path.expanduser("~"), ".cache"
        )
        base = os.path.join(xdg, "repro-arraynet")
    return base


def _find_compiler() -> Optional[str]:
    for name in _COMPILERS:
        path = shutil.which(name)
        if path:
            return path
    return None


_CFLAGS = ("-O3", "-shared", "-fPIC", "-std=c99")


def _build(compiler: str, source: str, digest: str) -> str:
    """Compile kernel.c into the content-addressed cache, atomically."""
    cache = _cache_dir()
    os.makedirs(cache, exist_ok=True)
    so_path = os.path.join(cache, f"kernel-{digest}.so")
    if os.path.exists(so_path):
        return so_path
    fd, tmp = tempfile.mkstemp(
        prefix=f"kernel-{digest}-", suffix=".so.tmp", dir=cache
    )
    os.close(fd)
    try:
        subprocess.run(
            [compiler, *_CFLAGS, "-o", tmp, source],
            check=True,
            capture_output=True,
            text=True,
        )
        os.replace(tmp, so_path)  # atomic: concurrent builders converge
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return so_path


def _load() -> ctypes.CDLL:
    if not os.path.exists(_KERNEL_SRC):
        raise NativeKernelUnavailable(f"kernel source missing: {_KERNEL_SRC}")
    compiler = _find_compiler()
    if compiler is None:
        raise NativeKernelUnavailable(
            "no C compiler found (tried %s)" % ", ".join(_COMPILERS)
        )
    with open(_KERNEL_SRC, "rb") as fh:
        source_bytes = fh.read()
    # flags are part of the .so identity: changing them must miss the
    # cache, not silently reuse an object built under the old flags
    digest = hashlib.sha256(
        source_bytes + "\0".join(_CFLAGS).encode()
    ).hexdigest()[:16]
    try:
        so_path = _build(compiler, _KERNEL_SRC, digest)
        lib = ctypes.CDLL(so_path)
    except (OSError, subprocess.CalledProcessError) as exc:
        detail = ""
        if isinstance(exc, subprocess.CalledProcessError):
            detail = f": {exc.stderr}"
        raise NativeKernelUnavailable(
            f"failed to build/load native kernel with {compiler}{detail}"
        ) from exc
    lib.repro_abi.restype = ctypes.c_int64
    lib.repro_abi.argtypes = []
    expected = _ABI_VERSION * 100000 + ctypes.sizeof(CState)
    got = int(lib.repro_abi())
    if got != expected:
        raise NativeKernelUnavailable(
            f"native kernel ABI mismatch: kernel reports {got}, "
            f"ctypes mirror expects {expected} -- clear the cache at "
            f"{_cache_dir()} or rebuild"
        )
    lib.repro_step_cycle.restype = ctypes.c_int64
    lib.repro_step_cycle.argtypes = [
        ctypes.POINTER(CState),
        ctypes.c_int64,
        ctypes.c_int64,
    ]
    # batched entry point: one call advances n independent runs one
    # cycle (run-major; bit-identical per run to repro_step_cycle)
    lib.repro_step_batch.restype = ctypes.c_int64
    lib.repro_step_batch.argtypes = [
        ctypes.POINTER(ctypes.POINTER(CState)),
        ctypes.c_int64,
        ctypes.c_int64,
        ctypes.POINTER(ctypes.c_int64),
    ]
    return lib


# memo: None = not tried yet, False = tried and failed, CDLL = loaded
_KERNEL: object = None


def load_kernel() -> Optional[ctypes.CDLL]:
    """The loaded kernel, or None when unavailable (per the env gate)."""
    global _KERNEL
    gate = os.environ.get("REPRO_ARRAYNET_NATIVE", "").strip().lower()
    if gate in ("0", "off", "no", "false"):
        return None
    if _KERNEL is not None:
        if _KERNEL is False:
            if gate == "require":
                raise NativeKernelUnavailable(
                    "REPRO_ARRAYNET_NATIVE=require but the native kernel "
                    "failed to build/load earlier in this process"
                )
            return None
        return _KERNEL  # type: ignore[return-value]
    try:
        _KERNEL = _load()
    except NativeKernelUnavailable as exc:
        _KERNEL = False
        if gate == "require":
            raise
        _log.warning(
            "native array kernel unavailable (%s); ArrayNetwork falls "
            "back to the scalar wheel path (bit-identical, slower)",
            exc,
        )
        return None
    return _KERNEL  # type: ignore[return-value]


def native_available() -> bool:
    """True when the native kernel can be (or has been) loaded."""
    try:
        return load_kernel() is not None
    except NativeKernelUnavailable:
        return False
