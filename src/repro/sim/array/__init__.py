"""Struct-of-arrays batched simulation engine (``SimParams.engine="array"``).

See :mod:`repro.sim.array.network` for the engine and its parity
contract, and :mod:`repro.sim.array.native` for the on-demand native
kernel build.
"""

from repro.sim.array.native import (
    NativeKernelUnavailable,
    load_kernel,
    native_available,
)
from repro.sim.array.network import ArrayChannel, ArrayNetwork

__all__ = [
    "ArrayChannel",
    "ArrayNetwork",
    "NativeKernelUnavailable",
    "load_kernel",
    "native_available",
]
