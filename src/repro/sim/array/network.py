"""ArrayNetwork: struct-of-arrays batched cycle engine.

The third engine behind the :class:`repro.sim.network.Network` interface
(``SimParams.engine="array"``).  All flit/credit/VC state lives in numpy
struct-of-arrays -- per-channel credit tables, output-queue rings, router
input-buffer rings, sorted active-slot tables, and fixed-capacity timing
wheels -- and the per-cycle phases are advanced for the whole network per
call:

* the hot path is the native kernel (``kernel.c``, built on demand by
  :mod:`repro.sim.array.native`), a bit-exact transliteration of the
  wheel engine's deliver -> crossbar -> transmit phases over the shared
  arrays, with batched timing-wheel pops, cache-packed per-packet
  records, and allocation-free inner loops;
* order-insensitive bulk work stays vectorized numpy on the Python side:
  ejection statistics are buffered in-kernel across many cycles and
  drained as array batches (``StatsCollector.record_ejection_batch``),
  and every observability read (utilization, flit totals, VC occupancy,
  backlog) is a vectorized reduction over the same arrays;
* the only order-sensitive randomness in a cycle -- PAR's ``on_arrival``
  revision draws -- is handled in Python *before* the kernel runs, in
  delivery-bucket order, which is exactly the wheel engine's call order
  (this is the documented scalar path: exact RNG-order parity is
  infeasible inside a blindly vectorized arbitration step, so arbitration
  is kept scalar-exact and revisions stay in Python);
* when no C compiler is available (gate ``REPRO_ARRAYNET_NATIVE``), the
  engine transparently falls back to the inherited scalar wheel path --
  bit-identical by definition, slower, and logged once.

Because ejections are buffered lazily, callers that drive ``step()``
directly must call :meth:`finalize` before reading final statistics
(``simulate`` does this); per-ejection hook order and cycle stamps are
preserved exactly, only the hook call *time* is deferred.

Results are bit-identical to the wheel engine and ``LegacyNetwork``
across seed x routing x load (pinned by ``tests/test_array_engine.py``),
which is why ``SimParams.engine`` is identity-neutral: all engines share
cache entries and spec fingerprints.
"""

from __future__ import annotations

import ctypes
import mmap
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sim.network import Network, SimChannel
from repro.sim.packet import Packet
from repro.sim.array.native import (
    CNT_EJ,
    CNT_FREE,
    CNT_PC,
    CNT_PD,
    CNT_PT,
    COUNTERS_LEN,
    PK_STRIDE,
    CState,
    POINTER_FIELD_NAMES,
    SCALAR_FIELDS,
    load_kernel,
)

__all__ = ["ArrayChannel", "ArrayNetwork"]

_PTR_OF_DTYPE = {
    np.dtype(np.int32): ctypes.POINTER(ctypes.c_int32),
    np.dtype(np.int64): ctypes.POINTER(ctypes.c_int64),
}

_INITIAL_PACKET_CAP = 1024
_INITIAL_ARENA_CAP = 4096
_INITIAL_SRC_CAP = 32
_EJ_BATCH_CYCLES = 16  # ejection-buffer capacity in worst-case cycles

_HUGE = 2 * 1024 * 1024  # transparent-hugepage granule
_HUGE_MIN = 128 * 1024  # route allocations this large through hugepages


def _alloc(shape, dtype) -> np.ndarray:
    """Zeroed array; hugepage-backed when large.

    The kernel's per-packet and per-buffer touches are scattered over
    arrays that reach many megabytes at saturation, so with 4K pages the
    TLB misses dominate -- and hardware drops prefetches that miss the
    TLB, defeating the kernel's software-prefetch passes.  Backing the
    big arrays with 2MB transparent hugepages (anonymous mmap, 2MB-aligned
    slice, MADV_HUGEPAGE) keeps them a handful of TLB entries.  Purely an
    allocation detail: contents and layout are identical to np.zeros.
    """
    dt = np.dtype(dtype)
    shape = (shape,) if isinstance(shape, int) else tuple(shape)
    nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
    if nbytes < _HUGE_MIN or not hasattr(mmap, "MADV_HUGEPAGE"):
        return np.zeros(shape, dt)
    mm = mmap.mmap(-1, nbytes + _HUGE)
    addr = ctypes.addressof(ctypes.c_char.from_buffer(mm))
    off = (-addr) % _HUGE
    try:
        mm.madvise(mmap.MADV_HUGEPAGE, off, nbytes)
    except OSError:  # pragma: no cover - advisory only
        pass
    arr = np.frombuffer(mm, dtype=dt, count=nbytes // dt.itemsize, offset=off)
    return arr.reshape(shape)


class ArrayChannel(SimChannel):
    """A SimChannel whose live state may reside in the SoA arrays.

    Construction is identical to :class:`SimChannel` (ArrayNetwork reuses
    the whole inherited topology build); afterwards the network assigns
    every channel its array ``index`` and, in native mode, a back
    reference so :meth:`load_metric` -- the UGAL congestion estimate read
    per routing decision -- answers from the arrays the kernel updates.
    In fallback mode the back reference stays ``None`` and the inherited
    deque/credit state remains authoritative.
    """

    __slots__ = ("index", "_anet")

    def load_metric(self) -> int:
        net = self._anet
        if net is None:
            return SimChannel.load_metric(self)
        i = self.index
        soa = net._S
        return (
            int(soa.out_len[i])
            + self.credit_capacity
            - int(soa.cred_total[i])
        )


class _SoA:
    """Bag of the numpy arrays shared between Python and the kernel.

    Attribute names for the contiguous base arrays match ``struct State``
    in kernel.c field for field.  Convenience *views* into the packed
    bases keep the wheel engine's vocabulary on the Python side
    (``out_head``/``out_len``/``cred``/``cred_total`` and the int64
    ``busy_until``/``flits`` tail into ``outrow``, the
    ``p_*`` columns into ``pkt``, ...); only base arrays are handed to C.
    A few arrays are Python-only and never cross: ``p_src``,
    ``p_inject_cycle``, ``p_used_vlb``, ``is_global``.
    """


class ArrayNetwork(Network):
    """Struct-of-arrays engine behind the Network interface."""

    channel_cls = ArrayChannel

    def __init__(self, topo, params, num_vcs: int) -> None:
        super().__init__(topo, params, num_vcs)
        self._S: Optional[_SoA] = None
        self._kernel = load_kernel()
        # channel index assignment happens in both modes so ArrayChannel
        # slots are always initialized; the SoA is built only in native
        # mode (fallback keeps the inherited wheel structures live)
        # repro: allow[DET102]: self.channels is insertion-ordered by the
        # deterministic topology construction; index order is part of the
        # SoA layout contract
        ordered = list(self.channels.values())
        self._num_switch_channels = len(ordered)
        ordered += self.inject_channels
        ordered += self.eject_channels
        for i, channel in enumerate(ordered):
            channel.index = i
            channel._anet = None
        if self._kernel is None:
            return
        self._build_soa(ordered)
        for channel in ordered[: self._num_switch_channels]:
            channel._anet = self
        for channel in self.eject_channels:
            channel._anet = self

    # ------------------------------------------------------------------
    # SoA construction (native mode only)
    # ------------------------------------------------------------------
    def _build_soa(self, ordered: List[SimChannel]) -> None:
        topo = self.topo
        params = self.params
        nV = self.num_vcs
        nR = topo.num_switches
        radix = topo.radix
        nSr = radix * nV
        nNodes = topo.num_nodes
        nSw = self._num_switch_channels
        nC = len(ordered)
        ws = self._wheel_size
        psize = params.packet_size

        S = _SoA()
        self._S = S
        # --- static per-channel tables (array order = insertion order) ---
        S.ch_latency = np.array([c.latency for c in ordered], np.int32)
        S.ch_delay = np.array([c.delivery_delay for c in ordered], np.int32)
        S.ch_dst_router = np.array(
            [-1 if c.dst_router is None else c.dst_router for c in ordered],
            np.int32,
        )
        S.ch_gslot = np.array(
            [
                0
                if c.dst_router is None
                else c.dst_router * nSr + c.dst_slot_base
                for c in ordered
            ],
            np.int32,
        )
        S.ch_kind = np.array(
            [
                1 if c.is_injection else (2 if c.is_ejection else 0)
                for c in ordered
            ],
            np.int32,
        )
        S.is_global = np.array(
            [bool(c.is_global_link) for c in ordered], bool
        )
        # --- dynamic channel state.  The grant-time output side of a
        # channel (ring head/len + per-VC credits + credit total, then
        # an 8-byte-aligned int64 tail: output budget stamp/count,
        # busy_until, flits_sent) packs into one line-padded row, so the
        # crossbar's hottest random accesses per grant collapse into a
        # single cache line.  Output ports map 1:1 onto non-injection
        # channels (asserted below), so the per-port output budget
        # legally lives per channel.  Python keeps named strided views
        # into the rows (kernel.c OR_* columns) ---
        cred_stride = nV + 1
        or_bud = (2 + cred_stride + 1) & ~1  # even: int64-aligned tail
        outrow_stride = -(-(or_bud + 8) // 16) * 16
        S.outrow = _alloc((nC, outrow_stride), np.int32)
        S.out_head = S.outrow[:, 0]
        S.out_len = S.outrow[:, 1]
        S.cred = S.outrow[:, 2 : 2 + nV]
        S.cred_total = S.outrow[:, 2 + nV]
        S.cred[:] = params.buffer_size
        S.cred_total[:] = params.buffer_size * nV
        outrow64 = S.outrow.view(np.int64)  # [nC][outrow_stride // 2]
        outrow64[:, or_bud // 2] = -1  # budget stamp: no cycle yet
        S.busy_until = outrow64[:, or_bud // 2 + 2]
        S.flits = outrow64[:, or_bud // 2 + 3]
        pidx = [
            0 if c.src_router is None else c.src_router * radix + c.src_port
            for c in ordered
            if not c.is_injection
        ]
        assert len(set(pidx)) == len(pidx), "output port shared by channels"
        out_cap = params.output_queue_size
        S.out_buf = _alloc((nC, out_cap, 2), np.int32)
        self._src_cap = _INITIAL_SRC_CAP
        # each ring slot is a packed queued-packet entry (kernel.c SE_*):
        # records materialize in the pool only at network entry
        S.src_buf = _alloc((nNodes, self._src_cap, 8), np.int32)
        S.src_meta = np.zeros((nNodes, 2), np.int32)
        S.src_head = S.src_meta[:, 0]
        S.src_len = S.src_meta[:, 1]
        # --- router state ---
        in_cap = max(1, params.buffer_size // psize)
        S.in_buf = _alloc((nR * nSr, in_cap), np.int32)
        # stride 8: head, len, cached head pid / out channel / next VC
        # (columns 2-4, kernel-owned; see kernel.c IM_* doc)
        S.in_meta = _alloc((nR * nSr, 8), np.int32)
        S.in_head = S.in_meta[:, 0]
        S.in_len = S.in_meta[:, 1]
        S.act_slots = np.zeros((nR, nSr), np.int32)
        S.act_len = np.zeros(nR, np.int32)
        S.act_list = np.zeros(nR, np.int32)
        S.act_pos = np.zeros(nR, np.int32)
        S.rr = np.zeros(nR, np.int32)
        S.in_bud = np.zeros((nR * radix, 2), np.int64)
        S.in_bud[:, 0] = -1  # stamp: no cycle yet
        S.rsnap = np.zeros(nR, np.int32)
        S.osnap = np.zeros(nSr, np.int32)
        # deferred second-head refill scratch (kernel crossbar pass)
        S.rf_q = np.zeros(nR * nSr, np.int32)
        S.rf_pos = np.zeros(nR * nSr, np.int32)
        S.rf_off = np.zeros(nR * nSr, np.int32)
        # --- timing wheels (capacity bounds proven in kernel.c header) ---
        dw_cap = nC
        cw_cap = nC * params.speedup
        tw_cap = nC
        S.dw_chan = _alloc((ws, dw_cap), np.int32)
        S.dw_pid = _alloc((ws, dw_cap), np.int32)
        S.dw_meta = _alloc((ws, dw_cap), np.int32)
        S.dw_n = np.zeros(ws, np.int32)
        S.rev_n = np.zeros(ws, np.int32)
        S.cw_chan = _alloc((ws, cw_cap), np.int32)
        S.cw_vc = _alloc((ws, cw_cap), np.int32)
        S.cw_n = np.zeros(ws, np.int32)
        S.tw_chan = _alloc((ws, tw_cap), np.int32)
        S.tw_n = np.zeros(ws, np.int32)
        # lazily drained ejection buffer: worst case nNodes per cycle;
        # Python flushes whenever fewer than nNodes slots remain
        ej_cap = nNodes * _EJ_BATCH_CYCLES
        self._ej_flush = ej_cap - nNodes
        S.ej_pid = np.zeros(ej_cap, np.int32)
        S.ej_cycle = np.zeros(ej_cap, np.int32)
        S.ej_lat = np.zeros(ej_cap, np.int32)
        S.ej_hops = np.zeros(ej_cap, np.int32)
        S.ej_vlb = np.zeros(ej_cap, np.int32)
        S.ej_spid = np.zeros(ej_cap, np.int32)
        # --- packed per-packet record pool (one cache line per packet).
        # Sized by in-network + ejection-buffer occupancy, NOT by the
        # source backlog: the kernel pops pool ids from the free stack at
        # injection-transmit and the ejection drain pushes them back ---
        cap = _INITIAL_PACKET_CAP
        self._packet_cap = cap
        S.pkt = _alloc((cap, PK_STRIDE), np.int32)
        S.pmeta = _alloc((cap, 4), np.int32)
        S.free_stack = _alloc(cap, np.int32)
        # descending init so pids pop in ascending order
        S.free_stack[:] = np.arange(cap - 1, -1, -1, dtype=np.int32)
        self._refresh_pkt_views()
        # --- route arena ---
        self._arena_cap = _INITIAL_ARENA_CAP
        self._arena_len = 0
        S.arena_chan = np.zeros(self._arena_cap, np.int32)
        S.arena_vc = np.zeros(self._arena_cap, np.int32)
        # memoized by id(route); _route_refs pins the lists so ids are
        # never recycled while the memo lives
        self._route_memo: Dict[int, int] = {}
        self._route_refs: List[object] = []
        S.counters = np.zeros(COUNTERS_LEN, np.int64)
        S.counters[CNT_FREE] = cap

        self._next_spid = 1  # staging ids for revisable Packet objects
        self._live: Dict[int, Packet] = {}  # spid -> revisable Packet

        self._scalars = {
            "nR": nR,
            "radix": radix,
            "nV": nV,
            "nSr": nSr,
            "nC": nC,
            "inj_base": nSw,
            "ej_base": nSw + nNodes,
            "nNodes": nNodes,
            "ws": ws,
            "dw_cap": dw_cap,
            "cw_cap": cw_cap,
            "tw_cap": tw_cap,
            "out_cap": out_cap,
            "in_cap": in_cap,
            "src_cap": self._src_cap,
            "speedup": params.speedup,
            "psize": psize,
            "cred_stride": cred_stride,
            "ej_cap": ej_cap,
            "outrow_stride": outrow_stride,
        }
        self._inj_base = nSw
        self._ej_base = nSw + nNodes
        self._cstate = CState()
        self._sync_struct()
        self._step_native = self._kernel.repro_step_cycle
        self._cstate_ref = ctypes.byref(self._cstate)

    def _refresh_pkt_views(self) -> None:
        """Re-derive the column views after (re)allocating the pool."""
        S = self._S
        pkt = S.pkt
        S.p_hop = pkt[:, 0]
        S.p_path_hops = pkt[:, 1]
        S.p_current_vc = pkt[:, 2]
        S.p_vc0 = pkt[:, 3]
        S.p_dst = pkt[:, 4]
        S.p_revisable = pkt[:, 5]
        S.p_arrived = pkt[:, 6]
        S.p_route_off = pkt[:, 7]
        pm = S.pmeta
        S.pm_src = pm[:, 0]
        S.pm_icyc = pm[:, 1]
        S.pm_vlb = pm[:, 2]
        S.pm_spid = pm[:, 3]

    def _sync_struct(self) -> None:
        """Point the C struct at the current arrays (re-run after growth)."""
        st = self._cstate
        S = self._S
        for name in POINTER_FIELD_NAMES:
            arr = getattr(S, name)
            setattr(st, name, arr.ctypes.data_as(_PTR_OF_DTYPE[arr.dtype]))
        self._scalars["src_cap"] = self._src_cap
        for name in SCALAR_FIELDS:
            setattr(st, name, self._scalars[name])

    @property
    def backend(self) -> str:
        """Which step implementation is live: ``native`` or fallback."""
        return "native" if self._S is not None else "wheel-fallback"

    # ------------------------------------------------------------------
    # Growth (Python-side only; the kernel never allocates)
    # ------------------------------------------------------------------
    def _grow_pool(self) -> None:
        """Double the packet-record pool, stacking the new ids as free."""
        S = self._S
        old_cap = self._packet_cap
        new_cap = old_cap * 2
        for name, width in (("pkt", PK_STRIDE), ("pmeta", 4)):
            old = getattr(S, name)
            grown = _alloc((new_cap, width), np.int32)
            grown[:old_cap] = old
            setattr(S, name, grown)
        nfree = int(S.counters[CNT_FREE])
        stack = _alloc(new_cap, np.int32)
        stack[:nfree] = S.free_stack[:nfree]
        # new ids above the old stack, descending so they pop ascending
        stack[nfree : nfree + old_cap] = np.arange(
            new_cap - 1, old_cap - 1, -1, dtype=np.int32
        )
        S.free_stack = stack
        S.counters[CNT_FREE] = nfree + old_cap
        self._refresh_pkt_views()
        self._packet_cap = new_cap
        self._sync_struct()

    def _grow_arena(self, need: int) -> None:
        S = self._S
        new_cap = self._arena_cap
        while new_cap < need:
            new_cap *= 2
        for name in ("arena_chan", "arena_vc"):
            old = getattr(S, name)
            grown = _alloc(new_cap, old.dtype)
            grown[: self._arena_len] = old[: self._arena_len]
            setattr(S, name, grown)
        self._arena_cap = new_cap
        self._sync_struct()

    def _grow_src(self) -> None:
        """Double source-queue ring capacity, unwrapping each ring."""
        S = self._S
        old_cap = self._src_cap
        new_cap = old_cap * 2
        grown = _alloc((S.src_buf.shape[0], new_cap, 8), np.int32)
        lens = S.src_len
        heads = S.src_head
        for node in np.nonzero(lens)[0].tolist():
            n = int(lens[node])
            idx = (int(heads[node]) + np.arange(n)) % old_cap
            grown[node, :n] = S.src_buf[node, idx]
        S.src_buf = grown
        S.src_head[:] = 0
        self._src_cap = new_cap
        self._sync_struct()

    # ------------------------------------------------------------------
    # Injection (native) -- mirrors Network.inject over the arrays
    # ------------------------------------------------------------------
    def _register_route(self, route, vcs) -> int:
        """Intern a route (channel/VC lists) into the arena, memoized.

        Candidate-cache entries share list objects 1:1 with their VC
        lists, so id(route) is a sound memo key; revised routes are
        fresh lists and intern individually.
        """
        key = id(route)
        off = self._route_memo.get(key)
        if off is not None:
            return off
        S = self._S
        off = self._arena_len
        need = off + len(route)
        if need > self._arena_cap:
            self._grow_arena(need)
        arena_chan = S.arena_chan
        arena_vc = S.arena_vc
        for i, channel in enumerate(route):
            arena_chan[off + i] = channel.index
            arena_vc[off + i] = vcs[i]
        self._arena_len = need
        self._route_memo[key] = off
        self._route_refs.append(route)
        return off

    def inject(self, packet: Packet) -> None:
        """Queue a routed packet at its node's source queue.

        The queue entry is a packed value record (kernel.c ``SE_*``); no
        pool id is allocated until the kernel moves the packet into the
        network at injection-transmit, so deep source backlogs never
        inflate the hot record pool.  Revisable packets additionally park
        their Python object in ``_live`` under a staging id the kernel
        threads through to ``pmeta``.
        """
        S = self._S
        if S is None:
            super().inject(packet)
            return
        path_hops = packet.path_hops
        # empty routes (intra-switch pairs) never touch the arena
        off = self._register_route(packet.route, packet.vcs) if path_hops else 0
        spid = 0
        if packet.revisable:
            spid = self._next_spid
            self._next_spid = spid + 1
            self._live[spid] = packet
        node = packet.src_node
        src_len = S.src_len
        n = int(src_len[node])
        if n == 0:
            channel = self._inj_base + node
            when = int(S.busy_until[channel])
            cycle = self.cycle
            if when < cycle:
                when = cycle
            bucket = when % self._wheel_size
            m = int(S.tw_n[bucket])
            S.tw_chan[bucket, m] = channel
            S.tw_n[bucket] = m + 1
            S.counters[CNT_PT] += 1
        elif n >= self._src_cap:
            self._grow_src()
        S.src_buf[node, (int(S.src_head[node]) + n) % self._src_cap] = (
            path_hops,
            packet.vcs[0] if path_hops else 0,
            packet.dst_node,
            1 if packet.revisable else 0,
            off,
            packet.inject_cycle,
            spid,
            1 if packet.used_vlb else 0,
        )
        src_len[node] = n + 1

    def intern_route(self, chan_indices, vcs) -> int:
        """Append a route given by raw channel indices to the arena.

        The batched driver's shared candidate tables carry channel
        *indices* (identical across every network built on one topology)
        instead of per-network :class:`SimChannel` objects, so its
        interning bypasses the ``id(route)``-keyed memo of
        :meth:`_register_route`; callers memoize offsets themselves.
        Arena layout is bookkeeping only -- results never depend on it.
        """
        S = self._S
        off = self._arena_len
        need = off + len(chan_indices)
        if need > self._arena_cap:
            self._grow_arena(need)
        S.arena_chan[off:need] = chan_indices
        S.arena_vc[off:need] = vcs
        self._arena_len = need
        return off

    def inject_batch(
        self,
        src_nodes: np.ndarray,
        path_hops: np.ndarray,
        vcs0: np.ndarray,
        dst_nodes: np.ndarray,
        route_offs: np.ndarray,
        cycle: int,
        used_vlb: int = 0,
    ) -> None:
        """Vectorized :meth:`inject` for one cycle's routed packets.

        Contract (matches the engine's Bernoulli injection exactly):
        ``src_nodes`` is strictly ascending with at most one packet per
        node, every packet is non-revisable and already routed (arena
        offsets from :meth:`intern_route`), and the caller has applied
        the source-queue cap filter.  The queue records written, the
        timing-wheel appends for previously-empty queues (in the same
        ascending order the per-packet loop produces), and the counter
        updates are bit-identical to ``inject()`` called per packet.
        """
        S = self._S
        lens = S.src_len[src_nodes]
        while int(lens.max()) >= self._src_cap:
            self._grow_src()
        empties = src_nodes[lens == 0]
        if empties.size:
            busy = S.busy_until
            tw_chan = S.tw_chan
            tw_n = S.tw_n
            ws = self._wheel_size
            base = self._inj_base
            for node in empties.tolist():
                channel = base + node
                when = int(busy[channel])
                if when < cycle:
                    when = cycle
                bucket = when % ws
                m = int(tw_n[bucket])
                tw_chan[bucket, m] = channel
                tw_n[bucket] = m + 1
            S.counters[CNT_PT] += int(empties.size)
        rec = np.empty((src_nodes.size, 8), np.int32)
        rec[:, 0] = path_hops
        rec[:, 1] = vcs0
        rec[:, 2] = dst_nodes
        rec[:, 3] = 0  # revisable
        rec[:, 4] = route_offs
        rec[:, 5] = cycle
        rec[:, 6] = 0  # spid
        rec[:, 7] = used_vlb
        pos = (S.src_head[src_nodes] + lens) % self._src_cap
        S.src_buf[src_nodes, pos] = rec
        S.src_len[src_nodes] = lens + 1

    # ------------------------------------------------------------------
    # Per-cycle step (native)
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance one cycle (deliver -> crossbar -> transmit)."""
        S = self._S
        if S is None:
            super().step()
            return
        cycle = self.cycle
        skip_credits = self.pre_step()
        rc = self._step_native(self._cstate_ref, cycle, skip_credits)
        if rc:
            raise RuntimeError(
                f"array kernel invariant violation (code {rc}) at "
                f"cycle {cycle}"
            )
        self.post_step()

    def pre_step(self) -> int:
        """Per-cycle Python work that must run *before* the kernel.

        Returns the kernel's ``skip_credits`` flag.  Split out of
        :meth:`step` so the batched driver (:mod:`repro.sim.batch`) can
        run every run's pre-pass, make one ``repro_step_batch`` call for
        the whole batch, then run every run's :meth:`post_step` -- the
        exact sequence ``step()`` performs for a single run.
        """
        S = self._S
        cycle = self.cycle
        idx = cycle % self._wheel_size
        # at most one packet per node can enter the network per cycle
        if S.counters[CNT_FREE] < self.topo.num_nodes:
            self._grow_pool()
        skip_credits = 0
        if S.rev_n[idx] and self.on_arrival is not None:
            # the wheel applies this cycle's credit returns before the
            # delivery loop, so PAR revisions must see post-credit
            # load_metric state; apply them here, run the revisions in
            # delivery-bucket order (== the wheel's on_arrival call
            # order, pinning the RNG draw sequence), then let the kernel
            # run the rest of the cycle
            self._apply_credit_bucket(idx)
            self._process_revisions(idx)
            skip_credits = 1
        return skip_credits

    def post_step(self) -> None:
        """Per-cycle Python work after the kernel: drain checks, clock."""
        S = self._S
        # ejections accumulate in-kernel and drain in large batches; the
        # buffer must be flushed before the next cycle could overflow it
        if S.counters[CNT_EJ] >= self._ej_flush:
            self._flush_ejections()
        self.cycle += 1

    def finalize(self) -> None:
        """Flush buffered ejections so statistics hooks are complete."""
        if self._S is None:
            return
        self._flush_ejections()

    def _apply_credit_bucket(self, idx: int) -> None:
        S = self._S
        n = int(S.cw_n[idx])
        if not n:
            return
        psize = self.params.packet_size
        cred = S.cred
        cred_total = S.cred_total
        for c, vc in zip(
            S.cw_chan[idx, :n].tolist(), S.cw_vc[idx, :n].tolist()
        ):
            cred[c, vc] += psize
            cred_total[c] += psize
        S.cw_n[idx] = 0
        S.counters[CNT_PC] -= n

    def _process_revisions(self, idx: int) -> None:
        """Run PAR's on_arrival for this bucket's hop-1 revisable packets.

        Bucket order equals the wheel's delivery-loop order; ejections
        and buffer appends interleaved by the wheel cannot influence a
        revision (they never touch load_metric state), so running all
        revisions up front is bit-identical.
        """
        S = self._S
        n = int(S.dw_n[idx])
        revisable = S.p_revisable
        hops = S.p_hop
        dst_router = S.ch_dst_router
        on_arrival = self.on_arrival
        live = self._live
        pids = S.dw_pid[idx, :n].tolist()
        chans = S.dw_chan[idx, :n].tolist()
        for i in range(n):
            pid = pids[i]
            if revisable[pid] and hops[pid] == 1:
                packet = live.pop(int(S.pm_spid[pid]))
                packet.hop = 1
                packet.current_vc = int(S.p_current_vc[pid])
                on_arrival(packet, int(dst_router[chans[i]]))
                revisable[pid] = 0
                S.p_route_off[pid] = self._register_route(
                    packet.route, packet.vcs
                )
                S.p_path_hops[pid] = packet.path_hops
                S.pm_vlb[pid] = 1 if packet.used_vlb else 0
        S.rev_n[idx] = 0

    def _flush_ejections(self) -> None:
        S = self._S
        count = int(S.counters[CNT_EJ])
        if not count:
            return
        S.counters[CNT_EJ] = 0
        pids = S.ej_pid[:count]
        cycles = S.ej_cycle[:count]
        batch_hook = self.on_eject_batch
        if batch_hook is not None:
            # hook order and per-packet eject cycles match the wheel's
            # per-cycle on_eject sequence exactly; the payloads were
            # gathered by the kernel at eject time (the deliver pass has
            # the records in cache), so the drain passes flat slices --
            # views into reused buffers that must be consumed in-call
            batch_hook(
                S.ej_lat[:count],
                S.ej_hops[:count],
                S.ej_vlb[:count],
                cycles,
            )
            if self._live:
                spids = S.ej_spid[:count]
                for spid in spids[spids > 0].tolist():
                    self._live.pop(spid, None)
            self._recycle(pids, count)
            return
        scalar_hook = self.on_eject
        pid_list = pids.tolist()
        if scalar_hook is not None:
            cycle_list = cycles.tolist()
            for i, pid in enumerate(pid_list):
                packet = self._live.pop(int(S.pm_spid[pid]), None)
                if packet is None:
                    packet = Packet(
                        int(S.pm_src[pid]),
                        int(S.p_dst[pid]),
                        int(S.pm_icyc[pid]),
                    )
                packet.path_hops = int(S.p_path_hops[pid])
                packet.used_vlb = bool(S.pm_vlb[pid])
                packet.hop = int(S.p_hop[pid])
                packet.current_vc = int(S.p_current_vc[pid])
                scalar_hook(packet, cycle_list[i])
        elif self._live:
            spids = S.ej_spid[:count]
            for spid in spids[spids > 0].tolist():
                self._live.pop(spid, None)
        self._recycle(pids, count)

    def _recycle(self, pids: np.ndarray, count: int) -> None:
        """Push drained pool ids back onto the kernel's free stack."""
        S = self._S
        nfree = int(S.counters[CNT_FREE])
        S.free_stack[nfree : nfree + count] = pids
        S.counters[CNT_FREE] = nfree + count

    # ------------------------------------------------------------------
    # Introspection / observability (vectorized over the arrays)
    # ------------------------------------------------------------------
    def source_queue_len(self, node: int) -> int:
        if self._S is None:
            return super().source_queue_len(node)
        return int(self._S.src_len[node])

    def reset_channel_counters(self) -> None:
        if self._S is None:
            super().reset_channel_counters()
            return
        self._S.flits[:] = 0

    def channel_utilization(self, cycles: int) -> Dict[str, float]:
        if self._S is None:
            return super().channel_utilization(cycles)
        S = self._S
        nSw = self._num_switch_channels
        flits = S.flits[:nSw]
        glob_mask = S.is_global[:nSw]
        # same element order and the same elementwise int/int true
        # divisions as the wheel's per-channel loop, so the pairwise
        # numpy reductions see identical float64 inputs
        local = flits[~glob_mask] / max(cycles, 1)
        glob = flits[glob_mask] / max(cycles, 1)
        local_arr = local if local.size else np.zeros(1)
        glob_arr = glob if glob.size else np.zeros(1)
        return {
            "local_mean": float(local_arr.mean()),
            "local_max": float(local_arr.max()),
            "global_mean": float(glob_arr.mean()),
            "global_max": float(glob_arr.max()),
        }

    def channel_flit_totals(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._S is None:
            return super().channel_flit_totals()
        S = self._S
        nSw = self._num_switch_channels
        flits = S.flits[:nSw]
        glob_mask = S.is_global[:nSw]
        return (
            flits[~glob_mask].astype(float),
            flits[glob_mask].astype(float),
        )

    def vc_occupancy(self) -> List[int]:
        if self._S is None:
            return super().vc_occupancy()
        return (
            self._S.in_len.reshape(-1, self.num_vcs)
            .sum(axis=0, dtype=np.int64)
            .tolist()
        )

    def injection_backlog(self) -> int:
        if self._S is None:
            return super().injection_backlog()
        return int(self._S.src_len.sum())

    def in_flight(self) -> int:
        if self._S is None:
            return super().in_flight()
        S = self._S
        return (
            int(S.counters[CNT_PD])
            + int(S.in_len.sum())
            + int(S.out_len[: self._inj_base].sum())
            + int(S.out_len[self._ej_base :].sum())
        )

    def quiescent(self) -> bool:
        if self._S is None:
            return super().quiescent()
        counters = self._S.counters
        return (
            not counters[CNT_PT]
            and not counters[CNT_PD]
            and not counters[CNT_PC]
            and self.in_flight() == 0
        )
