"""Simulation parameters (Table 3 of the paper).

``SimParams.paper()`` restores the paper's exact BookSim configuration
(10000-cycle windows); the default constructor uses scaled-down windows so
that pure-Python runs finish in seconds.  Everything else (buffers, link
latencies, speedup, VC scheme) defaults to Table 3.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, Optional

from repro.obs.config import ObsConfig

__all__ = ["SimParams"]


@dataclass(frozen=True)
class SimParams:
    """Network and measurement parameters for one simulation run."""

    # --- router / flow control (Table 3 defaults) ---
    buffer_size: int = 32  # flits per VC input buffer
    local_latency: int = 10  # cycles, intra-group channel
    global_latency: int = 15  # cycles, inter-group channel
    injection_latency: int = 1  # terminal channel latency
    router_latency: int = 2  # per-hop router pipeline delay
    speedup: int = 2  # crossbar speedup over channel rate
    output_queue_size: int = 4  # per output port, flits
    num_vcs: int = 0  # 0 = auto from vc_scheme/routing
    vc_scheme: str = "won"  # "won" (routing(4)) or "perhop" (routing(6))
    ugal_threshold: int = 0  # T: bias toward MIN paths
    # candidates drawn per decision (paper default: 1 MIN + 1 VLB; the
    # original UGAL formulation allows "a small number" of each)
    min_candidates: int = 1
    vlb_candidates: int = 1
    # flits per packet.  The paper uses single-flit packets "to avoid any
    # potential flow-control issue"; sizes > 1 are simulated with virtual
    # cut-through at packet granularity: a packet needs `packet_size`
    # credits to advance, occupies its channel for `packet_size` cycles,
    # and is delivered when its tail flit arrives.
    packet_size: int = 1
    # per-pair VLB candidate cache: after this many distinct random
    # candidates have been drawn for a switch pair, further draws reuse
    # them uniformly (an unbiased approximation that removes path
    # construction from the simulator hot loop).  0 disables the cache.
    vlb_cache_per_pair: int = 128
    # statically verify the (topology, path set, VC scheme) configuration
    # with repro.verify before running the engine; a failed verification
    # raises instead of simulating a broken configuration
    verify: bool = False
    # observability switches (repro.obs): None = fully uninstrumented.
    # Identity-neutral: excluded from spec fingerprints and cache keys
    # (see identity_dict), because observability never changes results
    obs: Optional[ObsConfig] = None  # repro: identity-neutral
    # cycle-engine implementation: "wheel" (timing-wheel default),
    # "array" (struct-of-arrays batched core, repro.sim.array), or
    # "legacy" (seed-faithful oracle in repro.perf.bench).  All three are
    # bit-identical by construction (pinned by the parity suite), so the
    # knob is identity-neutral -- unlike the LP model's engine switch,
    # where fast/legacy genuinely differ numerically and the engine is
    # part of the ModelSpec identity
    engine: str = "wheel"  # repro: identity-neutral
    # batched-execution scheduling hint (repro.perf.BatchPlanner):
    # 0 = planner default, 1 = never batch this run, N > 1 = cap the
    # batch this run joins at N.  Pure scheduling -- a batched run is
    # bit-identical to its single-run result (pinned by the batch parity
    # suite), so like ``engine`` the knob is identity-neutral: it never
    # reaches spec fingerprints or cache keys
    batch: int = 0  # repro: identity-neutral

    # --- measurement (paper: 3 x 10000 warmup + 10000 measurement) ---
    warmup_windows: int = 3
    measure_windows: int = 1
    window_cycles: int = 600
    sat_latency: float = 500.0  # average latency above this = saturated
    # also saturated when accepted < factor x offered (robust at short
    # windows, where source-queue latency ramps up only gradually)
    sat_accept_factor: float = 0.90

    def __post_init__(self) -> None:
        if self.buffer_size < 1:
            raise ValueError("buffer_size must be >= 1")
        if self.speedup < 1:
            raise ValueError("speedup must be >= 1")
        if self.vc_scheme not in ("won", "perhop"):
            raise ValueError("vc_scheme must be 'won' or 'perhop'")
        if min(self.local_latency, self.global_latency) < 1:
            raise ValueError("channel latencies must be >= 1")
        if min(self.min_candidates, self.vlb_candidates) < 1:
            raise ValueError("candidate counts must be >= 1")
        if self.packet_size < 1:
            raise ValueError("packet_size must be >= 1")
        if self.packet_size > self.buffer_size:
            raise ValueError(
                "packet_size cannot exceed buffer_size (virtual cut-through "
                "buffers whole packets)"
            )
        if self.engine not in ("wheel", "array", "legacy"):
            raise ValueError("engine must be 'wheel', 'array' or 'legacy'")
        if self.batch < 0:
            raise ValueError("batch must be >= 0 (0 = planner default)")

    def identity_dict(self) -> Dict[str, Any]:
        """The fields that define this configuration's *identity*.

        ``dataclasses.asdict`` minus ``obs``, ``engine``, and ``batch``:
        observability never changes simulation results (asserted by the
        engine-parity tests), every cycle engine is bit-identical
        (asserted by the cross-engine parity suite), and batched
        execution is bit-identical to single-run execution (asserted by
        the batch parity suite), so all three are excluded from every
        spec fingerprint and cache key -- traced/untraced, any-engine,
        and batched/unbatched runs of one point all share a single
        cache entry.
        """
        data = asdict(self)
        data.pop("obs", None)
        data.pop("engine", None)
        data.pop("batch", None)
        return data

    def with_obs(self, obs: Optional[ObsConfig]) -> "SimParams":
        """The same configuration with observability switched on/off."""
        return replace(self, obs=obs)

    @property
    def warmup_cycles(self) -> int:
        return self.warmup_windows * self.window_cycles

    @property
    def total_cycles(self) -> int:
        return (self.warmup_windows + self.measure_windows) * self.window_cycles

    def vcs_required(self, routing: str, max_local_hops: int = 1) -> int:
        """VCs needed by a routing variant under this VC scheme.

        Matches the paper: the Won et al. allocation uses 4 VCs for
        UGAL-L/UGAL-G and 5 for PAR; the per-hop allocation (routing(6))
        uses one VC per hop of the longest path.  ``max_local_hops`` is the
        topology's worst intra-group distance (1 for fully connected
        groups); sparser groups (e.g. the Cascade 2D all-to-all, 2) chain
        more consecutive local hops per group visit, and both schemes need
        extra levels to keep every path's VC sequence deadlock-free.
        """
        if self.num_vcs > 0:
            return self.num_vcs
        par = routing in ("par", "t-par")
        mlh = max_local_hops
        if self.vc_scheme == "won":
            # levels = 2 global hops + worst-case chained local hops
            # (src run: mlh-1, merged mid-group run: 2*mlh-1, dst run:
            # mlh-1), zero-based; PAR revision shifts everything up one
            base = 2 + (4 * mlh - 3) + 1
            return base + 1 if par else base
        longest = 2 * (2 * mlh + 1)  # max VLB hops on this topology
        return longest + 1 if par else longest

    @classmethod
    def paper(cls, **overrides) -> "SimParams":
        """The paper's full-scale measurement configuration."""
        base = cls(window_cycles=10_000)
        return replace(base, **overrides) if overrides else base

    def scaled(self, window_cycles: int) -> "SimParams":
        """Same configuration with a different window length."""
        return replace(self, window_cycles=window_cycles)
