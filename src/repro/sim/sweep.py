"""Load sweeps: latency-vs-load curves and saturation throughput.

Mirrors the paper's measurement procedure: simulate a ladder of injection
rates, report the latency curve, and take the last rate before the average
latency crosses the saturation threshold (500 cycles) as the network
throughput.

Both entry points accept an optional
:class:`~repro.perf.executor.SweepExecutor`: the ladder's points (and the
section search's per-round probes) are independent simulations, so they
fan out across worker processes and/or short-circuit through the on-disk
result cache.  The parallel ladder returns results bit-identical to the
serial path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence


from repro.routing.pathset import PathPolicy
from repro.sim.engine import simulate
from repro.sim.params import SimParams
from repro.sim.stats import SimResult
from repro.topology.dragonfly import Dragonfly
from repro.traffic.patterns import TrafficPattern

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.perf.executor import SweepExecutor

__all__ = ["LoadSweep", "latency_vs_load", "saturation_throughput"]


@dataclass
class LoadSweep:
    """A latency curve: one SimResult per offered load."""

    routing: str
    policy_label: str
    results: List[SimResult] = field(default_factory=list)

    @property
    def loads(self) -> List[float]:
        return [r.offered_load for r in self.results]

    @property
    def latencies(self) -> List[float]:
        return [r.avg_latency for r in self.results]

    def saturation_throughput(self) -> float:
        """Highest accepted rate among non-saturated points (0 if none)."""
        ok = [r for r in self.results if not r.saturated]
        return max((r.accepted_rate for r in ok), default=0.0)

    def rows(self) -> List[tuple]:
        return [
            (r.offered_load, r.avg_latency, r.accepted_rate, r.saturated)
            for r in self.results
        ]


def latency_vs_load(
    topo,
    pattern: Optional[TrafficPattern] = None,
    loads: Optional[Sequence[float]] = None,
    *,
    routing: str = "ugal-l",
    policy: Optional[PathPolicy] = None,
    params: Optional[SimParams] = None,
    seed: int = 0,
    stop_after_saturation: bool = True,
    executor: Optional["SweepExecutor"] = None,
) -> LoadSweep:
    """Simulate each load in order; optionally stop once saturated.

    Accepts either live objects -- ``latency_vs_load(topo, pattern,
    loads, ...)`` -- or a single declarative
    :class:`repro.spec.SweepSpec` as the first argument.

    With an ``executor``, every point of the ladder runs concurrently and
    the curve is truncated after the first saturated point, so the result
    list is identical to the serial path (which stops simulating there).
    """
    if pattern is None and loads is None:
        from repro.spec import SweepSpec

        if not isinstance(topo, SweepSpec):
            raise TypeError(
                "latency_vs_load() needs (topo, pattern, loads, ...) or "
                "a SweepSpec"
            )
        spec = topo
        topo = spec.topology.build()
        pattern = spec.pattern.build(topo)
        loads = spec.loads
        routing = spec.routing
        policy = spec.policy.build() if spec.policy is not None else None
        params = spec.params
        seed = spec.seed
    elif pattern is None or loads is None:
        raise TypeError("latency_vs_load() needs both pattern and loads")
    sweep = LoadSweep(
        routing=routing,
        policy_label=policy.describe() if policy is not None else "all VLB",
    )
    if executor is not None:
        from repro.perf.executor import SimTask

        results = executor.run(
            [
                SimTask(
                    topo,
                    pattern,
                    load,
                    routing=routing,
                    policy=policy,
                    params=params,
                    seed=seed,
                )
                for load in loads
            ]
        )
        for result in results:
            sweep.results.append(result)
            if stop_after_saturation and result.saturated:
                break
        return sweep
    for load in loads:
        result = simulate(
            topo,
            pattern,
            load,
            routing=routing,
            policy=policy,
            params=params,
            seed=seed,
        )
        sweep.results.append(result)
        if stop_after_saturation and result.saturated:
            break
    return sweep


def saturation_throughput(
    topo: Dragonfly,
    pattern: TrafficPattern,
    *,
    routing: str = "ugal-l",
    policy: Optional[PathPolicy] = None,
    params: Optional[SimParams] = None,
    seed: int = 0,
    lo: float = 0.02,
    hi: float = 1.0,
    tol: float = 0.02,
    max_iters: int = 8,
    executor: Optional["SweepExecutor"] = None,
    sections: Optional[int] = None,
) -> float:
    """Section search for the saturation injection rate.

    Returns the highest accepted rate observed at a non-saturated load
    (the paper's "last injection rate before saturation").

    Serially this is the classic bisection (one probe per iteration).
    With an ``executor``, each iteration probes ``sections`` evenly spaced
    interior loads concurrently (default: the executor's job count,
    capped at 8), shrinking the bracket by ``1/(sections+1)`` per round --
    fewer rounds of wall-clock for the same tolerance.  The search is
    deterministic for a fixed ``sections`` value; ``sections=1``
    reproduces the serial bisection probe-for-probe.
    """

    def run_batch(points: Sequence[float]) -> List[SimResult]:
        if executor is not None:
            from repro.perf.executor import SimTask

            return executor.run(
                [
                    SimTask(
                        topo,
                        pattern,
                        load,
                        routing=routing,
                        policy=policy,
                        params=params,
                        seed=seed,
                    )
                    for load in points
                ]
            )
        return [
            simulate(
                topo,
                pattern,
                load,
                routing=routing,
                policy=policy,
                params=params,
                seed=seed,
            )
            for load in points
        ]

    if sections is None:
        sections = min(executor.jobs, 8) if executor is not None else 1
    sections = max(1, sections)

    low_res, hi_res = run_batch([lo, hi])
    if low_res.saturated:
        return 0.0
    best = low_res.accepted_rate
    if not hi_res.saturated:
        return hi_res.accepted_rate
    low, high = lo, hi
    for _ in range(max_iters):
        if high - low <= tol:
            break
        step = (high - low) / (sections + 1)
        probes = [low + step * (k + 1) for k in range(sections)]
        probe_res = run_batch(probes)
        # narrow to the interval between the last non-saturated probe (or
        # `low`) and the first saturated probe (or `high`); accepted rates
        # beyond the first saturated probe are disregarded, matching the
        # bisection's "last rate before saturation" semantics
        new_low, new_high = low, high
        for load, res in zip(probes, probe_res):
            if res.saturated:
                new_high = load
                break
            new_low = load
            best = max(best, res.accepted_rate)
        low, high = new_low, new_high
    return best
