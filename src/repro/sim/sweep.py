"""Load sweeps: latency-vs-load curves and saturation throughput.

Mirrors the paper's measurement procedure: simulate a ladder of injection
rates, report the latency curve, and take the last rate before the average
latency crosses the saturation threshold (500 cycles) as the network
throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence


from repro.routing.pathset import PathPolicy
from repro.sim.engine import simulate
from repro.sim.params import SimParams
from repro.sim.stats import SimResult
from repro.topology.dragonfly import Dragonfly
from repro.traffic.patterns import TrafficPattern

__all__ = ["LoadSweep", "latency_vs_load", "saturation_throughput"]


@dataclass
class LoadSweep:
    """A latency curve: one SimResult per offered load."""

    routing: str
    policy_label: str
    results: List[SimResult] = field(default_factory=list)

    @property
    def loads(self) -> List[float]:
        return [r.offered_load for r in self.results]

    @property
    def latencies(self) -> List[float]:
        return [r.avg_latency for r in self.results]

    def saturation_throughput(self) -> float:
        """Highest accepted rate among non-saturated points (0 if none)."""
        ok = [r for r in self.results if not r.saturated]
        return max((r.accepted_rate for r in ok), default=0.0)

    def rows(self) -> List[tuple]:
        return [
            (r.offered_load, r.avg_latency, r.accepted_rate, r.saturated)
            for r in self.results
        ]


def latency_vs_load(
    topo: Dragonfly,
    pattern: TrafficPattern,
    loads: Sequence[float],
    *,
    routing: str = "ugal-l",
    policy: Optional[PathPolicy] = None,
    params: Optional[SimParams] = None,
    seed: int = 0,
    stop_after_saturation: bool = True,
) -> LoadSweep:
    """Simulate each load in order; optionally stop once saturated."""
    sweep = LoadSweep(
        routing=routing,
        policy_label=policy.describe() if policy is not None else "all VLB",
    )
    for load in loads:
        result = simulate(
            topo,
            pattern,
            load,
            routing=routing,
            policy=policy,
            params=params,
            seed=seed,
        )
        sweep.results.append(result)
        if stop_after_saturation and result.saturated:
            break
    return sweep


def saturation_throughput(
    topo: Dragonfly,
    pattern: TrafficPattern,
    *,
    routing: str = "ugal-l",
    policy: Optional[PathPolicy] = None,
    params: Optional[SimParams] = None,
    seed: int = 0,
    lo: float = 0.02,
    hi: float = 1.0,
    tol: float = 0.02,
    max_iters: int = 8,
) -> float:
    """Bisection search for the saturation injection rate.

    Returns the highest accepted rate observed at a non-saturated load
    (the paper's "last injection rate before saturation").
    """

    def run(load: float) -> SimResult:
        return simulate(
            topo,
            pattern,
            load,
            routing=routing,
            policy=policy,
            params=params,
            seed=seed,
        )

    best = 0.0
    low_res = run(lo)
    if low_res.saturated:
        return 0.0
    best = low_res.accepted_rate
    hi_res = run(hi)
    if not hi_res.saturated:
        return hi_res.accepted_rate
    low, high = lo, hi
    for _ in range(max_iters):
        if high - low <= tol:
            break
        mid = 0.5 * (low + high)
        res = run(mid)
        if res.saturated:
            high = mid
        else:
            low = mid
            best = max(best, res.accepted_rate)
    return best
