"""Committed baseline of grandfathered findings.

A baseline entry matches findings by ``(rule, path, stripped source
line)`` with a count -- line numbers are deliberately not part of the
identity, so edits elsewhere in a file never un-baseline a grandfathered
finding, while any change to the flagged line itself (the thing that
could fix *or* worsen it) surfaces the finding again.

``python -m repro analyze --write-baseline`` regenerates the file from
the current active findings; entries that no longer match anything are
reported as stale so the baseline only ever shrinks by review.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from typing import Any, Dict, List, Tuple

from repro.analyze.findings import Finding
from repro.analyze.registry import AnalyzeError

__all__ = [
    "BASELINE_FORMAT",
    "apply_baseline",
    "load_baseline",
    "save_baseline",
]

BASELINE_FORMAT = 1

_Key = Tuple[str, str, str]  # (rule, path, context)


def _key(entry: Dict[str, Any]) -> _Key:
    return (
        str(entry.get("rule", "")),
        str(entry.get("path", "")),
        str(entry.get("context", "")),
    )


def load_baseline(path: str) -> List[Dict[str, Any]]:
    """The committed baseline entries ([] when the file is absent)."""
    if not os.path.exists(path):
        return []
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        raise AnalyzeError(f"cannot read baseline {path!r}: {exc}") from exc
    if not isinstance(data, dict) or data.get("format") != BASELINE_FORMAT:
        raise AnalyzeError(
            f"baseline {path!r} has unsupported format "
            f"{data.get('format') if isinstance(data, dict) else data!r}"
        )
    entries = data.get("entries", [])
    if not isinstance(entries, list):
        raise AnalyzeError(f"baseline {path!r}: 'entries' is not a list")
    return entries


def save_baseline(path: str, findings: List[Finding]) -> None:
    """Write the current active findings as the new baseline."""
    counts: Counter = Counter(
        (f.rule, f.path, f.context) for f in findings
    )
    entries = [
        {"rule": rule, "path": fpath, "context": context, "count": count}
        for (rule, fpath, context), count in sorted(counts.items())
    ]
    with open(path, "w") as fh:
        json.dump(
            {"format": BASELINE_FORMAT, "entries": entries},
            fh,
            indent=2,
            sort_keys=True,
        )
        fh.write("\n")


def apply_baseline(
    findings: List[Finding], entries: List[Dict[str, Any]]
) -> Tuple[List[Finding], List[Finding], List[Dict[str, Any]]]:
    """Split findings into (active, baselined) and spot stale entries.

    Each entry absorbs up to ``count`` matching findings; everything it
    cannot absorb stays active (a regression past the grandfathered
    count is a real new finding).
    """
    budget: Dict[_Key, int] = {}
    for entry in entries:
        budget[_key(entry)] = budget.get(_key(entry), 0) + int(
            entry.get("count", 1)
        )
    active: List[Finding] = []
    baselined: List[Finding] = []
    consumed: Counter = Counter()
    for finding in findings:
        key = (finding.rule, finding.path, finding.context)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            consumed[key] += 1
            baselined.append(finding)
        else:
            active.append(finding)
    stale = [
        entry
        for entry in entries
        if consumed[_key(entry)] == 0
    ]
    return active, baselined, stale
