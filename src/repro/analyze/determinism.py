"""Determinism rules (DET1xx): iteration order, RNG seeding, wall-clock.

The bug class these rules target has shipped three times in this repo:
``_busy_channels`` set-order nondeterminism in the PR 2 engine rewrite
(iteration order of a ``set`` of objects follows memory addresses), the
won-scheme chained-local VC bug found by ``repro.verify`` in PR 1, and
the ``permuted()`` within-class channel-order bug in PR 4.  Every rule
here over-approximates on purpose: a flagged site is either fixed
(sorted, seeded, injected) or carries an audited
``# repro: allow[...]: reason`` suppression explaining why its order
cannot reach results.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analyze.context import ModuleUnit, ProjectContext
from repro.analyze.findings import Finding
from repro.analyze.registry import rule

__all__ = ["iter_calls", "resolve_call_chain"]

# calls that consume an iterable order-insensitively: iteration inside
# them is safe (sum is included: summing a dict view of ints is common
# and benign; float sums that need exact reproducibility should not live
# behind a sum() of an unordered container in the first place -- DET101
# still flags raw set iteration feeding accumulators)
_NEUTRAL_CALLS = {
    "sorted", "min", "max", "len", "any", "all", "set", "frozenset", "sum",
}
# calls that materialize iteration order into an ordered structure
_MATERIALIZERS = {
    "list", "tuple", "enumerate",
    "numpy.fromiter", "numpy.array", "numpy.asarray",
}
# numpy legacy global-state RNG entry points (module-level state seeded
# implicitly from the OS: never reproducible without a global seed call,
# and a global seed call is itself an ordering hazard across workers)
_NP_LEGACY_RNG = {
    "numpy.random.rand", "numpy.random.randn", "numpy.random.randint",
    "numpy.random.random", "numpy.random.random_sample",
    "numpy.random.shuffle", "numpy.random.permutation",
    "numpy.random.choice", "numpy.random.seed", "numpy.random.normal",
    "numpy.random.uniform",
}
# stdlib random module-level functions (same global-state hazard)
_STDLIB_RNG = {
    "random.random", "random.randint", "random.randrange",
    "random.shuffle", "random.choice", "random.choices", "random.sample",
    "random.uniform", "random.seed", "random.getrandbits",
}
# wall-clock / entropy sources; values that reach results or cache keys
# break run-to-run reproducibility
_WALLCLOCK = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
}
# modules where wall-clock reads are the point: the identity-neutral
# observability/benchmark layers (their timings never feed results or
# fingerprints -- asserted by the obs-parity tests)
_WALLCLOCK_ALLOWED_PREFIXES = ("repro.obs.",)
_WALLCLOCK_ALLOWED_MODULES = {
    "repro.obs", "repro.perf.executor", "repro.perf.bench",
}

_SET_ANNOTATIONS = ("set", "Set", "frozenset", "FrozenSet")


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------
def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> canonical dotted module, e.g. ``np -> numpy``."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".")[0]
                target = name.name if name.asname else name.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module:
            for name in node.names:
                aliases[name.asname or name.name] = (
                    f"{node.module}.{name.name}"
                )
    return aliases


def _dotted(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def resolve_call_chain(
    node: ast.expr, aliases: Dict[str, str]
) -> Optional[str]:
    """The canonical dotted name of a call target, import-resolved."""
    chain = _dotted(node)
    if chain is None:
        return None
    head, _, rest = chain.partition(".")
    resolved = aliases.get(head, head)
    return f"{resolved}.{rest}" if rest else resolved


def iter_calls(
    tree: ast.AST, aliases: Dict[str, str]
) -> Iterator[Tuple[ast.Call, Optional[str]]]:
    """Every Call node with its resolved dotted target name."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node, resolve_call_chain(node.func, aliases)


def _neutralized_ids(tree: ast.AST, aliases: Dict[str, str]) -> Set[int]:
    """ids of nodes living inside an order-insensitive consumer call."""
    neutral: Set[int] = set()
    for call, name in iter_calls(tree, aliases):
        if name in _NEUTRAL_CALLS:
            for arg in call.args:
                neutral.update(id(n) for n in ast.walk(arg))
    return neutral


def _is_set_annotation(annotation: ast.expr) -> bool:
    text = ast.unparse(annotation)
    base = text.split("[", 1)[0].strip()
    base = base.split(".")[-1]  # typing.Set -> Set
    return base in _SET_ANNOTATIONS


def _is_set_expr(
    node: Optional[ast.expr],
    local_sets: Set[str],
    attr_sets: Set[str],
) -> bool:
    """Whether an expression is statically known to produce a set."""
    if node is None:
        return False
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name):
        return node.id in local_sets
    if isinstance(node, ast.Attribute):
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr in attr_sets
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(
            node.left, local_sets, attr_sets
        ) or _is_set_expr(node.right, local_sets, attr_sets)
    return False


def _scope_set_names(scope: ast.AST) -> Set[str]:
    """Names assigned/annotated as sets directly in ``scope``.

    Nested function bodies are skipped (their locals are their own), but
    nested statements (if/for/try) are included.
    """
    names: Set[str] = set()

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                 ast.ClassDef),
            ):
                continue
            if isinstance(child, ast.Assign):
                if _is_set_expr(child.value, names, set()):
                    for target in child.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
            elif isinstance(child, ast.AnnAssign):
                if isinstance(child.target, ast.Name) and (
                    _is_set_annotation(child.annotation)
                    or _is_set_expr(child.value, names, set())
                ):
                    names.add(child.target.id)
            visit(child)

    visit(scope)
    return names


def _class_set_attrs(cls: ast.ClassDef) -> Set[str]:
    """``self.X`` attributes assigned/annotated as sets in any method."""
    attrs: Set[str] = set()
    for node in ast.walk(cls):
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        annotation: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value, annotation = node.target, node.value, node.annotation
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            if (annotation is not None and _is_set_annotation(annotation)) or (
                _is_set_expr(value, set(), attrs)
            ):
                attrs.add(target.attr)
    return attrs


def _scopes(tree: ast.Module) -> Iterator[Tuple[ast.AST, Set[str], Set[str]]]:
    """(scope node, local set names, enclosing-class set attrs) triples."""
    class_attrs: Dict[int, Set[str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            class_attrs[id(node)] = _class_set_attrs(node)

    def walk(node: ast.AST, attrs: Set[str]) -> Iterator[
        Tuple[ast.AST, Set[str], Set[str]]
    ]:
        if isinstance(node, (ast.Module, ast.FunctionDef,
                             ast.AsyncFunctionDef)):
            yield node, _scope_set_names(node), attrs
        for child in ast.iter_child_nodes(node):
            child_attrs = (
                class_attrs[id(child)]
                if isinstance(child, ast.ClassDef)
                else attrs
            )
            yield from walk(child, child_attrs)

    yield from walk(tree, set())


def _dict_view_call(node: ast.expr) -> Optional[str]:
    """'values' / 'keys' when the node is a ``X.values()``-style call."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("values", "keys")
        and not node.args
        and not node.keywords
    ):
        return node.func.attr
    return None


def _body_order_triggers(body: List[ast.stmt]) -> List[str]:
    """Order-sensitivity signals inside a loop body."""
    triggers: List[str] = []
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign):
                triggers.append("accumulates with an augmented assignment")
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Div, ast.FloorDiv)
            ):
                triggers.append("computes a division")
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "append"
            ):
                triggers.append("appends to an ordered sequence")
    return triggers


# ---------------------------------------------------------------------------
# DET101: set iteration
# ---------------------------------------------------------------------------
@rule(
    "DET101",
    "set-iteration",
    family="determinism",
    severity="warning",
    summary=(
        "iteration or materialization of a set, whose order follows "
        "element hashes (object sets: memory addresses) and can flow "
        "into RNG draws, serialized output, or accumulated floats"
    ),
    hint=(
        "iterate sorted(the_set) (or an insertion-ordered dict-as-set: "
        "Dict[T, None]), or suppress with a reason why order cannot "
        "reach results"
    ),
)
def check_set_iteration(
    unit: ModuleUnit, ctx: ProjectContext
) -> Iterator[Finding]:
    assert unit.tree is not None
    del ctx
    aliases = _import_aliases(unit.tree)
    neutral = _neutralized_ids(unit.tree, aliases)

    def finding(node: ast.AST, what: str) -> Finding:
        from repro.analyze.registry import ANALYZE_RULES

        line = getattr(node, "lineno", 0)
        return ANALYZE_RULES.get("DET101").finding(
            unit.path,
            line,
            f"{what} iterates a set in nondeterministic hash order",
            context=unit.line_text(line),
        )

    for scope, local_sets, attr_sets in _scopes(unit.tree):
        for node in _walk_scope(scope):
            if isinstance(node, ast.For):
                if id(node.iter) in neutral:
                    continue
                if _is_set_expr(node.iter, local_sets, attr_sets):
                    yield finding(node, "for loop")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                   ast.DictComp)):
                for gen in node.generators:
                    if id(gen.iter) in neutral:
                        continue
                    if _is_set_expr(gen.iter, local_sets, attr_sets):
                        yield finding(node, "comprehension")
            elif isinstance(node, ast.Call):
                name = resolve_call_chain(node.func, aliases)
                if name in _MATERIALIZERS and node.args:
                    arg = node.args[0]
                    if id(arg) in neutral:
                        continue
                    if _is_set_expr(arg, local_sets, attr_sets):
                        yield finding(node, f"{name}() call")


def _walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope without descending into nested function scopes."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------------------
# DET102: dict-view order flowing into order-sensitive sinks
# ---------------------------------------------------------------------------
@rule(
    "DET102",
    "dict-view-order",
    family="determinism",
    severity="warning",
    summary=(
        "iteration over dict .values()/.keys() whose order flows into "
        "accumulated floats, appended sequences, or materialized arrays "
        "-- deterministic only while every insertion site is"
    ),
    hint=(
        "sort the items (sorted(d.items())), key the aggregation so "
        "order cannot matter, or suppress with a reason why the dict's "
        "insertion order is itself deterministic"
    ),
)
def check_dict_view_order(
    unit: ModuleUnit, ctx: ProjectContext
) -> Iterator[Finding]:
    assert unit.tree is not None
    del ctx
    aliases = _import_aliases(unit.tree)
    neutral = _neutralized_ids(unit.tree, aliases)

    def finding(node: ast.AST, view: str, why: str) -> Finding:
        from repro.analyze.registry import ANALYZE_RULES

        line = getattr(node, "lineno", 0)
        return ANALYZE_RULES.get("DET102").finding(
            unit.path,
            line,
            f"iteration over .{view}() {why}",
            context=unit.line_text(line),
        )

    for node in ast.walk(unit.tree):
        if isinstance(node, ast.For):
            view = _dict_view_call(node.iter)
            if view is None or id(node.iter) in neutral:
                continue
            triggers = _body_order_triggers(node.body)
            if triggers:
                yield finding(node, view, f"{triggers[0]} in its body")
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            for gen in node.generators:
                view = _dict_view_call(gen.iter)
                if view is None or id(gen.iter) in neutral:
                    continue
                exprs: List[ast.expr] = [
                    node.elt if not isinstance(node, ast.DictComp)
                    else node.value
                ]
                wrapper = ast.Expr(value=exprs[0])
                triggers = _body_order_triggers([wrapper])
                if triggers:
                    yield finding(node, view, f"{triggers[0]}")
        elif isinstance(node, ast.Call):
            name = resolve_call_chain(node.func, aliases)
            if name in _MATERIALIZERS and node.args:
                view = _dict_view_call(node.args[0])
                if view is not None and id(node.args[0]) not in neutral:
                    yield finding(
                        node, view,
                        f"materializes view order via {name}()",
                    )


# ---------------------------------------------------------------------------
# DET103: unseeded / global-state RNG
# ---------------------------------------------------------------------------
@rule(
    "DET103",
    "unseeded-rng",
    family="determinism",
    severity="error",
    summary=(
        "RNG construction or draw outside SimParams.seed plumbing: "
        "unseeded default_rng()/Random(), or module-level global-state "
        "random functions"
    ),
    hint=(
        "thread an explicit seed (np.random.default_rng(seed)) from "
        "SimParams/RunSpec; never draw from module-level RNG state"
    ),
)
def check_unseeded_rng(
    unit: ModuleUnit, ctx: ProjectContext
) -> Iterator[Finding]:
    assert unit.tree is not None
    del ctx
    from repro.analyze.registry import ANALYZE_RULES

    entry = ANALYZE_RULES.get("DET103")
    aliases = _import_aliases(unit.tree)
    for call, name in iter_calls(unit.tree, aliases):
        if name is None:
            continue
        line = call.lineno
        context = unit.line_text(line)
        if name == "numpy.random.default_rng" and not (
            call.args or call.keywords
        ):
            yield entry.finding(
                unit.path, line,
                "np.random.default_rng() without a seed draws entropy "
                "from the OS; results cannot be reproduced",
                context=context,
            )
        elif name == "random.Random" and not (call.args or call.keywords):
            yield entry.finding(
                unit.path, line,
                "random.Random() without a seed is OS-entropy seeded",
                context=context,
            )
        elif name in _NP_LEGACY_RNG:
            yield entry.finding(
                unit.path, line,
                f"{name}() uses numpy's module-level global RNG state",
                context=context,
            )
        elif name in _STDLIB_RNG:
            yield entry.finding(
                unit.path, line,
                f"{name}() uses the stdlib's module-level RNG state",
                context=context,
            )


# ---------------------------------------------------------------------------
# DET104: wall-clock / entropy values
# ---------------------------------------------------------------------------
@rule(
    "DET104",
    "wallclock-read",
    family="determinism",
    severity="warning",
    summary=(
        "wall-clock or entropy read (time.time, datetime.now, "
        "os.urandom, uuid4) outside the identity-neutral observability "
        "layers -- values that reach results or cache keys break "
        "reproducibility"
    ),
    hint=(
        "inject a clock/ID source from the caller, or move the read "
        "into repro.obs (timings there are identity-neutral by the "
        "obs-parity tests)"
    ),
)
def check_wallclock(
    unit: ModuleUnit, ctx: ProjectContext
) -> Iterator[Finding]:
    assert unit.tree is not None
    del ctx
    module = unit.module
    if module in _WALLCLOCK_ALLOWED_MODULES or module.startswith(
        _WALLCLOCK_ALLOWED_PREFIXES
    ):
        return
    from repro.analyze.registry import ANALYZE_RULES

    entry = ANALYZE_RULES.get("DET104")
    aliases = _import_aliases(unit.tree)
    for call, name in iter_calls(unit.tree, aliases):
        if name in _WALLCLOCK:
            yield entry.finding(
                unit.path, call.lineno,
                f"{name}() read outside the observability layer",
                context=unit.line_text(call.lineno),
            )


# ---------------------------------------------------------------------------
# DET105: PYTHONHASHSEED-dependent values
# ---------------------------------------------------------------------------
@rule(
    "DET105",
    "builtin-hash",
    family="determinism",
    severity="warning",
    summary=(
        "builtin hash() call: str/bytes hashes vary with PYTHONHASHSEED "
        "across processes, so the value can never feed an ordering, a "
        "cache key, or a result"
    ),
    hint=(
        "use hashlib (sha256 of a canonical encoding) for stable "
        "content hashes; see repro.spec.specs.canonical_json"
    ),
)
def check_builtin_hash(
    unit: ModuleUnit, ctx: ProjectContext
) -> Iterator[Finding]:
    assert unit.tree is not None
    del ctx
    from repro.analyze.registry import ANALYZE_RULES

    entry = ANALYZE_RULES.get("DET105")
    for node in ast.walk(unit.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "hash"
        ):
            yield entry.finding(
                unit.path, node.lineno,
                "builtin hash() is PYTHONHASHSEED-dependent for "
                "str/bytes arguments",
                context=unit.line_text(node.lineno),
            )
