"""The identity surface: what the cache keys actually cover, statically.

The *identity surface* of the tree is everything that feeds
``fingerprint()``/``identity_dict()``: the serialized key set of every
fingerprint-bearing spec class, the kept-field set of every
``identity_dict`` class, and the declared ``CACHE_VERSION`` /
``SPEC_VERSION`` constants.  A committed snapshot
(``identity_snapshot.json`` next to this module) pins that surface;
rule CACHE203 fails when the live surface drifts from the snapshot, so
a field silently changing identity -- the drift class that invalidates
cached results without anyone bumping ``CACHE_VERSION`` -- is caught in
CI instead of in a confusing stale-cache debugging session.

Regenerate after an *intentional* change (new classified field + version
bump) with ``python -m repro analyze --update-snapshot``.
"""

from __future__ import annotations

import ast
import json
import os
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analyze.context import ModuleUnit, ProjectContext
from repro.analyze.registry import AnalyzeError

__all__ = [
    "SNAPSHOT_FORMAT",
    "class_identity_info",
    "identity_surface",
    "load_snapshot",
    "save_snapshot",
]

SNAPSHOT_FORMAT = 1

_VERSION_NAMES = ("CACHE_VERSION", "SPEC_VERSION")


def dataclass_fields(cls: ast.ClassDef) -> List[Tuple[str, int]]:
    """(name, lineno) of every annotated field in a class body.

    ``ClassVar`` annotations and leading-underscore internals are not
    identity material and are skipped.
    """
    fields: List[Tuple[str, int]] = []
    for stmt in cls.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        if "ClassVar" in ast.unparse(stmt.annotation):
            continue
        if stmt.target.id.startswith("_"):
            continue
        fields.append((stmt.target.id, stmt.lineno))
    return fields


def method_def(
    cls: ast.ClassDef, name: str
) -> Optional[ast.FunctionDef]:
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
            return stmt
    return None


def serialized_keys(func: ast.FunctionDef) -> Set[str]:
    """String keys a ``to_dict``-style method emits.

    Collects constant-string keys of dict literals and of subscript
    assignments (``data["rows"] = ...``) anywhere in the method body, so
    conditionally-emitted keys count as part of the surface.
    """
    keys: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    keys.add(key.value)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    keys.add(target.slice.value)
    return keys


def popped_keys(func: ast.FunctionDef) -> Set[str]:
    """Names removed via ``X.pop("name", ...)`` in a method body."""
    popped: Set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "pop"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            popped.add(node.args[0].value)
    return popped


def class_identity_info(
    unit: ModuleUnit, cls: ast.ClassDef
) -> Optional[Dict[str, Any]]:
    """The identity description of a class, or ``None`` (not identity-
    bearing).

    A class participates in the identity surface when it defines
    ``identity_dict`` (params-style: identity = fields minus pops) or
    both ``fingerprint`` and annotated fields (spec-style: identity =
    the ``to_dict`` key set).
    """
    fields = dataclass_fields(cls)
    identity_dict = method_def(cls, "identity_dict")
    fingerprint = method_def(cls, "fingerprint")
    if identity_dict is None and (fingerprint is None or not fields):
        return None
    neutral: List[str] = []
    aliases: Dict[str, str] = {}
    for name, lineno in fields:
        is_neutral, alias = unit.field_markers(lineno)
        if is_neutral:
            neutral.append(name)
        if alias is not None:
            aliases[name] = alias
    info: Dict[str, Any] = {
        "module": unit.module,
        "path": unit.path,
        "line": cls.lineno,
        "fields": sorted(name for name, _ in fields),
        "field_lines": {name: lineno for name, lineno in fields},
        "neutral": sorted(neutral),
        "aliases": aliases,
    }
    if identity_dict is not None:
        info["mode"] = "identity_dict"
        info["popped"] = sorted(popped_keys(identity_dict))
        info["keys"] = sorted(
            name
            for name, _ in fields
            if name not in popped_keys(identity_dict)
        )
    else:
        assert fingerprint is not None
        info["mode"] = "fingerprint"
        to_dict = method_def(cls, "to_dict")
        info["keys"] = (
            sorted(serialized_keys(to_dict)) if to_dict is not None else []
        )
        info["has_to_dict"] = to_dict is not None
    return info


def identity_classes(
    ctx: ProjectContext,
) -> List[Tuple[ModuleUnit, ast.ClassDef, Dict[str, Any]]]:
    """Every identity-bearing class of the tree, with its description."""
    found: List[Tuple[ModuleUnit, ast.ClassDef, Dict[str, Any]]] = []
    for unit in ctx.iter_parsed():
        assert unit.tree is not None
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            info = class_identity_info(unit, node)
            if info is not None:
                found.append((unit, node, info))
    return found


def version_constants(ctx: ProjectContext) -> Dict[str, int]:
    """Module-qualified CACHE_VERSION/SPEC_VERSION constants."""
    versions: Dict[str, int] = {}
    for unit in ctx.iter_parsed():
        assert unit.tree is not None
        for stmt in unit.tree.body:
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id in _VERSION_NAMES
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, int)
                ):
                    versions[f"{unit.module}.{target.id}"] = (
                        stmt.value.value
                    )
    return versions


def identity_surface(ctx: ProjectContext) -> Dict[str, Any]:
    """The comparable identity surface of the analyzed tree."""
    classes: Dict[str, Dict[str, Any]] = {}
    for unit, cls, info in identity_classes(ctx):
        classes[f"{unit.module}.{cls.name}"] = {
            "mode": info["mode"],
            "keys": info["keys"],
            "neutral": info["neutral"],
        }
    return {
        "format": SNAPSHOT_FORMAT,
        "versions": version_constants(ctx),
        "classes": classes,
    }


def load_snapshot(path: str) -> Optional[Dict[str, Any]]:
    """The committed snapshot, or ``None`` when the file is absent."""
    if not os.path.exists(path):
        return None
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        raise AnalyzeError(
            f"cannot read identity snapshot {path!r}: {exc}"
        ) from exc
    if not isinstance(data, dict) or data.get("format") != SNAPSHOT_FORMAT:
        raise AnalyzeError(
            f"identity snapshot {path!r} has unsupported format "
            f"{data.get('format') if isinstance(data, dict) else data!r}"
        )
    return data


def save_snapshot(path: str, surface: Dict[str, Any]) -> None:
    with open(path, "w") as fh:
        json.dump(surface, fh, indent=2, sort_keys=True)
        fh.write("\n")
