"""repro.analyze: AST-based invariant checks for the repro tree.

A pluggable rule registry (:data:`repro.analyze.registry.ANALYZE_RULES`,
same idiom as the spec registries) over three rule families:

* **determinism** (DET1xx) -- unordered iteration feeding ordered
  output, unseeded RNGs, wallclock/hash-order values in sim paths;
* **cache identity** (CACHE2xx) -- every spec/params field classified
  identity-bearing or identity-neutral, and the whole identity surface
  pinned against a committed snapshot;
* **registry hygiene** (REG3xx) -- registered classes ship codecs and
  are constructed through their registries.

Run it as ``python -m repro analyze``; findings can be suppressed
inline (``# repro: allow[RULE]: reason``, audited) or grandfathered in
a committed baseline.  See ``docs/analysis.md``.
"""

from repro.analyze.context import (
    AnalyzeConfig,
    ModuleUnit,
    ProjectContext,
)
from repro.analyze.engine import analyze_tree, build_context
from repro.analyze.findings import AnalyzeReport, Finding
from repro.analyze.registry import (
    ANALYZE_RULES,
    AnalyzeError,
    AnalyzeRule,
)

__all__ = [
    "ANALYZE_RULES",
    "AnalyzeConfig",
    "AnalyzeError",
    "AnalyzeReport",
    "AnalyzeRule",
    "Finding",
    "ModuleUnit",
    "ProjectContext",
    "analyze_tree",
    "build_context",
]
