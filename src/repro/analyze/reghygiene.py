"""Registry-hygiene rules (REG3xx): specs stay the one construction path.

:mod:`repro.verify.registry` already certifies that every *registered*
kind parses, builds, and round-trips.  These rules extend that check to
the call sites: a registered class must ship a codec (or its live
objects cannot be fingerprinted and every run using them is
uncacheable), and seed-bearing registered classes should be built
through their registry spec rather than ad hoc, so seeds and cache
identity stay declarative.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set

from repro.analyze.context import ModuleUnit, ProjectContext
from repro.analyze.findings import Finding
from repro.analyze.registry import ANALYZE_RULES, rule

__all__: List[str] = []


@dataclass(frozen=True)
class _RegisteredClass:
    """One ``cls=`` binding found in a ``RegistryEntry(...)`` call."""

    name: str
    registering_module: str
    line: int
    has_to_dict: bool
    has_parse: bool


def _registry_entry_calls(
    ctx: ProjectContext,
) -> Iterator[tuple[ModuleUnit, ast.Call]]:
    for unit in ctx.iter_parsed():
        assert unit.tree is not None
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            if name == "RegistryEntry":
                yield unit, node


def _registered_classes(ctx: ProjectContext) -> List[_RegisteredClass]:
    found: List[_RegisteredClass] = []
    for unit, call in _registry_entry_calls(ctx):
        kwargs = {kw.arg for kw in call.keywords if kw.arg}
        cls_expr: Optional[ast.expr] = None
        for kw in call.keywords:
            if kw.arg == "cls":
                cls_expr = kw.value
        if cls_expr is None or not isinstance(cls_expr, ast.Name):
            continue  # dynamic cls (helper loops): call sites untraceable
        found.append(
            _RegisteredClass(
                name=cls_expr.id,
                registering_module=unit.module,
                line=call.lineno,
                has_to_dict="to_dict" in kwargs,
                has_parse="parse" in kwargs,
            )
        )
    return found


def _class_defs(
    ctx: ProjectContext,
) -> Dict[str, tuple[ModuleUnit, ast.ClassDef]]:
    defs: Dict[str, tuple[ModuleUnit, ast.ClassDef]] = {}
    for unit in ctx.iter_parsed():
        assert unit.tree is not None
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.ClassDef):
                defs.setdefault(node.name, (unit, node))
    return defs


def _init_has_seed(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
            args = stmt.args
            names = [a.arg for a in args.args + args.kwonlyargs]
            return "seed" in names
    return False


def _package(module: str) -> str:
    return module.rsplit(".", 1)[0] if "." in module else module


# ---------------------------------------------------------------------------
# REG301: ad-hoc construction of seed-bearing registered classes
# ---------------------------------------------------------------------------
@rule(
    "REG301",
    "seeded-class-outside-registry",
    family="registry-hygiene",
    severity="warning",
    summary=(
        "a seed-bearing registered pattern/policy class constructed "
        "outside its home package bypasses the spec layer: the seed "
        "never reaches PatternSpec.with_seed/fingerprints, so such runs "
        "are invisible to the result cache"
    ),
    hint=(
        "build it declaratively (PatternSpec.make(...).build(topo) / "
        "PolicySpec.make(...).build()) so seed and identity stay "
        "spec-visible"
    ),
    scope="project",
)
def check_seeded_construction(ctx: ProjectContext) -> Iterator[Finding]:
    entry = ANALYZE_RULES.get("REG301")
    registered = _registered_classes(ctx)
    defs = _class_defs(ctx)
    targets: Dict[str, Set[str]] = {}  # class name -> allowed packages
    for reg in registered:
        defined = defs.get(reg.name)
        if defined is None:
            continue
        def_unit, def_cls = defined
        if not _init_has_seed(def_cls):
            continue
        targets.setdefault(reg.name, set()).update(
            {_package(def_unit.module), _package(reg.registering_module)}
        )
    if not targets:
        return
    for unit in ctx.iter_parsed():
        assert unit.tree is not None
        pkg = _package(unit.module)
        allowed = {
            name
            for name, packages in targets.items()
            if pkg in packages
        }
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            if name in targets and name not in allowed:
                yield entry.finding(
                    unit.path, node.lineno,
                    f"{name}(...) constructed outside its home package "
                    f"bypasses the registry spec layer",
                    context=unit.line_text(node.lineno),
                )


# ---------------------------------------------------------------------------
# REG302: registered class without a codec
# ---------------------------------------------------------------------------
@rule(
    "REG302",
    "registry-entry-missing-codec",
    family="registry-hygiene",
    severity="warning",
    summary=(
        "a RegistryEntry registered with cls= but without a to_dict "
        "codec: live objects of that kind cannot round-trip to a spec, "
        "so runs using them are uncacheable and unfingerprintable"
    ),
    hint=(
        "add a to_dict= codec returning the canonical args dict "
        "(inverse of build); repro.verify.registry then certifies the "
        "round trip"
    ),
    scope="project",
)
def check_missing_codec(ctx: ProjectContext) -> Iterator[Finding]:
    entry = ANALYZE_RULES.get("REG302")
    for unit, call in _registry_entry_calls(ctx):
        kwargs = {kw.arg for kw in call.keywords if kw.arg}
        if "cls" in kwargs and "to_dict" not in kwargs:
            yield entry.finding(
                unit.path, call.lineno,
                "RegistryEntry has cls= but no to_dict= codec",
                context=unit.line_text(call.lineno),
            )


# ---------------------------------------------------------------------------
# REG303: topology subclass not registered with a codec
# ---------------------------------------------------------------------------
@rule(
    "REG303",
    "topology-class-unregistered",
    family="registry-hygiene",
    severity="warning",
    summary=(
        "a concrete topology class (a Dragonfly subclass) that is not "
        "registered in the TOPOLOGY registry with a to_dict codec "
        "cannot be spec'd: TopologySpec.of() rejects its instances, so "
        "no run using it can be fingerprinted or cached"
    ),
    hint=(
        "register it with TOPOLOGY_REGISTRY.register(RegistryEntry("
        "kind=..., cls=<TheClass>, build=..., to_dict=..., parse=...)) "
        "next to the other topology entries"
    ),
    scope="project",
)
def check_unregistered_topology(ctx: ProjectContext) -> Iterator[Finding]:
    entry = ANALYZE_RULES.get("REG303")
    with_codec = {
        reg.name for reg in _registered_classes(ctx) if reg.has_to_dict
    }
    for unit in ctx.iter_parsed():
        assert unit.tree is not None
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            base_names = {
                base.id
                if isinstance(base, ast.Name)
                else base.attr
                if isinstance(base, ast.Attribute)
                else None
                for base in node.bases
            }
            if "Dragonfly" not in base_names:
                continue
            if node.name not in with_codec:
                yield entry.finding(
                    unit.path, node.lineno,
                    f"topology class {node.name} is not registered in "
                    f"the TOPOLOGY registry with a to_dict codec",
                    context=unit.line_text(node.lineno),
                )
