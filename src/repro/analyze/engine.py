"""The analysis driver: collect sources, run rules, audit suppressions.

:func:`analyze_tree` is the one-call entry point used by the ``analyze``
CLI subcommand, the CI gate, and the mutation-corpus tests.  It walks
the configured paths, parses every module once, runs the registered
module- and project-scope rules (:data:`repro.analyze.registry
.ANALYZE_RULES`), then applies the two filtering layers in order:

1. **Inline suppressions** -- ``# repro: allow[RULE]: reason`` drops the
   finding and is itself audited: a suppression that never fires is an
   ANA001 error (it is hiding nothing and must be deleted), one without
   a reason is ANA002 (the audit trail is the point).
2. **The committed baseline** -- grandfathered findings move to the
   report's ``baselined`` list; anything new stays active and fails the
   gate.
"""

from __future__ import annotations

import os
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analyze.baseline import apply_baseline, load_baseline
from repro.analyze.context import (
    AnalyzeConfig,
    ModuleUnit,
    ProjectContext,
)
from repro.analyze.findings import AnalyzeReport, Finding
from repro.analyze.registry import ANALYZE_RULES, AnalyzeRule, rule

# rule modules register themselves on import
from repro.analyze import cacheid as _cacheid  # noqa: F401
from repro.analyze import determinism as _determinism  # noqa: F401
from repro.analyze import reghygiene as _reghygiene  # noqa: F401

__all__ = ["analyze_tree", "build_context", "collect_units"]


# ---------------------------------------------------------------------------
# Engine-emitted rules (registered for the catalog; no checker)
# ---------------------------------------------------------------------------
@rule(
    "ANA001",
    "unused-suppression",
    family="analyzer",
    severity="error",
    summary=(
        "a '# repro: allow[RULE]' comment whose rule produced no "
        "finding on that line: it suppresses nothing and would silently "
        "mask a future regression elsewhere on the line"
    ),
    hint="delete the stale allow-comment",
    scope="engine",
)
def _ana001() -> Iterable[Finding]:  # pragma: no cover - engine-emitted
    return []


@rule(
    "ANA002",
    "unjustified-suppression",
    family="analyzer",
    severity="error",
    summary=(
        "a '# repro: allow[RULE]' comment without a ': reason' "
        "justification -- audited suppressions are the contract that "
        "keeps over-approximating rules honest"
    ),
    hint="append ': <one-line reason why order/identity cannot leak>'",
    scope="engine",
)
def _ana002() -> Iterable[Finding]:  # pragma: no cover - engine-emitted
    return []


# ---------------------------------------------------------------------------
# Source collection
# ---------------------------------------------------------------------------
def _iter_py_files(
    root: str, paths: Sequence[str], exclude: Tuple[str, ...]
) -> List[str]:
    """Absolute paths of every ``.py`` file under the given paths."""
    found: List[str] = []
    for path in paths:
        absolute = (
            path if os.path.isabs(path) else os.path.join(root, path)
        )
        if os.path.isfile(absolute):
            found.append(absolute)
            continue
        for dirpath, dirnames, filenames in os.walk(absolute):
            dirnames[:] = sorted(
                d for d in dirnames if d not in exclude
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    found.append(os.path.join(dirpath, filename))
    return found


def collect_units(config: AnalyzeConfig) -> List[ModuleUnit]:
    root = os.path.abspath(config.root)
    units: List[ModuleUnit] = []
    for absolute in _iter_py_files(root, config.paths, config.exclude):
        rel = os.path.relpath(absolute, root).replace(os.sep, "/")
        try:
            with open(absolute, encoding="utf-8") as fh:
                source = fh.read()
        except OSError:
            continue  # raced deletion: nothing to analyze
        units.append(ModuleUnit.parse(rel, source))
    return units


def build_context(config: AnalyzeConfig) -> ProjectContext:
    return ProjectContext(config=config, units=collect_units(config))


# ---------------------------------------------------------------------------
# Rule execution + filtering layers
# ---------------------------------------------------------------------------
def _selected_rules(config: AnalyzeConfig) -> List[AnalyzeRule]:
    if config.rules is None:
        return list(ANALYZE_RULES)
    return list(ANALYZE_RULES.select(config.rules))


def _run_rules(
    ctx: ProjectContext, rules: Sequence[AnalyzeRule]
) -> List[Finding]:
    findings: List[Finding] = []
    for unit in ctx.units:
        if unit.syntax_error is not None:
            findings.append(
                Finding(
                    rule="ANA000",
                    severity="error",
                    path=unit.path,
                    line=0,
                    message=f"file does not parse: {unit.syntax_error}",
                    hint="fix the syntax error",
                )
            )
    for entry in rules:
        if entry.scope == "module":
            for unit in ctx.iter_parsed():
                findings.extend(entry.check(unit, ctx))
        elif entry.scope == "project":
            findings.extend(entry.check(ctx))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def _apply_suppressions(
    ctx: ProjectContext, findings: List[Finding]
) -> Tuple[List[Finding], List[Finding]]:
    """(kept, suppressed); marks which suppressions were used."""
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    units = {unit.path: unit for unit in ctx.units}
    for finding in findings:
        unit = units.get(finding.path)
        sup = (
            unit.suppression_for(finding.rule, finding.line)
            if unit is not None and finding.line
            else None
        )
        if sup is not None:
            sup.used.add(finding.rule)
            suppressed.append(finding)
        else:
            kept.append(finding)
    return kept, suppressed


def _audit_suppressions(
    ctx: ProjectContext, ran: Set[str]
) -> List[Finding]:
    ana001 = ANALYZE_RULES.get("ANA001")
    ana002 = ANALYZE_RULES.get("ANA002")
    findings: List[Finding] = []
    for unit in ctx.units:
        for sup in unit.suppressions:
            context = unit.line_text(sup.line)
            if not sup.reason:
                findings.append(
                    ana002.finding(
                        unit.path, sup.line,
                        f"suppression allow[{','.join(sup.codes)}] has "
                        f"no justification",
                        context=context,
                    )
                )
            for code in sup.codes:
                # a suppression is only provably stale when its rule
                # actually ran this pass (--rules subsets must not
                # condemn allows for the rules they skipped)
                if code in ran and code not in sup.used:
                    findings.append(
                        ana001.finding(
                            unit.path, sup.line,
                            f"suppression allow[{code}] matched no "
                            f"finding",
                            context=context,
                        )
                    )
    return findings


def analyze_tree(
    config: Optional[AnalyzeConfig] = None,
) -> AnalyzeReport:
    """Run the configured rules over the configured tree."""
    config = config if config is not None else AnalyzeConfig()
    ctx = build_context(config)
    rules = _selected_rules(config)
    raw = _run_rules(ctx, rules)
    kept, suppressed = _apply_suppressions(ctx, raw)
    kept.extend(_audit_suppressions(ctx, {r.code for r in rules}))
    kept.sort(key=lambda f: (f.path, f.line, f.rule))
    stale: List[Dict[str, Any]] = []
    baselined: List[Finding] = []
    if config.baseline_path is not None:
        entries = load_baseline(config.baseline_path)
        kept, baselined, stale = apply_baseline(kept, entries)
    return AnalyzeReport(
        root=os.path.abspath(config.root),
        findings=kept,
        baselined=baselined,
        suppressed=suppressed,
        stale_baseline=stale,
        files_checked=len(ctx.units),
        rules_run=[r.code for r in rules],
    )
