"""Cache-identity rules (CACHE2xx): honest fingerprints, classified fields.

Every cached result in this repo is addressed by a spec fingerprint
(:mod:`repro.spec.specs`) or a :meth:`SimParams.identity_dict`.  A field
that silently misses the serialization -- or one that should have been
excluded but leaks in -- makes cache keys lie: stale results resurface,
or identical runs stop sharing entries.  These rules force every field
to be *classified*: identity-bearing (serialized) or identity-neutral
(marked ``# repro: identity-neutral`` and excluded), and pin the whole
surface against a committed snapshot so drift requires an explicit
``CACHE_VERSION``/``SPEC_VERSION`` bump plus snapshot regeneration.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterator, List

from repro.analyze.context import ProjectContext
from repro.analyze.findings import Finding
from repro.analyze.registry import ANALYZE_RULES, rule
from repro.analyze.snapshot import (
    identity_classes,
    identity_surface,
    load_snapshot,
)

__all__: List[str] = []


# ---------------------------------------------------------------------------
# CACHE201: identity_dict classes (SimParams-style)
# ---------------------------------------------------------------------------
@rule(
    "CACHE201",
    "params-identity-classification",
    family="cache-identity",
    severity="error",
    summary=(
        "a class with identity_dict() must classify every field: "
        "identity-neutral fields are marked '# repro: identity-neutral' "
        "and popped; everything else stays in the identity dict"
    ),
    hint=(
        "either serialize the field (identity-bearing) or mark its "
        "definition '# repro: identity-neutral' AND pop it in "
        "identity_dict(); then bump CACHE_VERSION and regenerate the "
        "snapshot"
    ),
    scope="project",
)
def check_identity_dict_classes(ctx: ProjectContext) -> Iterator[Finding]:
    entry = ANALYZE_RULES.get("CACHE201")
    for unit, cls, info in identity_classes(ctx):
        if info["mode"] != "identity_dict":
            continue
        fields = set(info["fields"])
        popped = set(info["popped"])
        neutral = set(info["neutral"])
        field_lines: Dict[str, int] = info["field_lines"]
        for name in sorted(popped - fields):
            yield entry.finding(
                unit.path, cls.lineno,
                f"{cls.name}.identity_dict() pops {name!r}, which is "
                f"not a field of the class",
                context=unit.line_text(cls.lineno),
            )
        for name in sorted(neutral - popped):
            line = field_lines.get(name, cls.lineno)
            yield entry.finding(
                unit.path, line,
                f"{cls.name}.{name} is marked identity-neutral but "
                f"identity_dict() does not pop it: the field leaks "
                f"into cache keys",
                context=unit.line_text(line),
            )
        for name in sorted((popped & fields) - neutral):
            line = field_lines.get(name, cls.lineno)
            yield entry.finding(
                unit.path, line,
                f"{cls.name}.{name} is popped from identity_dict() but "
                f"its definition is not marked "
                f"'# repro: identity-neutral': classify the field "
                f"explicitly",
                context=unit.line_text(line),
            )


# ---------------------------------------------------------------------------
# CACHE202: fingerprint-bearing spec classes
# ---------------------------------------------------------------------------
@rule(
    "CACHE202",
    "spec-field-serialization",
    family="cache-identity",
    severity="error",
    summary=(
        "every field of a fingerprint-bearing dataclass must reach "
        "to_dict() (identity-bearing), be serialized under a declared "
        "'# repro: identity-key[NAME]' alias, or be marked "
        "identity-neutral and stay out"
    ),
    hint=(
        "serialize the field in to_dict(), or mark it "
        "'# repro: identity-neutral' / '# repro: identity-key[NAME]'; "
        "identity changes also need a SPEC_VERSION/CACHE_VERSION bump"
    ),
    scope="project",
)
def check_spec_serialization(ctx: ProjectContext) -> Iterator[Finding]:
    entry = ANALYZE_RULES.get("CACHE202")
    for unit, cls, info in identity_classes(ctx):
        if info["mode"] != "fingerprint":
            continue
        if not info.get("has_to_dict", False):
            yield entry.finding(
                unit.path, cls.lineno,
                f"{cls.name} defines fingerprint() but no to_dict(): "
                f"its identity surface cannot be audited",
                context=unit.line_text(cls.lineno),
            )
            continue
        keys = set(info["keys"])
        neutral = set(info["neutral"])
        aliases: Dict[str, str] = info["aliases"]
        field_lines: Dict[str, int] = info["field_lines"]
        for name in info["fields"]:
            line = field_lines.get(name, cls.lineno)
            context = unit.line_text(line)
            serialized_as = aliases.get(name, name)
            if name in neutral:
                if serialized_as in keys:
                    yield entry.finding(
                        unit.path, line,
                        f"{cls.name}.{name} is marked identity-neutral "
                        f"but to_dict() serializes {serialized_as!r}",
                        context=context,
                    )
                continue
            if serialized_as not in keys:
                yield entry.finding(
                    unit.path, line,
                    f"{cls.name}.{name} never reaches to_dict(): the "
                    f"field is invisible to fingerprint() and cache "
                    f"keys",
                    context=context,
                )


# ---------------------------------------------------------------------------
# CACHE203: surface drift vs. the committed snapshot
# ---------------------------------------------------------------------------
def _diff_class(
    name: str, old: Dict[str, Any], new: Dict[str, Any]
) -> List[str]:
    problems: List[str] = []
    for part in ("mode", "keys", "neutral"):
        if old.get(part) != new.get(part):
            problems.append(
                f"{name}: {part} changed {old.get(part)!r} -> "
                f"{new.get(part)!r}"
            )
    return problems


@rule(
    "CACHE203",
    "identity-snapshot-drift",
    family="cache-identity",
    severity="error",
    summary=(
        "the identity surface (spec to_dict keys, identity_dict fields, "
        "CACHE_VERSION/SPEC_VERSION) drifted from the committed "
        "snapshot -- cached results would be silently mis-keyed"
    ),
    hint=(
        "if the change is intentional: bump CACHE_VERSION (and "
        "SPEC_VERSION when spec semantics changed), then run "
        "'python -m repro analyze --update-snapshot' and commit the "
        "refreshed identity_snapshot.json"
    ),
    scope="project",
)
def check_snapshot_drift(ctx: ProjectContext) -> Iterator[Finding]:
    entry = ANALYZE_RULES.get("CACHE203")
    surface = identity_surface(ctx)
    if not surface["classes"] and not surface["versions"]:
        return  # nothing identity-bearing in this tree: nothing to pin
    path = ctx.config.resolved_snapshot_path()
    rel = os.path.relpath(path, ctx.config.root)
    snapshot = load_snapshot(path)
    if snapshot is None:
        yield entry.finding(
            rel, 0,
            "no committed identity snapshot: run 'python -m repro "
            "analyze --update-snapshot' and commit the result",
        )
        return
    versions_changed = snapshot.get("versions") != surface["versions"]
    old_classes = snapshot.get("classes", {})
    new_classes = surface["classes"]
    problems: List[str] = []
    for name in sorted(set(old_classes) | set(new_classes)):
        if name not in new_classes:
            problems.append(f"{name}: identity-bearing class disappeared")
        elif name not in old_classes:
            problems.append(f"{name}: new identity-bearing class")
        else:
            problems.extend(
                _diff_class(name, old_classes[name], new_classes[name])
            )
    if versions_changed:
        old_v, new_v = snapshot.get("versions"), surface["versions"]
        problems.append(f"versions changed {old_v!r} -> {new_v!r}")
    if not problems:
        return
    drifted_without_bump = problems and not versions_changed
    for problem in problems:
        yield entry.finding(
            rel, 0,
            problem
            + (
                " (without a CACHE_VERSION/SPEC_VERSION bump)"
                if drifted_without_bump
                else ""
            ),
        )
