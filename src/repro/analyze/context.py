"""Parsed source units and the shared project context rules check.

A :class:`ModuleUnit` is one parsed source file: repo-relative path,
dotted module name, source lines, AST, and the ``# repro:`` control
comments it carries.  A :class:`ProjectContext` bundles every unit of
one run plus the :class:`AnalyzeConfig`, so project-scope rules (cache
identity, registry hygiene) can cross-reference modules.

Control comments (all audited by the engine):

* ``# repro: allow[RULE]: reason`` -- suppress RULE's findings on this
  line (or the line directly below a comment-only line).  A missing
  reason is an ANA002 error; a suppression that never fires is ANA001.
* ``# repro: identity-neutral`` -- marks a dataclass field as excluded
  from cache identity (checked by CACHE201/CACHE202).
* ``# repro: identity-key[NAME]`` -- the field is serialized under the
  key ``NAME`` rather than its own name (checked by CACHE202).
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

__all__ = [
    "AnalyzeConfig",
    "ModuleUnit",
    "ProjectContext",
    "Suppression",
    "module_name_for",
]

_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]\s*(?::\s*(.*\S))?\s*$"
)
_NEUTRAL_RE = re.compile(r"#\s*repro:\s*identity-neutral\b")
_IDENTITY_KEY_RE = re.compile(r"#\s*repro:\s*identity-key\[([\w.]+)\]")


@dataclass
class Suppression:
    """One ``# repro: allow[...]`` comment."""

    line: int  # 1-based line the comment sits on
    codes: Tuple[str, ...]
    reason: str  # empty = unjustified (ANA002)
    used: Set[str] = field(default_factory=set)

    def allows(self, code: str) -> bool:
        return code in self.codes


def module_name_for(rel_path: str) -> str:
    """Dotted module name of a repo-relative path, best effort.

    Strips a leading ``src/`` component (the repo's package root), so
    ``src/repro/sim/params.py`` -> ``repro.sim.params``.  Paths outside
    a package root still get a stable dotted name from their components.
    """
    parts = rel_path.replace(os.sep, "/").split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p)


@dataclass
class ModuleUnit:
    """One parsed source file."""

    path: str  # repo-relative posix path
    source: str
    tree: Optional[ast.Module]  # None when the file does not parse
    syntax_error: Optional[str] = None
    lines: List[str] = field(default_factory=list)
    suppressions: List[Suppression] = field(default_factory=list)
    _comments: Dict[int, str] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()
        if not self._comments:
            self._comments = _comment_tokens(self.source)
        if not self.suppressions:
            self.suppressions = [
                Suppression(line=line, codes=codes, reason=reason)
                for line, text in sorted(self._comments.items())
                for codes, reason in _parse_allow(text)
            ]

    @property
    def module(self) -> str:
        return module_name_for(self.path)

    def line_text(self, line: int) -> str:
        """The stripped source text of a 1-based line ('' out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def suppression_for(self, code: str, line: int) -> Optional[Suppression]:
        """The allow-comment covering ``code`` at ``line``, if any.

        A suppression covers its own line (trailing-comment form) and,
        when it sits on a comment-only line, the first code line after
        its contiguous comment block -- so a wrapped multi-line
        justification still covers the statement below it.
        """
        for sup in self.suppressions:
            if not sup.allows(code):
                continue
            if sup.line == line:
                return sup
            if self._comment_block_target(sup.line) == line:
                return sup
        return None

    def _comment_block_target(self, line: int) -> Optional[int]:
        """The code line a comment-only line's block attaches to."""
        if not self.line_text(line).startswith("#"):
            return None  # trailing comment: covers only its own line
        current = line + 1
        while current <= len(self.lines):
            text = self.line_text(current)
            if not text.startswith("#"):
                return current if text else None
            current += 1
        return None

    def comment_text(self, line: int) -> str:
        """The comment on a 1-based line ('' when there is none).

        Comes from real COMMENT tokens, so ``# repro:`` markers quoted
        inside strings or docstrings never count.
        """
        return self._comments.get(line, "")

    def field_markers(self, line: int) -> Tuple[bool, Optional[str]]:
        """(identity-neutral?, identity-key alias) markers on a line."""
        text = self.comment_text(line)
        neutral = _NEUTRAL_RE.search(text) is not None
        key_match = _IDENTITY_KEY_RE.search(text)
        return neutral, key_match.group(1) if key_match else None

    @classmethod
    def parse(cls, path: str, source: str) -> "ModuleUnit":
        try:
            tree: Optional[ast.Module] = ast.parse(source)
            err: Optional[str] = None
        except SyntaxError as exc:
            tree, err = None, f"{exc.msg} (line {exc.lineno})"
        return cls(path=path, source=source, tree=tree, syntax_error=err)


def _comment_tokens(source: str) -> Dict[int, str]:
    """1-based line -> comment text, from real COMMENT tokens only."""
    comments: Dict[int, str] = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                comments[tok.start[0]] = tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # unparseable tail: keep whatever tokenized cleanly
    return comments


def _parse_allow(text: str) -> List[Tuple[Tuple[str, ...], str]]:
    match = _ALLOW_RE.search(text)
    if match is None:
        return []
    codes = tuple(
        c.strip().upper() for c in match.group(1).split(",") if c.strip()
    )
    reason = match.group(2) or ""
    return [(codes, reason)] if codes else []


@dataclass
class AnalyzeConfig:
    """Knobs of one analysis run."""

    root: str = "."
    paths: Tuple[str, ...] = ("src",)
    rules: Optional[Tuple[str, ...]] = None  # None = every rule
    baseline_path: Optional[str] = None  # None = no baseline
    snapshot_path: Optional[str] = None  # None = the packaged default
    exclude: Tuple[str, ...] = ("__pycache__",)

    def resolved_snapshot_path(self) -> str:
        if self.snapshot_path is not None:
            return self.snapshot_path
        return os.path.join(
            os.path.dirname(os.path.abspath(__file__)),
            "identity_snapshot.json",
        )


@dataclass
class ProjectContext:
    """Every unit of one run plus the run configuration."""

    config: AnalyzeConfig
    units: List[ModuleUnit] = field(default_factory=list)
    _by_module: Dict[str, ModuleUnit] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        if not self._by_module:
            self._by_module = {u.module: u for u in self.units}

    def unit(self, module: str) -> Optional[ModuleUnit]:
        return self._by_module.get(module)

    def iter_parsed(self) -> Iterator[ModuleUnit]:
        """Units whose source parsed (rules skip syntax-error files)."""
        for unit in self.units:
            if unit.tree is not None:
                yield unit
