"""Pluggable rule registry for the static analyzer.

Mirrors the TRAFFIC/POLICY/ROUTING registry idiom of
:mod:`repro.spec.registry`: every rule registers one
:class:`AnalyzeRule` carrying its finding code, severity, family,
one-line summary, fix-it hint, and checker callable.  Consumers -- the
engine, the CLI's ``--rules``/``--list-rules``, the docs generator in
``docs/analysis.md`` -- look rules up here, so adding a rule is a
registration, not new wiring code.

This module is deliberately dependency-free inside the package (it
imports only :mod:`repro.analyze.findings`), so rule modules can import
it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, Tuple

from repro.analyze.findings import Finding

__all__ = [
    "ANALYZE_RULES",
    "AnalyzeError",
    "AnalyzeRule",
    "RuleRegistry",
    "rule",
]


class AnalyzeError(ValueError):
    """A rule name, baseline file, or snapshot could not be interpreted."""


# module-scope checkers receive (unit, context); project-scope checkers
# receive (context,); engine-scope rules are emitted by the engine itself
# (suppression auditing) and carry no checker
Checker = Callable[..., Iterable[Finding]]


def _no_checker() -> Iterable[Finding]:  # pragma: no cover - guard only
    raise AnalyzeError("engine-scope rules are emitted by the engine")


@dataclass(frozen=True)
class AnalyzeRule:
    """One registered rule: code + metadata + checker callable."""

    code: str  # e.g. "DET101" (the finding code)
    name: str  # short kebab-case name, e.g. "set-iteration"
    family: str  # "determinism" | "cache-identity" | "registry-hygiene"
    severity: str  # default severity of its findings
    summary: str  # one-line description (rule catalog material)
    hint: str  # generic fix-it hint
    # "module": checked once per source file; "project": checked once
    # against the whole tree; "engine": emitted by the engine itself
    scope: str = "module"
    check: Checker = _no_checker

    def finding(
        self,
        path: str,
        line: int,
        message: str,
        *,
        context: str = "",
        hint: str = "",
    ) -> Finding:
        """A finding of this rule (severity/hint default to the rule's)."""
        return Finding(
            rule=self.code,
            severity=self.severity,
            path=path,
            line=line,
            message=message,
            hint=hint if hint else self.hint,
            context=context,
        )


class RuleRegistry:
    """An ordered mapping of rule code -> :class:`AnalyzeRule`."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._rules: Dict[str, AnalyzeRule] = {}

    def register(self, entry: AnalyzeRule) -> AnalyzeRule:
        if entry.code in self._rules:
            raise ValueError(
                f"{self.name}: rule {entry.code!r} is already registered"
            )
        if entry.severity not in ("error", "warning"):
            raise ValueError(
                f"{self.name}: rule {entry.code} has unknown severity "
                f"{entry.severity!r}"
            )
        self._rules[entry.code] = entry
        return entry

    def codes(self) -> Tuple[str, ...]:
        """Registered rule codes in registration order."""
        return tuple(self._rules)

    def get(self, code: str) -> AnalyzeRule:
        entry = self._rules.get(code.upper())
        if entry is None:
            raise AnalyzeError(
                f"unknown rule {code!r}: choose from "
                f"{', '.join(self.codes())}"
            )
        return entry

    def select(self, codes: Iterable[str]) -> Tuple[AnalyzeRule, ...]:
        """Resolve a code subset (unknown codes raise AnalyzeError)."""
        return tuple(self.get(c) for c in codes)

    def __contains__(self, code: object) -> bool:
        return code in self._rules

    def __iter__(self) -> Iterator[AnalyzeRule]:
        return iter(self._rules.values())

    def __len__(self) -> int:
        return len(self._rules)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}({', '.join(self.codes())})"


ANALYZE_RULES = RuleRegistry("ANALYZE_RULES")


def rule(
    code: str,
    name: str,
    *,
    family: str,
    severity: str,
    summary: str,
    hint: str,
    scope: str = "module",
) -> Callable[[Checker], Checker]:
    """Decorator registering ``check`` as an :class:`AnalyzeRule`."""

    def decorate(check: Checker) -> Checker:
        ANALYZE_RULES.register(
            AnalyzeRule(
                code=code,
                name=name,
                family=family,
                severity=severity,
                summary=summary,
                hint=hint,
                scope=scope,
                check=check,
            )
        )
        return check

    return decorate
