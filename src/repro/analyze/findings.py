"""Finding records and the aggregate analysis report.

Mirrors the conventions of :mod:`repro.verify.report`: each rule yields
structured :class:`Finding` records (rule code, severity, location,
message, fix-it hint) instead of raising, so one run reports every
violation at once, and the aggregate :class:`AnalyzeReport` renders as
text or JSON and decides pass/fail against a ``--fail-on`` threshold.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = ["AnalyzeReport", "Finding", "SEVERITIES"]

# ordered weakest-first; "error" always fails, "warning" fails under
# --fail-on warning, "none" disables the gate entirely
SEVERITIES = ("warning", "error")

# a broken tree can produce hundreds of findings; keep the text rendering
# readable (to_dict/to_json always carry everything)
_MAX_RENDERED_FINDINGS = 50


@dataclass(frozen=True)
class Finding:
    """One static-analysis diagnostic."""

    rule: str  # e.g. "DET101"
    severity: str  # "error" | "warning"
    path: str  # repo-relative posix path
    line: int  # 1-based; 0 = whole file
    message: str
    hint: str = ""  # fix-it hint (rule default unless overridden)
    context: str = ""  # stripped source line (baseline matching key)

    def __str__(self) -> str:
        where = f"{self.path}:{self.line}" if self.line else self.path
        text = f"[{self.severity}] {self.rule} {where}: {self.message}"
        if self.hint:
            text += f"  (hint: {self.hint})"
        return text

    def location_key(self) -> Dict[str, Any]:
        """The drift-tolerant identity used for baseline matching.

        Line numbers are deliberately excluded: an unrelated edit above a
        grandfathered finding must not un-baseline it.  The stripped
        source line disambiguates findings that moved.
        """
        return {
            "rule": self.rule,
            "path": self.path,
            "context": self.context,
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
            "context": self.context,
        }


@dataclass
class AnalyzeReport:
    """Everything one analysis run established."""

    root: str
    findings: List[Finding]  # active (not baselined, not suppressed)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    stale_baseline: List[Dict[str, Any]] = field(default_factory=list)
    files_checked: int = 0
    rules_run: List[str] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    def passed(self, fail_on: str = "error") -> bool:
        """Whether the run clears the ``fail_on`` severity threshold."""
        if fail_on == "none":
            return True
        if fail_on == "warning":
            return not self.findings
        return not self.errors

    def to_text(self, fail_on: str = "error") -> str:
        lines = [
            f"repro.analyze -- {self.files_checked} file(s), "
            f"{len(self.rules_run)} rule(s)"
        ]
        shown = self.findings[:_MAX_RENDERED_FINDINGS]
        lines.extend(f"  {f}" for f in shown)
        omitted = len(self.findings) - len(shown)
        if omitted:
            lines.append(
                f"  ... {omitted} more finding(s) omitted "
                f"(JSON output carries all of them)"
            )
        lines.append(
            f"  {len(self.errors)} error(s), {len(self.warnings)} "
            f"warning(s); {len(self.baselined)} baselined, "
            f"{len(self.suppressed)} suppressed"
        )
        if self.stale_baseline:
            lines.append(
                f"  note: {len(self.stale_baseline)} stale baseline "
                f"entr{'y' if len(self.stale_baseline) == 1 else 'ies'} "
                f"no longer match (refresh with --write-baseline):"
            )
            for entry in self.stale_baseline[:10]:
                lines.append(
                    f"    {entry.get('rule')} {entry.get('path')}: "
                    f"{entry.get('context', '')!r}"
                )
        lines.append(
            f"RESULT: {'PASS' if self.passed(fail_on) else 'FAIL'}"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "root": self.root,
            "files_checked": self.files_checked,
            "rules_run": list(self.rules_run),
            "findings": [f.to_dict() for f in self.findings],
            "baselined": [f.to_dict() for f in self.baselined],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "stale_baseline": list(self.stale_baseline),
            "errors": len(self.errors),
            "warnings": len(self.warnings),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
