"""Core traffic pattern classes.

Patterns are bound to a topology at construction.  The two consumer-facing
methods are:

* :meth:`TrafficPattern.sample_destinations` -- vectorized per-packet
  destination draw for a batch of source nodes (simulator hot path);
* :meth:`TrafficPattern.demand_matrix` -- expected switch-to-switch traffic
  per unit node injection rate (LP model input).
"""

from __future__ import annotations

import abc
import hashlib

import numpy as np
from numpy.typing import ArrayLike

from repro.topology.base import Topology

__all__ = [
    "NO_TRAFFIC",
    "TrafficPattern",
    "UniformRandom",
    "Shift",
    "RandomPermutation",
    "GroupSwitchPermutation",
    "DiscoveredPermutation",
    "permutation_matrix",
]

NO_TRAFFIC = -1  # destination sentinel: the node does not inject


def permutation_matrix(topo: Topology, dest: np.ndarray) -> np.ndarray:
    """Switch-level demand matrix of a fixed node->node destination map.

    ``D[s, d]`` is the number of nodes on switch ``s`` whose destination
    lives on switch ``d``, per unit injection rate.  :data:`NO_TRAFFIC`
    entries and fixed points (a node mapped to itself) contribute
    nothing -- the single audited implementation of that rule, shared by
    every fixed pattern and by the ``repro.adversary`` search core.
    """
    n_sw = topo.num_switches
    demand = np.zeros((n_sw, n_sw))
    for node, dst in enumerate(dest):
        if dst == NO_TRAFFIC or dst == node:
            continue
        demand[topo.switch_of_node(node), topo.switch_of_node(int(dst))] += 1.0
    return demand


class TrafficPattern(abc.ABC):
    """Destination distribution for every source compute node."""

    def __init__(self, topo: Topology) -> None:
        self.topo = topo

    @abc.abstractmethod
    def sample_destinations(
        self, srcs: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Destination node for each source node in ``srcs``.

        Entries may be :data:`NO_TRAFFIC` for nodes that never inject under
        this pattern (e.g. permutation fixed points).
        """

    @abc.abstractmethod
    def describe(self) -> str:
        """Short label used in reports (e.g. ``shift(2,0)``)."""

    def demand_matrix(self) -> np.ndarray:
        """Switch-to-switch expected packets/cycle at unit injection rate.

        ``D[s, d]`` is the mean number of packets per cycle from switch
        ``s`` to switch ``d`` when every node injects 1 packet/cycle.
        The default estimates it from the per-node destination law; fixed
        (deterministic) patterns override with the exact matrix.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not define a demand matrix"
        )

    def live_fraction(self) -> float:
        """Fraction of nodes that ever inject (1.0 unless overridden)."""
        return 1.0


class _FixedPattern(TrafficPattern):
    """A pattern defined by a fixed node->node destination map."""

    def __init__(self, topo: Topology) -> None:
        super().__init__(topo)
        self._dest = self._build_dest_map()
        if self._dest.shape != (topo.num_nodes,):
            raise AssertionError("destination map has wrong shape")

    @abc.abstractmethod
    def _build_dest_map(self) -> np.ndarray:
        """Array mapping every node to its destination (or NO_TRAFFIC)."""

    @property
    def dest_map(self) -> np.ndarray:
        """The fixed node->destination array (read-only view)."""
        view = self._dest.view()
        view.flags.writeable = False
        return view

    def sample_destinations(self, srcs, rng):
        return self._dest[srcs]

    def live_fraction(self) -> float:
        return float(np.mean(self._dest != NO_TRAFFIC))

    def demand_matrix(self) -> np.ndarray:
        return permutation_matrix(self.topo, self._dest)


class UniformRandom(TrafficPattern):
    """UR: each packet picks a destination uniformly among all other nodes."""

    def sample_destinations(self, srcs, rng):
        n = self.topo.num_nodes
        dests = rng.integers(0, n - 1, size=len(srcs))
        # shift up to skip the source itself (uniform over the other n-1)
        dests = dests + (dests >= srcs)
        return dests

    def demand_matrix(self) -> np.ndarray:
        topo = self.topo
        n_sw = topo.num_switches
        n = topo.num_nodes
        p = topo.p
        # p source nodes x p destination nodes, each with prob 1/(n-1)
        demand = np.full((n_sw, n_sw), p * p / (n - 1))
        # same-switch traffic never enters the network
        np.fill_diagonal(demand, 0.0)
        return demand

    def describe(self) -> str:
        return "UR"


class Shift(_FixedPattern):
    """``shift(dg, ds)``: node ``(g_i, s_j, n_k)`` sends to
    ``(g_{(i+dg) mod g}, s_{(j+ds) mod a}, n_k)`` (Section 3.3.1).

    ``shift(k, 0)`` is the paper's ADV pattern: all nodes of switch ``j``
    in each group send to the nodes of switch ``j`` in the group ``k``
    ahead, saturating the direct links between the two groups.
    """

    def __init__(self, topo: Topology, dg: int, ds: int = 0) -> None:
        if not (0 <= dg < topo.g and 0 <= ds < topo.a):
            raise ValueError(
                f"shift offsets ({dg},{ds}) out of range for g={topo.g}, "
                f"a={topo.a}"
            )
        self.dg = dg
        self.ds = ds
        super().__init__(topo)

    def _build_dest_map(self) -> np.ndarray:
        topo = self.topo
        nodes = np.arange(topo.num_nodes)
        k = nodes % topo.p
        sw = nodes // topo.p
        s = sw % topo.a
        g = sw // topo.a
        g2 = (g + self.dg) % topo.g
        s2 = (s + self.ds) % topo.a
        dest = (g2 * topo.a + s2) * topo.p + k
        dest[dest == nodes] = NO_TRAFFIC  # shift(0,0): self-send, no traffic
        return dest

    def describe(self) -> str:
        return f"shift({self.dg},{self.ds})"


class RandomPermutation(_FixedPattern):
    """A uniformly random node-level permutation (fixed per instance).

    Fixed points (a node mapped to itself) do not inject -- the paper's
    "each node sending to and receiving from at most one destination".
    """

    def __init__(self, topo: Topology, seed: int = 0) -> None:
        self.seed = seed
        super().__init__(topo)

    def _build_dest_map(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        dest = rng.permutation(self.topo.num_nodes)
        dest[dest == np.arange(self.topo.num_nodes)] = NO_TRAFFIC
        return dest

    def describe(self) -> str:
        return f"permutation(seed={self.seed})"


class GroupSwitchPermutation(_FixedPattern):
    """A TYPE_2 adversarial pattern (Section 3.3.1).

    A random *derangement* at the group level (every group sends to a
    different group, like the paper's example cycle ``0 -> 2 -> 1 -> 0``),
    then an independent random switch-level permutation for each
    group-level edge.  Node ``(g, s, k)`` maps to
    ``(perm_G(g), perm_g(s), k)``.
    """

    def __init__(self, topo: Topology, seed: int = 0) -> None:
        if topo.g < 2:
            raise ValueError("TYPE_2 patterns need at least 2 groups")
        self.seed = seed
        super().__init__(topo)

    @staticmethod
    def _derangement(n: int, rng: np.random.Generator) -> np.ndarray:
        """Random permutation of ``0..n-1`` with no fixed point."""
        if n == 2:
            return np.array([1, 0])
        while True:
            perm = rng.permutation(n)
            if not np.any(perm == np.arange(n)):
                return perm

    def _build_dest_map(self) -> np.ndarray:
        topo = self.topo
        rng = np.random.default_rng(self.seed)
        self.group_perm = self._derangement(topo.g, rng)
        self.switch_perms = {
            g: rng.permutation(topo.a) for g in range(topo.g)
        }
        nodes = np.arange(topo.num_nodes)
        k = nodes % topo.p
        sw = nodes // topo.p
        s = sw % topo.a
        g = sw // topo.a
        g2 = self.group_perm[g]
        s2 = np.empty_like(s)
        for grp in range(topo.g):
            mask = g == grp
            s2[mask] = self.switch_perms[grp][s[mask]]
        return (g2 * topo.a + s2) * topo.p + k

    def describe(self) -> str:
        return f"type2(seed={self.seed})"


class DiscoveredPermutation(_FixedPattern):
    """A fixed destination map found by ``repro.adversary`` search.

    Identity is the destination map itself -- not the strategy, seed, or
    budget that found it -- so two searches landing on the same map share
    one spec, one fingerprint, and one cache entry (provenance lives in
    the :class:`~repro.adversary.report.AdversaryReport` instead).  The
    map must be a *partial permutation*: every live destination distinct,
    in range, and not the source.  Self-sends are normalized to
    :data:`NO_TRAFFIC` at construction so equivalent maps canonicalize
    to the same spec.
    """

    def __init__(self, topo: Topology, dest: ArrayLike) -> None:
        arr = np.asarray(dest, dtype=np.int64).copy()
        if arr.shape != (topo.num_nodes,):
            raise ValueError(
                f"destination map has shape {arr.shape}, expected "
                f"({topo.num_nodes},)"
            )
        if np.any((arr < NO_TRAFFIC) | (arr >= topo.num_nodes)):
            raise ValueError(
                "destination entries must be NO_TRAFFIC or a node id in "
                f"[0, {topo.num_nodes})"
            )
        arr[arr == np.arange(topo.num_nodes)] = NO_TRAFFIC
        live = arr[arr != NO_TRAFFIC]
        if len(np.unique(live)) != len(live):
            raise ValueError(
                "destination map is not a partial permutation: a node "
                "receives from more than one source"
            )
        self._given = arr
        super().__init__(topo)

    def _build_dest_map(self) -> np.ndarray:
        return self._given

    def digest(self) -> str:
        """Short content digest of the destination map (report label)."""
        blob = ",".join(str(int(d)) for d in self._dest)
        return hashlib.sha256(blob.encode()).hexdigest()[:8]

    def describe(self) -> str:
        return f"discovered({self.digest()})"
