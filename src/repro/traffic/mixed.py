"""Space- and time-domain mixes of uniform and adversarial traffic.

``MIXED(UR%, ADV%)``: a fixed, randomly selected UR% of the compute nodes
generate uniform-random traffic; the remaining nodes follow an adversarial
pattern (default ``shift(1, 0)``).

``TMIXED(UR%, ADV%)``: every packet of every node independently has UR%
probability of a uniform destination and ADV% of the adversarial one.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.topology.dragonfly import Dragonfly
from repro.traffic.patterns import (
    NO_TRAFFIC,
    Shift,
    TrafficPattern,
    UniformRandom,
)

__all__ = ["Mixed", "TimeMixed"]


def _check_percentages(ur_percent: float, adv_percent: float) -> None:
    if ur_percent < 0 or adv_percent < 0:
        raise ValueError("percentages must be non-negative")
    if abs(ur_percent + adv_percent - 100.0) > 1e-9:
        raise ValueError(
            f"UR% + ADV% must equal 100, got {ur_percent} + {adv_percent}"
        )


class Mixed(TrafficPattern):
    """Space-domain mix MIXED(UR%, ADV%): node roles fixed at construction."""

    def __init__(
        self,
        topo: Dragonfly,
        ur_percent: float,
        adv_percent: float,
        adv: Optional[TrafficPattern] = None,
        seed: int = 0,
    ) -> None:
        _check_percentages(ur_percent, adv_percent)
        super().__init__(topo)
        self.ur_percent = ur_percent
        self.adv_percent = adv_percent
        self.seed = seed
        self.ur = UniformRandom(topo)
        self.adv = adv if adv is not None else Shift(topo, 1, 0)
        rng = np.random.default_rng(seed)
        n = topo.num_nodes
        n_ur = int(round(n * ur_percent / 100.0))
        chosen = rng.choice(n, size=n_ur, replace=False)
        self.is_ur = np.zeros(n, dtype=bool)
        self.is_ur[chosen] = True

    def sample_destinations(self, srcs, rng):
        dests = self.adv.sample_destinations(srcs, rng)
        mask = self.is_ur[srcs]
        if np.any(mask):
            dests = dests.copy()
            dests[mask] = self.ur.sample_destinations(srcs[mask], rng)
        return dests

    def demand_matrix(self) -> np.ndarray:
        topo = self.topo
        n_sw = topo.num_switches
        demand = np.zeros((n_sw, n_sw))
        n = topo.num_nodes
        p = topo.p
        # UR nodes spread over all other nodes; ADV nodes follow the map.
        adv_map = self.adv.dest_map  # Mixed requires a fixed ADV pattern
        for node in range(n):
            s = topo.switch_of_node(node)
            if self.is_ur[node]:
                demand[s, :] += p / (n - 1)
                demand[s, s] -= p / (n - 1)  # same-switch stays local
            else:
                dest = adv_map[node]
                if dest != NO_TRAFFIC and dest != node:
                    d = topo.switch_of_node(dest)
                    if d != s:
                        demand[s, d] += 1.0
        np.fill_diagonal(demand, 0.0)
        return demand

    def describe(self) -> str:
        return (
            f"MIXED({self.ur_percent:g},{self.adv_percent:g}; "
            f"{self.adv.describe()})"
        )


class TimeMixed(TrafficPattern):
    """Time-domain mix TMIXED(UR%, ADV%): per-packet random role."""

    def __init__(
        self,
        topo: Dragonfly,
        ur_percent: float,
        adv_percent: float,
        adv: Optional[TrafficPattern] = None,
        seed: int = 0,
    ) -> None:
        _check_percentages(ur_percent, adv_percent)
        super().__init__(topo)
        self.ur_percent = ur_percent
        self.adv_percent = adv_percent
        self.seed = seed
        self.ur = UniformRandom(topo)
        self.adv = adv if adv is not None else Shift(topo, 1, 0)

    def sample_destinations(self, srcs, rng):
        dests = self.adv.sample_destinations(srcs, rng)
        mask = rng.random(len(srcs)) < self.ur_percent / 100.0
        if np.any(mask):
            dests = dests.copy()
            dests[mask] = self.ur.sample_destinations(srcs[mask], rng)
        return dests

    def demand_matrix(self) -> np.ndarray:
        f_ur = self.ur_percent / 100.0
        return f_ur * self.ur.demand_matrix() + (1 - f_ur) * (
            self.adv.demand_matrix()
        )

    def describe(self) -> str:
        return (
            f"TMIXED({self.ur_percent:g},{self.adv_percent:g}; "
            f"{self.adv.describe()})"
        )
