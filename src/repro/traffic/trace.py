"""Trace-driven traffic: replay explicit (cycle, src, dst) injection events.

Synthetic patterns drive the simulator through a Bernoulli process; real
workload studies replay traces.  :class:`TraceTraffic` feeds an explicit
event list to the engine (the ``load`` argument is ignored for scheduled
traffic), and :func:`synthetic_trace` bridges the two worlds by sampling a
Poisson-arrival trace from any synthetic pattern -- useful for
deterministic, repeatable experiments and for writing traces to disk.

Trace files are plain text: one ``cycle src dst`` triple per line,
``#`` comments allowed.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List, Sequence, Tuple

import numpy as np

from repro.topology.dragonfly import Dragonfly
from repro.traffic.patterns import NO_TRAFFIC, TrafficPattern

__all__ = ["TraceTraffic", "synthetic_trace", "load_trace", "save_trace"]

Event = Tuple[int, int, int]  # (cycle, src node, dst node)


class TraceTraffic(TrafficPattern):
    """Scheduled traffic: inject exactly the events of a trace.

    The engine detects the ``scheduled`` attribute and asks for
    :meth:`injections_at` each cycle instead of drawing Bernoulli
    arrivals.
    """

    scheduled = True

    def __init__(self, topo: Dragonfly, events: Sequence[Event]) -> None:
        super().__init__(topo)
        n = topo.num_nodes
        for cycle, src, dst in events:
            if cycle < 0:
                raise ValueError(f"negative cycle in trace event {cycle}")
            if not (0 <= src < n and 0 <= dst < n):
                raise ValueError(
                    f"trace event ({cycle},{src},{dst}) references nodes "
                    f"outside 0..{n - 1}"
                )
        self.events: List[Event] = sorted(events)
        self._cycles = [e[0] for e in self.events]

    def injections_at(self, cycle: int) -> List[Tuple[int, int]]:
        """(src, dst) pairs to inject at ``cycle``."""
        lo = bisect_left(self._cycles, cycle)
        hi = bisect_right(self._cycles, cycle)
        return [(src, dst) for _c, src, dst in self.events[lo:hi]]

    def sample_destinations(self, srcs, rng):  # pragma: no cover - unused
        raise NotImplementedError(
            "TraceTraffic is scheduled; the engine uses injections_at()"
        )

    def demand_matrix(self) -> np.ndarray:
        """Average switch-level demand in packets/cycle over the trace span.

        Unlike synthetic patterns (normalized to unit node rate), a trace
        has an intrinsic rate; the matrix reflects it directly.
        """
        topo = self.topo
        demand = np.zeros((topo.num_switches, topo.num_switches))
        if not self.events:
            return demand
        span = self.events[-1][0] + 1
        for _cycle, src, dst in self.events:
            s = topo.switch_of_node(src)
            d = topo.switch_of_node(dst)
            if s != d:
                demand[s, d] += 1.0
        return demand / span

    def describe(self) -> str:
        return f"trace({len(self.events)} events)"


def synthetic_trace(
    topo: Dragonfly,
    pattern: TrafficPattern,
    load: float,
    cycles: int,
    seed: int = 0,
) -> TraceTraffic:
    """Sample a Bernoulli-arrival trace from a synthetic pattern.

    Reproduces exactly what the engine would inject at ``load`` for
    ``cycles`` cycles (same process, independently seeded), as an explicit
    event list.
    """
    if not 0.0 <= load <= 1.0:
        raise ValueError("load must be in [0, 1]")
    rng = np.random.default_rng(seed)
    nodes = np.arange(topo.num_nodes)
    events: List[Event] = []
    for cycle in range(cycles):
        srcs = nodes[rng.random(topo.num_nodes) < load]
        if srcs.size == 0:
            continue
        dests = pattern.sample_destinations(srcs, rng)
        for src, dst in zip(srcs.tolist(), dests.tolist()):
            if dst != NO_TRAFFIC:
                events.append((cycle, int(src), int(dst)))
    return TraceTraffic(topo, events)


def save_trace(trace: TraceTraffic, path: str) -> None:
    """Write a trace as ``cycle src dst`` lines."""
    with open(path, "w") as fh:
        fh.write("# cycle src dst\n")
        for cycle, src, dst in trace.events:
            fh.write(f"{cycle} {src} {dst}\n")


def load_trace(topo: Dragonfly, path: str) -> TraceTraffic:
    """Read a trace written by :func:`save_trace`."""
    events: List[Event] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3:
                raise ValueError(
                    f"{path}:{lineno}: expected 'cycle src dst', got {line!r}"
                )
            events.append(tuple(int(x) for x in parts))  # type: ignore
    return TraceTraffic(topo, events)
