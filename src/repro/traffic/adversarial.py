"""The adversarial pattern suites used to compute T-VLB (Section 3.3.1).

``TYPE_1_SET``: every combined group/switch shift ``shift(dg, ds)`` with
``1 <= dg <= g-1`` and ``0 <= ds <= a-1`` -- ``(g-1)*a`` patterns.

``TYPE_2_SET``: random group-level permutations refined by per-group
switch-level permutations (20 patterns in the paper).

These constructors take any :class:`~repro.topology.base.Topology` --
suite *selection* is per-topology via the ``Topology.adversary_suite``
protocol hook (dragonflies return exactly these two sets; a full mesh
substitutes its native switch-level suites), and ``repro.adversary``
searches beyond both.
"""

from __future__ import annotations

from typing import List

from repro.topology.base import Topology
from repro.traffic.patterns import GroupSwitchPermutation, Shift

__all__ = ["type_1_set", "type_2_set"]


def type_1_set(topo: Topology) -> List[Shift]:
    """All ``shift(dg, ds)`` patterns: ``(g-1) * a`` of them."""
    return [
        Shift(topo, dg, ds)
        for dg in range(1, topo.g)
        for ds in range(topo.a)
    ]


def type_2_set(
    topo: Topology, count: int = 20, seed: int = 0
) -> List[GroupSwitchPermutation]:
    """``count`` random group+switch permutation patterns (paper: 20)."""
    return [
        GroupSwitchPermutation(topo, seed=seed + i) for i in range(count)
    ]
