"""The adversarial pattern suites used to compute T-VLB (Section 3.3.1).

``TYPE_1_SET``: every combined group/switch shift ``shift(dg, ds)`` with
``1 <= dg <= g-1`` and ``0 <= ds <= a-1`` -- ``(g-1)*a`` patterns.

``TYPE_2_SET``: random group-level permutations refined by per-group
switch-level permutations (20 patterns in the paper).
"""

from __future__ import annotations

from typing import List

from repro.topology.dragonfly import Dragonfly
from repro.traffic.patterns import GroupSwitchPermutation, Shift

__all__ = ["type_1_set", "type_2_set"]


def type_1_set(topo: Dragonfly) -> List[Shift]:
    """All ``shift(dg, ds)`` patterns: ``(g-1) * a`` of them."""
    return [
        Shift(topo, dg, ds)
        for dg in range(1, topo.g)
        for ds in range(topo.a)
    ]


def type_2_set(
    topo: Dragonfly, count: int = 20, seed: int = 0
) -> List[GroupSwitchPermutation]:
    """``count`` random group+switch permutation patterns (paper: 20)."""
    return [
        GroupSwitchPermutation(topo, seed=seed + i) for i in range(count)
    ]
