"""Synthetic traffic patterns (Section 4.1.3 of the paper).

Five families:

* :class:`UniformRandom` -- every destination equally likely (UR);
* :class:`Shift` -- the adversarial ``shift(dg, ds)`` group/switch shift (ADV);
* :class:`RandomPermutation` -- node-level random permutation;
* :class:`Mixed` -- space-domain mix: a fixed random subset of nodes runs UR,
  the rest run ADV (``MIXED(UR%, ADV%)``);
* :class:`TimeMixed` -- time-domain mix: each packet independently picks a
  UR or ADV destination (``TMIXED(UR%, ADV%)``).

Plus the two adversarial suites Algorithm 1 trains against
(Section 3.3.1): :func:`type_1_set` (all group+switch shifts) and
:func:`type_2_set` (random group-level permutations refined by per-pair
switch-level permutations).

Every pattern exposes per-packet destination sampling (vectorized, for the
simulator) and a switch-level demand matrix (for the LP model).  A
destination of ``-1`` (``NO_TRAFFIC``) means "this node does not inject".
"""

from repro.traffic.patterns import (
    NO_TRAFFIC,
    DiscoveredPermutation,
    GroupSwitchPermutation,
    RandomPermutation,
    Shift,
    TrafficPattern,
    UniformRandom,
    permutation_matrix,
)
from repro.traffic.mixed import Mixed, TimeMixed
from repro.traffic.adversarial import type_1_set, type_2_set
from repro.traffic.trace import (
    TraceTraffic,
    load_trace,
    save_trace,
    synthetic_trace,
)

__all__ = [
    "NO_TRAFFIC",
    "TrafficPattern",
    "UniformRandom",
    "Shift",
    "RandomPermutation",
    "GroupSwitchPermutation",
    "DiscoveredPermutation",
    "permutation_matrix",
    "Mixed",
    "TimeMixed",
    "type_1_set",
    "type_2_set",
    "TraceTraffic",
    "synthetic_trace",
    "save_trace",
    "load_trace",
]
