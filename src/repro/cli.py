"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``topo``   -- build and validate a topology, print its parameters
* ``paths``  -- MIN paths and the VLB hop-class histogram of a switch pair
* ``bounds`` -- closed-form capacity bounds
* ``model``  -- LP modeled throughput for a pattern and candidate set
  (``--engine fast|legacy`` picks the factored fast path or the
  original assembly; ``--jobs/--cache`` batch and memoize solves)
* ``sim``    -- one simulation run at a fixed load
* ``sweep``  -- a latency-vs-load ladder (``--jobs N`` fans the points
  out over worker processes; ``--cache`` reuses on-disk results)
* ``adversary`` -- search for worst-case traffic patterns beyond the
  paper's suites (``repro.adversary``); ``--out file.json`` saves the
  winner as a pattern spec usable via ``--pattern @file.json``
* ``tvlb``   -- run Algorithm 1 and print the chosen T-VLB
* ``verify`` -- static deadlock-freedom certification + path-set lint
* ``analyze`` -- AST static analysis of the repro tree itself:
  determinism, cache-identity, and registry-hygiene rules
  (``--baseline``, ``--fail-on``, ``--update-snapshot``)
* ``figure`` -- regenerate one of the paper's tables/figures
* ``bench``  -- engine/sweep performance benchmarks (``BENCH_sim.json``)
* ``obs``    -- summarize or export recorded traces (``repro.obs``):
  ``obs summarize trace.jsonl`` prints task/cache/engine aggregates,
  ``obs export trace.jsonl --out trace.json`` writes a Chrome
  ``trace_event`` file for ``chrome://tracing`` / Perfetto

``-v/--verbose`` (before the subcommand) attaches a stderr handler to
the ``repro`` logger (``-vv`` for debug); ``sweep --trace/--sample-every
/--progress`` records executor lifecycles and engine timeline samples.

Specification mini-languages (parsed by the ``repro.spec`` registries,
so the CLI and the Python API accept the same strings and raise the same
errors; ``python -c "from repro.spec import TRAFFIC_REGISTRY;
print(TRAFFIC_REGISTRY.help_text())"`` prints the live table):

==========  ===============================================================
topology    ``--topology P,A,H,G`` (e.g. ``4,8,4,9``) |
            ``dfly:P,A,H,G`` | ``cascade:P,A,H,G,ROWS,COLS`` |
            ``full-mesh:N[,P]``
pattern     ``ur`` | ``shift:DG[,DS]`` | ``perm[:SEED]`` |
            ``type2[:SEED]`` | ``mixed:UR,ADV[,SEED]`` |
            ``tmixed:UR,ADV[,SEED]`` |
            ``@file.json`` (a pattern saved by ``adversary --out``)
policy      ``all`` | ``hopclass:L[,FRAC]`` | ``strategic:2+3|3+2`` |
            ``@file.json`` (a policy saved by ``tvlb --save``)
routing     ``min`` | ``vlb`` | ``ugal-l`` | ``ugal-g`` | ``par``, plus
            ``t-`` forms of the policy-accepting variants
            (``t-ugal-l``, ``t-ugal-g``, ``t-par``)
==========  ===============================================================
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.spec import PatternSpec, PolicySpec, SpecError, TopologySpec
from repro.topology import Dragonfly, validate_topology

__all__ = [
    "main",
    "parse_loads",
    "parse_pattern",
    "parse_policy",
    "parse_routing",
    "parse_topology",
]


def parse_topology(spec: str, arrangement: str = "absolute") -> Dragonfly:
    try:
        return TopologySpec.parse(spec, arrangement).build()
    except SpecError as exc:
        raise SystemExit(str(exc)) from None


def parse_routing(variant: str) -> str:
    """Validate a routing-variant name with the registry's error text.

    The CLI pairs T- variants with a default ``all`` policy, so only the
    name is checked here; the policy-presence rule is enforced by
    ``resolve_routing`` at simulation time.
    """
    from repro.spec import resolve_routing

    try:
        resolve_routing(variant)
    except SpecError as exc:
        raise SystemExit(str(exc)) from None
    return variant.lower()


def parse_pattern(topo: Dragonfly, spec: str):
    try:
        return PatternSpec.parse(spec).build(topo)
    except SpecError as exc:
        raise SystemExit(str(exc)) from None


def parse_policy(spec: Optional[str]):
    try:
        return PolicySpec.parse(spec if spec is not None else "all").build()
    except SpecError as exc:
        raise SystemExit(str(exc)) from None


def parse_loads(spec: str) -> List[float]:
    """``0.05,0.1,0.2`` (explicit) or ``0.05:0.4:8`` (lo:hi:count)."""
    try:
        if ":" in spec:
            lo_s, hi_s, n_s = spec.split(":")
            lo, hi, n = float(lo_s), float(hi_s), int(n_s)
            if n < 1:
                raise ValueError
            if n == 1:
                return [lo]
            step = (hi - lo) / (n - 1)
            return [lo + step * i for i in range(n)]
        return [float(x) for x in spec.split(",") if x]
    except ValueError:
        raise SystemExit(
            f"bad loads spec {spec!r}: use L1,L2,... or LO:HI:COUNT"
        )


def _make_executor(args, progress=None):
    """A SweepExecutor from common --jobs/--cache/--cache-dir flags.

    ``progress`` (a :class:`repro.obs.ProgressReporter`) is attached
    when the command asked for heartbeats; the executor's tracer is left
    unset so it picks up any active ``repro.obs.capture`` context.
    """
    from repro.perf import SimCache, SweepExecutor

    cache = None
    if getattr(args, "cache", False):
        cache = SimCache(getattr(args, "cache_dir", None))
    return SweepExecutor(
        jobs=getattr(args, "jobs", None), cache=cache, progress=progress,
        batch=getattr(args, "batch", None),
    )


def _exec_args(p, jobs_default=None):
    """Attach the shared --jobs/--cache/--cache-dir flags to a parser."""
    p.add_argument("--jobs", type=int, default=jobs_default,
                   help="worker processes for independent simulation "
                        "points (default: $REPRO_JOBS or 1)")
    p.add_argument("--batch", type=int, default=None, metavar="B",
                   help="array-engine runs advanced per kernel call where "
                        "compatible: 1 disables batching, N>1 caps the "
                        "batch, 0 lets the planner pick (default: "
                        "$REPRO_BATCH or planner default; results are "
                        "bit-identical either way)")
    p.add_argument("--cache", action=argparse.BooleanOptionalAction,
                   default=False,
                   help="reuse simulation results from the on-disk cache "
                        "(--no-cache disables; default off)")
    p.add_argument("--cache-dir", default=None,
                   help="cache root (default: $REPRO_CACHE_DIR or "
                        "~/.cache/repro-sim)")


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------
def _cmd_topo(args) -> int:
    topo = parse_topology(args.topology, args.arrangement)
    stats = validate_topology(topo)
    print(f"{topo} [{args.arrangement}]")
    for key, value in {**topo.describe(), **stats}.items():
        print(f"  {key}: {value}")
    return 0


def _cmd_paths(args) -> int:
    from repro.routing import min_paths, vlb_class_counts

    topo = parse_topology(args.topology, args.arrangement)
    src, dst = args.src, args.dst
    print(f"{topo}: switch {src} -> switch {dst}")
    paths = min_paths(topo, src, dst)
    print(f"MIN paths ({len(paths)}):")
    for p in paths:
        print(f"  {' -> '.join(map(str, p.switches))}  ({p.num_hops} hops)")
    counts = vlb_class_counts(topo, src, dst)
    total = sum(counts.values())
    print(f"VLB paths ({total}):")
    for hops in sorted(counts):
        print(f"  {hops}-hop: {counts[hops]}")
    return 0


def _cmd_bounds(args) -> int:
    from repro.model.bounds import (
        min_only_shift_bound,
        optimal_min_fraction,
        shift_saturation_bound,
        uniform_random_bound,
    )

    topo = parse_topology(args.topology, args.arrangement)
    print(f"{topo} capacity bounds (packets/cycle/node):")
    print(f"  shift, any MIN/VLB mix : {shift_saturation_bound(topo):.4f}")
    print(f"  shift, MIN only        : {min_only_shift_bound(topo):.4f}")
    print(f"  optimal MIN fraction   : {optimal_min_fraction(topo):.4f}")
    print(f"  uniform random (MIN)   : {uniform_random_bound(topo):.4f}")
    return 0


def _cmd_model(args) -> int:
    from repro.perf import ModelTask

    topo = parse_topology(args.topology, args.arrangement)
    pattern = parse_pattern(topo, args.pattern)
    policy = parse_policy(args.policy)
    task = ModelTask(
        topo=topo,
        pattern=pattern,
        policy=policy,
        mode=args.mode,
        monotonic=not args.no_monotonic,
        max_descriptors=args.max_descriptors,
        engine=args.engine,
    )
    with _make_executor(args) as executor:
        res = executor.run_models([task])[0]
    print(
        f"{topo} {pattern.describe()} policy={policy.describe()} "
        f"mode={args.mode} engine={args.engine}"
    )
    print(f"  modeled throughput : {res.throughput:.4f}")
    print(f"  MIN fraction       : {res.min_fraction:.4f}")
    print(f"  demand pairs       : {res.num_pairs}")
    return 0


def _cmd_sim(args) -> int:
    from repro.sim import SimParams, simulate

    topo = parse_topology(args.topology, args.arrangement)
    pattern = parse_pattern(topo, args.pattern)
    routing = parse_routing(args.routing)
    policy = (
        parse_policy(args.policy)
        if routing.startswith("t-") or args.policy
        else None
    )
    params = SimParams(
        window_cycles=args.window, verify=args.verify, engine=args.engine
    )
    res = simulate(
        topo,
        pattern,
        args.load,
        routing=routing,
        policy=policy,
        params=params,
        seed=args.seed,
    )
    print(f"{topo} {pattern.describe()} {routing} load={args.load}")
    print(f"  avg latency   : {res.avg_latency:.1f} cycles")
    print(f"  p99 latency   : {res.p99_latency:.1f} cycles")
    print(f"  accepted rate : {res.accepted_rate:.4f}")
    print(f"  avg hops      : {res.avg_hops:.2f}")
    print(f"  VLB fraction  : {res.vlb_fraction:.2%}")
    print(f"  saturated     : {res.saturated}")
    return 0


def _cmd_sweep(args) -> int:
    from contextlib import nullcontext

    from repro.obs import (
        ObsConfig,
        ProgressReporter,
        Tracer,
        capture,
        render_summary,
    )
    from repro.sim import SimParams
    from repro.sim.sweep import latency_vs_load

    topo = parse_topology(args.topology, args.arrangement)
    pattern = parse_pattern(topo, args.pattern)
    routing = parse_routing(args.routing)
    policy = (
        parse_policy(args.policy)
        if routing.startswith("t-") or args.policy
        else None
    )
    loads = parse_loads(args.loads)
    params = SimParams(
        window_cycles=args.window, verify=args.verify, engine=args.engine
    )
    if args.sample_every or args.trace_dir:
        # identity-neutral: traced points still share cache entries with
        # untraced runs of the same spec
        params = params.with_obs(
            ObsConfig(
                sample_every=args.sample_every,
                trace_dir=args.trace_dir,
            )
        )
    tracer = Tracer() if args.trace else None
    progress = (
        ProgressReporter(label="sweep") if args.progress else None
    )
    ctx = capture(tracer) if tracer is not None else nullcontext()
    with _make_executor(args, progress=progress) as executor, ctx:
        sweep = latency_vs_load(
            topo,
            pattern,
            loads,
            routing=routing,
            policy=policy,
            params=params,
            seed=args.seed,
            stop_after_saturation=not args.no_stop,
            executor=executor,
        )
        print(
            f"{topo} {pattern.describe()} {routing} "
            f"policy={sweep.policy_label} [{executor.describe()}]"
        )
        print(f"  {'load':>6} {'latency':>9} {'accepted':>9}  sat")
        for load, latency, accepted, saturated in sweep.rows():
            print(
                f"  {load:6.3f} {latency:9.1f} {accepted:9.4f}  "
                f"{'yes' if saturated else 'no'}"
            )
        print(f"  saturation throughput: {sweep.saturation_throughput():.4f}")
    if tracer is not None:
        if args.trace.endswith(".jsonl"):
            tracer.save_jsonl(args.trace)
        else:
            tracer.export_chrome(args.trace)
        print(render_summary(tracer.summary()))
        print(f"[saved trace to {args.trace}]")
    return 0


def _cmd_bench(args) -> int:
    from repro.perf.bench import main as bench_main

    argv = ["--out", args.out, "--topology", args.topology,
            "--window", str(args.window), "--points", str(args.points)]
    if args.jobs is not None:
        argv += ["--jobs", str(args.jobs)]
    if args.cache_dir:
        argv += ["--cache-dir", args.cache_dir]
    if args.quick:
        argv.append("--quick")
    return bench_main(argv)


def _cmd_adversary(args) -> int:
    from repro.adversary import run_search
    from repro.obs import ProgressReporter

    topo = parse_topology(args.topology, args.arrangement)
    progress = (
        ProgressReporter(label="adversary") if args.progress else None
    )
    with _make_executor(args, progress=progress) as executor:
        try:
            report = run_search(
                topo,
                strategy=args.strategy,
                budget=args.budget,
                seed=args.seed,
                executor=executor,
                num_type1=(
                    None if args.num_type1 <= 0 else args.num_type1
                ),
                num_type2=args.num_type2,
                max_descriptors=args.max_descriptors,
            )
        except SpecError as exc:
            raise SystemExit(str(exc)) from None
    print(report.to_json() if args.json else report.to_text())
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report.to_json())
        print(
            f"[saved report to {args.out}; reuse the pattern anywhere "
            f"with --pattern @{args.out}]"
        )
    return 0


def _cmd_tvlb(args) -> int:
    from repro.core import compute_tvlb
    from repro.routing.serialization import save_policy
    from repro.sim import SimParams

    topo = parse_topology(args.topology, args.arrangement)
    with _make_executor(args) as executor:
        res = compute_tvlb(
            topo,
            sim_params=SimParams(window_cycles=args.window),
            seed=args.seed,
            executor=executor,
            model_engine=(
                None if args.model_engine == "auto" else args.model_engine
            ),
        )
    print(f"T-VLB for {topo}: {res.label}")
    print(f"converged to conventional UGAL: {res.converged_to_ugal}")
    for cand in res.candidates:
        print(f"  candidate {cand.label:32s} score={cand.score:.3f}")
    if args.save:
        save_policy(res.policy, args.save)
        print(f"[saved T-VLB policy to {args.save}]")
    return 0


def _cmd_verify(args) -> int:
    from repro.verify import verify_config

    topo = parse_topology(args.topology, args.arrangement)
    policy = parse_policy(args.policy)
    routing = parse_routing(args.routing)
    rules = args.rules.split(",") if args.rules else None
    try:
        report = verify_config(
            topo,
            policy,
            scheme=args.vc_scheme,
            routing=routing,
            num_vcs=args.num_vcs,
            seed=args.seed,
            rules=rules,
            run_cdg=not args.no_cdg,
            run_lint=not args.no_lint,
            max_pairs=args.pairs,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    print(report.to_json() if args.json else report.to_text())
    if not report.passed:
        return 1
    if args.strict and report.warnings:
        return 1
    return 0


def _cmd_obs(args) -> int:
    import glob as globlib
    import json

    from repro.obs import Tracer, render_summary

    paths: List[str] = []
    for spec in args.traces:
        matched = sorted(globlib.glob(spec))
        paths.extend(matched if matched else [spec])
    tracer = Tracer()
    for path in paths:
        try:
            tracer.extend(Tracer.load_jsonl(path).events)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read trace {path!r}: {exc}")
    if args.action == "summarize":
        if args.json:
            print(json.dumps(tracer.summary(), indent=2, sort_keys=True))
        else:
            print(render_summary(tracer.summary()))
        return 0
    out = args.out if args.out else "trace.json"
    tracer.export_chrome(out)
    print(
        f"[saved Chrome trace to {out}] "
        f"({len(tracer)} events from {len(paths)} file"
        f"{'s' if len(paths) != 1 else ''}; open in chrome://tracing "
        f"or https://ui.perfetto.dev)"
    )
    return 0


def _cmd_analyze(args) -> int:
    from repro.analyze import (
        ANALYZE_RULES,
        AnalyzeConfig,
        AnalyzeError,
        analyze_tree,
    )
    from repro.analyze.baseline import save_baseline
    from repro.analyze.engine import build_context
    from repro.analyze.snapshot import identity_surface, save_snapshot

    if args.list_rules:
        for entry in ANALYZE_RULES:
            print(
                f"{entry.code}  [{entry.severity:7s}] "
                f"{entry.family}/{entry.name}\n    {entry.summary}"
            )
        return 0
    rules = (
        tuple(r.strip() for r in args.rules.split(",") if r.strip())
        if args.rules
        else None
    )
    config = AnalyzeConfig(
        root=args.root,
        paths=tuple(args.paths) if args.paths else ("src",),
        rules=rules,
        baseline_path=args.baseline,
        snapshot_path=args.snapshot,
    )
    try:
        if args.update_snapshot:
            path = config.resolved_snapshot_path()
            save_snapshot(path, identity_surface(build_context(config)))
            print(f"[wrote identity snapshot to {path}]")
            return 0
        report = analyze_tree(config)
    except AnalyzeError as exc:
        raise SystemExit(f"repro analyze: {exc}")
    if args.write_baseline:
        if args.baseline is None:
            raise SystemExit("--write-baseline requires --baseline PATH")
        save_baseline(args.baseline, report.findings)
        print(
            f"[wrote baseline with {len(report.findings)} finding(s) "
            f"to {args.baseline}]"
        )
        return 0
    if args.json:
        print(report.to_json())
    else:
        print(report.to_text(fail_on=args.fail_on))
    return 0 if report.passed(args.fail_on) else 1


def _cmd_figure(args) -> int:
    from repro.experiments import run_figure

    result = run_figure(args.name)
    print(result)
    if args.json:
        result.save(args.json)
        print(f"\n[saved JSON record to {args.json}]")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Topology-Custom UGAL on Dragonfly (SC '19) toolkit",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="log repro internals to stderr (-v info, -vv debug); "
             "must precede the subcommand",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def topo_args(p):
        p.add_argument("--topology", "-t", default="4,8,4,9",
                       help="P,A,H,G or KIND:ARGS, e.g. full-mesh:16,4 "
                            "(default 4,8,4,9)")
        p.add_argument("--arrangement", default="absolute",
                       choices=["absolute", "relative", "circulant"])

    p = sub.add_parser("topo", help="build and validate a topology")
    topo_args(p)
    p.set_defaults(func=_cmd_topo)

    p = sub.add_parser("paths", help="MIN/VLB paths of a switch pair")
    topo_args(p)
    p.add_argument("src", type=int)
    p.add_argument("dst", type=int)
    p.set_defaults(func=_cmd_paths)

    p = sub.add_parser("bounds", help="closed-form capacity bounds")
    topo_args(p)
    p.set_defaults(func=_cmd_bounds)

    p = sub.add_parser("model", help="LP modeled throughput")
    topo_args(p)
    p.add_argument("--pattern", default="shift:1")
    p.add_argument("--policy", default="all")
    p.add_argument("--mode", default="free", choices=["free", "uniform"])
    p.add_argument("--no-monotonic", action="store_true")
    p.add_argument("--max-descriptors", type=int, default=None)
    p.add_argument("--engine", default="fast", choices=["fast", "legacy"],
                   help="LP assembly engine: factored fast path (default) "
                        "or the original per-solve baseline")
    _exec_args(p)
    p.set_defaults(func=_cmd_model)

    p = sub.add_parser("sim", help="one simulation run")
    topo_args(p)
    p.add_argument("--pattern", default="shift:1")
    p.add_argument("--routing", default="ugal-l")
    p.add_argument("--policy", default=None)
    p.add_argument("--load", type=float, default=0.1)
    p.add_argument("--window", type=int, default=300)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--verify", action="store_true",
                   help="statically verify the configuration before "
                        "simulating (repro.verify pre-flight gate)")
    p.add_argument("--engine", default="wheel",
                   choices=["wheel", "array", "legacy"],
                   help="cycle-engine implementation (bit-identical "
                        "results; 'array' is the fast struct-of-arrays "
                        "engine, 'legacy' the seed-faithful oracle)")
    p.set_defaults(func=_cmd_sim)

    p = sub.add_parser(
        "sweep", help="latency-vs-load ladder (parallel/cached)"
    )
    topo_args(p)
    p.add_argument("--pattern", default="shift:1")
    p.add_argument("--routing", default="ugal-l")
    p.add_argument("--policy", default=None)
    p.add_argument("--loads", default="0.05:0.40:8",
                   help="L1,L2,... or LO:HI:COUNT (default 0.05:0.40:8)")
    p.add_argument("--window", type=int, default=300)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-stop", action="store_true",
                   help="simulate every load even past saturation")
    p.add_argument("--verify", action="store_true",
                   help="statically verify the configuration before "
                        "simulating (repro.verify pre-flight gate)")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="record executor/engine events and write the "
                        "trace here (.jsonl = raw events, anything else "
                        "= Chrome trace_event JSON for chrome://tracing)")
    p.add_argument("--sample-every", type=int, default=0, metavar="K",
                   help="sample engine state (utilization, VC occupancy, "
                        "backlog) every K cycles (default 0 = off)")
    p.add_argument("--trace-dir", default=None, metavar="DIR",
                   help="per-run engine trace JSONL files land here "
                        "(required for engine samples from pool workers)")
    p.add_argument("--progress", action="store_true",
                   help="heartbeat/ETA lines on stderr while the batch "
                        "runs")
    p.add_argument("--engine", default="wheel",
                   choices=["wheel", "array", "legacy"],
                   help="cycle-engine implementation (bit-identical "
                        "results; 'array' is the fast struct-of-arrays "
                        "engine, 'legacy' the seed-faithful oracle)")
    _exec_args(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "adversary", help="search for worst-case traffic patterns"
    )
    topo_args(p)
    p.add_argument("--strategy", default="hillclimb",
                   help="search strategy: greedy | hillclimb[:BATCH] "
                        "(default hillclimb)")
    p.add_argument("--budget", type=int, default=32,
                   help="candidate destination maps to score (default 32)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--num-type1", type=int, default=6,
                   help="TYPE_1 suite patterns to pre-score as the "
                        "baseline pool (<= 0: the whole suite; default 6)")
    p.add_argument("--num-type2", type=int, default=4,
                   help="TYPE_2 suite seeds in the baseline pool "
                        "(default 4)")
    p.add_argument("--max-descriptors", type=int, default=2000)
    p.add_argument("--out", default=None, metavar="FILE",
                   help="write the report JSON here; the file doubles as "
                        "a pattern spec (--pattern @FILE)")
    p.add_argument("--json", action="store_true",
                   help="print the full report JSON instead of the "
                        "ranked table")
    p.add_argument("--progress", action="store_true",
                   help="heartbeat/ETA lines on stderr while candidate "
                        "batches run")
    _exec_args(p)
    p.set_defaults(func=_cmd_adversary)

    p = sub.add_parser("tvlb", help="run Algorithm 1")
    topo_args(p)
    p.add_argument("--window", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--save", default=None,
                   help="write the chosen policy to this JSON file")
    p.add_argument("--model-engine", default="auto",
                   choices=["auto", "fast", "legacy"],
                   help="LP engine for the Step-1 sweep (default auto = "
                        "the topology's preferred engine)")
    _exec_args(p)
    p.set_defaults(func=_cmd_tvlb)

    p = sub.add_parser(
        "verify", help="static deadlock-freedom + path-set verification"
    )
    topo_args(p)
    p.add_argument("--policy", default=None,
                   help="path policy to verify (default: all VLB)")
    p.add_argument("--routing", default="par",
                   help="routing whose dependencies to model (default par; "
                        "par adds revised-fragment dependencies)")
    p.add_argument("--vc-scheme", default="won",
                   choices=["won", "perhop", "none"],
                   help="VC allocation to verify ('none' = no VC "
                        "protection, analysis only)")
    p.add_argument("--num-vcs", type=int, default=None,
                   help="VC count to lint against (default: the scheme's "
                        "requirement for this routing and topology)")
    p.add_argument("--rules", default=None,
                   help="comma-separated subset of lint rules to run")
    p.add_argument("--no-cdg", action="store_true",
                   help="skip the channel-dependency-graph analysis")
    p.add_argument("--no-lint", action="store_true",
                   help="skip the path-set lint rules")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero on warnings too")
    p.add_argument("--pairs", type=int, default=40,
                   help="switch pairs sampled by the linter (default 40)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true",
                   help="emit the report as JSON")
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser(
        "obs", help="summarize or export recorded traces (repro.obs)"
    )
    p.add_argument("action", choices=["summarize", "export"],
                   help="summarize: aggregate stats; export: Chrome "
                        "trace_event JSON")
    p.add_argument("traces", nargs="+",
                   help="JSONL trace files (globs ok), e.g. the --trace "
                        "output of sweep or engine-*.jsonl from a "
                        "--trace-dir")
    p.add_argument("--json", action="store_true",
                   help="summarize as JSON instead of text")
    p.add_argument("--out", default=None,
                   help="export output path (default trace.json)")
    p.set_defaults(func=_cmd_obs)

    p = sub.add_parser(
        "analyze",
        help="static analysis: determinism, cache identity, registry "
             "hygiene (repro.analyze)",
    )
    p.add_argument("paths", nargs="*",
                   help="files/directories to analyze (default: src)")
    p.add_argument("--root", default=".",
                   help="repo root paths are reported relative to "
                        "(default .)")
    p.add_argument("--rules", default=None,
                   help="comma-separated rule codes to run "
                        "(default: every rule)")
    p.add_argument("--baseline", default=None,
                   help="committed baseline JSON of grandfathered "
                        "findings")
    p.add_argument("--write-baseline", action="store_true",
                   help="regenerate --baseline from the current active "
                        "findings and exit")
    p.add_argument("--snapshot", default=None,
                   help="identity snapshot path (default: the packaged "
                        "identity_snapshot.json)")
    p.add_argument("--update-snapshot", action="store_true",
                   help="regenerate the identity snapshot from the "
                        "current tree and exit (after an intentional "
                        "identity change + version bump)")
    p.add_argument("--fail-on", default="error",
                   choices=["error", "warning", "none"],
                   help="severity threshold for a nonzero exit "
                        "(default error)")
    p.add_argument("--json", action="store_true",
                   help="emit the full report as JSON")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalog and exit")
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("figure", help="regenerate a paper table/figure")
    p.add_argument("name", help="e.g. table2, fig06")
    p.add_argument("--json", default=None,
                   help="also save a JSON record to this path")
    p.set_defaults(func=_cmd_figure)

    p = sub.add_parser(
        "bench", help="performance benchmarks -> BENCH_sim.json"
    )
    p.add_argument("--topology", "-t", default="4,8,4,9")
    p.add_argument("--out", default="BENCH_sim.json")
    p.add_argument("--window", type=int, default=300)
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: the host's CPU count)")
    p.add_argument("--points", type=int, default=8)
    p.add_argument("--cache-dir", default=None)
    p.add_argument("--quick", action="store_true")
    p.set_defaults(func=_cmd_bench)

    args = parser.parse_args(argv)
    if args.verbose:
        from repro.obs import enable_verbose

        enable_verbose(args.verbose)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
