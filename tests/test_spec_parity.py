"""LegacyParity: spec-driven runs reproduce the pre-refactor simulator.

The values below were captured on the live-object ``simulate()`` path
*before* the routing logic moved into registered strategy objects and the
spec layer was threaded through the engine.  Every variant must keep
producing bit-identical results for the same seed -- any drift means the
refactor changed RNG draw order or routing behaviour.
"""

import pytest

from repro.routing.pathset import StrategicFiveHopPolicy
from repro.sim import SimParams, simulate
from repro.spec import PatternSpec, PolicySpec, RunSpec, TopologySpec
from repro.topology import Dragonfly
from repro.traffic import Shift
from repro.traffic.mixed import Mixed, TimeMixed

TOPO = Dragonfly(4, 8, 4, 9)
PARAMS = SimParams(window_cycles=60)
LOAD = 0.1
SEED = 3

# variant -> (avg_latency, p99_latency, accepted_rate, avg_hops,
#             vlb_fraction) on shift(2,0)
BASELINE = {
    "min": (47.62528604118993, 79.0, 0.1011574074074074,
            2.7242562929061784, 0.0),
    "vlb": (78.81491562329886, 88.0, 0.10630787037037037,
            5.502449646162221, 1.0),
    "ugal-l": (60.61512791991101, 86.0, 0.10405092592592592,
               4.201890989988876, 0.5344827586206896),
    "ugal-g": (60.798453892876864, 86.0, 0.10480324074074074,
               4.198785201546107, 0.571507454445058),
    "par": (64.03897550111358, 98.0, 0.10393518518518519,
            4.452672605790646, 0.6085746102449888),
}

# T- variants with the strategic 2+3 policy
T_BASELINE = {
    "t-ugal-l": (55.3729216152019, 74.0, 0.09745370370370371,
                 3.763657957244656, 0.565914489311164),
    "t-par": (59.71394230769231, 86.0, 0.0962962962962963,
              4.0811298076923075, 0.65625),
}

# seed-bearing patterns under ugal-l -> (avg_latency, accepted_rate)
PATTERN_BASELINE = {
    "perm:7": (48.97469066366704, 0.10289351851851852),
    "mixed:50,50,5": (50.03579295154185, 0.1050925925925926),
    "tmixed:50,50": (50.05439093484419, 0.1021412037037037),
}


def _metrics(result):
    return (
        result.avg_latency,
        result.p99_latency,
        result.accepted_rate,
        result.avg_hops,
        result.vlb_fraction,
    )


def _spec(pattern="shift:2,0", routing="ugal-l", policy=None):
    return RunSpec(
        topology=TopologySpec.of(TOPO),
        pattern=PatternSpec.parse(pattern),
        load=LOAD,
        routing=routing,
        policy=policy,
        params=PARAMS,
        seed=SEED,
    )


@pytest.mark.parametrize("variant", sorted(BASELINE))
def test_variant_parity(variant):
    spec = _spec(routing=variant)
    assert _metrics(spec.run()) == BASELINE[variant]
    # the live-object path goes through the same strategies
    legacy = simulate(
        TOPO, Shift(TOPO, 2, 0), LOAD, routing=variant, params=PARAMS,
        seed=SEED,
    )
    assert _metrics(legacy) == BASELINE[variant]


@pytest.mark.parametrize("variant", sorted(T_BASELINE))
def test_t_variant_parity(variant):
    spec = _spec(routing=variant, policy=PolicySpec.parse("strategic:2+3"))
    assert _metrics(spec.run()) == T_BASELINE[variant]
    legacy = simulate(
        TOPO, Shift(TOPO, 2, 0), LOAD, routing=variant,
        policy=StrategicFiveHopPolicy("2+3"), params=PARAMS, seed=SEED,
    )
    assert _metrics(legacy) == T_BASELINE[variant]


@pytest.mark.parametrize("pattern_spec", sorted(PATTERN_BASELINE))
def test_seeded_pattern_parity(pattern_spec):
    result = _spec(pattern=pattern_spec).run()
    expected = PATTERN_BASELINE[pattern_spec]
    assert (result.avg_latency, result.accepted_rate) == expected


def test_spec_and_live_mixed_agree():
    """Spec-built Mixed/TimeMixed equal hand-constructed ones."""
    for cls, spec_str in ((Mixed, "mixed:50,50,5"), (TimeMixed, "tmixed:50,50")):
        live = cls(TOPO, 50, 50, seed=5 if cls is Mixed else 0)
        by_spec = _spec(pattern=spec_str).run()
        by_live = simulate(
            TOPO, live, LOAD, routing="ugal-l", params=PARAMS, seed=SEED
        )
        assert _metrics(by_spec) == _metrics(by_live)
