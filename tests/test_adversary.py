"""Tests for the adversarial traffic-pattern discovery subsystem."""

import json

import numpy as np
import pytest

from repro.adversary import (
    SEARCH_REGISTRY,
    AdversaryReport,
    GreedyMatching,
    HillClimb,
    greedy_dest_map,
    run_search,
)
from repro.cli import main
from repro.spec import PatternSpec, SpecError
from repro.topology import Dragonfly, FullMesh
from repro.traffic import DiscoveredPermutation, NO_TRAFFIC
from repro.traffic.adversarial import type_1_set, type_2_set

SMALL = Dragonfly(2, 4, 2, 3)


class TestGreedyDestMap:
    def test_partial_permutation_inter_group_only(self):
        topo = SMALL
        dest = greedy_dest_map(topo, seed=0)
        assert dest.shape == (topo.num_nodes,)
        active = dest[dest != NO_TRAFFIC]
        # injective on active entries: it's a (partial) permutation
        assert len(set(active.tolist())) == len(active)
        for src in range(topo.num_nodes):
            if dest[src] == NO_TRAFFIC:
                continue
            assert dest[src] != src
            g_src = topo.group_of(topo.switch_of_node(src))
            g_dst = topo.group_of(topo.switch_of_node(int(dest[src])))
            assert g_src != g_dst  # only traffic that loads global links

    def test_preserves_within_switch_index(self):
        topo = SMALL
        dest = greedy_dest_map(topo, seed=3)
        for sw in range(topo.num_switches):
            nodes = [topo.node_id(sw, k) for k in range(topo.p)]
            dsts = [int(dest[n]) for n in nodes]
            if dsts[0] == NO_TRAFFIC:
                assert all(d == NO_TRAFFIC for d in dsts)
                continue
            # all nodes of a switch target one switch, same k order
            dsw = {topo.switch_of_node(d) for d in dsts}
            assert len(dsw) == 1
            ks = [d - topo.node_id(topo.switch_of_node(d), 0) for d in dsts]
            assert ks == list(range(topo.p))

    def test_pure_function_of_topo_and_seed(self):
        a = greedy_dest_map(SMALL, seed=7)
        b = greedy_dest_map(Dragonfly(2, 4, 2, 3), seed=7)
        assert np.array_equal(a, b)
        c = greedy_dest_map(SMALL, seed=8)
        assert not np.array_equal(a, c)  # visit order actually matters


class TestSearchRegistry:
    def test_parse_greedy(self):
        kind, args = SEARCH_REGISTRY.parse("greedy")
        assert kind == "greedy" and args == {}
        assert isinstance(SEARCH_REGISTRY.build(kind, args), GreedyMatching)

    def test_parse_hillclimb_batch(self):
        kind, args = SEARCH_REGISTRY.parse("hillclimb:4")
        assert kind == "hillclimb" and args == {"batch": 4}
        strat = SEARCH_REGISTRY.build(kind, args)
        assert isinstance(strat, HillClimb) and strat.batch == 4

    def test_bad_specs_raise(self):
        with pytest.raises(SpecError):
            SEARCH_REGISTRY.parse("greedy:2")
        with pytest.raises(SpecError):
            SEARCH_REGISTRY.parse("hillclimb:banana")
        with pytest.raises(SpecError):
            SEARCH_REGISTRY.parse("simulated-annealing")


class TestRunSearch:
    def test_never_weaker_than_suite(self):
        report = run_search(
            SMALL, strategy="hillclimb:4", budget=6, seed=0,
            num_type1=3, num_type2=2,
        )
        assert report.suite  # suite was scored
        assert report.best_score <= min(
            row["score"] for row in report.suite
        ) + 1e-9
        assert report.gap_vs_suite() >= -1e-9
        # ranked merges suite + winner, ascending score
        assert len(report.ranked) == len(report.suite) + 1
        scores = [row["score"] for row in report.ranked]
        assert scores == sorted(scores)
        assert report.candidates_scored == 6

    def test_deterministic_within_process(self):
        kwargs = dict(
            strategy="hillclimb:3", budget=5, seed=11,
            num_type1=2, num_type2=2,
        )
        a = run_search(SMALL, **kwargs)
        b = run_search(SMALL, **kwargs)
        assert a.to_json() == b.to_json()

    def test_greedy_strategy_runs(self):
        report = run_search(
            SMALL, strategy="greedy", budget=3, seed=0,
            num_type1=2, num_type2=1,
        )
        assert report.strategy == "greedy"
        assert report.candidates_scored == 3

    def test_bad_budget_raises(self):
        with pytest.raises(SpecError):
            run_search(SMALL, budget=0)

    def test_report_roundtrip(self):
        report = run_search(
            SMALL, strategy="greedy", budget=2, seed=0,
            num_type1=2, num_type2=1,
        )
        back = AdversaryReport.from_dict(json.loads(report.to_json()))
        assert back.to_json() == report.to_json()


class TestDiscoveredPattern:
    def test_spec_codec_roundtrip(self):
        topo = SMALL
        dest = greedy_dest_map(topo, seed=0)
        pattern = DiscoveredPermutation(topo, dest)
        spec = PatternSpec.of(pattern)
        assert spec.kind == "discovered"
        rebuilt = PatternSpec.from_dict(spec.to_dict()).build(topo)
        assert np.array_equal(rebuilt.dest_map, pattern.dest_map)
        assert (
            PatternSpec.of(rebuilt).fingerprint() == spec.fingerprint()
        )

    def test_search_winner_feeds_compute_tvlb(self):
        from repro.core import compute_tvlb
        from repro.sim import SimParams

        topo = SMALL
        report = run_search(
            topo, strategy="greedy", budget=2, seed=0,
            num_type1=2, num_type2=1,
        )
        pattern = PatternSpec.make(
            "discovered", dest=report.args["dest"]
        ).build(topo)
        res = compute_tvlb(
            topo,
            num_type1=2,
            num_type2=1,
            verify=False,
            sim_params=SimParams(window_cycles=100),
            extra_adversaries=[pattern],
        )
        assert res.label  # ran end to end with the discovered pattern

    def test_validation(self):
        topo = SMALL
        n = topo.num_nodes
        with pytest.raises(ValueError):
            DiscoveredPermutation(topo, np.zeros(n - 1, dtype=np.int64))
        bad = np.zeros(n, dtype=np.int64)
        bad[0] = n  # out of range
        with pytest.raises(ValueError):
            DiscoveredPermutation(topo, bad)
        dup = np.full(n, NO_TRAFFIC, dtype=np.int64)
        dup[0] = dup[1] = 5  # two senders, one destination
        with pytest.raises(ValueError):
            DiscoveredPermutation(topo, dup)


class TestAdversarySuiteHook:
    def test_dragonfly_matches_direct_sets(self):
        topo = Dragonfly(2, 4, 2, 5)
        t1, t2 = topo.adversary_suite(num_type2=3, seed=4)
        d1 = list(type_1_set(topo))
        d2 = list(type_2_set(topo, count=3, seed=4))
        assert len(t1) == len(d1) and len(t2) == len(d2)
        for a, b in zip(t1 + t2, d1 + d2):
            assert np.array_equal(a.dest_map, b.dest_map)

    def test_full_mesh_native_suite_bit_identical(self):
        topo = FullMesh(6, 2)
        t1, t2 = topo.adversary_suite(num_type2=2, seed=0)
        d1 = list(type_1_set(topo))
        d2 = list(type_2_set(topo, count=2, seed=0))
        assert len(t1) == topo.n - 1
        for a, b in zip(t1 + t2, d1 + d2):
            assert np.array_equal(a.dest_map, b.dest_map)


class TestAdversaryCli:
    def test_end_to_end_full_mesh_with_out(self, tmp_path, capsys):
        out = tmp_path / "adv.json"
        rc = main([
            "adversary", "--topology", "full-mesh:8,2",
            "--strategy", "hillclimb:4", "--budget", "6",
            "--num-type1", "2", "--num-type2", "2",
            "--out", str(out),
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "ranked" in text and "discovered(" in text
        data = json.loads(out.read_text())
        assert data["kind"] == "discovered"

        # the saved report doubles as a pattern spec everywhere
        rc = main([
            "model", "--topology", "full-mesh:8,2",
            "--pattern", f"@{out}", "--policy", "all",
        ])
        assert rc == 0
        assert "throughput" in capsys.readouterr().out

    def test_json_output(self, capsys):
        rc = main([
            "adversary", "--topology", "full-mesh:6,1",
            "--strategy", "greedy", "--budget", "2",
            "--num-type1", "2", "--num-type2", "1", "--json",
        ])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["strategy"] == "greedy"
        assert data["candidates_scored"] == 2

    def test_bad_strategy_exits(self):
        with pytest.raises(SystemExit):
            main([
                "adversary", "--topology", "full-mesh:6,1",
                "--strategy", "annealing", "--budget", "2",
            ])
