"""Determinism of Algorithm 1 and its building blocks under fixed seeds."""

import pytest

from repro.core import compute_tvlb
from repro.routing.serialization import policy_to_dict
from repro.topology import Dragonfly


def cheap_evaluator(topo):
    def evaluate(policy, label):
        pair = (0, topo.a)
        try:
            return -policy.average_hops(topo, *pair)
        except (ValueError, TypeError):
            return -100.0

    return evaluate


class TestDeterminism:
    @pytest.fixture(scope="class")
    def topo(self):
        return Dragonfly(2, 4, 2, 3)

    def test_same_seed_same_tvlb(self, topo):
        ev = cheap_evaluator(topo)
        a = compute_tvlb(topo, evaluator=ev, seed=7)
        b = compute_tvlb(topo, evaluator=ev, seed=7)
        assert a.label == b.label
        assert policy_to_dict(a.policy) == policy_to_dict(b.policy)
        assert [pt.mean_throughput for pt in a.sweep] == [
            pt.mean_throughput for pt in b.sweep
        ]

    def test_sweep_values_stable_across_seeds(self, topo):
        # pattern sets differ by seed, but the full-set plateau value is a
        # topology property and must not move
        ev = cheap_evaluator(topo)
        a = compute_tvlb(topo, evaluator=ev, seed=1)
        b = compute_tvlb(topo, evaluator=ev, seed=2)
        assert a.sweep[-1].label == b.sweep[-1].label == "all VLB"
        assert a.sweep[-1].mean_throughput == pytest.approx(
            b.sweep[-1].mean_throughput, rel=1e-6
        )
