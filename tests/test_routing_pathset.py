"""Tests for path policies (the T-VLB representation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import (
    AllVlbPolicy,
    ExcludingPolicy,
    ExplicitPathSet,
    HopClassPolicy,
    StrategicFiveHopPolicy,
    vlb_hops,
    vlb_path,
)
from repro.routing.vlb import count_vlb_paths, enumerate_vlb_descriptors
from repro.topology import Dragonfly


@pytest.fixture(scope="module")
def topo():
    return Dragonfly(4, 8, 4, 9)


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(42)


class TestAllVlbPolicy:
    def test_contains_everything(self, topo):
        pol = AllVlbPolicy()
        size = sum(1 for _ in pol.iter_descriptors(topo, 0, 17))
        assert size == count_vlb_paths(topo, 0, 17)

    def test_sample_uniform_over_groups(self, topo, rng):
        pol = AllVlbPolicy()
        groups = [
            topo.group_of(pol.sample(topo, 0, 17, rng).mid) for _ in range(700)
        ]
        # neither endpoint group ever used
        assert 0 not in groups and 2 not in groups
        # every other group appears
        assert set(groups) == set(range(topo.g)) - {0, 2}


class TestHopClassPolicy:
    def test_full_class_only(self, topo):
        pol = HopClassPolicy(full_hops=4)
        sizes = {h: 0 for h in range(2, 7)}
        for d in pol.iter_descriptors(topo, 0, 17):
            sizes[vlb_hops(topo, 0, 17, d)] += 1
        assert sizes[5] == sizes[6] == 0
        assert sizes[3] + sizes[4] > 0

    def test_fraction_is_approximately_respected(self, topo):
        pol = HopClassPolicy(full_hops=4, extra_fraction=0.5)
        total5 = 0
        kept5 = 0
        for d in enumerate_vlb_descriptors(topo, 0, 17):
            if vlb_hops(topo, 0, 17, d) == 5:
                total5 += 1
                kept5 += pol.contains(topo, 0, 17, d)
        assert total5 > 0
        assert abs(kept5 / total5 - 0.5) < 0.15

    def test_membership_deterministic(self, topo):
        pol_a = HopClassPolicy(4, 0.3, seed=7)
        pol_b = HopClassPolicy(4, 0.3, seed=7)
        descs = list(enumerate_vlb_descriptors(topo, 0, 17))
        assert [pol_a.contains(topo, 0, 17, d) for d in descs] == [
            pol_b.contains(topo, 0, 17, d) for d in descs
        ]

    def test_different_seeds_differ(self, topo):
        descs = list(enumerate_vlb_descriptors(topo, 0, 17))
        a = [HopClassPolicy(4, 0.3, seed=1).contains(topo, 0, 17, d) for d in descs]
        b = [HopClassPolicy(4, 0.3, seed=2).contains(topo, 0, 17, d) for d in descs]
        assert a != b

    def test_sampled_paths_obey_policy(self, topo, rng):
        pol = HopClassPolicy(full_hops=4, extra_fraction=0.2)
        for _ in range(100):
            d = pol.sample(topo, 0, 17, rng)
            assert pol.contains(topo, 0, 17, d)
            assert vlb_hops(topo, 0, 17, d) <= 5

    def test_describe_matches_table1_language(self):
        assert HopClassPolicy(3).describe() == "3-hop"
        assert HopClassPolicy(4, 0.6).describe() == "60% 5-hop"
        assert HopClassPolicy(6).describe() == "all VLB"

    def test_validation(self):
        with pytest.raises(ValueError):
            HopClassPolicy(1)
        with pytest.raises(ValueError):
            HopClassPolicy(4, 1.5)

    @settings(max_examples=15, deadline=None)
    @given(frac=st.floats(min_value=0.0, max_value=1.0))
    def test_policy_is_monotone_in_fraction(self, topo, frac):
        # a path kept at fraction f stays kept at any f' >= f
        lo = HopClassPolicy(4, frac, seed=3)
        hi = HopClassPolicy(4, min(1.0, frac + 0.25), seed=3)
        for d in list(enumerate_vlb_descriptors(topo, 0, 17))[::31]:
            if lo.contains(topo, 0, 17, d):
                assert hi.contains(topo, 0, 17, d)


class TestStrategicPolicy:
    def test_half_of_five_hop_class(self, topo):
        from repro.routing.vlb import vlb_leg_hops

        pol = StrategicFiveHopPolicy("2+3")
        for d in pol.iter_descriptors(topo, 0, 17):
            a, b = vlb_leg_hops(topo, 0, 17, d)
            assert a + b <= 4 or (a, b) == (2, 3)

    def test_two_orders_partition_five_hop(self, topo):
        p23 = StrategicFiveHopPolicy("2+3")
        p32 = StrategicFiveHopPolicy("3+2")
        n23 = sum(
            1
            for d in p23.iter_descriptors(topo, 0, 17)
            if vlb_hops(topo, 0, 17, d) == 5
        )
        n32 = sum(
            1
            for d in p32.iter_descriptors(topo, 0, 17)
            if vlb_hops(topo, 0, 17, d) == 5
        )
        total5 = sum(
            1
            for d in enumerate_vlb_descriptors(topo, 0, 17)
            if vlb_hops(topo, 0, 17, d) == 5
        )
        assert n23 + n32 == total5

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            StrategicFiveHopPolicy("4+1")


class TestExcludingPolicy:
    def test_excluded_descriptor_removed(self, topo):
        base = AllVlbPolicy()
        d0 = next(enumerate_vlb_descriptors(topo, 0, 17))
        pol = ExcludingPolicy(
            base, excluded_descriptors=frozenset({(0, 17, d0)})
        )
        assert not pol.contains(topo, 0, 17, d0)
        # only that pair is affected
        assert pol.contains(topo, 1, 17, d0)

    def test_excluded_channel_removes_paths_through_it(self, topo):
        base = AllVlbPolicy()
        d0 = next(enumerate_vlb_descriptors(topo, 0, 17))
        path = vlb_path(topo, 0, 17, d0)
        ch = next(path.channels())
        pol = ExcludingPolicy(base, excluded_channels=frozenset({ch}))
        assert not pol.contains(topo, 0, 17, d0)
        # every surviving path avoids the channel
        for d in list(pol.iter_descriptors(topo, 0, 17))[::41]:
            assert ch not in list(vlb_path(topo, 0, 17, d).channels())


class TestExplicitPathSet:
    def test_from_policy_roundtrip(self, topo, rng):
        pol = HopClassPolicy(4)
        explicit = ExplicitPathSet.from_policy(topo, pol, pairs=[(0, 17)])
        a = list(pol.iter_descriptors(topo, 0, 17))
        b = list(explicit.iter_descriptors(topo, 0, 17))
        assert a == b
        d = explicit.sample(topo, 0, 17, rng)
        assert d in a

    def test_sample_empty_pair_returns_none(self, topo, rng):
        explicit = ExplicitPathSet(paths={})
        assert explicit.sample(topo, 0, 17, rng) is None


class TestAverageHops:
    def test_restricting_classes_reduces_average(self, topo):
        all_avg = AllVlbPolicy().average_hops(topo, 0, 17)
        short_avg = HopClassPolicy(4).average_hops(topo, 0, 17)
        assert short_avg < all_avg

    def test_average_raises_on_empty(self, topo):
        empty = ExplicitPathSet(paths={})
        with pytest.raises(ValueError):
            empty.average_hops(topo, 0, 17)
