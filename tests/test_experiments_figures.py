"""Fast unit tests of the figure machinery on a tiny topology.

The registered figures use the paper's (large) topologies; here the
internal helpers run on dfly(2,4,2,3)/dfly(2,4,2,9) with tiny windows so
the harness logic itself is covered by the unit suite.
"""

import pytest

from repro.experiments.figures import _curve_figure, _sensitivity_figure
from repro.sim import SimParams
from repro.topology import Dragonfly
from repro.traffic import Shift


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_WINDOW", "80")
    monkeypatch.setenv("REPRO_SEEDS", "1")


class TestCurveFigure:
    def test_dense_topology_runs_base_and_t(self):
        topo = Dragonfly(2, 4, 2, 3)
        result = _curve_figure(
            "figX",
            "test",
            topo,
            lambda t, seed: Shift(t, 1, 0),
            loads=(0.05, 0.2),
            schemes=["ugal-l"],
            params=SimParams(window_cycles=80),
        )
        assert set(result.data["curves"]) == {"UGAL-L", "T-UGAL-L"}
        assert set(result.data["saturation"]) == {"UGAL-L", "T-UGAL-L"}
        assert "latency" in result.text

    def test_sparse_topology_skips_t_variant(self):
        # one link per group pair: T-UGAL == UGAL, no T- curve
        topo = Dragonfly(2, 4, 2, 9)
        result = _curve_figure(
            "figX",
            "test",
            topo,
            lambda t, seed: Shift(t, 1, 0),
            loads=(0.05,),
            schemes=["ugal-l"],
            params=SimParams(window_cycles=80),
        )
        assert set(result.data["curves"]) == {"UGAL-L"}


class TestSensitivityFigure:
    def test_settings_expand_labels(self):
        topo = Dragonfly(2, 4, 2, 3)
        result = _sensitivity_figure(
            "figY",
            "test",
            topo,
            lambda t, seed: Shift(t, 1, 0),
            loads=(0.05,),
            scheme="ugal-l",
            settings=[
                ("a", SimParams(window_cycles=80)),
                ("b", SimParams(window_cycles=80, buffer_size=8)),
            ],
        )
        labels = set(result.data["saturation"])
        assert labels == {
            "UGAL-L(a)", "T-UGAL-L(a)", "UGAL-L(b)", "T-UGAL-L(b)"
        }
