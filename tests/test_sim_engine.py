"""End-to-end simulator tests: simulate(), sweeps, and trend checks."""

import pytest

from repro.routing.pathset import StrategicFiveHopPolicy
from repro.sim import SimParams, latency_vs_load, saturation_throughput, simulate
from repro.topology import Dragonfly
from repro.traffic import Shift, UniformRandom


@pytest.fixture(scope="module")
def topo():
    return Dragonfly(2, 4, 2, 9)


@pytest.fixture(scope="module")
def fast_params():
    return SimParams(window_cycles=250)


class TestSimulateBasics:
    def test_accepted_matches_offered_below_saturation(self, topo, fast_params):
        r = simulate(
            topo, UniformRandom(topo), 0.2, routing="ugal-l",
            params=fast_params, seed=2,
        )
        assert not r.saturated
        assert r.accepted_rate == pytest.approx(0.2, rel=0.15)
        assert r.avg_latency < 100

    def test_seed_reproducibility(self, topo, fast_params):
        a = simulate(topo, UniformRandom(topo), 0.1, params=fast_params, seed=5)
        b = simulate(topo, UniformRandom(topo), 0.1, params=fast_params, seed=5)
        assert a.avg_latency == b.avg_latency
        assert a.packets_measured == b.packets_measured

    def test_different_seeds_differ(self, topo, fast_params):
        a = simulate(topo, UniformRandom(topo), 0.1, params=fast_params, seed=5)
        b = simulate(topo, UniformRandom(topo), 0.1, params=fast_params, seed=6)
        assert a.avg_latency != b.avg_latency

    def test_zero_load_no_packets(self, topo, fast_params):
        r = simulate(topo, UniformRandom(topo), 0.0, params=fast_params)
        assert r.packets_measured == 0
        assert r.saturated  # no data counts as saturated

    def test_load_validation(self, topo, fast_params):
        with pytest.raises(ValueError):
            simulate(topo, UniformRandom(topo), 1.5, params=fast_params)

    def test_latency_grows_with_load(self, topo, fast_params):
        pattern = Shift(topo, 2, 0)
        low = simulate(topo, pattern, 0.05, params=fast_params, seed=1)
        high = simulate(topo, pattern, 0.35, params=fast_params, seed=1)
        assert high.avg_latency > low.avg_latency

    def test_min_saturates_on_adversarial(self, topo, fast_params):
        # one link per group pair: MIN throughput caps around p*r <= 1/ (a*p/m)
        r = simulate(
            topo, Shift(topo, 2, 0), 0.4, routing="min",
            params=fast_params, seed=1,
        )
        assert r.accepted_rate < 0.25

    def test_ugal_beats_min_on_adversarial(self, topo, fast_params):
        pattern = Shift(topo, 2, 0)
        r_min = simulate(
            topo, pattern, 0.3, routing="min", params=fast_params, seed=1
        )
        r_ugal = simulate(
            topo, pattern, 0.3, routing="ugal-l", params=fast_params, seed=1
        )
        assert r_ugal.accepted_rate > r_min.accepted_rate

    def test_ugal_prefers_min_on_uniform(self, topo, fast_params):
        r = simulate(
            topo, UniformRandom(topo), 0.3, routing="ugal-l",
            params=fast_params, seed=1,
        )
        assert r.vlb_fraction < 0.3

    def test_ugal_uses_vlb_on_adversarial(self, topo, fast_params):
        r = simulate(
            topo, Shift(topo, 2, 0), 0.3, routing="ugal-l",
            params=fast_params, seed=1,
        )
        assert r.vlb_fraction > 0.4


class TestTUgalTrend:
    """The paper's headline: T-UGAL cuts latency via shorter VLB paths."""

    def test_t_ugal_shorter_paths_lower_latency(self):
        topo = Dragonfly(4, 8, 4, 9)
        params = SimParams(window_cycles=300)
        pattern = Shift(topo, 2, 0)
        pol = StrategicFiveHopPolicy("2+3")
        base = simulate(
            topo, pattern, 0.15, routing="ugal-l", params=params, seed=3
        )
        tugal = simulate(
            topo, pattern, 0.15, routing="t-ugal-l", policy=pol,
            params=params, seed=3,
        )
        assert tugal.avg_hops < base.avg_hops
        assert tugal.avg_latency < base.avg_latency

    def test_t_par_improves_over_par(self):
        topo = Dragonfly(4, 8, 4, 9)
        params = SimParams(window_cycles=300)
        pattern = Shift(topo, 2, 0)
        pol = StrategicFiveHopPolicy("2+3")
        base = simulate(
            topo, pattern, 0.15, routing="par", params=params, seed=3
        )
        tpar = simulate(
            topo, pattern, 0.15, routing="t-par", policy=pol,
            params=params, seed=3,
        )
        assert tpar.avg_latency < base.avg_latency
        assert tpar.par_revised > 0


class TestSweeps:
    def test_latency_vs_load_stops_at_saturation(self, topo, fast_params):
        sweep = latency_vs_load(
            topo,
            Shift(topo, 2, 0),
            [0.05, 0.2, 0.5, 0.9],
            routing="min",
            params=fast_params,
            seed=1,
        )
        assert sweep.results[-1].saturated
        assert len(sweep.results) < 4  # stopped early

    def test_sweep_throughput_monotone_data(self, topo, fast_params):
        sweep = latency_vs_load(
            topo,
            UniformRandom(topo),
            [0.05, 0.15],
            routing="ugal-l",
            params=fast_params,
            seed=1,
            stop_after_saturation=False,
        )
        assert sweep.saturation_throughput() >= 0.13
        assert len(sweep.rows()) == 2

    def test_saturation_search_brackets(self, topo):
        params = SimParams(window_cycles=200)
        thr = saturation_throughput(
            topo,
            Shift(topo, 2, 0),
            routing="min",
            params=params,
            seed=1,
            max_iters=4,
        )
        # MIN on adversarial shift: direct link capacity 1 flit/cycle shared
        # by a*p = 8 nodes -> ~0.125; allow generous slack for small windows
        assert 0.05 < thr < 0.3
