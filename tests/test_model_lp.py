"""Tests for the LP throughput model."""

import numpy as np
import pytest

from repro.model import PathStatsCache, model_throughput
from repro.model.lp_model import weights_for_policy
from repro.routing.pathset import (
    AllVlbPolicy,
    HopClassPolicy,
    StrategicFiveHopPolicy,
)
from repro.topology import Dragonfly
from repro.traffic import Shift, UniformRandom


@pytest.fixture(scope="module")
def topo():
    return Dragonfly(4, 8, 4, 9)


@pytest.fixture(scope="module")
def cache(topo):
    return PathStatsCache(topo)


@pytest.fixture(scope="module")
def adv_demand(topo):
    return Shift(topo, 2, 0).demand_matrix()


class TestModelBasics:
    def test_all_vlb_matches_analytic_bound(self, topo, cache, adv_demand):
        # For shift traffic on dfly(4,8,4,9) flow conservation gives
        # r <= 9/16: direct channels carry only MIN (r*f <= 1/8) and global
        # channel budget gives r*(2-f) <= 1; the optimum is r = 0.5625.
        res = model_throughput(
            topo, adv_demand, policy=AllVlbPolicy(), cache=cache
        )
        assert res.throughput == pytest.approx(9 / 16, rel=1e-3)
        assert res.min_fraction == pytest.approx(2 / 9, rel=1e-2)

    def test_min_only_bound(self, topo, cache, adv_demand):
        # weight_fn 0 everywhere: no VLB allowed -> direct links only.
        res = model_throughput(
            topo, adv_demand, weight_fn=lambda l1, l2: 0.0, cache=cache
        )
        # 32 packets/cycle demand per group pair over 4 direct links
        assert res.throughput == pytest.approx(4 / 32, rel=1e-3)
        assert res.min_fraction == pytest.approx(1.0)

    def test_restricting_classes_reduces_capacity(self, topo, cache, adv_demand):
        thr = [
            model_throughput(
                topo, adv_demand, policy=HopClassPolicy(h), cache=cache,
                mode="free",
            ).throughput
            for h in (3, 4, 5, 6)
        ]
        assert thr == sorted(thr)
        assert thr[-1] == pytest.approx(9 / 16, rel=1e-3)

    def test_uniform_mode_never_beats_free(self, topo, cache, adv_demand):
        for pol in (HopClassPolicy(4), HopClassPolicy(5), AllVlbPolicy()):
            uni = model_throughput(
                topo, adv_demand, policy=pol, cache=cache, mode="uniform"
            ).throughput
            free = model_throughput(
                topo, adv_demand, policy=pol, cache=cache, mode="free"
            ).throughput
            assert uni <= free + 1e-9

    def test_monotonic_constraint_reduces_partial_class_estimate(
        self, topo, cache, adv_demand
    ):
        # The paper's motivation for the fix: with a small share of 5-hop
        # paths the unconstrained model overestimates.
        pol = HopClassPolicy(4, 0.3)
        with_fix = model_throughput(
            topo, adv_demand, policy=pol, cache=cache, mode="free"
        ).throughput
        without = model_throughput(
            topo,
            adv_demand,
            policy=pol,
            cache=cache,
            mode="free",
            monotonic=False,
        ).throughput
        assert with_fix < without

    def test_uniform_traffic_high_throughput(self, topo, cache):
        demand = UniformRandom(topo).demand_matrix()
        res = model_throughput(
            topo, demand, policy=AllVlbPolicy(), cache=cache
        )
        # UR is MIN-friendly: saturation near 1 packet/cycle/node
        assert res.throughput > 0.8
        assert res.min_fraction > 0.8

    def test_empty_demand_trivial(self, topo, cache):
        res = model_throughput(
            topo, np.zeros((topo.num_switches,) * 2), cache=cache
        )
        assert res.status == "trivial"
        assert res.throughput == 1.0

    def test_mode_validation(self, topo, cache, adv_demand):
        with pytest.raises(ValueError, match="unknown mode"):
            model_throughput(topo, adv_demand, cache=cache, mode="magic")


class TestWeightTranslation:
    def test_all_vlb(self):
        w = weights_for_policy(AllVlbPolicy())
        assert w(1, 1) == w(3, 3) == 1.0

    def test_hop_class(self):
        w = weights_for_policy(HopClassPolicy(4, 0.6))
        assert w(1, 3) == 1.0  # 4 hops
        assert w(2, 3) == 0.6  # 5 hops
        assert w(3, 3) == 0.0  # 6 hops

    def test_strategic(self):
        w = weights_for_policy(StrategicFiveHopPolicy("2+3"))
        assert w(2, 2) == 1.0
        assert w(2, 3) == 1.0
        assert w(3, 2) == 0.0
        assert w(3, 3) == 0.0

    def test_unsupported_policy_raises(self):
        class Weird:
            pass

        with pytest.raises(TypeError):
            weights_for_policy(Weird())


class TestPathStats:
    def test_class_sizes_match_enumeration(self, topo, cache):
        from repro.routing import vlb_class_counts

        stats = cache.get(0, 17)
        by_hops = {}
        for (l1, l2), cs in stats.classes.items():
            by_hops[l1 + l2] = by_hops.get(l1 + l2, 0) + cs.count
        assert by_hops == vlb_class_counts(topo, 0, 17)

    def test_min_usage_normalized(self, topo, cache):
        stats = cache.get(0, 17)
        # each MIN path has 3 hops here, usage sums to 3 per packet
        assert sum(stats.min_usage.values()) == pytest.approx(3.0)

    def test_subsampling_scales_counts(self, topo):
        full = PathStatsCache(topo).get(0, 17)
        sub = PathStatsCache(topo, max_descriptors=100).get(0, 17)
        n_full = sum(cs.count for cs in full.classes.values())
        n_sub = sum(cs.count for cs in sub.classes.values())
        assert n_sub == pytest.approx(n_full, rel=0.2)

    def test_weighted_usage_normalization(self, topo, cache):
        stats = cache.get(0, 17)
        total, usage = stats.weighted_vlb_usage(lambda l1, l2: 1.0)
        # per VLB packet: average hops = sum of per-channel usage
        from repro.routing.pathset import AllVlbPolicy

        avg = AllVlbPolicy().average_hops(topo, 0, 17)
        assert sum(usage.values()) == pytest.approx(avg)

    def test_empty_weighting(self, topo, cache):
        stats = cache.get(0, 17)
        total, usage = stats.weighted_vlb_usage(lambda l1, l2: 0.0)
        assert total == 0.0 and usage == {}
