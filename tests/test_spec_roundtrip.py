"""Spec layer: round trips, fingerprints, registries, shared errors."""

import json
import os
import subprocess
import sys

import pytest

import repro
from repro.sim import SimParams
from repro.sim.routing import ROUTING_VARIANTS, make_routing
from repro.spec import (
    PatternSpec,
    PolicySpec,
    ROUTING_REGISTRY,
    RunSpec,
    SpecError,
    SuiteSpec,
    SweepSpec,
    TopologySpec,
    resolve_routing,
)
from repro.topology import Dragonfly
from repro.topology.cascade import CascadeDragonfly
from repro.verify import check_registries

TOPO = Dragonfly(2, 4, 2, 5)


def _run_spec(**overrides):
    base = dict(
        topology=TopologySpec(2, 4, 2, 5),
        pattern=PatternSpec.parse("shift:2,0"),
        load=0.2,
        routing="ugal-l",
        policy=None,
        params=SimParams(window_cycles=60),
        seed=3,
    )
    base.update(overrides)
    return RunSpec(**base)


# ---------------------------------------------------------------------------
# Round trips
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "spec_str",
    ["ur", "shift:2,0", "shift:3", "perm:7", "type2:3", "mixed:75,25",
     "tmixed:50,50,5"],
)
def test_pattern_round_trip(spec_str):
    spec = PatternSpec.parse(spec_str)
    again = PatternSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert again == spec
    assert again.fingerprint() == spec.fingerprint()
    # live object -> spec recovers the same identity
    assert PatternSpec.of(spec.build(TOPO)) == spec


@pytest.mark.parametrize(
    "spec_str", ["all", "hopclass:4,0.6", "strategic:2+3", "strategic:3+2"]
)
def test_policy_round_trip(spec_str):
    spec = PolicySpec.parse(spec_str)
    again = PolicySpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert again == spec
    assert again.fingerprint() == spec.fingerprint()
    assert PolicySpec.of(spec.build()) == spec


@pytest.mark.parametrize(
    "topo",
    [Dragonfly(4, 8, 4, 9), Dragonfly(2, 4, 2, 5, arrangement="circulant"),
     CascadeDragonfly(2, 4, 2, 5, rows=2, cols=2)],
)
def test_topology_round_trip(topo):
    spec = TopologySpec.of(topo)
    again = TopologySpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert again == spec
    built = spec.build()
    assert type(built) is type(topo)
    assert TopologySpec.of(built) == spec


def test_run_spec_round_trip():
    spec = _run_spec(
        routing="t-ugal-l", policy=PolicySpec.parse("strategic:2+3")
    )
    again = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert again == spec
    assert again.fingerprint() == spec.fingerprint()


def test_sweep_and_suite_round_trip():
    sweep = SweepSpec(
        topology=TopologySpec(2, 4, 2, 5),
        pattern=PatternSpec.parse("perm:7"),
        loads=(0.1, 0.2),
        label="UGAL-L",
    )
    suite = SuiteSpec("fig", (sweep,))
    again = SuiteSpec.from_dict(json.loads(json.dumps(suite.to_dict())))
    assert again == suite
    assert again.fingerprint() == suite.fingerprint()
    assert [r.load for r in sweep.run_specs()] == [0.1, 0.2]


def test_with_seed():
    assert PatternSpec.parse("perm:7").with_seed(9) == PatternSpec.parse(
        "perm:9"
    )
    # seedless kinds are unchanged
    spec = PatternSpec.parse("shift:2,0")
    assert spec.with_seed(9) is spec


def test_policy_file_is_embedded(tmp_path):
    path = tmp_path / "policy.json"
    path.write_text(json.dumps({"kind": "strategic", "order": "3+2"}))
    spec = PolicySpec.parse(f"@{path}")
    assert spec == PolicySpec.parse("strategic:3+2")
    # content is embedded: later file changes don't affect the spec
    path.write_text(json.dumps({"kind": "strategic", "order": "2+3"}))
    assert spec.args == {"order": "3+2"}


# ---------------------------------------------------------------------------
# Fingerprint stability across processes
# ---------------------------------------------------------------------------
def test_fingerprint_stable_across_processes():
    """Hash-seed randomization must not leak into fingerprints."""
    spec = _run_spec(
        routing="t-ugal-l", policy=PolicySpec.parse("strategic:2+3")
    )
    script = (
        "from repro.spec import RunSpec\n"
        f"spec = RunSpec.from_dict({spec.to_dict()!r})\n"
        "print(spec.fingerprint())\n"
    )
    src_dir = os.path.dirname(os.path.dirname(repro.__file__))
    prints = [
        subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": src_dir, "PYTHONHASHSEED": hash_seed},
        ).stdout.strip()
        for hash_seed in ("0", "4242")
    ]
    assert prints[0] == prints[1] == spec.fingerprint()


# ---------------------------------------------------------------------------
# Registry consistency + the shared routing-variant gate
# ---------------------------------------------------------------------------
def test_registries_are_consistent():
    assert check_registries() == []


def test_routing_registry_matches_simulator():
    assert ROUTING_REGISTRY.kinds() == ROUTING_VARIANTS


@pytest.mark.parametrize("variant", ["t-min", "t-vlb"])
def test_t_min_t_vlb_rejected_everywhere(variant):
    """make_routing and the spec layer reject T- forms with one message."""
    expected = (
        f"unknown routing variant {variant!r}: only variants with "
        "custom-policy support have a T- form (t-ugal-l, t-ugal-g, t-par)"
    )
    with pytest.raises(ValueError, match="T- form"):
        resolve_routing(variant)
    try:
        resolve_routing(variant)
    except SpecError as exc:
        assert str(exc) == expected
    try:
        make_routing(TOPO, variant)
    except ValueError as exc:
        assert str(exc) == expected
    else:  # pragma: no cover - the raise is the test
        pytest.fail("make_routing accepted " + variant)
    with pytest.raises(ValueError, match="T- form"):
        _run_spec(routing=variant, policy=PolicySpec.parse("all"))


def test_unknown_variant_message_lists_t_forms():
    with pytest.raises(SpecError, match="t-ugal-l, t-ugal-g, t-par"):
        resolve_routing("warp")


def test_t_variant_requires_policy():
    with pytest.raises(SpecError, match="needs a custom policy"):
        _run_spec(routing="t-ugal-l", policy=None)


def test_ad_hoc_subclass_has_no_spec():
    class Weird(Dragonfly):
        pass

    with pytest.raises(SpecError, match="no registered spec"):
        TopologySpec.of(Weird(2, 4, 2, 5))
