"""Property-based tests for the Cascade-style dragonfly."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import min_paths
from repro.topology import CascadeDragonfly, validate_topology


@st.composite
def cascade_params(draw):
    rows = draw(st.integers(min_value=1, max_value=3))
    cols = draw(st.integers(min_value=1, max_value=3))
    a = rows * cols
    h = draw(st.integers(min_value=1, max_value=3))
    ports = a * h
    divisors = [d for d in range(1, ports + 1) if ports % d == 0]
    g = draw(st.sampled_from(divisors)) + 1
    p = draw(st.integers(min_value=1, max_value=2))
    return dict(p=p, a=a, h=h, g=g, rows=rows, cols=cols)


class TestCascadeProperties:
    @settings(max_examples=25, deadline=None)
    @given(params=cascade_params())
    def test_structurally_valid(self, params):
        validate_topology(CascadeDragonfly(**params))

    @settings(max_examples=20, deadline=None)
    @given(params=cascade_params())
    def test_local_routes_stay_in_group_and_adjacent(self, params):
        topo = CascadeDragonfly(**params)
        group0 = list(topo.switches_in_group(0))
        for u in group0:
            for v in group0:
                if u == v:
                    continue
                route = topo.local_route(u, v)
                walk = [u] + route + [v]
                for a_sw, b_sw in zip(walk, walk[1:]):
                    assert topo.local_adjacent(a_sw, b_sw)
                assert len(route) + 1 <= topo.max_local_hops

    @settings(max_examples=15, deadline=None)
    @given(params=cascade_params(), seed=st.integers(0, 99))
    def test_min_paths_valid_everywhere(self, params, seed):
        import numpy as np

        topo = CascadeDragonfly(**params)
        rng = np.random.default_rng(seed)
        for _ in range(5):
            src = int(rng.integers(topo.num_switches))
            dst = int(rng.integers(topo.num_switches))
            for path in min_paths(topo, src, dst):
                path.validate(topo)
                assert path.src == src and path.dst == dst
                assert path.num_global_hops <= 1
                assert path.num_hops <= 2 * topo.max_local_hops + 1
