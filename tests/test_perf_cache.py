"""On-disk result cache: hits skip simulation, keys track every input."""

import json
import os

import numpy as np
import pytest

import repro.perf.executor as executor_module
from repro.perf.cache import (
    CACHE_VERSION,
    SimCache,
    default_cache_dir,
    fingerprint,
    pattern_fingerprint,
)
from repro.perf.executor import SimTask, SweepExecutor, run_task
from repro.sim import SimParams
from repro.topology import Dragonfly
from repro.traffic.patterns import Shift, TrafficPattern, UniformRandom

TOPO = Dragonfly(2, 4, 2, 5)
PARAMS = SimParams(window_cycles=60)


def _task(**overrides):
    base = dict(
        topo=TOPO,
        pattern=UniformRandom(TOPO),
        load=0.2,
        routing="min",
        policy=None,
        params=PARAMS,
        seed=1,
    )
    base.update(overrides)
    return SimTask(**base)


def test_roundtrip(tmp_path):
    cache = SimCache(str(tmp_path))
    task = _task()
    result = run_task(task)
    key = task.key()
    assert key is not None
    assert cache.get(key) is None  # cold
    cache.put(key, result)
    assert cache.get(key) == result
    assert len(cache) == 1


def test_cache_hit_skips_simulation(tmp_path, monkeypatch):
    cache = SimCache(str(tmp_path))
    tasks = [_task(load=load) for load in (0.1, 0.2)]
    with SweepExecutor(jobs=1, cache=cache) as executor:
        first = executor.run(tasks)
        assert executor.cache_hits == 0
        assert executor.computed_serial == 2

    # any attempt to simulate again is a test failure
    def bomb(task):
        raise AssertionError("cache miss: simulate() was invoked")

    monkeypatch.setattr(executor_module, "run_task", bomb)
    with SweepExecutor(jobs=1, cache=SimCache(str(tmp_path))) as executor:
        second = executor.run([_task(load=load) for load in (0.1, 0.2)])
        assert executor.cache_hits == 2
    assert second == first


@pytest.mark.parametrize(
    "change",
    [
        {"load": 0.25},
        {"routing": "vlb"},
        {"seed": 2},
        {"params": SimParams(window_cycles=90)},
        {"pattern": Shift(TOPO, dg=1)},
        {"topo": Dragonfly(2, 4, 2, 3)},
    ],
)
def test_any_input_change_changes_key(change):
    base = _task().key()
    changed = _task(**change).key()
    assert base is not None and changed is not None
    assert changed != base


class _Opaque(TrafficPattern):
    """Ad-hoc pattern the cache cannot fingerprint."""

    def sample_destinations(self, srcs, rng):
        return (np.asarray(srcs) + 1) % self.topo.num_nodes

    def describe(self):
        return "opaque"


def test_unfingerprintable_pattern_is_uncacheable():
    assert pattern_fingerprint(_Opaque(TOPO)) is None
    assert _task(pattern=_Opaque(TOPO)).key() is None


def test_uncacheable_task_still_runs(tmp_path):
    cache = SimCache(str(tmp_path))
    task = _task(pattern=_Opaque(TOPO))
    with SweepExecutor(jobs=1, cache=cache) as executor:
        result = executor.run_one(task)
    assert result.packets_measured >= 0
    assert len(cache) == 0  # nothing stored for an unkeyable task


def test_version_mismatch_invalidates(tmp_path):
    cache = SimCache(str(tmp_path))
    task = _task()
    key = task.key()
    cache.put(key, run_task(task))
    path = cache.path_for(key)
    with open(path) as fh:
        payload = json.load(fh)
    payload["version"] = CACHE_VERSION + 1
    with open(path, "w") as fh:
        json.dump(payload, fh)
    assert cache.get(key) is None


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = SimCache(str(tmp_path))
    task = _task()
    key = task.key()
    cache.put(key, run_task(task))
    with open(cache.path_for(key), "w") as fh:
        fh.write("{not json")
    assert cache.get(key) is None
    assert cache.misses == 1


def test_clear(tmp_path):
    cache = SimCache(str(tmp_path))
    task = _task()
    cache.put(task.key(), run_task(task))
    assert len(cache) == 1
    cache.clear()
    assert len(cache) == 0


def test_default_cache_dir_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "explicit"))
    assert default_cache_dir() == str(tmp_path / "explicit")
    monkeypatch.delenv("REPRO_CACHE_DIR")
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert default_cache_dir() == os.path.join(
        str(tmp_path / "xdg"), "repro-sim"
    )


def test_fingerprint_stable_across_instances():
    """Two equal-spec tasks share a key (the cache's whole premise)."""
    assert _task().key() == _task().key()
    assert fingerprint(
        TOPO,
        UniformRandom(TOPO),
        0.2,
        routing="min",
        policy=None,
        params=PARAMS,
        seed=1,
    ) == _task().key()
