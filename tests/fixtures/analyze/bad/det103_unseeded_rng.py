"""RNGs drawing entropy from the OS instead of the seed plumbing."""

import random

import numpy as np


def pick_intermediate(groups):
    rng = np.random.default_rng()  # DET103: OS entropy
    return groups[rng.integers(len(groups))]


def shuffle_nodes(nodes):
    r = random.Random()  # DET103: OS entropy
    r.shuffle(nodes)
    return nodes
