"""Wallclock reads outside the observability layer."""

import time


def run_window(network, cycles: int) -> float:
    start = time.perf_counter()  # DET104: not in repro.obs
    for _ in range(cycles):
        network.step()
    return time.perf_counter() - start


def stamp_result(result) -> None:
    result.created_at = time.time()  # DET104
