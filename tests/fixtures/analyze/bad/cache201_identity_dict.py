"""identity_dict() classes with unclassified fields."""

from dataclasses import asdict, dataclass
from typing import Optional


@dataclass(frozen=True)
class Params:
    load: float = 0.5
    seed: int = 0
    # popped below but not marked '# repro: identity-neutral'
    obs: Optional[object] = None
    # marked neutral but never popped: leaks into cache keys
    trace_dir: Optional[str] = None  # repro: identity-neutral
    # batch-scheduling knob leaking the same way: two runs of one spec
    # executed at different batch sizes would stop sharing a cache entry
    batch: int = 0  # repro: identity-neutral

    def identity_dict(self) -> dict:
        data = asdict(self)
        data.pop("obs")
        return data
