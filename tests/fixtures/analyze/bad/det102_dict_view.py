"""Dict-view order flowing into accumulated floats and arrays."""

import numpy as np


def mean_latency(per_class: dict) -> float:
    total = 0.0
    for stats in per_class.values():  # DET102: float accumulation
        total += stats.latency / stats.count
    return total / len(per_class)


def usage_vector(usage: dict) -> np.ndarray:
    # DET102: materializes view order into an array
    return np.fromiter(usage.values(), dtype=np.float64, count=len(usage))
