"""Suppression misuse: unused allows and missing justifications."""

# repro: allow[DET103]: stale allow -- imports never construct an RNG
import time


def timestamp() -> float:
    return time.time()  # repro: allow[DET104]


def nothing_wrong_here() -> int:
    # repro: allow[DET101]: this loop iterates a list, not a set
    return sum(x for x in [1, 2, 3])
