"""A Dragonfly subclass never registered: unspecc'able topology."""


class RegistryEntry:
    def __init__(self, kind, cls, to_dict=None):
        self.kind = kind
        self.cls = cls
        self.to_dict = to_dict


class Dragonfly:
    def __init__(self, p: int, a: int, h: int, g: int) -> None:
        self.p, self.a, self.h, self.g = p, a, h, g


class TorusDragonfly(Dragonfly):  # REG303: not in the TOPOLOGY registry
    def __init__(self, p: int, k: int) -> None:
        super().__init__(p, k, 1, k)
