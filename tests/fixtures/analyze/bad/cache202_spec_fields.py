"""A fingerprint-bearing spec whose field never reaches to_dict()."""

import hashlib
import json
from dataclasses import dataclass


@dataclass(frozen=True)
class RunSpec:
    topology: str = "4,8,4,9"
    pattern: str = "ur"
    # never serialized: invisible to fingerprint() and cache keys
    load: float = 0.5
    # the inverse leak: a batch-scheduling field declared neutral but
    # serialized anyway, splitting one run's cache entry per batch size
    batch: int = 0  # repro: identity-neutral

    def to_dict(self) -> dict:
        return {
            "topology": self.topology,
            "pattern": self.pattern,
            "batch": self.batch,
        }

    def fingerprint(self) -> str:
        blob = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()
