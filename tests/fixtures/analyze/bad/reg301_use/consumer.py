"""Ad-hoc construction outside the home package: seed bypasses specs."""

from ..reg301_pkg.defs import RandomPerm


def make_pattern(num_nodes: int):
    return RandomPerm(num_nodes, seed=42)  # REG301: bypasses the spec
