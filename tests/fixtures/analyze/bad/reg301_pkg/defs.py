"""A seed-bearing registered pattern class (home package)."""


class RegistryEntry:
    def __init__(self, kind, cls, to_dict=None):
        self.kind = kind
        self.cls = cls
        self.to_dict = to_dict


class RandomPerm:
    def __init__(self, num_nodes: int, seed: int = 0) -> None:
        self.num_nodes = num_nodes
        self.seed = seed


ENTRY = RegistryEntry(
    kind="perm", cls=RandomPerm, to_dict=lambda p: {"seed": p.seed}
)
