"""``hash()`` of a str is salted by PYTHONHASHSEED: unstable across runs."""


def shard_for(key, num_shards: int) -> int:
    return hash(key) % num_shards  # DET105: run-dependent for strings
