"""The exact historical ``_busy_channels`` bug shape.

The fast engine once kept its per-cycle work list as a ``set`` and
iterated it in ``_transmit``; channel objects hash by ``id()``, so the
scan order -- and with it credit allocation under contention -- changed
from run to run.  The fix is the insertion-ordered dict-as-set
(``Dict[SimChannel, None]``) in ``repro.perf.bench``.
"""

from typing import List, Set


class LegacyNetwork:
    def __init__(self) -> None:
        # DET101: a set of id()-hashed objects used as a work list
        self._busy_channels: Set[object] = set()
        self.inject_channels: List[object] = []

    def inject(self, packet, channel) -> None:
        self._busy_channels.add(channel)

    def _transmit(self) -> None:
        done = []
        for channel in self._busy_channels:  # scan order = memory order
            if not channel.out_queue:
                done.append(channel)
        for channel in done:
            self._busy_channels.discard(channel)
