"""A registered class without a to_dict codec: uncacheable kind."""


class RegistryEntry:
    def __init__(self, kind, cls, to_dict=None):
        self.kind = kind
        self.cls = cls
        self.to_dict = to_dict


class ShiftPattern:
    def __init__(self, delta_group: int) -> None:
        self.delta_group = delta_group


ENTRY = RegistryEntry(kind="shift", cls=ShiftPattern)  # REG302: no codec
