"""Seeded RNGs threaded from the params layer."""

import random

import numpy as np


def pick_intermediate(groups, seed: int):
    rng = np.random.default_rng(seed)
    return groups[rng.integers(len(groups))]


def shuffle_nodes(nodes, seed: int):
    r = random.Random(seed)
    r.shuffle(nodes)
    return nodes
