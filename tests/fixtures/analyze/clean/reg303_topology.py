"""A Dragonfly subclass registered with its round-trip codec."""


class RegistryEntry:
    def __init__(self, kind, cls, to_dict=None):
        self.kind = kind
        self.cls = cls
        self.to_dict = to_dict


class Dragonfly:
    def __init__(self, p: int, a: int, h: int, g: int) -> None:
        self.p, self.a, self.h, self.g = p, a, h, g


class TorusDragonfly(Dragonfly):
    def __init__(self, p: int, k: int) -> None:
        super().__init__(p, k, 1, k)


ENTRY = RegistryEntry(
    kind="torus",
    cls=TorusDragonfly,
    to_dict=lambda t: {"p": t.p, "k": t.a},
)
