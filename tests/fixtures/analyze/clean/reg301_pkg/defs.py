"""A seed-bearing registered class constructed only in its home package."""


class RegistryEntry:
    def __init__(self, kind, cls, to_dict=None):
        self.kind = kind
        self.cls = cls
        self.to_dict = to_dict


class RandomPerm:
    def __init__(self, num_nodes: int, seed: int = 0) -> None:
        self.num_nodes = num_nodes
        self.seed = seed


ENTRY = RegistryEntry(
    kind="perm", cls=RandomPerm, to_dict=lambda p: {"seed": p.seed}
)


def build(num_nodes: int, seed: int):
    # home-package builder: the registry's own construction path
    return RandomPerm(num_nodes, seed=seed)
