"""Every field classified: neutral fields marked AND popped."""

from dataclasses import asdict, dataclass
from typing import Optional


@dataclass(frozen=True)
class Params:
    load: float = 0.5
    seed: int = 0
    obs: Optional[object] = None  # repro: identity-neutral
    batch: int = 0  # repro: identity-neutral

    def identity_dict(self) -> dict:
        data = asdict(self)
        data.pop("obs")
        data.pop("batch")
        return data
