"""The fixed ``_busy_channels`` idiom: insertion-ordered dict-as-set."""

from typing import Dict, List


class FastNetwork:
    def __init__(self) -> None:
        # insertion-ordered for run-to-run determinism
        self._busy_channels: Dict[object, None] = {}
        self.inject_channels: List[object] = []

    def inject(self, packet, channel) -> None:
        self._busy_channels[channel] = None

    def _transmit(self) -> None:
        done = []
        for channel in self._busy_channels:  # insertion order
            if not channel.out_queue:
                done.append(channel)
        for channel in done:
            self._busy_channels.pop(channel, None)

    def num_ready(self, candidates) -> int:
        # neutral consumers of a set are fine: order cannot escape
        ready = {c for c in candidates if c.ready}
        return len(ready) + sum(1 for _ in sorted(ready, key=id))
