"""A registered class with its round-trip codec."""


class RegistryEntry:
    def __init__(self, kind, cls, to_dict=None):
        self.kind = kind
        self.cls = cls
        self.to_dict = to_dict


class ShiftPattern:
    def __init__(self, delta_group: int) -> None:
        self.delta_group = delta_group


ENTRY = RegistryEntry(
    kind="shift",
    cls=ShiftPattern,
    to_dict=lambda p: {"delta_group": p.delta_group},
)
