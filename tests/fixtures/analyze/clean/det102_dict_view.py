"""Order-safe dict consumption: sorted items, neutral consumers."""

import numpy as np


def mean_latency(per_class: dict) -> float:
    total = 0.0
    for _, stats in sorted(per_class.items()):
        total += stats.latency / stats.count
    return total / len(per_class)


def usage_vector(usage: dict) -> np.ndarray:
    keys = sorted(usage)
    return np.asarray([usage[k] for k in keys], dtype=np.float64)


def reset_counters(channels: dict) -> int:
    # plain per-element mutation carries no order dependence
    for channel in channels.values():
        channel.flits_sent = 0
    return len(channels)
