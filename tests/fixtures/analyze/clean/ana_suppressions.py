"""Well-formed suppressions: justified, and each one actually fires."""

import time


def timestamp() -> float:
    # repro: allow[DET104]: fixture exercising a justified suppression
    return time.time()
