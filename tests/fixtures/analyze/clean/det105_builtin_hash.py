"""Stable content hashing via hashlib."""

import hashlib


def shard_for(key: str, num_shards: int) -> int:
    digest = hashlib.sha256(key.encode()).digest()
    return int.from_bytes(digest[:8], "big") % num_shards
