"""Clock injection: the caller owns time, sim code stays pure."""


def run_window(network, cycles: int, clock) -> float:
    start = clock()
    for _ in range(cycles):
        network.step()
    return clock() - start


def stamp_result(result, created_at: float) -> None:
    result.created_at = created_at
