"""Every spec field serialized, aliased, or declared neutral."""

import hashlib
import json
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RunSpec:
    topology: str = "4,8,4,9"
    pattern: str = "ur"
    load: float = 0.5
    args_json: str = "{}"  # repro: identity-key[args]
    note: Optional[str] = None  # repro: identity-neutral

    def to_dict(self) -> dict:
        return {
            "topology": self.topology,
            "pattern": self.pattern,
            "load": self.load,
            "args": json.loads(self.args_json),
        }

    def fingerprint(self) -> str:
        blob = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()
