"""Cross-process determinism under different PYTHONHASHSEED values.

PYTHONHASHSEED salts str/bytes hashing, which permutes set iteration and
dict layouts keyed by strings -- the exact channel through which the
``_busy_channels``-class bugs leak nondeterminism.  Running the SAME
RunSpec in two fresh interpreters with DIFFERENT hash seeds and
asserting bit-identical results proves, end to end, that no hash-order
dependence reaches the measurement or the cache identity.
"""

import json
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# small topology, short window: a full warmup+measure run in ~a second
_CHILD = """
import dataclasses, json
from repro.sim.params import SimParams
from repro.spec import PatternSpec, RunSpec, TopologySpec

spec = RunSpec(
    topology=TopologySpec.parse("2,4,2,3"),
    pattern=PatternSpec.make("perm", seed=3),
    load=0.3,
    routing="ugal-l",
    params=SimParams(window_cycles=150, warmup_windows=1,
                     measure_windows=1),
    seed=11,
)
result = spec.run()
data = dataclasses.asdict(result)
data.pop("manifest", None)  # provenance carries wallclock timings
print(json.dumps({
    "fingerprint": spec.fingerprint(),
    "result": data,
}, sort_keys=True))
"""


# adversary search in a fresh interpreter: the hill climb iterates over
# suite patterns, registry entries, and executor batches -- all channels
# where a str-hash-ordered set or dict would change which candidate wins
_SEARCH_CHILD = """
import json
from repro.adversary import run_search
from repro.topology import Dragonfly

report = run_search(
    Dragonfly(2, 4, 2, 3), strategy="hillclimb:3", budget=5, seed=7,
    num_type1=2, num_type2=2,
)
print(report.to_json(indent=0))
"""


def _run_child(hashseed: str, code: str = _CHILD) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    env["PYTHONHASHSEED"] = hashseed
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, env=env, cwd=REPO,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def test_results_identical_across_hash_seeds():
    a = _run_child("1")
    b = _run_child("4242")
    assert a["fingerprint"] == b["fingerprint"]
    # bit-identical: floats serialized by json.dumps match exactly
    assert a["result"] == b["result"]
    assert a["result"]["packets_measured"] > 0  # ran for real


def test_adversary_search_identical_across_hash_seeds():
    a = _run_child("2", _SEARCH_CHILD)
    b = _run_child("31337", _SEARCH_CHILD)
    assert a == b  # full report: winner, scores, ranking, manifest
    assert a["candidates_scored"] == 5  # the search actually ran
