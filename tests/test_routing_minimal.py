"""Tests for MIN path computation."""

import pytest

from repro.routing import min_paths
from repro.routing.minimal import min_hops_via, min_path_via
from repro.topology import Dragonfly


@pytest.fixture(scope="module")
def topo():
    return Dragonfly(4, 8, 4, 9)


class TestMinPaths:
    def test_same_switch_zero_hops(self, topo):
        (p,) = min_paths(topo, 5, 5)
        assert p.num_hops == 0
        assert p.src == p.dst == 5

    def test_same_group_single_local_hop(self, topo):
        (p,) = min_paths(topo, 0, 3)
        assert p.num_hops == 1
        assert p.num_global_hops == 0
        assert p.switches == (0, 3)

    def test_inter_group_one_per_link(self, topo):
        paths = min_paths(topo, 0, 17)
        assert len(paths) == topo.links_per_group_pair == 4
        for p in paths:
            assert p.num_global_hops == 1
            assert 1 <= p.num_hops <= 3
            p.validate(topo)

    def test_all_pairs_at_most_3_hops(self, topo):
        switches = [0, 1, 8, 17, 35, 71]
        for s in switches:
            for d in switches:
                for p in min_paths(topo, s, d):
                    assert p.num_hops <= 3
                    assert p.src == s and p.dst == d
                    p.validate(topo)

    def test_min_path_shortcut_when_endpoint_is_src(self, topo):
        # Choose a link whose group-0 endpoint IS the source switch: the
        # path then has no leading local hop.
        link = topo.global_links_of_switch(0)[0]
        other_group = (
            link.group_b if link.group_a == topo.group_of(0) else link.group_a
        )
        dst = topo.switch_id(other_group, 0)
        p = min_path_via(topo, 0, dst, link)
        assert p.switches[0] == 0
        assert p.num_hops <= 2
        assert p.num_hops == min_hops_via(topo, 0, dst, link)
        p.validate(topo)

    def test_hops_via_matches_path(self, topo):
        for link in topo.links_between_groups(0, 5):
            for src in topo.switches_in_group(0):
                for dst in topo.switches_in_group(5):
                    p = min_path_via(topo, src, dst, link)
                    assert p.num_hops == min_hops_via(topo, src, dst, link)

    def test_min_path_count_one_link_topology(self):
        t = Dragonfly(2, 4, 2, 9)  # one link per group pair
        assert len(min_paths(t, 0, t.switch_id(3, 2))) == 1
