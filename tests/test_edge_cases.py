"""Edge cases across modules: degenerate topologies, empty policies,
no-VLB networks."""

import numpy as np
import pytest

from repro.routing import ChannelIndex, min_paths
from repro.routing.pathset import AllVlbPolicy
from repro.routing.vlb import count_vlb_paths, enumerate_vlb_descriptors
from repro.sim import SimParams, simulate
from repro.topology import Dragonfly
from repro.traffic import Shift, UniformRandom


class TestTwoGroupNetwork:
    """g=2: every inter-group pair has direct links but NO VLB path
    (no third group to detour through)."""

    @pytest.fixture(scope="class")
    def topo(self):
        return Dragonfly(2, 4, 2, 2)

    def test_no_vlb_descriptors(self, topo):
        src, dst = 0, topo.a  # group 0 -> group 1
        assert count_vlb_paths(topo, src, dst) == 0
        assert list(enumerate_vlb_descriptors(topo, src, dst)) == []

    def test_policy_sample_returns_none(self, topo):
        rng = np.random.default_rng(0)
        assert AllVlbPolicy().sample(topo, 0, topo.a, rng) is None

    def test_ugal_mostly_min(self, topo):
        # inter-group pairs have no VLB path at g=2 (UGAL falls back to
        # MIN); only intra-group pairs can detour via the other group,
        # so the VLB share stays tiny at low load
        r = simulate(
            topo,
            UniformRandom(topo),
            0.2,
            routing="ugal-l",
            params=SimParams(window_cycles=150),
            seed=1,
        )
        assert r.packets_measured > 0
        assert r.vlb_fraction < 0.1

    def test_inter_group_packets_always_min(self, topo):
        # a pure inter-group pattern can never route VLB at g=2
        r = simulate(
            topo,
            Shift(topo, 1, 0),
            0.2,
            routing="ugal-l",
            params=SimParams(window_cycles=150),
            seed=1,
        )
        assert r.packets_measured > 0
        assert r.vlb_fraction == 0.0

    def test_min_paths_use_eight_links(self, topo):
        # a*h = 8 ports over 1 peer group -> 8 links per pair
        assert topo.links_per_group_pair == 8
        paths = min_paths(topo, 0, topo.a)
        assert len(paths) == 8


class TestSingleGroupNetwork:
    def test_local_only_simulation(self):
        topo = Dragonfly(2, 4, 2, 1)
        r = simulate(
            topo,
            UniformRandom(topo),
            0.3,
            routing="ugal-l",
            params=SimParams(window_cycles=150),
            seed=1,
        )
        assert r.packets_measured > 0
        assert r.avg_hops <= 1.0  # complete graph: at most one hop


class TestChannelIndex:
    def test_bijection(self):
        topo = Dragonfly(2, 4, 2, 3)
        chidx = ChannelIndex(topo)
        assert len(chidx) == chidx.num_local + chidx.num_global
        for i in range(len(chidx)):
            assert chidx.index(chidx.channel(i)) == i

    def test_counts(self):
        topo = Dragonfly(2, 4, 2, 3)
        chidx = ChannelIndex(topo)
        assert chidx.num_local == 3 * 4 * 3
        assert chidx.num_global == 2 * len(topo.global_links)

    def test_is_global_classification(self):
        topo = Dragonfly(2, 4, 2, 3)
        chidx = ChannelIndex(topo)
        globals_found = sum(
            chidx.is_global(i) for i in range(len(chidx))
        )
        assert globals_found == chidx.num_global


class TestAsymmetricDragonflies:
    """Unbalanced parameter combinations still form valid networks."""

    @pytest.mark.parametrize(
        "phag", [(1, 2, 1, 3), (3, 2, 2, 5), (2, 6, 1, 4), (1, 8, 2, 17)]
    )
    def test_simulation_runs(self, phag):
        topo = Dragonfly(*phag)
        r = simulate(
            topo,
            Shift(topo, 1, 0),
            0.1,
            routing="ugal-l",
            params=SimParams(window_cycles=100),
            seed=0,
        )
        assert r.packets_measured > 0

    @pytest.mark.parametrize(
        "phag", [(1, 2, 1, 3), (3, 2, 2, 5), (2, 6, 1, 4)]
    )
    def test_validation_passes(self, phag):
        from repro.topology import validate_topology

        validate_topology(Dragonfly(*phag))
