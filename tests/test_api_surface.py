"""Structural checks on the public API: docstrings and __all__ hygiene."""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.topology",
    "repro.topology.dragonfly",
    "repro.topology.arrangements",
    "repro.topology.validate",
    "repro.topology.cascade",
    "repro.routing",
    "repro.routing.paths",
    "repro.routing.minimal",
    "repro.routing.vlb",
    "repro.routing.pathset",
    "repro.routing.channels",
    "repro.routing.analysis",
    "repro.routing.serialization",
    "repro.traffic",
    "repro.traffic.patterns",
    "repro.traffic.mixed",
    "repro.traffic.adversarial",
    "repro.traffic.trace",
    "repro.model",
    "repro.model.lp_model",
    "repro.model.pathstats",
    "repro.model.fastpath",
    "repro.model.symmetry",
    "repro.model.sweep",
    "repro.model.bounds",
    "repro.core",
    "repro.core.datapoints",
    "repro.core.balance",
    "repro.core.algorithm",
    "repro.sim",
    "repro.sim.params",
    "repro.sim.packet",
    "repro.sim.network",
    "repro.sim.routing",
    "repro.sim.strategies",
    "repro.sim.vc",
    "repro.sim.engine",
    "repro.sim.stats",
    "repro.sim.sweep",
    "repro.sim.replication",
    "repro.obs",
    "repro.obs.config",
    "repro.obs.log",
    "repro.obs.manifest",
    "repro.obs.metrics",
    "repro.obs.progress",
    "repro.obs.trace",
    "repro.spec",
    "repro.spec.registry",
    "repro.spec.builtins",
    "repro.spec.specs",
    "repro.verify",
    "repro.verify.cdg",
    "repro.verify.lint",
    "repro.verify.registry",
    "repro.verify.report",
    "repro.experiments",
    "repro.experiments.report",
    "repro.experiments.figures",
    "repro.experiments.ablations",
    "repro.experiments.validation",
    "repro.cli",
]


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_module_has_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip(), f"{name} lacks a docstring"


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_all_entries_exist(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"


@pytest.mark.parametrize(
    "name",
    [m for m in PUBLIC_MODULES if not m.endswith(("cli", "figures"))],
)
def test_public_callables_documented(name):
    """Every function/class exported via __all__ carries a docstring."""
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        obj = getattr(module, symbol)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            assert obj.__doc__ and obj.__doc__.strip(), (
                f"{name}.{symbol} lacks a docstring"
            )
