"""Tests for trace-driven traffic replay."""

import numpy as np
import pytest

from repro.sim import SimParams, simulate
from repro.topology import Dragonfly
from repro.traffic import Shift, UniformRandom
from repro.traffic.trace import (
    TraceTraffic,
    load_trace,
    save_trace,
    synthetic_trace,
)


@pytest.fixture(scope="module")
def topo():
    return Dragonfly(2, 4, 2, 9)


class TestTraceBasics:
    def test_events_sorted_and_queried(self, topo):
        trace = TraceTraffic(
            topo, [(5, 0, 9), (1, 2, 3), (5, 4, 8)]
        )
        assert trace.injections_at(1) == [(2, 3)]
        assert sorted(trace.injections_at(5)) == [(0, 9), (4, 8)]
        assert trace.injections_at(2) == []

    def test_validation(self, topo):
        with pytest.raises(ValueError, match="negative cycle"):
            TraceTraffic(topo, [(-1, 0, 1)])
        with pytest.raises(ValueError, match="outside"):
            TraceTraffic(topo, [(0, 0, topo.num_nodes)])

    def test_demand_matrix_counts(self, topo):
        trace = TraceTraffic(topo, [(0, 0, 9), (1, 0, 9)])
        demand = trace.demand_matrix()
        s = topo.switch_of_node(0)
        d = topo.switch_of_node(9)
        assert demand[s, d] == pytest.approx(1.0)  # 2 packets over 2 cycles
        assert demand.sum() == pytest.approx(1.0)

    def test_describe(self, topo):
        assert TraceTraffic(topo, [(0, 0, 1)]).describe() == "trace(1 events)"


class TestSyntheticTrace:
    def test_rate_matches_request(self, topo):
        trace = synthetic_trace(
            topo, UniformRandom(topo), load=0.2, cycles=500, seed=3
        )
        rate = len(trace.events) / (500 * topo.num_nodes)
        assert rate == pytest.approx(0.2, rel=0.1)

    def test_respects_pattern(self, topo):
        shift = Shift(topo, 2, 0)
        trace = synthetic_trace(topo, shift, load=0.3, cycles=100, seed=1)
        dest = shift.dest_map
        assert all(dst == dest[src] for _c, src, dst in trace.events)

    def test_load_validation(self, topo):
        with pytest.raises(ValueError):
            synthetic_trace(topo, UniformRandom(topo), 1.2, 10)


class TestSimulationReplay:
    def test_trace_drives_engine(self, topo):
        params = SimParams(window_cycles=150)
        trace = synthetic_trace(
            topo, Shift(topo, 2, 0), load=0.1,
            cycles=params.total_cycles, seed=5,
        )
        r = simulate(topo, trace, 0.1, routing="ugal-l",
                     params=params, seed=5)
        assert r.packets_measured > 0
        assert r.avg_latency < 200

    def test_replay_is_deterministic_across_runs(self, topo):
        params = SimParams(window_cycles=120)
        trace = synthetic_trace(
            topo, UniformRandom(topo), load=0.1,
            cycles=params.total_cycles, seed=9,
        )
        a = simulate(topo, trace, 0.1, params=params, seed=1)
        b = simulate(topo, trace, 0.1, params=params, seed=1)
        assert a.avg_latency == b.avg_latency
        assert a.packets_measured == b.packets_measured

    def test_empty_trace(self, topo):
        params = SimParams(window_cycles=100)
        r = simulate(topo, TraceTraffic(topo, []), 0.0, params=params)
        assert r.packets_measured == 0


class TestTraceIO:
    def test_roundtrip(self, topo, tmp_path):
        trace = synthetic_trace(
            topo, UniformRandom(topo), 0.1, cycles=50, seed=2
        )
        path = tmp_path / "t.trace"
        save_trace(trace, str(path))
        back = load_trace(topo, str(path))
        assert back.events == trace.events

    def test_bad_line_rejected(self, topo, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("1 2\n")
        with pytest.raises(ValueError, match="expected"):
            load_trace(topo, str(path))

    def test_comments_skipped(self, topo, tmp_path):
        path = tmp_path / "ok.trace"
        path.write_text("# header\n\n3 1 2\n")
        back = load_trace(topo, str(path))
        assert back.events == [(3, 1, 2)]
