"""Engine-level behavior: suppression coverage, baseline workflow,
report rendering/thresholds, rule registry, and the CLI wiring."""

import json
import os
import subprocess
import sys

import pytest

from repro.analyze import (
    ANALYZE_RULES,
    AnalyzeConfig,
    AnalyzeError,
    AnalyzeReport,
    Finding,
    analyze_tree,
)
from repro.analyze.baseline import (
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.analyze.context import ModuleUnit, module_name_for

REPO = os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))
)


def write_tree(tmp_path, files):
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)


def run_over(tmp_path, **kwargs):
    kwargs.setdefault("rules", ("DET103",))
    return analyze_tree(
        AnalyzeConfig(root=str(tmp_path), paths=("src",), **kwargs)
    )


BAD_RNG = (
    "import numpy as np\n\n\n"
    "def draw():\n"
    "    return np.random.default_rng().integers(10)\n"
)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
def test_rule_catalog_complete():
    codes = set(ANALYZE_RULES.codes())
    assert {
        "DET101", "DET102", "DET103", "DET104", "DET105",
        "CACHE201", "CACHE202", "CACHE203",
        "REG301", "REG302", "ANA001", "ANA002",
    } <= codes
    for entry in ANALYZE_RULES:
        assert entry.summary and entry.hint, entry.code
        assert entry.severity in ("warning", "error")
        assert entry.family in (
            "determinism", "cache-identity", "registry-hygiene",
            "analyzer",
        )


def test_registry_select_unknown_code():
    with pytest.raises(AnalyzeError):
        list(ANALYZE_RULES.select(("NOPE999",)))


def test_module_name_for():
    assert module_name_for("src/repro/sim/params.py") == (
        "repro.sim.params"
    )
    assert module_name_for("src/repro/analyze/__init__.py") == (
        "repro.analyze"
    )
    assert module_name_for("tools/gen.py") == "tools.gen"


# ---------------------------------------------------------------------------
# suppression coverage
# ---------------------------------------------------------------------------
def test_trailing_suppression_covers_its_line(tmp_path):
    write_tree(tmp_path, {"src/m.py": (
        "import numpy as np\n\n"
        "rng = np.random.default_rng()  "
        "# repro: allow[DET103]: fixture\n"
    )})
    report = run_over(tmp_path)
    assert report.findings == []
    assert len(report.suppressed) == 1


def test_comment_block_suppression_covers_next_statement(tmp_path):
    write_tree(tmp_path, {"src/m.py": (
        "import numpy as np\n\n"
        "# repro: allow[DET103]: a justification long enough to wrap\n"
        "# over two comment lines before the statement\n"
        "rng = np.random.default_rng()\n"
    )})
    report = run_over(tmp_path)
    assert report.findings == []
    assert len(report.suppressed) == 1


def test_suppression_does_not_leak_past_blank_line(tmp_path):
    write_tree(tmp_path, {"src/m.py": (
        "import numpy as np\n\n"
        "# repro: allow[DET103]: detached comment\n\n"
        "rng = np.random.default_rng()\n"
    )})
    report = run_over(tmp_path)
    codes = sorted(f.rule for f in report.findings)
    assert codes == ["ANA001", "DET103"]


def test_allow_in_docstring_is_inert(tmp_path):
    write_tree(tmp_path, {"src/m.py": (
        '"""Docs quoting ``# repro: allow[DET103]: like this``."""\n'
        "X = 1\n"
    )})
    report = run_over(tmp_path)
    assert report.findings == []
    assert report.suppressed == []


def test_multi_code_suppression(tmp_path):
    write_tree(tmp_path, {"src/m.py": (
        "import time\n"
        "import numpy as np\n\n"
        "# repro: allow[DET103, DET104]: both fire on the next line\n"
        "stamp = (np.random.default_rng(), time.time())\n"
    )})
    report = analyze_tree(AnalyzeConfig(
        root=str(tmp_path), paths=("src",),
        rules=("DET103", "DET104"),
    ))
    assert report.findings == []
    assert len(report.suppressed) == 2


def test_syntax_error_reported_not_crashed(tmp_path):
    write_tree(tmp_path, {"src/broken.py": "def oops(:\n"})
    report = run_over(tmp_path)
    assert [f.rule for f in report.findings] == ["ANA000"]
    assert report.findings[0].severity == "error"


# ---------------------------------------------------------------------------
# baseline workflow
# ---------------------------------------------------------------------------
def test_baseline_grandfathers_then_catches_new(tmp_path):
    write_tree(tmp_path, {"src/old.py": BAD_RNG})
    baseline = str(tmp_path / "baseline.json")
    report = run_over(tmp_path)
    assert len(report.findings) == 1
    save_baseline(baseline, report.findings)

    # grandfathered: gate passes
    report = run_over(tmp_path, baseline_path=baseline)
    assert report.findings == []
    assert len(report.baselined) == 1
    assert report.passed("warning")

    # a NEW finding in another file is not absorbed
    write_tree(tmp_path, {"src/new.py": BAD_RNG})
    report = run_over(tmp_path, baseline_path=baseline)
    assert [f.path for f in report.findings] == ["src/new.py"]
    assert not report.passed("error")


def test_baseline_count_budget(tmp_path):
    # two identical findings in one file, baselined; a third regresses
    write_tree(tmp_path, {"src/m.py": BAD_RNG.replace(
        "    return np.random.default_rng().integers(10)\n",
        "    a = np.random.default_rng().integers(10)\n"
        "    b = np.random.default_rng().integers(10)\n"
        "    return a + b\n",
    )})
    baseline = str(tmp_path / "baseline.json")
    save_baseline(baseline, run_over(tmp_path).findings)
    entries = load_baseline(baseline)
    assert len(entries) == 2  # distinct source lines -> distinct keys

    write_tree(tmp_path, {"src/m2.py": BAD_RNG})
    report = run_over(tmp_path, baseline_path=baseline)
    assert len(report.baselined) == 2
    assert len(report.findings) == 1


def test_baseline_stale_entries_surfaced(tmp_path):
    write_tree(tmp_path, {"src/old.py": BAD_RNG})
    baseline = str(tmp_path / "baseline.json")
    save_baseline(baseline, run_over(tmp_path).findings)
    write_tree(tmp_path, {"src/old.py": "X = 1\n"})  # bug fixed
    report = run_over(tmp_path, baseline_path=baseline)
    assert report.findings == []
    assert len(report.stale_baseline) == 1
    assert "stale baseline" in report.to_text()


def test_baseline_line_drift_tolerated(tmp_path):
    write_tree(tmp_path, {"src/old.py": BAD_RNG})
    baseline = str(tmp_path / "baseline.json")
    save_baseline(baseline, run_over(tmp_path).findings)
    # unrelated edit ABOVE the finding shifts its line number
    write_tree(tmp_path, {"src/old.py": "Y = 2\n\n" + BAD_RNG})
    report = run_over(tmp_path, baseline_path=baseline)
    assert report.findings == []
    assert len(report.baselined) == 1


def test_load_baseline_rejects_bad_format(tmp_path):
    path = tmp_path / "b.json"
    path.write_text(json.dumps({"format": 99, "entries": []}))
    with pytest.raises(AnalyzeError):
        load_baseline(str(path))


def test_apply_baseline_pure():
    finding = Finding(
        rule="DET103", severity="error", path="src/m.py", line=3,
        message="x", context="rng = np.random.default_rng()",
    )
    entries = [{
        "rule": "DET103", "path": "src/m.py",
        "context": "rng = np.random.default_rng()", "count": 1,
    }]
    active, baselined, stale = apply_baseline([finding, finding], entries)
    assert len(active) == 1 and len(baselined) == 1 and stale == []


# ---------------------------------------------------------------------------
# report
# ---------------------------------------------------------------------------
def test_report_thresholds():
    warn = Finding("DET101", "warning", "a.py", 1, "w")
    err = Finding("DET103", "error", "a.py", 2, "e")
    report = AnalyzeReport(root=".", findings=[warn, err])
    assert not report.passed("error")
    assert not report.passed("warning")
    assert report.passed("none")
    warn_only = AnalyzeReport(root=".", findings=[warn])
    assert warn_only.passed("error")
    assert not warn_only.passed("warning")


def test_report_json_round_trip():
    report = AnalyzeReport(
        root=".", findings=[Finding("DET101", "warning", "a.py", 1, "w")],
        files_checked=3, rules_run=["DET101"],
    )
    data = json.loads(report.to_json())
    assert data["warnings"] == 1 and data["errors"] == 0
    assert data["findings"][0]["rule"] == "DET101"


def test_module_unit_parse_helpers():
    unit = ModuleUnit.parse("src/m.py", "x = 1  # repro: allow[DET101]: r\n")
    assert unit.suppressions[0].codes == ("DET101",)
    assert unit.suppressions[0].reason == "r"
    assert unit.line_text(1).startswith("x = 1")
    assert unit.line_text(99) == ""


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def run_cli(*argv, cwd=REPO):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "analyze", *argv],
        capture_output=True, text=True, cwd=cwd, env=env,
    )


def test_cli_list_rules():
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    assert "DET101" in proc.stdout and "CACHE203" in proc.stdout


def test_cli_json_and_fail_on(tmp_path):
    write_tree(tmp_path, {"src/m.py": BAD_RNG})
    proc = run_cli(
        "--root", str(tmp_path), "--rules", "DET103", "--json",
        str(tmp_path / "src"),
    )
    assert proc.returncode == 1
    data = json.loads(proc.stdout)
    assert data["errors"] == 1
    proc = run_cli(
        "--root", str(tmp_path), "--rules", "DET103",
        "--fail-on", "none", str(tmp_path / "src"),
    )
    assert proc.returncode == 0
